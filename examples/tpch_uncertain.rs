//! Uncertainty-annotated analytics on TPC-H-shaped data (the paper's
//! Section 12.1 setup): inject PDBench-style cell uncertainty, then
//! compare selected-guess query processing against AU-DB evaluation on
//! TPC-H Q1 and a PDBench SPJ query.
//!
//! Run with: `cargo run --release --example tpch_uncertain`

use audb::prelude::*;
use audb::workloads::{gen_tpch, inject_uncertainty, pdbench_queries, tpch::q1, TpchConfig};

fn main() {
    // generate a small TPC-H instance and make 5% of its cells uncertain
    let base = gen_tpch(TpchConfig::new(0.2, 42));
    let xdb = inject_uncertainty(&base, 0.05, 8, 43);
    let li = xdb.get("lineitem").unwrap();
    println!(
        "lineitem: {} rows, {:.1}% with uncertainty",
        li.xtuples.len(),
        li.uncertain_ratio() * 100.0
    );

    let audb = xdb.to_au();
    let sgw = xdb.sg_world();

    // ---- TPC-H Q1 ----------------------------------------------------------
    let q = q1();
    let det = eval_det(&sgw, &q).unwrap();
    let au = eval_au(&audb, &q, &AuConfig::compressed(64)).unwrap();
    assert_eq!(au.sg_world(), det, "AU-DBs generalize SGQP");

    println!("\nTPC-H Q1 under AU-DB semantics (first rows):");
    println!("flag status  sum_qty                   count");
    for (t, k) in au.rows().iter().take(6) {
        println!(
            "{:>4} {:>6}  {:<24}  {:<12} {}",
            t.0[0].sg,
            t.0[1].sg,
            format!("{}", t.0[2]),
            format!("{}", t.0[7]),
            k
        );
    }
    println!("(SGQP reports only the middle value of each triple)");

    // ---- PDBench SPJ -------------------------------------------------------
    let (name, q) = pdbench_queries().remove(1);
    let det = eval_det(&sgw, &q).unwrap();
    let au = eval_au(&audb, &q, &AuConfig::compressed(64)).unwrap();
    assert_eq!(au.sg_world(), det);

    let certain = au.rows().iter().filter(|(t, k)| k.lb > 0 && t.is_certain()).count();
    let possible: u64 = au.possible_size();
    println!(
        "\nPDBench {name}: {} SGW rows; {certain} certainly-exact rows; \
         ≤ {possible} possible tuples",
        det.total_count(),
    );
}
