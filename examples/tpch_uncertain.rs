//! Uncertainty-annotated analytics on TPC-H-shaped data (the paper's
//! Section 12.1 setup): inject PDBench-style cell uncertainty, then
//! compare selected-guess query processing against AU-DB evaluation on
//! TPC-H Q1 and a PDBench SPJ query.
//!
//! Run with: `cargo run --release --example tpch_uncertain`

use audb::prelude::*;
use audb::workloads::{gen_tpch, inject_uncertainty, pdbench_queries, tpch::q1, TpchConfig};

/// Relation equality up to float-summation ULPs: the AU and Det engines
/// aggregate rows in different canonical orders, and float addition is
/// not associative, so exact equality of `sum`/`avg` columns is too
/// strict by a few ULPs.
fn assert_approx_eq(a: &Relation, b: &Relation, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    let close = |x: &Value, y: &Value| match (x.as_f64(), y.as_f64()) {
        (Some(p), Some(q)) => (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0),
        _ => x == y,
    };
    for ((ta, ka), (tb, kb)) in a.rows().iter().zip(b.rows()) {
        assert_eq!(ka, kb, "{what}: multiplicities differ");
        assert!(
            ta.0.len() == tb.0.len() && ta.0.iter().zip(&tb.0).all(|(x, y)| close(x, y)),
            "{what}: rows differ beyond float tolerance:\n  {ta}\n  {tb}"
        );
    }
}

fn main() {
    // generate a small TPC-H instance and make 5% of its cells uncertain
    let base = gen_tpch(TpchConfig::new(0.2, 42));
    let xdb = inject_uncertainty(&base, 0.05, 8, 43);
    let li = xdb.get("lineitem").unwrap();
    println!(
        "lineitem: {} rows, {:.1}% with uncertainty",
        li.xtuples.len(),
        li.uncertain_ratio() * 100.0
    );

    let audb = xdb.to_au();
    let sgw = xdb.sg_world();

    // ---- TPC-H Q1 ----------------------------------------------------------
    let q = q1();
    let det = eval_det(&sgw, &q).unwrap();
    let au = eval_au(&audb, &q, &AuConfig::compressed(64)).unwrap();
    assert_approx_eq(&au.sg_world().normalized(), &det, "AU-DBs generalize SGQP (Q1)");

    println!("\nTPC-H Q1 under AU-DB semantics (first rows):");
    println!("flag status  sum_qty                   count");
    for (t, k) in au.rows().iter().take(6) {
        println!(
            "{:>4} {:>6}  {:<24}  {:<12} {}",
            t.0[0].sg,
            t.0[1].sg,
            format!("{}", t.0[2]),
            format!("{}", t.0[7]),
            k
        );
    }
    println!("(SGQP reports only the middle value of each triple)");

    // ---- PDBench SPJ -------------------------------------------------------
    let (name, q) = pdbench_queries().remove(1);
    let det = eval_det(&sgw, &q).unwrap();
    let au = eval_au(&audb, &q, &AuConfig::compressed(64)).unwrap();
    assert_approx_eq(&au.sg_world().normalized(), &det, "AU-DBs generalize SGQP (PDBench)");

    let certain = au.rows().iter().filter(|(t, k)| k.lb > 0 && t.is_certain()).count();
    let possible: u64 = au.possible_size();
    println!(
        "\nPDBench {name}: {} SGW rows; {certain} certainly-exact rows; \
         ≤ {possible} possible tuples",
        det.total_count(),
    );
}
