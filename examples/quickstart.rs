//! Quickstart: build an AU-DB by hand, run selection / join /
//! aggregation, and read the bounds off the results.
//!
//! Run with: `cargo run --example quickstart`

use audb::prelude::*;

fn main() {
    // ---- 1. build an AU-relation -----------------------------------------
    // Each attribute is a [lower / selected-guess / upper] triple; each
    // tuple carries (lower, sg, upper) multiplicity bounds.
    let items = AuRelation::from_rows(
        Schema::named(&["item", "qty", "warehouse"]),
        vec![
            // fully certain row
            au_row(
                vec![
                    RangeValue::certain(Value::str("bolt")),
                    RangeValue::certain(Value::Int(100)),
                    RangeValue::certain(Value::Int(1)),
                ],
                1,
                1,
                1,
            ),
            // quantity only known to be 40–60 (guess: 50)
            au_row(
                vec![
                    RangeValue::certain(Value::str("nut")),
                    RangeValue::range(40i64, 50i64, 60i64),
                    RangeValue::certain(Value::Int(1)),
                ],
                1,
                1,
                1,
            ),
            // row that may not exist at all (lower multiplicity 0), and
            // whose warehouse is unknown
            au_row(
                vec![
                    RangeValue::certain(Value::str("washer")),
                    RangeValue::certain(Value::Int(10)),
                    RangeValue::range(1i64, 2i64, 3i64),
                ],
                0,
                1,
                1,
            ),
        ],
    );
    let mut db = AuDatabase::new();
    db.insert("items", items);
    println!("input:\n{}", db.get("items").unwrap());

    // ---- 2. selection over uncertain values --------------------------------
    // qty >= 50 is certainly true for bolt, maybe true for nut.
    let q = table("items").select(col(1).geq(lit(50i64)));
    let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
    println!("σ[qty ≥ 50]:\n{out}");

    // ---- 3. aggregation with group-by --------------------------------------
    // Group by warehouse: washer's group membership is uncertain, which
    // the output's bounds must (and do) account for.
    let q = table("items").aggregate(
        vec![2],
        vec![AggSpec::new(AggFunc::Sum, col(1), "total_qty"), AggSpec::count("items")],
    );
    let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
    println!("γ[warehouse; sum(qty), count(*)]:\n{out}");

    // ---- 4. the selected-guess world is always recoverable -----------------
    // Ignoring the bounds gives exactly what a deterministic engine
    // would have produced on the selected-guess data.
    let sgw_result = out.sg_world();
    let det_result = eval_det(&db.sg_world(), &q).unwrap();
    assert_eq!(sgw_result, det_result);
    println!("SGW of the result == deterministic evaluation over the SGW ✓");
}
