//! Data cleaning with a key-repair lens (Sections 11.4 and 12.3):
//! conflicting rows for the same key become an x-tuple of alternatives;
//! the AU-DB bounds every possible repair while queries keep running on
//! the selected guess.
//!
//! Run with: `cargo run --example key_repair`

use audb::prelude::*;

fn main() {
    // A product catalog scraped from two disagreeing sources: the key
    // `sku` should be unique but is not.
    let dirty = Relation::from_tuples(
        Schema::named(&["sku", "price", "stock"]),
        vec![
            [Value::Int(1), Value::Int(999), Value::Int(10)].into_iter().collect(),
            [Value::Int(1), Value::Int(899), Value::Int(10)].into_iter().collect(), // conflict!
            [Value::Int(2), Value::Int(250), Value::Int(3)].into_iter().collect(),
            [Value::Int(3), Value::Int(400), Value::Int(0)].into_iter().collect(),
            [Value::Int(3), Value::Int(410), Value::Int(7)].into_iter().collect(), // conflict!
            [Value::Int(3), Value::Int(420), Value::Int(7)].into_iter().collect(), // conflict!
        ],
    );
    println!("dirty input ({} rows, key = sku):\n{dirty}", dirty.total_count());

    // The lens turns each key group into one x-tuple (possible repairs).
    let repaired = key_repair_lens(&dirty, &[0]);
    let stats = audb::incomplete::repair_stats(&repaired);
    println!(
        "repair: {} keys, {} violated, {:.1} possibilities each\n",
        stats.total_keys, stats.violating_keys, stats.avg_possibilities
    );

    let mut xdb = XDb::default();
    xdb.insert("products", repaired);

    // translate to an AU-DB: one range tuple per key
    let audb = xdb.to_au();
    println!("AU-DB after repair:\n{}", audb.get("products").unwrap());

    // total inventory value: sum(price * stock), with bounds covering
    // every possible repair
    let q = table("products")
        .aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, col(1).mul(col(2)), "inventory_value")]);
    let out = eval_au(&audb, &q, &AuConfig::precise()).unwrap();
    let value = &out.rows()[0].0 .0[0];
    println!("inventory value: [{} / {} / {}]", value.lb, value.sg, value.ub);

    // ground truth: enumerate every repair world and check the bounds
    let inc = xdb.to_incomplete(64).expect("small enough to enumerate");
    let worlds = inc.eval(&q).unwrap();
    for (i, w) in worlds.worlds.iter().enumerate() {
        let v = &w.rows()[0].0 .0[0];
        assert!(value.bounds(v), "world {i}: {v} escapes [{} / {}]", value.lb, value.ub);
    }
    println!("verified: all {} possible repairs fall inside the bounds ✓", worlds.worlds.len());
}
