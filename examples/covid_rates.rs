//! The paper's running example (Figure 1): Alice tracks COVID-19
//! infection rates extracted from unreliable web sources and compares
//! them across population-centre sizes.
//!
//! Selected-guess query processing (what practitioners actually do)
//! reports an 18% average for cities with no hint of uncertainty;
//! certain answers return *nothing*. The AU-DB sandwiches the truth.
//!
//! Run with: `cargo run --example covid_rates`

use audb::prelude::*;

/// sizes as ordinals so ranges are meaningful: village < town < city < metro
const VILLAGE: i64 = 0;
const TOWN: i64 = 1;
const CITY: i64 = 2;
const METRO: i64 = 3;

fn size_name(v: &Value) -> &'static str {
    match v {
        Value::Int(0) => "village",
        Value::Int(1) => "town",
        Value::Int(2) => "city",
        Value::Int(3) => "metro",
        _ => "?",
    }
}

fn main() {
    // Figure 1c: the AU-DB encoding of the uncertain locale data, built
    // on the selected-guess world D_SG of Figure 1b. Rates are in tenths
    // of a percent so everything stays integral (30 = 3.0%).
    let locale = |name: &str, rate: RangeValue, size: RangeValue| {
        au_row(vec![RangeValue::certain(Value::str(name)), rate, size], 1, 1, 1)
    };
    let rel = AuRelation::from_rows(
        Schema::named(&["locale", "rate", "size"]),
        vec![
            locale(
                "Los Angeles",
                RangeValue::range(30i64, 30i64, 40i64),
                RangeValue::certain(Value::Int(METRO)),
            ),
            locale(
                "Austin",
                RangeValue::certain(Value::Int(180)),
                RangeValue::range(CITY, CITY, METRO),
            ),
            locale(
                "Houston",
                RangeValue::certain(Value::Int(140)),
                RangeValue::certain(Value::Int(METRO)),
            ),
            locale(
                "Berlin",
                RangeValue::range(10i64, 30i64, 30i64),
                RangeValue::range(TOWN, TOWN, CITY),
            ),
            // Sacramento's size is a null: any size is possible
            locale(
                "Sacramento",
                RangeValue::certain(Value::Int(10)),
                RangeValue::range(VILLAGE, TOWN, METRO),
            ),
            // Springfield's rate is a null: bounded by [0%, 100%]
            locale(
                "Springfield",
                RangeValue::range(0i64, 50i64, 1000i64),
                RangeValue::certain(Value::Int(TOWN)),
            ),
        ],
    );
    let mut db = AuDatabase::new();
    db.insert("locales", rel);

    // SELECT size, avg(rate) AS rate FROM locales GROUP BY size
    let q = table("locales").aggregate(vec![2], vec![AggSpec::new(AggFunc::Avg, col(1), "rate")]);

    let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
    println!("size      avg rate (tenths of %)                annotation");
    println!("--------  ------------------------------------  -----------");
    for (t, k) in out.rows() {
        let size = &t.0[0];
        let rate = &t.0[1];
        println!("{:<8}  [{} / {} / {}]  {}", size_name(&size.sg), rate.lb, rate.sg, rate.ub, k);
    }
    println!();
    println!("Reading the metro row: its SG value reproduces the selected-guess");
    println!("average, while the bounds expose how uncertain that number is —");
    println!("Sacramento may belong to any size class and Springfield's rate is");
    println!("entirely unknown, so 'town' has a huge upper bound, exactly as in");
    println!("Figure 1c of the paper.");

    // compare with selected-guess query processing: the same numbers,
    // but with all uncertainty silently discarded
    let sg_result = eval_det(&db.sg_world(), &q).unwrap();
    println!("\nSGQP (what a deterministic engine reports):\n{sg_result}");
    assert_eq!(out.sg_world(), sg_result);
}
