//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`, range/tuple/`Just`/union/vec strategies,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!`
//! macros. Failing cases are reported with their case number and seed but
//! are **not shrunk** — this is a test-running shim, not a full property
//! testing framework.

pub mod test_runner {
    use std::fmt;

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            self.0.gen_range(lo..hi)
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// proptest-compatible alias.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }
    impl From<&str> for TestCaseError {
        fn from(s: &str) -> Self {
            TestCaseError(s.to_string())
        }
    }

    /// Runner configuration (`cases` is the only knob the shim honours).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }
}

pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A value generator. `sample` replaces proptest's value-tree
    /// machinery; there is no shrinking.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Bounded recursive strategies: expands up to `depth` levels via
        /// `f`, mixing in the leaf at every level so sampled structures
        /// stay small.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let expanded = f(cur).boxed();
                cur = Union::new(vec![self.clone().boxed(), expanded]).boxed();
            }
            cur
        }
    }

    /// Object-safe view used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0 / V0 / 0);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2, S3 / V3 / 3);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2, S3 / V3 / 3, S4 / V4 / 4);
    tuple_strategy!(S0 / V0 / 0, S1 / V1 / 1, S2 / V2 / 2, S3 / V3 / 3, S4 / V4 / 4, S5 / V5 / 5);
}

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of the element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// The property-test item wrapper: runs each property `config.cases`
/// times with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // FNV-1a over the test name for a stable per-test seed
                let mut seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        seed.wrapping_add((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {}): {}",
                            stringify!($name), case + 1, config.cases, seed, e,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = (0i64..5).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (0..10).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(0i64..10, 1..4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0i64..10, 3);
        assert_eq!(fixed.sample(&mut rng).len(), 3);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 12, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(a in 0i64..10, b in 0i64..10) {
            prop_assert!(a + b <= 18);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
