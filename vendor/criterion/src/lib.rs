//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface this workspace's benches use: benchmark
//! groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function` with `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark reports
//! min/median/max time per iteration and every result is appended to a
//! JSON report (`CRITERION_JSON` env var, default
//! `target/criterion-shim.json`) so CI and the repo's `BENCH_*.json`
//! records can consume the numbers without the real criterion's plotting
//! stack.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    pub iters_per_sample: u64,
    pub samples: usize,
    pub min_ns: f64,
    pub median_ns: f64,
    pub max_ns: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Benchmark-filter taken from the CLI (cargo bench passes extra args
/// through). Only substring filtering is supported.
fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with("--") && !a.is_empty())
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: cli_filter() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Ungrouped benchmark (criterion parity).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(String::new());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() { id.clone() } else { format!("{}/{}", self.name, id) };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up + calibration: time single iterations until the warm-up
        // budget is spent, tracking the mean cost of one iteration.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            warm_iters += bencher.iters;
            warm_spent += bencher.elapsed;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so all samples together fit the measurement
        // budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let result = BenchResult {
            group: self.name.clone(),
            name: id,
            iters_per_sample,
            samples: samples_ns.len(),
            min_ns: samples_ns[0],
            median_ns: samples_ns[samples_ns.len() / 2],
            max_ns: samples_ns[samples_ns.len() - 1],
        };
        println!(
            "{:<40} time: [{} {} {}]",
            full,
            fmt_ns(result.min_ns),
            fmt_ns(result.median_ns),
            fmt_ns(result.max_ns),
        );
        RESULTS.lock().unwrap().push(result);
        self
    }

    pub fn finish(self) {}
}

/// Runs the measured routine; mirrors `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Write the collected results as JSON. Called by `criterion_main!` after
/// all groups have run.
pub fn finalize() {
    let results = RESULTS.lock().unwrap();
    if results.is_empty() {
        return;
    }
    let path = std::env::var("CRITERION_JSON")
        .unwrap_or_else(|_| "target/criterion-shim.json".to_string());
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            json_escape(&r.group),
            json_escape(&r.name),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
        ));
    }
    out.push_str("\n]\n");
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nwrote {} benchmark results to {path}", results.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

impl fmt::Display for BenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.group, self.name, fmt_ns(self.median_ns))
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(5));
        g.measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let results = RESULTS.lock().unwrap();
        let r = results.iter().find(|r| r.group == "shim_test").unwrap();
        assert!(r.median_ns >= 0.0);
        assert_eq!(r.samples, 3);
    }
}
