//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no network access, so the
//! real `rand` cannot be fetched. This crate re-implements the small API
//! surface the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` — on top of xoshiro256**, which is
//! plenty for deterministic workload generation. It is **not** a
//! cryptographic generator and makes no distribution-quality claims
//! beyond uniformity.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value of a standard-samplable type (`f64` in `[0, 1)`,
    /// integers over their whole range, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform value in the given range; panics when the range is empty
    /// (matching `rand`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types `gen()` can produce.
pub trait Standard {
    fn sample(raw: u64) -> Self;
}

impl Standard for f64 {
    fn sample(raw: u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(raw: u64) -> Self {
        raw
    }
}

impl Standard for bool {
    fn sample(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges `gen_range()` accepts.
pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (next() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(next()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // splitmix64 to expand the seed, as recommended by the
            // xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
            let v: i64 = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
