//! # audb — Attribute-annotated Uncertain Databases
//!
//! A from-scratch Rust implementation of *"Efficient Uncertainty
//! Tracking for Complex Queries with Attribute-level Bounds"*
//! (Feng, Huber, Glavic, Kennedy — SIGMOD 2021).
//!
//! An **AU-DB** approximates an incomplete database (a set of possible
//! worlds) by annotating a single *selected-guess world*:
//!
//! * attribute values carry `[lower / selected-guess / upper]` range
//!   annotations;
//! * tuples carry `(lower, sg, upper)` multiplicity annotations;
//! * full relational algebra **with aggregation** evaluates directly on
//!   this encoding in PTIME and provably *preserves bounds*: every
//!   possible world of the input's query result is sandwiched between
//!   the produced under- and over-approximations.
//!
//! ## Quick start
//!
//! ```
//! use audb::prelude::*;
//!
//! // a relation with an uncertain attribute: rate is 3–4%, guess 3%
//! let rel = AuRelation::from_rows(
//!     Schema::named(&["locale", "rate"]),
//!     vec![
//!         au_row(vec![RangeValue::certain(Value::str("LA")),
//!                     RangeValue::range(3i64, 3i64, 4i64)], 1, 1, 1),
//!         au_row(vec![RangeValue::certain(Value::str("Houston")),
//!                     RangeValue::certain(Value::Int(14))], 1, 1, 1),
//!     ],
//! );
//! let mut db = AuDatabase::new();
//! db.insert("locales", rel);
//!
//! // average rate across locales, with bounds
//! let q = table("locales").aggregate(
//!     vec![],
//!     vec![AggSpec::new(AggFunc::Avg, col(1), "avg_rate")],
//! );
//! let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
//! let avg = &out.rows()[0].0 .0[0];
//! assert_eq!(avg.lb, Value::float(8.5));   // (3 + 14) / 2
//! assert_eq!(avg.ub, Value::float(9.0));   // (4 + 14) / 2
//! ```
//!
//! The workspace crates are re-exported here: see [`core`], [`storage`],
//! [`query`], [`serve`], [`incomplete`], [`baselines`], [`workloads`].

pub use audb_baselines as baselines;
pub use audb_core as core;
pub use audb_exec as exec;
pub use audb_incomplete as incomplete;
pub use audb_query as query;
pub use audb_serve as serve;
pub use audb_storage as storage;
pub use audb_workloads as workloads;

/// Common imports for working with AU-DBs.
pub mod prelude {
    pub use audb_core::obs::{Metrics, QueryTrace, TraceSpan, TRACE_SCHEMA_VERSION};
    pub use audb_core::{
        col, lit, AuAnnot, Budget, BudgetSpec, CancelToken, EvalError, ExecError, Expr, RangeValue,
        UaAnnot, Value,
    };
    pub use audb_exec::{Executor, Partitioner};
    pub use audb_incomplete::{
        database_bounds_incomplete, key_repair_lens, relation_bounds_world, CTable, IncompleteDb,
        TiDb, TiRelation, VTable, XDb, XRelation, XTuple,
    };
    pub use audb_query::{
        eval_au, eval_au_cancellable, eval_au_once, eval_au_traced, eval_au_traced_full, eval_det,
        eval_ua, explain, parse_sql, rewrite::eval_via_rewrite, table, AggFunc, AggSpec, AuConfig,
        Explain, ProgramCache, Query,
    };
    pub use audb_serve::{Class, ClassPolicy, Engine, EngineConfig, Response, ServeError};
    pub use audb_storage::{
        au_row, certain_row, AuDatabase, AuRelation, Database, RangeTuple, Relation, Schema, Tuple,
        UaDatabase, UaRelation,
    };
}
