//! AU-relations and AU-databases (Definition 12): functions from
//! range-annotated tuples to `N_AU` annotations, stored as normalized
//! row lists.

use std::collections::BTreeMap;
use std::fmt;

use audb_core::{AuAnnot, EvalError, ExecError, RangeValue, Semiring, Value};
use audb_exec::Executor;

use crate::relation::{Database, Relation};
use crate::schema::Schema;
use crate::tuple::RangeTuple;

/// An `N_AU`-relation (Definition 12): range tuples annotated with
/// `(lb, sg, ub)` multiplicity triples.
///
/// Tracks whether the row list is in normal form (duplicates merged,
/// zeros dropped, canonically sorted) so that [`AuRelation::normalize`]
/// is free on already-normalized relations and
/// [`AuRelation::annotation`] can binary-search.
#[derive(Debug, Clone)]
pub struct AuRelation {
    pub schema: Schema,
    rows: Vec<(RangeTuple, AuAnnot)>,
    normalized: bool,
}

impl PartialEq for AuRelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}
impl Eq for AuRelation {}

impl AuRelation {
    pub fn empty(schema: Schema) -> Self {
        AuRelation { schema, rows: Vec::new(), normalized: true }
    }

    /// Build from rows; merges identical range tuples (summing
    /// annotations in `N_AU`) and drops zero annotations.
    pub fn from_rows(schema: Schema, rows: Vec<(RangeTuple, AuAnnot)>) -> Self {
        let mut r = AuRelation { schema, rows, normalized: false };
        r.normalize();
        r
    }

    /// Build from rows already in normal form — canonically sorted,
    /// duplicate-free, with no zero annotations (debug-asserted). Lets
    /// operators that provably preserve normal form (e.g. selection
    /// over a normalized input) skip the hash-merge + re-sort.
    pub fn from_normalized_rows(schema: Schema, rows: Vec<(RangeTuple, AuAnnot)>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows must be strictly sorted by tuple"
        );
        debug_assert!(rows.iter().all(|(_, k)| !k.is_zero()), "rows must have nonzero annotations");
        AuRelation { schema, rows, normalized: true }
    }

    /// Lift a deterministic relation into a fully certain AU-relation
    /// (the degenerate case: SGQP "as an AU-DB").
    pub fn from_certain(rel: &Relation) -> Self {
        let rows = rel
            .rows()
            .iter()
            .map(|(t, k)| (RangeTuple::certain(t), AuAnnot::triple(*k, *k, *k)))
            .collect();
        AuRelation::from_rows(rel.schema.clone(), rows)
    }

    pub fn rows(&self) -> &[(RangeTuple, AuAnnot)] {
        &self.rows
    }

    pub fn push(&mut self, t: RangeTuple, k: AuAnnot) {
        if !k.is_zero() {
            self.rows.push((t, k));
            self.normalized = false;
        }
    }

    /// Append a batch of produced rows, dropping zero annotations — the
    /// ordered-merge sink of the parallel operator drivers.
    pub fn append_rows(&mut self, rows: Vec<(RangeTuple, AuAnnot)>) {
        for (t, k) in rows {
            self.push(t, k);
        }
    }

    /// Append clones of another relation's rows (bag union without the
    /// intermediate `to_vec` the copy-free pipeline avoids).
    pub fn extend_from(&mut self, other: &AuRelation) {
        if other.is_empty() {
            return;
        }
        self.rows.extend(other.rows.iter().cloned());
        self.normalized = false;
    }

    /// Is the row list known to be in normal form?
    pub fn is_normalized(&self) -> bool {
        self.normalized
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Estimated in-memory footprint of the row list, in bytes: the
    /// inline row size plus each tuple's range-value storage and string
    /// heap. This is the size the observability layer reports as
    /// `bytes_out` per operator and the budget layer charges — an
    /// estimate (allocator overhead and capacity slack are ignored) but
    /// a deterministic one, so traces are comparable across runs.
    pub fn estimated_bytes(&self) -> u64 {
        let inline = std::mem::size_of::<(RangeTuple, AuAnnot)>();
        let per_val = std::mem::size_of::<RangeValue>();
        let mut total = (self.rows.len() * inline) as u64;
        for (t, _) in &self.rows {
            total += (t.0.len() * per_val) as u64;
            for rv in &t.0 {
                for v in [&rv.lb, &rv.sg, &rv.ub] {
                    if let Value::Str(s) = v {
                        total += s.len() as u64;
                    }
                }
            }
        }
        total
    }

    /// Merge identical range tuples with `+_{N_AU}`, drop `(0,0,0)`
    /// annotations, sort canonically. Keeps the AU-relation a function
    /// `D_I^n → N_AU`. Free when the relation is already in normal form.
    ///
    /// Infallible: the sequential executor carries no cancellation
    /// token or budget, and the (saturating) `N_AU` sum is panic-free.
    #[allow(clippy::expect_used)] // documented infallible: ungoverned sequential executor
    pub fn normalize(&mut self) {
        self.normalize_with(&Executor::sequential())
            .expect("ungoverned sequential normalize cannot fault");
    }

    /// [`Self::normalize`] on the sharded-reduce driver: the hash-merge
    /// is partitioned by tuple hash across the executor's workers and
    /// the sorted shards are k-way-merged back into the canonical
    /// order — the result is byte-identical for any worker count.
    /// Fallible through the runtime's governance: the input rows are
    /// charged to the executor's budget, and cancellation/deadlines are
    /// observed at morsel boundaries. On error the row list is left
    /// empty — callers propagate the fault and drop the relation.
    pub fn normalize_with(&mut self, exec: &Executor) -> Result<(), ExecError> {
        if self.normalized {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.rows);
        self.rows = exec.hash_merge_sorted(
            rows,
            |k: &AuAnnot| !k.is_zero(),
            |acc: &mut AuAnnot, k| *acc = acc.plus(&k),
        )?;
        self.normalized = true;
        Ok(())
    }

    pub fn normalized(&self) -> AuRelation {
        let mut r = self.clone();
        r.normalize();
        r
    }

    /// Consuming normal form — avoids the clone of [`Self::normalized`]
    /// in the evaluation pipeline.
    pub fn into_normalized(mut self) -> AuRelation {
        self.normalize();
        self
    }

    /// Consuming [`Self::normalize_with`].
    pub fn into_normalized_with(mut self, exec: &Executor) -> Result<AuRelation, ExecError> {
        self.normalize_with(exec)?;
        Ok(self)
    }

    /// Annotation `R(t)` of a specific range tuple. Binary-searches the
    /// canonically sorted rows of a normalized relation; falls back to a
    /// linear scan otherwise.
    pub fn annotation(&self, t: &RangeTuple) -> AuAnnot {
        if self.normalized {
            // normal form has at most one entry per range tuple
            return match self.rows.binary_search_by(|(t2, _)| t2.cmp(t)) {
                Ok(i) => self.rows[i].1,
                Err(_) => AuAnnot::zero(),
            };
        }
        self.rows.iter().filter(|(t2, _)| t2 == t).fold(AuAnnot::zero(), |acc, (_, k)| acc.plus(k))
    }

    /// Extract the selected-guess world `R^sg` (Definition 13): group
    /// tuples by their SG values and sum the SG annotations.
    pub fn sg_world(&self) -> Relation {
        let rows =
            self.rows.iter().filter(|(_, k)| k.sg > 0).map(|(t, k)| (t.sg(), k.sg)).collect();
        Relation::from_rows(self.schema.clone(), rows)
    }

    /// Total upper-bound multiplicity — the "possible size" accuracy
    /// metric of Figure 14b.
    pub fn possible_size(&self) -> u64 {
        self.rows.iter().map(|(_, k)| k.ub).sum()
    }

    /// Mean width of attribute ranges (tightness metric, Figure 13d).
    pub fn mean_range_width(&self, domain_halfwidth: f64) -> f64 {
        let mut n = 0usize;
        let mut total = 0.0;
        for (t, _) in &self.rows {
            for r in t.values() {
                total += r.width(domain_halfwidth);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

impl fmt::Display for AuRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in &self.rows {
            writeln!(f, "  {t} ↦ {k}")?;
        }
        Ok(())
    }
}

/// An AU-database: a catalog of named AU-relations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuDatabase {
    relations: BTreeMap<String, AuRelation>,
}

impl AuDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lift a deterministic database into a certain AU-database.
    pub fn from_certain(db: &Database) -> Self {
        let mut out = AuDatabase::new();
        for (name, rel) in db.iter() {
            out.insert(name.clone(), AuRelation::from_certain(rel));
        }
        out
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: AuRelation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn get(&self, name: &str) -> Result<&AuRelation, EvalError> {
        self.relations.get(name).ok_or_else(|| EvalError::NotFound(format!("AU relation {name}")))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &AuRelation)> {
        self.relations.iter()
    }

    /// The selected-guess world of the whole database.
    pub fn sg_world(&self) -> Database {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(name.clone(), rel.sg_world());
        }
        db
    }
}

/// Convenience builder for AU rows used across tests and generators.
pub fn au_row(ranges: Vec<RangeValue>, lb: u64, sg: u64, ub: u64) -> (RangeTuple, AuAnnot) {
    (RangeTuple::new(ranges), AuAnnot::triple(lb, sg, ub))
}

/// Convenience: certain int tuple row.
pub fn certain_row(vals: &[i64], lb: u64, sg: u64, ub: u64) -> (RangeTuple, AuAnnot) {
    (
        RangeTuple::new(vals.iter().map(|v| RangeValue::certain(Value::Int(*v))).collect()),
        AuAnnot::triple(lb, sg, ub),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    /// Example 7 / Figure 5: SG-world extraction sums annotations of
    /// tuples with identical SG values.
    #[test]
    fn sg_world_extraction_example_7() {
        let schema = Schema::named(&["A", "B"]);
        let r = AuRelation::from_rows(
            schema,
            vec![
                au_row(
                    vec![RangeValue::certain(Value::Int(1)), RangeValue::certain(Value::Int(1))],
                    2,
                    2,
                    3,
                ),
                au_row(
                    vec![RangeValue::certain(Value::Int(1)), RangeValue::range(1i64, 1i64, 3i64)],
                    2,
                    3,
                    3,
                ),
                au_row(
                    vec![RangeValue::range(1i64, 2i64, 2i64), RangeValue::certain(Value::Int(3))],
                    1,
                    1,
                    1,
                ),
            ],
        );
        let sgw = r.sg_world();
        let t11: Tuple = [1i64, 1].into_iter().collect();
        let t23: Tuple = [2i64, 3].into_iter().collect();
        assert_eq!(sgw.multiplicity(&t11), 5);
        assert_eq!(sgw.multiplicity(&t23), 1);
    }

    #[test]
    fn normalize_merges_identical_range_tuples() {
        let schema = Schema::named(&["A"]);
        let row = vec![RangeValue::range(1i64, 2i64, 3i64)];
        let r = AuRelation::from_rows(
            schema,
            vec![
                au_row(row.clone(), 1, 1, 1),
                au_row(row.clone(), 0, 1, 2),
                au_row(vec![RangeValue::certain(Value::Int(9))], 0, 0, 0),
            ],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.annotation(&RangeTuple::new(row)), AuAnnot::triple(1, 2, 3));
    }

    #[test]
    fn from_certain_round_trip() {
        let rel = Relation::from_rows(
            Schema::named(&["A"]),
            vec![([1i64].into_iter().collect(), 2), ([2i64].into_iter().collect(), 1)],
        );
        let au = AuRelation::from_certain(&rel);
        assert_eq!(au.sg_world(), rel.normalized());
        // all annotations are exact triples (k,k,k)
        for (_, k) in au.rows() {
            assert_eq!(k.lb, k.ub);
        }
    }

    #[test]
    fn possible_size_counts_upper_bounds() {
        let schema = Schema::named(&["A"]);
        let r = AuRelation::from_rows(
            schema,
            vec![certain_row(&[1], 0, 1, 4), certain_row(&[2], 1, 1, 2)],
        );
        assert_eq!(r.possible_size(), 6);
    }
}
