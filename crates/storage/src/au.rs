//! AU-relations and AU-databases (Definition 12): functions from
//! range-annotated tuples to `N_AU` annotations, stored as normalized
//! row lists.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use audb_core::{AuAnnot, EvalError, ExecError, RangeValue, Semiring, Value};
use audb_exec::Executor;

use crate::column::{packed_range_key, ColumnSet};
use crate::relation::{Database, Relation};
use crate::schema::Schema;
use crate::tuple::RangeTuple;

/// An `N_AU`-relation (Definition 12): range tuples annotated with
/// `(lb, sg, ub)` multiplicity triples.
///
/// Tracks whether the row list is in normal form (duplicates merged,
/// zeros dropped, canonically sorted) so that [`AuRelation::normalize`]
/// is free on already-normalized relations and
/// [`AuRelation::annotation`] can binary-search.
#[derive(Debug, Clone)]
pub struct AuRelation {
    pub schema: Schema,
    rows: Vec<(RangeTuple, AuAnnot)>,
    normalized: bool,
    /// Lazily built column-major twin of `rows` (see
    /// [`crate::column`]): per-attribute typed lanes + annotation
    /// column, shared by `Arc` across pipeline chunks and serving
    /// snapshots. Invalidated by every row mutation; `Clone` shares the
    /// already-built columns (the row list is identical).
    columns: OnceLock<Arc<ColumnSet>>,
}

impl PartialEq for AuRelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}
impl Eq for AuRelation {}

impl AuRelation {
    pub fn empty(schema: Schema) -> Self {
        AuRelation { schema, rows: Vec::new(), normalized: true, columns: OnceLock::new() }
    }

    /// Build from rows; merges identical range tuples (summing
    /// annotations in `N_AU`) and drops zero annotations.
    pub fn from_rows(schema: Schema, rows: Vec<(RangeTuple, AuAnnot)>) -> Self {
        let mut r = AuRelation { schema, rows, normalized: false, columns: OnceLock::new() };
        r.normalize();
        r
    }

    /// Build from rows already in normal form — canonically sorted,
    /// duplicate-free, with no zero annotations (debug-asserted). Lets
    /// operators that provably preserve normal form (e.g. selection
    /// over a normalized input) skip the hash-merge + re-sort.
    pub fn from_normalized_rows(schema: Schema, rows: Vec<(RangeTuple, AuAnnot)>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows must be strictly sorted by tuple"
        );
        debug_assert!(rows.iter().all(|(_, k)| !k.is_zero()), "rows must have nonzero annotations");
        AuRelation { schema, rows, normalized: true, columns: OnceLock::new() }
    }

    /// Lift a deterministic relation into a fully certain AU-relation
    /// (the degenerate case: SGQP "as an AU-DB").
    pub fn from_certain(rel: &Relation) -> Self {
        let rows = rel
            .rows()
            .iter()
            .map(|(t, k)| (RangeTuple::certain(t), AuAnnot::triple(*k, *k, *k)))
            .collect();
        AuRelation::from_rows(rel.schema.clone(), rows)
    }

    pub fn rows(&self) -> &[(RangeTuple, AuAnnot)] {
        &self.rows
    }

    pub fn push(&mut self, t: RangeTuple, k: AuAnnot) {
        if !k.is_zero() {
            self.rows.push((t, k));
            self.normalized = false;
            self.columns.take();
        }
    }

    /// Append a batch of produced rows, dropping zero annotations — the
    /// ordered-merge sink of the parallel operator drivers.
    pub fn append_rows(&mut self, rows: Vec<(RangeTuple, AuAnnot)>) {
        for (t, k) in rows {
            self.push(t, k);
        }
    }

    /// Append clones of another relation's rows (bag union without the
    /// intermediate `to_vec` the copy-free pipeline avoids).
    pub fn extend_from(&mut self, other: &AuRelation) {
        if other.is_empty() {
            return;
        }
        self.rows.extend(other.rows.iter().cloned());
        self.normalized = false;
        self.columns.take();
    }

    /// Is the row list known to be in normal form?
    pub fn is_normalized(&self) -> bool {
        self.normalized
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// In-memory footprint of the relation under the columnar layout,
    /// in bytes: the exact size of every attribute lane's component
    /// arrays (typed lanes are `3 × 8` bytes per row for `Int`/`Float`,
    /// `3` for `Bool`; boxed lanes charge the full `RangeValue` plus
    /// string heap) plus the annotation column. This is the size the
    /// observability layer reports as `bytes_out` per operator and the
    /// budget layer charges. Deterministic, and identical whether or
    /// not the column cache has been materialized.
    pub fn estimated_bytes(&self) -> u64 {
        match self.columns.get() {
            Some(cs) => cs.estimated_bytes(),
            None => ColumnSet::byte_size_of_rows(self.schema.arity(), &self.rows),
        }
    }

    /// The column-major twin of this relation's rows, built on first
    /// use and shared from then on (cheap `Arc` clone per caller —
    /// pipeline chunks borrow lanes out of it, serving snapshots
    /// publish it to every reader).
    pub fn columns(&self) -> Arc<ColumnSet> {
        Arc::clone(
            self.columns
                .get_or_init(|| Arc::new(ColumnSet::from_rows(self.schema.arity(), &self.rows))),
        )
    }

    /// Build the column cache now (no-op when already built) — the
    /// serving layer warms snapshots before publishing so readers never
    /// pay the columnarization.
    pub fn warm_columns(&self) {
        let _ = self.columns();
    }

    /// Merge identical range tuples with `+_{N_AU}`, drop `(0,0,0)`
    /// annotations, sort canonically. Keeps the AU-relation a function
    /// `D_I^n → N_AU`. Free when the relation is already in normal form.
    ///
    /// Infallible: the sequential executor carries no cancellation
    /// token or budget, and the (saturating) `N_AU` sum is panic-free.
    #[allow(clippy::expect_used)] // documented infallible: ungoverned sequential executor
    pub fn normalize(&mut self) {
        self.normalize_with(&Executor::sequential())
            .expect("ungoverned sequential normalize cannot fault");
    }

    /// [`Self::normalize`] on the sharded-reduce driver: the hash-merge
    /// is partitioned by tuple hash across the executor's workers and
    /// the sorted shards are k-way-merged back into the canonical
    /// order — the result is byte-identical for any worker count.
    /// Fallible through the runtime's governance: the input rows are
    /// charged to the executor's budget, and cancellation/deadlines are
    /// observed at morsel boundaries. On error the row list is left
    /// empty — callers propagate the fault and drop the relation.
    pub fn normalize_with(&mut self, exec: &Executor) -> Result<(), ExecError> {
        if self.normalized {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.rows);
        self.columns.take();
        // Sorting is keyed on packed column bytes (a memcmp fast path
        // that refines the tuple order; see `crate::column`) — the
        // output is byte-identical to sorting on the tuples alone.
        self.rows = exec.hash_merge_sorted_by_key(
            rows,
            |k: &AuAnnot| !k.is_zero(),
            |acc: &mut AuAnnot, k| *acc = acc.plus(&k),
            packed_range_key,
        )?;
        self.normalized = true;
        Ok(())
    }

    pub fn normalized(&self) -> AuRelation {
        let mut r = self.clone();
        r.normalize();
        r
    }

    /// Consuming normal form — avoids the clone of [`Self::normalized`]
    /// in the evaluation pipeline.
    pub fn into_normalized(mut self) -> AuRelation {
        self.normalize();
        self
    }

    /// Consuming [`Self::normalize_with`].
    pub fn into_normalized_with(mut self, exec: &Executor) -> Result<AuRelation, ExecError> {
        self.normalize_with(exec)?;
        Ok(self)
    }

    /// Annotation `R(t)` of a specific range tuple. Binary-searches the
    /// canonically sorted rows of a normalized relation; falls back to a
    /// linear scan otherwise.
    pub fn annotation(&self, t: &RangeTuple) -> AuAnnot {
        if self.normalized {
            // normal form has at most one entry per range tuple
            return match self.rows.binary_search_by(|(t2, _)| t2.cmp(t)) {
                Ok(i) => self.rows[i].1,
                Err(_) => AuAnnot::zero(),
            };
        }
        self.rows.iter().filter(|(t2, _)| t2 == t).fold(AuAnnot::zero(), |acc, (_, k)| acc.plus(k))
    }

    /// Extract the selected-guess world `R^sg` (Definition 13): group
    /// tuples by their SG values and sum the SG annotations.
    pub fn sg_world(&self) -> Relation {
        let rows =
            self.rows.iter().filter(|(_, k)| k.sg > 0).map(|(t, k)| (t.sg(), k.sg)).collect();
        Relation::from_rows(self.schema.clone(), rows)
    }

    /// Total upper-bound multiplicity — the "possible size" accuracy
    /// metric of Figure 14b.
    pub fn possible_size(&self) -> u64 {
        self.rows.iter().map(|(_, k)| k.ub).sum()
    }

    /// Mean width of attribute ranges (tightness metric, Figure 13d).
    pub fn mean_range_width(&self, domain_halfwidth: f64) -> f64 {
        let mut n = 0usize;
        let mut total = 0.0;
        for (t, _) in &self.rows {
            for r in t.values() {
                total += r.width(domain_halfwidth);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

impl fmt::Display for AuRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in &self.rows {
            writeln!(f, "  {t} ↦ {k}")?;
        }
        Ok(())
    }
}

/// An AU-database: a catalog of named AU-relations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuDatabase {
    relations: BTreeMap<String, AuRelation>,
}

impl AuDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lift a deterministic database into a certain AU-database.
    pub fn from_certain(db: &Database) -> Self {
        let mut out = AuDatabase::new();
        for (name, rel) in db.iter() {
            out.insert(name.clone(), AuRelation::from_certain(rel));
        }
        out
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: AuRelation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn get(&self, name: &str) -> Result<&AuRelation, EvalError> {
        self.relations.get(name).ok_or_else(|| EvalError::NotFound(format!("AU relation {name}")))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &AuRelation)> {
        self.relations.iter()
    }

    /// The selected-guess world of the whole database.
    pub fn sg_world(&self) -> Database {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(name.clone(), rel.sg_world());
        }
        db
    }

    /// Build every relation's column cache ([`AuRelation::columns`]) —
    /// called by the serving engine before publishing a snapshot so the
    /// columnarization cost is paid once at publish time, never by a
    /// reader.
    pub fn warm_columns(&self) {
        for (_, rel) in self.iter() {
            rel.warm_columns();
        }
    }
}

/// Convenience builder for AU rows used across tests and generators.
pub fn au_row(ranges: Vec<RangeValue>, lb: u64, sg: u64, ub: u64) -> (RangeTuple, AuAnnot) {
    (RangeTuple::new(ranges), AuAnnot::triple(lb, sg, ub))
}

/// Convenience: certain int tuple row.
pub fn certain_row(vals: &[i64], lb: u64, sg: u64, ub: u64) -> (RangeTuple, AuAnnot) {
    (
        RangeTuple::new(vals.iter().map(|v| RangeValue::certain(Value::Int(*v))).collect()),
        AuAnnot::triple(lb, sg, ub),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    /// Example 7 / Figure 5: SG-world extraction sums annotations of
    /// tuples with identical SG values.
    #[test]
    fn sg_world_extraction_example_7() {
        let schema = Schema::named(&["A", "B"]);
        let r = AuRelation::from_rows(
            schema,
            vec![
                au_row(
                    vec![RangeValue::certain(Value::Int(1)), RangeValue::certain(Value::Int(1))],
                    2,
                    2,
                    3,
                ),
                au_row(
                    vec![RangeValue::certain(Value::Int(1)), RangeValue::range(1i64, 1i64, 3i64)],
                    2,
                    3,
                    3,
                ),
                au_row(
                    vec![RangeValue::range(1i64, 2i64, 2i64), RangeValue::certain(Value::Int(3))],
                    1,
                    1,
                    1,
                ),
            ],
        );
        let sgw = r.sg_world();
        let t11: Tuple = [1i64, 1].into_iter().collect();
        let t23: Tuple = [2i64, 3].into_iter().collect();
        assert_eq!(sgw.multiplicity(&t11), 5);
        assert_eq!(sgw.multiplicity(&t23), 1);
    }

    #[test]
    fn normalize_merges_identical_range_tuples() {
        let schema = Schema::named(&["A"]);
        let row = vec![RangeValue::range(1i64, 2i64, 3i64)];
        let r = AuRelation::from_rows(
            schema,
            vec![
                au_row(row.clone(), 1, 1, 1),
                au_row(row.clone(), 0, 1, 2),
                au_row(vec![RangeValue::certain(Value::Int(9))], 0, 0, 0),
            ],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.annotation(&RangeTuple::new(row)), AuAnnot::triple(1, 2, 3));
    }

    #[test]
    fn from_certain_round_trip() {
        let rel = Relation::from_rows(
            Schema::named(&["A"]),
            vec![([1i64].into_iter().collect(), 2), ([2i64].into_iter().collect(), 1)],
        );
        let au = AuRelation::from_certain(&rel);
        assert_eq!(au.sg_world(), rel.normalized());
        // all annotations are exact triples (k,k,k)
        for (_, k) in au.rows() {
            assert_eq!(k.lb, k.ub);
        }
    }

    #[test]
    fn possible_size_counts_upper_bounds() {
        let schema = Schema::named(&["A"]);
        let r = AuRelation::from_rows(
            schema,
            vec![certain_row(&[1], 0, 1, 4), certain_row(&[2], 1, 1, 2)],
        );
        assert_eq!(r.possible_size(), 6);
    }

    /// `estimated_bytes` is the exact columnar footprint, hand-counted:
    /// a 3-row relation with one homogeneous `Int` column (typed lane)
    /// and one mixed column holding a string (boxed lane).
    #[test]
    fn estimated_bytes_hand_counted() {
        let schema = Schema::named(&["A", "B"]);
        let r = AuRelation::from_rows(
            schema,
            vec![
                au_row(
                    vec![
                        RangeValue::range(1i64, 2i64, 3i64),
                        RangeValue::certain(Value::str("abcde")),
                    ],
                    1,
                    1,
                    1,
                ),
                au_row(
                    vec![RangeValue::certain(Value::Int(7)), RangeValue::certain(Value::Int(0))],
                    1,
                    1,
                    2,
                ),
                au_row(
                    vec![
                        RangeValue::range(-4i64, 0i64, 4i64),
                        RangeValue::certain(Value::str("xy")),
                    ],
                    0,
                    1,
                    1,
                ),
            ],
        );
        assert_eq!(r.len(), 3);
        let annots: u64 = 3 * 3 * 8; // 3 rows × (lb,sg,ub) × u64
        let lane_a: u64 = 3 * 3 * 8; // Int lane: 3 rows × 3 components × i64
                                     // column B is mixed Int/Str → boxed: full RangeValue per row
                                     // plus the string heap ("abcde" + "xy" = 7 bytes; the certain
                                     // string rows store it in all three components)
        let lane_b = 3 * std::mem::size_of::<RangeValue>() as u64 + 3 * 5 + 3 * 2;
        assert_eq!(r.estimated_bytes(), annots + lane_a + lane_b);
        // identical whether or not the column cache is materialized
        let before = r.estimated_bytes();
        r.warm_columns();
        assert_eq!(r.estimated_bytes(), before);
    }

    /// The column cache is invalidated by mutation and shared by clone.
    #[test]
    fn column_cache_tracks_mutation() {
        let schema = Schema::named(&["A"]);
        let mut r = AuRelation::from_rows(schema, vec![certain_row(&[1], 1, 1, 1)]);
        let cs = r.columns();
        assert_eq!(cs.nrows(), 1);
        // clone shares the built columns
        let c = r.clone();
        assert!(Arc::ptr_eq(&cs, &c.columns()));
        // mutation invalidates
        r.push(certain_row(&[2], 1, 1, 1).0, AuAnnot::triple(1, 1, 1));
        let cs2 = r.columns();
        assert_eq!(cs2.nrows(), 2);
        assert!(!Arc::ptr_eq(&cs, &cs2));
        for i in 0..r.len() {
            assert_eq!(cs2.row(i), r.rows()[i].0);
            assert_eq!(cs2.annots().get(i), r.rows()[i].1);
        }
    }
}
