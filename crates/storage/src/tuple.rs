//! Deterministic tuples and range-annotated tuples.

use std::fmt;

use audb_core::{RangeValue, Value};

/// A deterministic tuple: an element of `D^n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given columns.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        let mut v = Vec::with_capacity(cols.len());
        self.project_into(cols, &mut v);
        Tuple(v)
    }

    /// [`Tuple::project`] into a caller-owned buffer: clears `out` and
    /// fills it without allocating when its capacity already suffices.
    pub fn project_into(&self, cols: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(cols.iter().map(|c| self.0[*c].clone()));
    }

    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// [`Tuple::concat`] into a caller-owned buffer: clears `out` and
    /// fills it without allocating when its capacity already suffices.
    /// Hot loops (nested-loop joins) reuse one buffer across pairs and
    /// only materialize an owned tuple for pairs that survive the
    /// predicate.
    pub fn concat_into(&self, other: &Tuple, out: &mut Vec<Value>) {
        out.clear();
        out.reserve(self.0.len() + other.0.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple(iter.into_iter().map(Into::into).collect())
    }
}

/// A range-annotated tuple: an element of `D_I^n` (Definition 12's tuple
/// part). Each AU-DB tuple *may encode many deterministic tuples*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeTuple(pub Vec<RangeValue>);

impl RangeTuple {
    pub fn new(values: Vec<RangeValue>) -> Self {
        RangeTuple(values)
    }

    /// A certain range tuple from a deterministic tuple.
    pub fn certain(t: &Tuple) -> Self {
        RangeTuple(t.0.iter().cloned().map(RangeValue::certain).collect())
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn values(&self) -> &[RangeValue] {
        &self.0
    }

    /// The selected-guess tuple `t^sg` (Definition 13).
    pub fn sg(&self) -> Tuple {
        Tuple(self.0.iter().map(|r| r.sg.clone()).collect())
    }

    /// Are all attribute values certain?
    pub fn is_certain(&self) -> bool {
        self.0.iter().all(RangeValue::is_certain)
    }

    /// Tuple bounding `t ⊑ t` (Definition 14): every attribute of `t`
    /// falls within the corresponding range.
    pub fn bounds(&self, t: &Tuple) -> bool {
        self.arity() == t.arity() && self.0.iter().zip(&t.0).all(|(r, v)| r.bounds(v))
    }

    /// Attribute-wise range overlap `t ⊓ t'` (Section 9.6) — the two
    /// range tuples may denote the same deterministic tuple in some world.
    pub fn overlaps(&self, other: &RangeTuple) -> bool {
        self.arity() == other.arity() && self.0.iter().zip(&other.0).all(|(a, b)| a.overlaps(b))
    }

    /// `t ≡ t'` (Definition 22): equal and both certain.
    pub fn certainly_equal(&self, other: &RangeTuple) -> bool {
        self.is_certain() && other.is_certain() && self.sg() == other.sg()
    }

    /// Minimum bounding box, keeping `self`'s selected-guess values
    /// (the `Comb` operation of Definition 21).
    pub fn merge_keep_sg(&self, other: &RangeTuple) -> RangeTuple {
        RangeTuple(self.0.iter().zip(&other.0).map(|(a, b)| a.merge_keep_sg(b)).collect())
    }

    pub fn project(&self, cols: &[usize]) -> RangeTuple {
        let mut v = Vec::with_capacity(cols.len());
        self.project_into(cols, &mut v);
        RangeTuple(v)
    }

    /// [`RangeTuple::project`] into a caller-owned buffer: clears `out`
    /// and fills it without allocating when its capacity already
    /// suffices.
    pub fn project_into(&self, cols: &[usize], out: &mut Vec<RangeValue>) {
        out.clear();
        out.extend(cols.iter().map(|c| self.0[*c].clone()));
    }

    pub fn concat(&self, other: &RangeTuple) -> RangeTuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        RangeTuple(v)
    }

    /// [`RangeTuple::concat`] into a caller-owned buffer: clears `out`
    /// and fills it without allocating when its capacity already
    /// suffices. The nested-loop join evaluates its predicate against
    /// the buffer and only clones out an owned tuple for surviving
    /// pairs.
    pub fn concat_into(&self, other: &RangeTuple, out: &mut Vec<RangeValue>) {
        out.clear();
        out.reserve(self.0.len() + other.0.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
    }
}

impl fmt::Display for RangeTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Tuple> for RangeTuple {
    fn from(t: Tuple) -> Self {
        RangeTuple::certain(&t)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    #[test]
    fn bounding_definition_14() {
        let rt = RangeTuple(vec![
            RangeValue::range(1i64, 2i64, 3i64),
            RangeValue::certain(Value::Int(7)),
        ]);
        assert!(rt.bounds(&it(&[2, 7])));
        assert!(rt.bounds(&it(&[1, 7])));
        assert!(!rt.bounds(&it(&[4, 7])));
        assert!(!rt.bounds(&it(&[2, 8])));
    }

    #[test]
    fn overlap_and_certain_equality() {
        let a = RangeTuple(vec![RangeValue::range(1i64, 2i64, 3i64)]);
        let b = RangeTuple(vec![RangeValue::range(2i64, 3i64, 5i64)]);
        let c = RangeTuple(vec![RangeValue::certain(Value::Int(2))]);
        assert!(a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(!b.overlaps(&RangeTuple(vec![RangeValue::certain(Value::Int(7))])));
        assert!(!a.certainly_equal(&b));
        assert!(c.certainly_equal(&RangeTuple(vec![RangeValue::certain(Value::Int(2))])));
    }

    #[test]
    fn sg_extraction() {
        let rt = RangeTuple(vec![
            RangeValue::range(1i64, 2i64, 3i64),
            RangeValue::range(0i64, 0i64, 9i64),
        ]);
        assert_eq!(rt.sg(), it(&[2, 0]));
    }

    #[test]
    fn merge_keeps_left_sg() {
        let a = RangeTuple(vec![RangeValue::range(1i64, 2i64, 2i64)]);
        let b = RangeTuple(vec![RangeValue::range(2i64, 2i64, 4i64)]);
        assert_eq!(a.merge_keep_sg(&b), RangeTuple(vec![RangeValue::range(1i64, 2i64, 4i64)]));
    }
}
