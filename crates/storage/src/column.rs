//! Column-major AU storage: per-attribute [`ValueLane`]s plus a
//! columnar annotation vector, and the packed order-preserving byte
//! keys normalization sorts on.
//!
//! A [`ColumnSet`] is the columnar twin of an [`crate::AuRelation`]'s
//! row list: attribute `c` of every row lives in `lanes[c]` (contiguous
//! `lb`/`sg`/`ub` component arrays when the column is homogeneously
//! typed, boxed `RangeValue`s otherwise — see [`audb_core::lane`]), and
//! the `N_AU` row annotations live in three contiguous `u64` arrays
//! ([`AnnotColumn`]). The row [`RangeTuple`] API stays available as a
//! materialized view ([`ColumnSet::row`]); fallback operators and
//! indexes that want rows never notice the layout underneath.
//!
//! Column sets are immutable once built and shared as `Arc`s: the
//! relation caches one per row list (invalidated on mutation), the
//! serving layer's snapshots publish the same `Arc`s to every reader,
//! and pipeline chunks borrow lane slices straight out of them without
//! copying.
//!
//! # Packed sort keys
//!
//! [`packed_range_key`] flattens a [`RangeTuple`] into a byte string
//! whose lexicographic order *refines* the tuple order: if
//! `key(a) < key(b)` then `a < b`, and key equality only happens on a
//! bounded set of deliberate coarsenings (long strings sharing a
//! prefix, numeric cast collisions) that a full-comparison tie-break
//! resolves. Sharded-reduce normalization sorts on
//! `(packed key, tuple)` — a memcmp fast path in front of the exact
//! comparator — and stays byte-identical to sorting on the tuples
//! alone.
//!
//! Per [`Value`], the key is 18 bytes: a leading
//! [`Value::order_rank`] byte, then a 17-byte body —
//!
//! * `Int`/`Float`: the big-endian order-preserving transform of the
//!   value *as an f64* (so mixed numeric columns interleave exactly
//!   like [`Value::total_cmp`]), a tie byte (`Int` before `Float` on
//!   numeric ties, the total order's rule), then for `Int` the exact
//!   sign-flipped `i64` (cast collisions beyond 2^53 stay ordered);
//! * `Str`: the first 17 bytes, zero-padded (never *inverts* the string
//!   order; equal prefixes fall back to the full comparison);
//! * `Bool`: one `0`/`1` byte; `MinVal`/`Null`/`MaxVal`: rank only.

use audb_core::{AuAnnot, LaneSlice, RangeValue, Value, ValueLane};

use crate::tuple::RangeTuple;

/// The `N_AU` annotations of a row list, column-major: three contiguous
/// `u64` arrays instead of a struct per row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnnotColumn {
    pub lb: Vec<u64>,
    pub sg: Vec<u64>,
    pub ub: Vec<u64>,
}

impl AnnotColumn {
    pub fn len(&self) -> usize {
        self.lb.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lb.is_empty()
    }

    /// Materialize row `i`'s annotation. The stored components came
    /// from valid annotations, so the `lb ≤ sg ≤ ub` invariant holds.
    pub fn get(&self, i: usize) -> AuAnnot {
        AuAnnot { lb: self.lb[i], sg: self.sg[i], ub: self.ub[i] }
    }

    pub fn push(&mut self, a: AuAnnot) {
        self.lb.push(a.lb);
        self.sg.push(a.sg);
        self.ub.push(a.ub);
    }

    /// Exact storage footprint of the three component arrays.
    pub fn bytes(&self) -> u64 {
        (3 * self.lb.len() * std::mem::size_of::<u64>()) as u64
    }
}

/// The column-major layout of an AU row list: one [`ValueLane`] per
/// attribute plus the annotation column. Built from rows, immutable.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSet {
    lanes: Vec<ValueLane>,
    annots: AnnotColumn,
}

impl ColumnSet {
    /// Columnarize a row list of the given arity (the arity parameter
    /// covers the zero-row case, where the rows alone can't name it).
    pub fn from_rows(arity: usize, rows: &[(RangeTuple, AuAnnot)]) -> ColumnSet {
        let lanes =
            (0..arity).map(|c| ValueLane::from_cells(rows.iter().map(|(t, _)| &t.0[c]))).collect();
        let mut annots = AnnotColumn::default();
        annots.lb.reserve(rows.len());
        annots.sg.reserve(rows.len());
        annots.ub.reserve(rows.len());
        for (_, a) in rows {
            annots.push(*a);
        }
        ColumnSet { lanes, annots }
    }

    pub fn nrows(&self) -> usize {
        self.annots.len()
    }

    pub fn arity(&self) -> usize {
        self.lanes.len()
    }

    pub fn lane(&self, c: usize) -> &ValueLane {
        &self.lanes[c]
    }

    pub fn lanes(&self) -> &[ValueLane] {
        &self.lanes
    }

    /// Borrowed lane views for all attributes — the input shape of
    /// [`audb_core::Program::eval_range_lanes`].
    pub fn lane_slices(&self) -> Vec<LaneSlice<'_>> {
        self.lanes.iter().map(ValueLane::as_slice).collect()
    }

    pub fn annots(&self) -> &AnnotColumn {
        &self.annots
    }

    /// Materialize row `i` as a range tuple (the borrowed row view's
    /// owned form — fallback operators and tests want whole rows).
    pub fn row(&self, i: usize) -> RangeTuple {
        RangeTuple(self.lanes.iter().map(|l| l.get(i)).collect())
    }

    /// Exact storage footprint: every lane's component arrays (and
    /// boxed cells' string heap) plus the annotation column.
    pub fn estimated_bytes(&self) -> u64 {
        self.lanes.iter().map(ValueLane::lane_bytes).sum::<u64>() + self.annots.bytes()
    }

    /// [`ColumnSet::estimated_bytes`] computed straight from rows —
    /// same classification, same numbers, no lane allocation. This is
    /// what [`crate::AuRelation::estimated_bytes`] charges when the
    /// columnar cache hasn't been built.
    pub fn byte_size_of_rows(arity: usize, rows: &[(RangeTuple, AuAnnot)]) -> u64 {
        let n = rows.len();
        let mut total = (3 * n * std::mem::size_of::<u64>()) as u64; // annots
        for c in 0..arity {
            let (mut all_int, mut all_float, mut all_bool) = (true, true, true);
            let mut boxed = 0u64;
            for (t, _) in rows {
                let cell = &t.0[c];
                all_int &= matches!(
                    (&cell.lb, &cell.sg, &cell.ub),
                    (Value::Int(_), Value::Int(_), Value::Int(_))
                );
                all_float &= matches!(
                    (&cell.lb, &cell.sg, &cell.ub),
                    (Value::Float(_), Value::Float(_), Value::Float(_))
                );
                all_bool &= matches!(
                    (&cell.lb, &cell.sg, &cell.ub),
                    (Value::Bool(_), Value::Bool(_), Value::Bool(_))
                );
                for v in [&cell.lb, &cell.sg, &cell.ub] {
                    if let Value::Str(s) = v {
                        boxed += s.len() as u64;
                    }
                }
            }
            total += if all_int || all_float {
                (3 * n * 8) as u64
            } else if all_bool {
                (3 * n) as u64
            } else {
                (n * std::mem::size_of::<RangeValue>()) as u64 + boxed
            };
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Packed order-preserving sort keys
// ---------------------------------------------------------------------------

/// Bytes per [`Value`] in a packed key.
pub const VALUE_KEY_BYTES: usize = 18;

/// Order-preserving transform of an `i64` into big-endian bytes
/// (flip the sign bit: unsigned byte order then matches signed order).
#[inline]
fn i64_key(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Order-preserving transform of a (non-NaN) `f64`: negative floats
/// flip entirely, non-negative flip the sign bit — unsigned byte order
/// then matches `total_cmp`.
#[inline]
fn f64_key(v: f64) -> [u8; 8] {
    let b = v.to_bits() as i64;
    let u = if b < 0 { !(b as u64) } else { (b as u64) ^ (1u64 << 63) };
    u.to_be_bytes()
}

/// Append the 18-byte packed key of one [`Value`].
pub fn packed_value_key(v: &Value, out: &mut Vec<u8>) {
    out.push(v.order_rank());
    match v {
        Value::MinVal | Value::Null | Value::MaxVal => {
            out.extend_from_slice(&[0u8; VALUE_KEY_BYTES - 1]);
        }
        Value::Bool(b) => {
            out.push(u8::from(*b));
            out.extend_from_slice(&[0u8; VALUE_KEY_BYTES - 2]);
        }
        Value::Int(i) => {
            out.extend_from_slice(&f64_key(*i as f64));
            out.push(0); // numeric tie: Int sorts before Float
            out.extend_from_slice(&i64_key(*i));
        }
        Value::Float(f) => {
            out.extend_from_slice(&f64_key(f.get()));
            out.push(1);
            out.extend_from_slice(&[0u8; 8]);
        }
        Value::Str(s) => {
            let prefix = s.as_bytes();
            let take = prefix.len().min(VALUE_KEY_BYTES - 1);
            out.extend_from_slice(&prefix[..take]);
            out.resize(out.len() + (VALUE_KEY_BYTES - 1 - take), 0);
        }
    }
}

/// The packed sort key of a whole range tuple: the fixed-width value
/// keys of every attribute's `(lb, sg, ub)` in tuple order, so the
/// byte-lexicographic order refines the tuple's derived `Ord`.
pub fn packed_range_key(t: &RangeTuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(t.0.len() * 3 * VALUE_KEY_BYTES);
    for rv in &t.0 {
        packed_value_key(&rv.lb, &mut out);
        packed_value_key(&rv.sg, &mut out);
        packed_value_key(&rv.ub, &mut out);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::LaneTag;

    fn rt(vals: Vec<RangeValue>) -> RangeTuple {
        RangeTuple(vals)
    }

    fn iv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::range(lb, sg, ub)
    }

    #[test]
    fn column_set_roundtrips_rows() {
        let rows = vec![
            (rt(vec![iv(1, 2, 3), RangeValue::certain(Value::str("a"))]), AuAnnot::triple(1, 1, 2)),
            (rt(vec![iv(-1, 0, 1), RangeValue::certain(Value::Int(7))]), AuAnnot::triple(0, 1, 1)),
        ];
        let cs = ColumnSet::from_rows(2, &rows);
        assert_eq!(cs.nrows(), 2);
        assert_eq!(cs.arity(), 2);
        assert_eq!(cs.lane(0).tag(), LaneTag::Int);
        assert_eq!(cs.lane(1).tag(), LaneTag::Boxed);
        for (i, (t, a)) in rows.iter().enumerate() {
            assert_eq!(cs.row(i), *t);
            assert_eq!(cs.annots().get(i), *a);
        }
    }

    #[test]
    fn empty_relation_keeps_arity() {
        let cs = ColumnSet::from_rows(3, &[]);
        assert_eq!(cs.arity(), 3);
        assert_eq!(cs.nrows(), 0);
        assert_eq!(cs.estimated_bytes(), 0);
    }

    #[test]
    fn byte_size_matches_built_lanes() {
        let rows = vec![
            (
                rt(vec![
                    iv(1, 2, 3),
                    RangeValue::certain(Value::float(1.5)),
                    RangeValue::certain(Value::str("hello")),
                    RangeValue::certain(Value::Bool(true)),
                ]),
                AuAnnot::triple(1, 1, 1),
            ),
            (
                rt(vec![
                    iv(4, 5, 6),
                    RangeValue::certain(Value::float(-2.0)),
                    RangeValue::certain(Value::Int(9)),
                    RangeValue::range(false, true, true),
                ]),
                AuAnnot::triple(2, 2, 3),
            ),
        ];
        let cs = ColumnSet::from_rows(4, &rows);
        assert_eq!(cs.estimated_bytes(), ColumnSet::byte_size_of_rows(4, &rows));
    }

    /// Packed keys order exactly like the values: strictly smaller key
    /// ⇒ strictly smaller value, and key equality only on coarsenings
    /// the tie-break comparison resolves.
    #[test]
    fn packed_key_order_refines_value_order() {
        use std::cmp::Ordering;
        let vals = vec![
            Value::MinVal,
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::float(-0.5),
            Value::Int(0),
            Value::float(0.0),
            Value::Int(2),
            Value::float(2.0),
            Value::float(2.5),
            Value::Int(1 << 60),
            Value::Int((1 << 60) + 1),
            Value::float(f64::INFINITY),
            Value::float(f64::NEG_INFINITY),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("a"),
            Value::str("a\0b"),
            Value::str("ab"),
            Value::str("b"),
            Value::str("a very long string that exceeds the prefix width"),
            Value::str("a very long string that exceeds the prefix width!"),
            Value::MaxVal,
        ];
        let keys: Vec<Vec<u8>> = vals
            .iter()
            .map(|v| {
                let mut k = Vec::new();
                packed_value_key(v, &mut k);
                assert_eq!(k.len(), VALUE_KEY_BYTES);
                k
            })
            .collect();
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let vord = a.total_cmp(b);
                let kord = keys[i].cmp(&keys[j]);
                match kord {
                    Ordering::Less => assert_eq!(vord, Ordering::Less, "{a} vs {b}"),
                    Ordering::Greater => assert_eq!(vord, Ordering::Greater, "{a} vs {b}"),
                    Ordering::Equal => {} // coarsening; tie-break handles
                }
            }
        }
    }

    /// Sorting tuples by `(packed key, tuple)` is the tuple order.
    #[test]
    fn packed_tuple_sort_matches_tuple_sort() {
        let mut tuples = vec![
            rt(vec![iv(3, 3, 3), RangeValue::certain(Value::str("zz"))]),
            rt(vec![iv(1, 2, 3), RangeValue::certain(Value::str("a"))]),
            rt(vec![iv(1, 2, 3), RangeValue::certain(Value::str("ab"))]),
            rt(vec![iv(-5, 0, 5), RangeValue::certain(Value::float(0.5))]),
            rt(vec![
                RangeValue::new(Value::Int(1), Value::float(1.5), Value::Int(2)).unwrap(),
                RangeValue::certain(Value::Null),
            ]),
            rt(vec![iv(1, 1, 1), RangeValue::unknown(Value::Int(0))]),
        ];
        let mut by_key: Vec<(Vec<u8>, RangeTuple)> =
            tuples.iter().map(|t| (packed_range_key(t), t.clone())).collect();
        by_key.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        tuples.sort();
        assert_eq!(by_key.into_iter().map(|(_, t)| t).collect::<Vec<_>>(), tuples);
    }
}
