//! Relation schemas: named, positional attribute lists.

use std::fmt;

use audb_core::EvalError;

/// A relation schema `Sch(R) = ⟨A_1, ..., A_n⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    pub fn new(columns: Vec<String>) -> Self {
        Schema { columns }
    }

    pub fn named(columns: &[&str]) -> Self {
        Schema { columns: columns.iter().map(|c| c.to_string()).collect() }
    }

    /// Anonymous schema `c0, c1, ...` of the given arity.
    pub fn anon(arity: usize) -> Self {
        Schema { columns: (0..arity).map(|i| format!("c{i}")).collect() }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn column_name(&self, i: usize) -> &str {
        &self.columns[i]
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, EvalError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| EvalError::NotFound(format!("column {name}")))
    }

    /// Schema of a product: right-hand duplicates get a `_r` suffix.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            if columns.contains(c) {
                columns.push(format!("{c}_r"));
            } else {
                columns.push(c.clone());
            }
        }
        Schema { columns }
    }

    /// Sub-schema selecting the given columns.
    pub fn select(&self, cols: &[usize]) -> Schema {
        Schema { columns: cols.iter().map(|c| self.columns[*c].clone()).collect() }
    }

    /// Check union-compatibility (same arity; names may differ — the
    /// left schema wins, as in SQL).
    pub fn check_union_compatible(&self, other: &Schema) -> Result<(), EvalError> {
        if self.arity() != other.arity() {
            return Err(EvalError::SchemaMismatch(format!(
                "arity {} vs {}",
                self.arity(),
                other.arity()
            )));
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Schema::named(&["a", "b"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("z").is_err());
    }

    #[test]
    fn concat_renames_duplicates() {
        let s = Schema::named(&["a", "b"]);
        let t = Schema::named(&["b", "c"]);
        let u = s.concat(&t);
        assert_eq!(u.columns(), &["a", "b", "b_r", "c"]);
    }

    #[test]
    fn union_compat() {
        let s = Schema::named(&["a", "b"]);
        assert!(s.check_union_compatible(&Schema::named(&["x", "y"])).is_ok());
        assert!(s.check_union_compatible(&Schema::named(&["x"])).is_err());
    }
}
