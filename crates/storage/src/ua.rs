//! UA-relations (Section 3.3, Feng et al. 2019): the predecessor model
//! AU-DBs extend. Tuples are deterministic (taken from the SGW); each is
//! annotated with `[certain, sg] ∈ N²` — an under-approximation of its
//! certain multiplicity plus its SGW multiplicity.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use audb_core::{EvalError, Semiring, UaAnnot};

use crate::relation::{Database, Relation};
use crate::schema::Schema;
use crate::tuple::Tuple;

/// An `N_UA`-relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UaRelation {
    pub schema: Schema,
    rows: Vec<(Tuple, UaAnnot)>,
}

impl UaRelation {
    pub fn empty(schema: Schema) -> Self {
        UaRelation { schema, rows: Vec::new() }
    }

    pub fn from_rows(schema: Schema, rows: Vec<(Tuple, UaAnnot)>) -> Self {
        let mut r = UaRelation { schema, rows };
        r.normalize();
        r
    }

    /// From a deterministic SGW relation where every tuple is certain.
    pub fn from_certain(rel: &Relation) -> Self {
        UaRelation::from_rows(
            rel.schema.clone(),
            rel.rows().iter().map(|(t, k)| (t.clone(), UaAnnot::new(*k, *k))).collect(),
        )
    }

    pub fn rows(&self) -> &[(Tuple, UaAnnot)] {
        &self.rows
    }

    pub fn push(&mut self, t: Tuple, k: UaAnnot) {
        if !k.is_zero() {
            self.rows.push((t, k));
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn normalize(&mut self) {
        let mut map: HashMap<Tuple, UaAnnot> = HashMap::with_capacity(self.rows.len());
        for (t, k) in self.rows.drain(..) {
            if !k.is_zero() {
                let e = map.entry(t).or_insert_with(UaAnnot::zero);
                *e = e.plus(&k);
            }
        }
        let mut rows: Vec<(Tuple, UaAnnot)> = map.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        self.rows = rows;
    }

    pub fn annotation(&self, t: &Tuple) -> UaAnnot {
        self.rows.iter().filter(|(t2, _)| t2 == t).fold(UaAnnot::zero(), |acc, (_, k)| acc.plus(k))
    }

    /// The SGW encoded by the UA-relation.
    pub fn sg_world(&self) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.rows.iter().filter(|(_, k)| k.sg > 0).map(|(t, k)| (t.clone(), k.sg)).collect(),
        )
    }
}

impl fmt::Display for UaRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in &self.rows {
            writeln!(f, "  {t} ↦ {k}")?;
        }
        Ok(())
    }
}

/// A UA-database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UaDatabase {
    relations: BTreeMap<String, UaRelation>,
}

impl UaDatabase {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: UaRelation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn get(&self, name: &str) -> Result<&UaRelation, EvalError> {
        self.relations.get(name).ok_or_else(|| EvalError::NotFound(format!("UA relation {name}")))
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &UaRelation)> {
        self.relations.iter()
    }

    pub fn sg_world(&self) -> Database {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(name.clone(), rel.sg_world());
        }
        db
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    /// Example 3: the N_UA database bounding {D1, D2}.
    #[test]
    fn example_3_bag_ua_db() {
        let schema = Schema::named(&["state"]);
        let il: Tuple = ["IL"].into_iter().collect();
        let az: Tuple = ["AZ"].into_iter().collect();
        let ind: Tuple = ["IN"].into_iter().collect();
        let r = UaRelation::from_rows(
            schema,
            vec![
                (il.clone(), UaAnnot::new(2, 3)),
                (az.clone(), UaAnnot::new(1, 1)),
                (ind.clone(), UaAnnot::new(0, 5)),
            ],
        );
        assert_eq!(r.annotation(&il), UaAnnot::new(2, 3));
        let sgw = r.sg_world();
        assert_eq!(sgw.multiplicity(&il), 3);
        assert_eq!(sgw.multiplicity(&ind), 5);
    }

    #[test]
    fn normalize_and_round_trip() {
        let rel = Relation::from_rows(Schema::named(&["a"]), vec![(it(&[1]), 2), (it(&[5]), 1)]);
        let ua = UaRelation::from_certain(&rel);
        assert_eq!(ua.sg_world(), rel.normalized());
    }
}
