//! # audb-storage
//!
//! Data structures for the three database flavours the paper deals with:
//!
//! * deterministic bag ([`Relation`]/[`Database`]) — the conventional-DBMS
//!   substrate and the representation of possible worlds;
//! * UA-relations ([`UaRelation`]) — tuple-level certain/SG annotations
//!   (the predecessor model, Section 3.3);
//! * AU-relations ([`AuRelation`]) — range tuples with `N_AU` annotations
//!   (the paper's contribution, Section 6).
//!
//! This crate denies stray `unwrap`/`expect` in non-test code
//! (`clippy::unwrap_used`/`expect_used`), matching the execution
//! runtime: storage errors surface as values, not panics.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod au;
pub mod column;
pub mod index;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod ua;

pub use au::{au_row, certain_row, AuDatabase, AuRelation};
pub use column::{packed_range_key, packed_value_key, AnnotColumn, ColumnSet};
pub use index::{HashKeyIndex, IntervalIndex, SgGroupIndex};
pub use relation::{Database, Relation};
pub use schema::Schema;
pub use tuple::{RangeTuple, Tuple};
pub use ua::{UaDatabase, UaRelation};
