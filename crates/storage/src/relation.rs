//! Deterministic bag relations (`N`-relations) and databases — the
//! conventional-DBMS substrate the paper's middleware runs on.

use std::collections::BTreeMap;
use std::fmt;

use audb_core::{EvalError, ExecError};
use audb_exec::Executor;

use crate::schema::Schema;
use crate::tuple::Tuple;

/// An `N`-relation: a bag of tuples, each with a multiplicity > 0.
///
/// Tracks whether the row list is in normal form so repeated
/// normalization is free and lookups can binary-search.
#[derive(Debug, Clone)]
pub struct Relation {
    pub schema: Schema,
    rows: Vec<(Tuple, u64)>,
    normalized: bool,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}
impl Eq for Relation {}

impl Relation {
    pub fn empty(schema: Schema) -> Self {
        Relation { schema, rows: Vec::new(), normalized: true }
    }

    /// Build from rows; merges duplicates and drops zero multiplicities.
    pub fn from_rows(schema: Schema, rows: Vec<(Tuple, u64)>) -> Self {
        let mut r = Relation { schema, rows, normalized: false };
        r.normalize();
        r
    }

    /// Build from plain tuples, each with multiplicity 1.
    pub fn from_tuples(schema: Schema, tuples: Vec<Tuple>) -> Self {
        Self::from_rows(schema, tuples.into_iter().map(|t| (t, 1)).collect())
    }

    /// Build from rows already in normal form — canonically sorted,
    /// duplicate-free, with no zero multiplicities (debug-asserted).
    /// Lets operators that provably preserve normal form (e.g.
    /// selection over a normalized input) skip the hash-merge + re-sort.
    pub fn from_normalized_rows(schema: Schema, rows: Vec<(Tuple, u64)>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows must be strictly sorted by tuple"
        );
        debug_assert!(rows.iter().all(|(_, k)| *k > 0), "rows must have nonzero multiplicities");
        Relation { schema, rows, normalized: true }
    }

    pub fn rows(&self) -> &[(Tuple, u64)] {
        &self.rows
    }

    pub fn push(&mut self, t: Tuple, k: u64) {
        if k > 0 {
            self.rows.push((t, k));
            self.normalized = false;
        }
    }

    /// Append a batch of produced rows, dropping zero multiplicities —
    /// the ordered-merge sink of the parallel operator drivers.
    pub fn append_rows(&mut self, rows: Vec<(Tuple, u64)>) {
        for (t, k) in rows {
            self.push(t, k);
        }
    }

    /// Append clones of another relation's rows (bag union without an
    /// intermediate row-vector copy).
    pub fn extend_from(&mut self, other: &Relation) {
        if other.is_empty() {
            return;
        }
        self.rows.extend(other.rows.iter().cloned());
        self.normalized = false;
    }

    /// Is the row list known to be in normal form?
    pub fn is_normalized(&self) -> bool {
        self.normalized
    }

    /// Merge duplicate tuples (sum multiplicities), drop zeros, and sort
    /// for canonical comparisons. Free when already normalized.
    ///
    /// Infallible: the sequential executor carries no cancellation
    /// token or budget, and the multiplicity fold is panic-free.
    #[allow(clippy::expect_used)] // documented infallible: ungoverned sequential executor
    pub fn normalize(&mut self) {
        self.normalize_with(&Executor::sequential())
            .expect("ungoverned sequential normalize cannot fault");
    }

    /// [`Self::normalize`] on the sharded-reduce driver — the hash-merge
    /// partitioned by tuple hash, byte-identical for any worker count.
    /// Fallible through the runtime's governance: the input rows are
    /// charged to the executor's budget, and cancellation/deadlines are
    /// observed at morsel boundaries. On error the row list is left
    /// empty — callers propagate the fault and drop the relation.
    pub fn normalize_with(&mut self, exec: &Executor) -> Result<(), ExecError> {
        if self.normalized {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.rows);
        self.rows = exec.hash_merge_sorted(rows, |k: &u64| *k > 0, |acc: &mut u64, k| *acc += k)?;
        self.normalized = true;
        Ok(())
    }

    /// Multiplicity `R(t)`; binary search when normalized.
    pub fn multiplicity(&self, t: &Tuple) -> u64 {
        if self.normalized {
            return match self.rows.binary_search_by(|(t2, _)| t2.cmp(t)) {
                Ok(i) => self.rows[i].1,
                Err(_) => 0,
            };
        }
        self.rows.iter().filter(|(t2, _)| t2 == t).map(|(_, k)| *k).sum()
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total multiplicity (bag cardinality).
    pub fn total_count(&self) -> u64 {
        self.rows.iter().map(|(_, k)| *k).sum()
    }

    /// Canonical (normalized) clone for equality comparisons.
    pub fn normalized(&self) -> Relation {
        let mut r = self.clone();
        r.normalize();
        r
    }

    /// Consuming normal form — no clone when already normalized.
    pub fn into_normalized(mut self) -> Relation {
        self.normalize();
        self
    }

    /// Consuming [`Self::normalize_with`].
    pub fn into_normalized_with(mut self, exec: &Executor) -> Result<Relation, ExecError> {
        self.normalize_with(exec)?;
        Ok(self)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in &self.rows {
            writeln!(f, "  {t} ↦ {k}")?;
        }
        Ok(())
    }
}

/// A deterministic database: a catalog of named relations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn get(&self, name: &str) -> Result<&Relation, EvalError> {
        self.relations.get(name).ok_or_else(|| EvalError::NotFound(format!("relation {name}")))
    }

    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    pub fn normalized(&self) -> Database {
        Database {
            relations: self.relations.iter().map(|(n, r)| (n.clone(), r.normalized())).collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    #[test]
    fn normalize_merges_and_drops_zero() {
        let r = Relation::from_rows(
            Schema::named(&["a"]),
            vec![(it(&[1]), 2), (it(&[1]), 3), (it(&[2]), 0), (it(&[3]), 1)],
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.multiplicity(&it(&[1])), 5);
        assert_eq!(r.multiplicity(&it(&[2])), 0);
        assert_eq!(r.total_count(), 6);
    }

    #[test]
    fn database_catalog() {
        let mut db = Database::new();
        db.insert("r", Relation::from_tuples(Schema::named(&["a"]), vec![it(&[1])]));
        assert!(db.get("r").is_ok());
        assert!(db.get("s").is_err());
    }
}
