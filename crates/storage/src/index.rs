//! Secondary index structures over relation rows, consulted by the join
//! planner and the aggregation/difference operators in `audb_query`.
//!
//! Three structures cover the paper's operator classes:
//!
//! * [`IntervalIndex`] — per-attribute `[lb, ub]` endpoint lists, sorted
//!   by both endpoints. Plane sweeps over two indexes enumerate exactly
//!   the row pairs whose ranges may satisfy an equality
//!   ([`IntervalIndex::sweep_overlapping`]) or order comparison
//!   ([`IntervalIndex::sweep_lb_below_ub`]) predicate, replacing the
//!   quadratic nested-loop candidate generation with
//!   `O(n log n + candidates)`.
//! * [`HashKeyIndex`] — canonical-value hash buckets for equi-joins on
//!   certain attributes (selected-guess values for AU rows,
//!   deterministic values for bag rows).
//! * [`SgGroupIndex`] — the grouping index behind aggregation's default
//!   grouping strategy: exact SG-key buckets assigning every row to its
//!   selected-guess group, per-group bounding boxes, and the
//!   certain/uncertain membership split whose interval sweep replaces
//!   the old all-groups × all-uncertain-tuples membership scan.
//!
//! All comparisons use the domain's total order ([`Value::total_cmp`]);
//! candidate sets are deliberately *supersets* of the
//! possibly-satisfying pairs where `value_eq` (Int/Float numeric
//! equality) is broader than the total order, because the planner
//! re-evaluates the predicate precisely on every candidate.

use std::cmp::Ordering;
use std::collections::HashMap;

use audb_core::{AuAnnot, RangeValue, Value};

use crate::tuple::{RangeTuple, Tuple};

/// Sorted-endpoint index over the `[lb, ub]` bounds of one attribute of
/// a set of rows.
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// `(lb, ub, row_id)` sorted by `lb` (ties by row id).
    by_lb: Vec<(Value, Value, u32)>,
    /// Positions into `by_lb`, sorted by `ub`.
    ub_order: Vec<u32>,
}

impl IntervalIndex {
    /// Build from `(row_id, range)` pairs.
    pub fn from_entries<'a>(entries: impl Iterator<Item = (u32, &'a RangeValue)>) -> Self {
        let mut by_lb: Vec<(Value, Value, u32)> =
            entries.map(|(id, r)| (r.lb.clone(), r.ub.clone(), id)).collect();
        by_lb.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut ub_order: Vec<u32> = (0..by_lb.len() as u32).collect();
        ub_order
            .sort_by(|&a, &b| by_lb[a as usize].1.total_cmp(&by_lb[b as usize].1).then(a.cmp(&b)));
        IntervalIndex { by_lb, ub_order }
    }

    /// Index attribute `col` of all AU rows.
    pub fn from_au(rows: &[(RangeTuple, AuAnnot)], col: usize) -> Self {
        Self::from_entries(rows.iter().enumerate().map(|(i, (t, _))| (i as u32, &t.0[col])))
    }

    /// Index one attribute directly from its column lane (the columnar
    /// path — see [`crate::ColumnSet::lane_slices`]): produces `by_lb`
    /// and `ub_order` identical to [`IntervalIndex::from_entries`] over
    /// the materialized rows, without touching row tuples.
    pub fn from_lane(lane: audb_core::LaneSlice<'_>) -> Self {
        let mut by_lb: Vec<(Value, Value, u32)> = (0..lane.len())
            .map(|i| {
                let rv = lane.get(i);
                (rv.lb, rv.ub, i as u32)
            })
            .collect();
        by_lb.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut ub_order: Vec<u32> = (0..by_lb.len() as u32).collect();
        ub_order
            .sort_by(|&a, &b| by_lb[a as usize].1.total_cmp(&by_lb[b as usize].1).then(a.cmp(&b)));
        IntervalIndex { by_lb, ub_order }
    }

    /// Index attribute `col` of the AU rows with the given ids.
    pub fn from_au_subset(rows: &[(RangeTuple, AuAnnot)], col: usize, ids: &[u32]) -> Self {
        Self::from_entries(ids.iter().map(|&i| (i, &rows[i as usize].0 .0[col])))
    }

    /// Index attribute `col` of deterministic rows (degenerate
    /// single-point intervals).
    pub fn from_det(rows: &[(Tuple, u64)], col: usize) -> Self {
        let mut by_lb: Vec<(Value, Value, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t.0[col].clone(), t.0[col].clone(), i as u32))
            .collect();
        by_lb.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let ub_order: Vec<u32> = (0..by_lb.len() as u32).collect();
        IntervalIndex { by_lb, ub_order }
    }

    pub fn len(&self) -> usize {
        self.by_lb.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_lb.is_empty()
    }

    /// `a` is at-or-after `b`: not strictly before in the total order, or
    /// `value_eq`-equal (Int/Float numeric ties).
    fn at_least(a: &Value, b: &Value) -> bool {
        a.total_cmp(b) != Ordering::Less || a.value_eq(b)
    }

    /// Plane sweep enumerating every pair of overlapping intervals
    /// between two indexes, in `O(n log n + pairs)`; `value_eq`-aware,
    /// matching the possibly-equal semantics of `Expr::Eq`. Calls
    /// `on_pair(left_row, right_row)` exactly once per overlapping pair.
    pub fn sweep_overlapping(left: &Self, right: &Self, mut on_pair: impl FnMut(u32, u32)) {
        let (nl, nr) = (left.by_lb.len(), right.by_lb.len());
        let (mut i, mut j) = (0usize, 0usize);
        // Active lists hold positions whose interval may still overlap
        // upcoming events; pruned lazily at each event.
        let mut active_l: Vec<usize> = Vec::new();
        let mut active_r: Vec<usize> = Vec::new();
        while i < nl || j < nr {
            let take_left = j >= nr
                || (i < nl && left.by_lb[i].0.total_cmp(&right.by_lb[j].0) != Ordering::Greater);
            if take_left {
                let (lb, _, row) = &left.by_lb[i];
                active_r.retain(|&rj| Self::at_least(&right.by_lb[rj].1, lb));
                for &rj in &active_r {
                    on_pair(*row, right.by_lb[rj].2);
                }
                active_l.push(i);
                i += 1;
            } else {
                let (lb, _, row) = &right.by_lb[j];
                active_l.retain(|&li| Self::at_least(&left.by_lb[li].1, lb));
                for &li in &active_l {
                    on_pair(left.by_lb[li].2, *row);
                }
                active_r.push(j);
                j += 1;
            }
        }
    }

    /// Sweep enumerating every pair where `left.lb` may be `≤ right.ub`
    /// — the possibly-true candidates of `left_col ≤ right_col` (and,
    /// as a superset, `<`) predicates. `value_eq`-equal endpoints are
    /// included even when the total order breaks the tie the other way.
    pub fn sweep_lb_below_ub(left: &Self, right: &Self, mut on_pair: impl FnMut(u32, u32)) {
        let mut p = 0usize;
        for &rj in &right.ub_order {
            let (_, bound, rrow) = &right.by_lb[rj as usize];
            while p < left.by_lb.len() {
                let lb = &left.by_lb[p].0;
                if lb.total_cmp(bound) != Ordering::Greater || lb.value_eq(bound) {
                    p += 1;
                } else {
                    break;
                }
            }
            for e in &left.by_lb[..p] {
                on_pair(e.2, *rrow);
            }
        }
    }
}

/// Hash buckets over canonical join-key values of certain attributes.
#[derive(Debug, Clone, Default)]
pub struct HashKeyIndex {
    map: HashMap<Vec<Value>, Vec<u32>>,
}

impl HashKeyIndex {
    /// Index the selected-guess key of the AU rows with the given ids
    /// (callers pass only rows whose key attributes are certain).
    pub fn from_au_sg(
        rows: &[(RangeTuple, AuAnnot)],
        cols: &[usize],
        ids: impl IntoIterator<Item = u32>,
    ) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for i in ids {
            let t = &rows[i as usize].0;
            let key: Vec<Value> = cols.iter().map(|c| t.0[*c].sg.join_key()).collect();
            map.entry(key).or_default().push(i);
        }
        HashKeyIndex { map }
    }

    /// Index deterministic rows by the canonical key of `cols`.
    pub fn from_det(rows: &[(Tuple, u64)], cols: &[usize]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (i, (t, _)) in rows.iter().enumerate() {
            let key: Vec<Value> = cols.iter().map(|c| t.0[*c].join_key()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        HashKeyIndex { map }
    }

    /// Matching row ids for a canonical key.
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Grouping index for AU-aggregation (Definition 24's default grouping
/// strategy): one group per distinct selected-guess value of the
/// group-by projection, in first-appearance order.
///
/// Unlike [`HashKeyIndex`] the SG keys are *exact* tuples (no
/// `join_key` canonicalization): grouping identity follows SG-world
/// semantics, where `Int 2` and `Float 2.0` are distinct group values.
///
/// Per group the index records the α-assigned row ids, the bounding box
/// over their group-by attributes (Definition 25), and the subset of
/// rows whose group-by attributes are certain (which can only ever
/// belong to their own group). Rows with uncertain group-by attributes
/// — the *possible members* of every overlapping group — are listed
/// separately, and [`SgGroupIndex::bbox_interval_index`] exposes the
/// group boxes as an [`IntervalIndex`] so membership candidates come
/// from a plane sweep instead of a groups × tuples scan.
#[derive(Debug, Clone)]
pub struct SgGroupIndex {
    /// Distinct SG group keys in first-appearance order.
    keys: Vec<Tuple>,
    /// Per group: bounding box over assigned rows' group-by attributes.
    bboxes: Vec<RangeTuple>,
    /// Per group: α-assigned row ids, in row order.
    alpha: Vec<Vec<u32>>,
    /// Per group: the certain-group-by subset of `alpha`, in row order.
    certain: Vec<Vec<u32>>,
    /// Row ids whose group-by projection is uncertain, in row order.
    uncertain: Vec<u32>,
}

impl SgGroupIndex {
    /// Build from AU rows and the group-by column set.
    pub fn from_au(rows: &[(RangeTuple, AuAnnot)], group_by: &[usize]) -> Self {
        let mut by_key: HashMap<Tuple, u32> = HashMap::new();
        let mut idx = SgGroupIndex {
            keys: Vec::new(),
            bboxes: Vec::new(),
            alpha: Vec::new(),
            certain: Vec::new(),
            uncertain: Vec::new(),
        };
        for (i, (t, _)) in rows.iter().enumerate() {
            let gproj = t.project(group_by);
            let key = gproj.sg();
            let g = match by_key.get(&key) {
                Some(&g) => {
                    let g = g as usize;
                    idx.bboxes[g] = idx.bboxes[g].merge_keep_sg(&gproj);
                    g
                }
                None => {
                    let g = idx.keys.len();
                    by_key.insert(key.clone(), g as u32);
                    idx.keys.push(key);
                    idx.bboxes.push(gproj.clone());
                    idx.alpha.push(Vec::new());
                    idx.certain.push(Vec::new());
                    g
                }
            };
            idx.alpha[g].push(i as u32);
            if gproj.is_certain() {
                idx.certain[g].push(i as u32);
            } else {
                idx.uncertain.push(i as u32);
            }
        }
        idx
    }

    /// Number of distinct SG groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// SG key of group `g`.
    pub fn key(&self, g: usize) -> &Tuple {
        &self.keys[g]
    }

    /// Bounding box of group `g` over the group-by attributes.
    pub fn bbox(&self, g: usize) -> &RangeTuple {
        &self.bboxes[g]
    }

    /// α-assigned row ids of group `g`.
    pub fn alpha(&self, g: usize) -> &[u32] {
        &self.alpha[g]
    }

    /// Row ids of group `g` whose group-by attributes are all certain.
    pub fn certain(&self, g: usize) -> &[u32] {
        &self.certain[g]
    }

    /// Row ids whose group-by projection carries attribute uncertainty.
    pub fn uncertain(&self) -> &[u32] {
        &self.uncertain
    }

    /// The group bounding boxes as an interval index on attribute `k`
    /// *of the group-by projection*; entry ids are group ids. Sweep
    /// against an index over candidate rows' matching attribute to
    /// enumerate the (group, row) pairs that may overlap.
    pub fn bbox_interval_index(&self, k: usize) -> IntervalIndex {
        IntervalIndex::from_entries(
            self.bboxes.iter().enumerate().map(|(g, b)| (g as u32, &b.0[k])),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::au::au_row;

    fn idx(ranges: &[(i64, i64)]) -> IntervalIndex {
        let rvs: Vec<RangeValue> =
            ranges.iter().map(|(lo, hi)| RangeValue::range(*lo, *lo, *hi)).collect();
        IntervalIndex::from_entries(rvs.iter().enumerate().map(|(i, r)| (i as u32, r)))
    }

    /// Brute-force oracle for overlap pairs.
    fn overlap_pairs(l: &[(i64, i64)], r: &[(i64, i64)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, (ll, lu)) in l.iter().enumerate() {
            for (j, (rl, ru)) in r.iter().enumerate() {
                if ll <= ru && rl <= lu {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn sweep_overlapping_matches_bruteforce() {
        let l = [(0, 5), (3, 4), (10, 12), (6, 20), (7, 7)];
        let r = [(4, 6), (5, 5), (13, 30), (0, 1), (8, 9)];
        let mut got = Vec::new();
        IntervalIndex::sweep_overlapping(&idx(&l), &idx(&r), |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, overlap_pairs(&l, &r));
    }

    #[test]
    fn sweep_overlapping_handles_duplicates_and_ties() {
        let l = [(1, 1), (1, 1), (1, 2)];
        let r = [(1, 1), (2, 2)];
        let mut got = Vec::new();
        IntervalIndex::sweep_overlapping(&idx(&l), &idx(&r), |a, b| got.push((a, b)));
        got.sort_unstable();
        assert_eq!(got, overlap_pairs(&l, &r));
    }

    #[test]
    fn sweep_lb_below_ub_matches_bruteforce() {
        let l = [(0, 5), (3, 4), (10, 12), (7, 7)];
        let r = [(4, 6), (13, 30), (0, 1)];
        let mut got = Vec::new();
        IntervalIndex::sweep_lb_below_ub(&idx(&l), &idx(&r), |a, b| got.push((a, b)));
        got.sort_unstable();
        let mut expect = Vec::new();
        for (i, (ll, _)) in l.iter().enumerate() {
            for (j, (_, ru)) in r.iter().enumerate() {
                if ll <= ru {
                    expect.push((i as u32, j as u32));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn from_lane_matches_from_entries() {
        use audb_core::ValueLane;
        // Mixed column (boxed lane) with ties on lb, distinct ub order,
        // plus a homogeneous Int column (typed lane).
        let mixed = vec![
            RangeValue::range(1i64, 2i64, 9i64),
            RangeValue::range(1i64, 1i64, 3i64),
            RangeValue::certain(Value::str("q")),
            RangeValue::range(Value::float(0.5), Value::float(1.0), Value::float(8.0)),
            RangeValue::certain(Value::Null),
        ];
        let ints: Vec<RangeValue> = [(5i64, 7i64), (1, 2), (5, 6), (-3, 12)]
            .iter()
            .map(|(lo, hi)| RangeValue::range(*lo, *lo, *hi))
            .collect();
        for cells in [&mixed, &ints] {
            let lane = ValueLane::from_cells(cells.iter());
            let a = IntervalIndex::from_lane(lane.as_slice());
            let b =
                IntervalIndex::from_entries(cells.iter().enumerate().map(|(i, r)| (i as u32, r)));
            assert_eq!(a.by_lb, b.by_lb);
            assert_eq!(a.ub_order, b.ub_order);
        }
    }

    #[test]
    fn mixed_numeric_endpoints_are_superset_safe() {
        // Int 2 vs Float 2.0: value_eq-equal but total_cmp orders them;
        // the comparison sweep must still pair them.
        let l = [RangeValue::certain(Value::float(2.0))];
        let r = [RangeValue::certain(Value::Int(2))];
        let li = IntervalIndex::from_entries(l.iter().enumerate().map(|(i, r)| (i as u32, r)));
        let ri = IntervalIndex::from_entries(r.iter().enumerate().map(|(i, r)| (i as u32, r)));
        let mut got = Vec::new();
        IntervalIndex::sweep_lb_below_ub(&li, &ri, |a, b| got.push((a, b)));
        assert_eq!(got, vec![(0, 0)]);
    }

    #[test]
    fn hash_key_index_canonicalizes() {
        let rows = vec![
            au_row(vec![RangeValue::certain(Value::Int(2))], 1, 1, 1),
            au_row(vec![RangeValue::certain(Value::float(2.0))], 1, 1, 1),
            au_row(vec![RangeValue::certain(Value::Int(3))], 1, 1, 1),
        ];
        let idx = HashKeyIndex::from_au_sg(&rows, &[0], 0..3u32);
        assert_eq!(idx.get(&[Value::float(2.0)]), &[0, 1]);
        assert_eq!(idx.get(&[Value::float(3.0)]), &[2]);
        assert!(idx.get(&[Value::float(9.0)]).is_empty());
    }

    #[test]
    fn sg_group_index_partitions_membership() {
        let rows = vec![
            // group 1, certain group-by
            au_row(
                vec![RangeValue::certain(Value::Int(1)), RangeValue::range(0i64, 0i64, 9i64)],
                1,
                1,
                1,
            ),
            // group 1 again, uncertain group-by value widening the box
            au_row(
                vec![RangeValue::range(0i64, 1i64, 4i64), RangeValue::certain(Value::Int(7))],
                1,
                1,
                1,
            ),
            // group 2, certain
            au_row(
                vec![RangeValue::certain(Value::Int(2)), RangeValue::certain(Value::Int(5))],
                1,
                1,
                1,
            ),
        ];
        let idx = SgGroupIndex::from_au(&rows, &[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.key(0), &Tuple::new(vec![Value::Int(1)]));
        assert_eq!(idx.alpha(0), &[0, 1]);
        assert_eq!(idx.certain(0), &[0]);
        assert_eq!(idx.uncertain(), &[1]);
        // group 1's box merged the uncertain member: [0, 4]
        assert_eq!(idx.bbox(0).0[0], RangeValue::range(0i64, 1i64, 4i64));
        assert_eq!(idx.alpha(1), &[2]);

        // sweep group boxes against the uncertain rows: row 1 overlaps
        // both group boxes on attribute 0
        let gi = idx.bbox_interval_index(0);
        let ri = IntervalIndex::from_entries(
            idx.uncertain().iter().map(|&i| (i, &rows[i as usize].0 .0[0])),
        );
        let mut pairs = Vec::new();
        IntervalIndex::sweep_overlapping(&gi, &ri, |g, r| pairs.push((g, r)));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn sg_group_index_keys_are_exact_not_canonicalized() {
        let rows = vec![
            au_row(vec![RangeValue::certain(Value::Int(2))], 1, 1, 1),
            au_row(vec![RangeValue::certain(Value::float(2.0))], 1, 1, 1),
        ];
        let idx = SgGroupIndex::from_au(&rows, &[0]);
        assert_eq!(idx.len(), 2, "Int 2 and Float 2.0 are distinct SG groups");
    }
}
