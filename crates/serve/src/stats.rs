//! Per-class serving statistics: outcome counts and latency quantiles.
//!
//! The engine's [`audb_core::obs::Metrics`] sink carries the
//! engine-wide counters and events; this module adds the per-class
//! split a load shedder is judged by — how many queries each class
//! submitted, how many were admitted, shed, retried, and how their
//! latency distribution looks. Samples are raw nanosecond latencies in
//! a mutex-guarded vector: a serving engine's lifetime query count is
//! bounded by admission, so exact quantiles stay affordable and the
//! bench reads true p50/p99 rather than histogram-bucket lower bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Live per-class meters.
#[derive(Debug, Default)]
pub struct ClassStats {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl ClassStats {
    pub(crate) fn submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn retry(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn fail(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn complete(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_ns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(latency.as_nanos() as u64);
    }

    /// A plain-data copy of the meters.
    pub fn snapshot(&self) -> ClassStatsSnapshot {
        let mut latencies =
            self.latencies_ns.lock().unwrap_or_else(PoisonError::into_inner).clone();
        latencies.sort_unstable();
        ClassStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            latencies_ns: latencies,
        }
    }
}

/// Counts plus the sorted latency samples of one class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassStatsSnapshot {
    /// Queries submitted (every outcome).
    pub submitted: u64,
    /// Queries granted an execution slot.
    pub admitted: u64,
    /// Queries that returned a result.
    pub completed: u64,
    /// Queries shed by admission (queue full / wait timeout).
    pub shed: u64,
    /// Retry attempts taken after transient faults.
    pub retried: u64,
    /// Queries whose transient faults exhausted the retry budget.
    pub failed: u64,
    /// Queries ended by a final governance verdict.
    pub rejected: u64,
    /// Completed-query latencies, sorted ascending.
    pub latencies_ns: Vec<u64>,
}

impl ClassStatsSnapshot {
    /// Latency quantile by nearest-rank (`q` in `[0, 1]`); `None` with
    /// no completed samples.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        Some(Duration::from_nanos(self.latencies_ns[rank - 1]))
    }

    /// Completed queries per second over `elapsed`.
    pub fn qps(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_by_nearest_rank() {
        let stats = ClassStats::default();
        for ns in [50u64, 10, 40, 20, 30] {
            stats.complete(Duration::from_nanos(ns));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.quantile(0.5), Some(Duration::from_nanos(30)));
        assert_eq!(snap.quantile(0.0), Some(Duration::from_nanos(10)));
        assert_eq!(snap.quantile(1.0), Some(Duration::from_nanos(50)));
        assert_eq!(snap.quantile(0.99), Some(Duration::from_nanos(50)));
        assert_eq!(ClassStats::default().snapshot().quantile(0.5), None);
    }

    #[test]
    fn qps_counts_completions() {
        let stats = ClassStats::default();
        stats.submit();
        stats.submit();
        stats.complete(Duration::from_millis(1));
        let snap = stats.snapshot();
        assert!((snap.qps(Duration::from_secs(2)) - 0.5).abs() < 1e-9);
        assert_eq!(snap.qps(Duration::ZERO), 0.0);
    }
}
