//! # audb-serve
//!
//! The concurrent serving layer: a long-lived [`Engine`] that keeps the
//! AU-DB engine live and well-behaved under many queries at once.
//!
//! The evaluation stack below this crate is per-query: `audb_query`
//! evaluates one plan against one database with one governance context.
//! This crate adds everything a server needs around that:
//!
//! * **epoch snapshots** — the database is published as immutable
//!   `Arc`'d [`Snapshot`]s; queries pin an epoch at admission and
//!   writers publish new epochs without blocking readers
//!   ([`Engine::publish`]);
//! * **prepared plans** — parse → plan → compile → Tier-B verify paid
//!   once per (query text, epoch) through a shared
//!   [`ProgramCache`](audb_query::ProgramCache), evicted wholesale on
//!   publish;
//! * **admission control** ([`admission`]) — `interactive` / `batch` /
//!   `besteffort` classes with concurrency caps, bounded wait queues,
//!   and per-class governance knobs; saturation sheds structurally
//!   ([`ServeError::Overloaded`]), best-effort first;
//! * **one shared worker pool** — every query draws threads from one
//!   [`WorkerGate`](audb_exec::WorkerGate) instead of spawning its own
//!   fleet; starved queries degrade to inline execution with identical
//!   results;
//! * **bounded retry** ([`retry`]) — transient faults (worker panics,
//!   injected faults) retry with full-jitter exponential backoff;
//!   resource verdicts are final;
//! * **circuit breaking** ([`breaker`]) — per-prepared-plan breakers
//!   route persistently faulting compiled paths to the interpreted
//!   oracle until a cooldown half-opens them.
//!
//! The load-bearing guarantee, pinned by the stress suite: **every
//! submission resolves** — to a correct result or a structured
//! [`ServeError`] — and no fault, overload, or mid-flight publish can
//! hang a client or poison the engine. Semantics: `docs/serving.md`.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod admission;
pub mod breaker;
pub mod engine;
pub mod retry;
pub mod stats;

pub use admission::{Admission, Class, ClassPolicy};
pub use breaker::{Breaker, BreakerPolicy};
pub use engine::{Engine, EngineConfig, EngineStats, Response, ServeError, Snapshot};
pub use retry::RetryPolicy;
pub use stats::{ClassStats, ClassStatsSnapshot};
