//! The long-lived serving [`Engine`]: epochs, prepared plans, and the
//! per-query robustness loop.
//!
//! ## Epochs
//!
//! The engine holds the database as an `Arc`'d immutable [`Snapshot`].
//! A query pins the current snapshot once, at admission, and evaluates
//! against it for its whole attempt loop — the `Cow`-based evaluators
//! never clone the pinned data. [`Engine::publish`] swaps in a new
//! snapshot under the next epoch number; in-flight queries keep their
//! pinned epoch alive through the `Arc` and finish against the world
//! they started in.
//!
//! ## Prepared plans
//!
//! Parse → plan → compile → verify is paid once per (query text,
//! epoch): the prepared table maps query text to a [`PreparedPlan`]
//! holding the parsed plan, a shared
//! [`ProgramCache`](audb_query::ProgramCache) of its vetted compiled
//! programs, and the plan's circuit breaker. Publish drops the whole
//! table — the coherence property test pins that a warm re-execution
//! against a new epoch is byte-identical to a cold one.
//!
//! ## The robustness loop
//!
//! Per query: admission (bounded queue, structured shed) → breaker
//! consultation (compiled vs interpreted oracle) → one governed
//! evaluation attempt → on a *transient* fault, jittered-backoff retry
//! inside the same admission slot; on a *resource* verdict, a final
//! structured rejection. Every submission resolves — to a result or a
//! structured [`ServeError`] — and no outcome can poison the engine.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use audb_core::obs::{Counter, ExecEvent, ExecEventKind, Metrics, MetricsSnapshot};
use audb_core::{CancelToken, EvalError};
use audb_exec::WorkerGate;
use audb_query::au::AuConfig;
use audb_query::{eval_au_once, parse_sql, with_program_cache, ProgramCache, Query};
use audb_storage::{AuDatabase, AuRelation};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::admission::{Admission, Class, ClassPolicy};
use crate::breaker::{Breaker, BreakerPolicy};
use crate::retry::RetryPolicy;
use crate::stats::{ClassStats, ClassStatsSnapshot};

/// One immutable published world: the database plus its epoch number.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    db: AuDatabase,
}

impl Snapshot {
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn db(&self) -> &AuDatabase {
        &self.db
    }
}

/// Everything the engine is configured with.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Base evaluation knobs; per-class `timeout`/`budget` and the
    /// breaker's compiled/interpreted routing are layered on top.
    pub eval: AuConfig,
    /// Engine-wide worker-thread budget shared by every concurrent
    /// query (the [`WorkerGate`] total). 0 runs everything inline.
    pub worker_threads: usize,
    /// Admission knobs, indexed by [`Class`] discriminant order.
    pub classes: [ClassPolicy; 3],
    pub retry: RetryPolicy,
    pub breaker: BreakerPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            eval: AuConfig::default(),
            worker_threads: audb_exec::pool::available_workers(),
            classes: Class::ALL.map(ClassPolicy::default_for),
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }
}

/// A parsed, compile-cached plan pinned to one epoch.
#[derive(Debug)]
struct PreparedPlan {
    query: Query,
    epoch: u64,
    /// Vetted compiled programs, shared across executions of this plan.
    programs: Arc<ProgramCache>,
    breaker: Breaker,
}

/// One successful serve: the result plus how it was produced.
#[derive(Debug)]
pub struct Response {
    pub relation: AuRelation,
    /// The epoch the query was evaluated against.
    pub epoch: u64,
    pub class: Class,
    /// Evaluation attempts taken (1 = no retries).
    pub attempts: usize,
    /// Whether the prepared-plan table already held this plan.
    pub prepared_hit: bool,
    /// Whether the final attempt ran on the interpreted oracle because
    /// the plan's breaker was open.
    pub breaker_degraded: bool,
    /// Time spent waiting for admission.
    pub queued: Duration,
    /// Admission wait + every evaluation attempt + backoff sleeps.
    pub total: Duration,
}

/// Structured serving verdicts: every failed submission resolves to
/// exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load shed: the class queue was full or the queue wait timed out.
    Overloaded { class: Class, queue_depth: usize, retry_after: Duration },
    /// A final governance verdict (cancelled / deadline / budget) —
    /// never retried.
    Rejected(EvalError),
    /// Transient faults exhausted the retry budget.
    Failed(EvalError),
    /// A deterministic query error (parse, type, unknown table):
    /// retrying cannot help.
    Query(EvalError),
    /// The engine is shutting down.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { class, queue_depth, retry_after } => write!(
                f,
                "overloaded: class {} queue depth {queue_depth}, retry after {retry_after:?}",
                class.name()
            ),
            ServeError::Rejected(e) => write!(f, "rejected by governance: {e}"),
            ServeError::Failed(e) => write!(f, "failed after retries: {e}"),
            ServeError::Query(e) => write!(f, "query error: {e}"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A point-in-time view of the engine's meters.
#[derive(Debug, Clone)]
pub struct EngineStats {
    pub epoch: u64,
    /// Prepared plans currently cached.
    pub prepared_plans: usize,
    /// Per-class meters, indexed by [`Class`] discriminant order.
    pub classes: [ClassStatsSnapshot; 3],
    /// The engine-lifetime metrics sink (admission counters, runtime
    /// events, drop accounting).
    pub metrics: MetricsSnapshot,
}

#[derive(Debug)]
struct EngineInner {
    config: EngineConfig,
    snapshot: Mutex<Arc<Snapshot>>,
    prepared: Mutex<HashMap<String, Arc<PreparedPlan>>>,
    admission: Admission,
    gate: WorkerGate,
    metrics: Metrics,
    stats: [ClassStats; 3],
    seq: AtomicU64,
    closed: AtomicBool,
}

/// The long-lived concurrent serving engine. Cheap to clone (handles
/// share one engine); see the module docs for the architecture.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// An engine serving `db` as epoch 0. Column sets are warmed up
    /// front, like [`Engine::publish`] does for later epochs.
    pub fn new(db: AuDatabase, config: EngineConfig) -> Self {
        db.warm_columns();
        Engine {
            inner: Arc::new(EngineInner {
                admission: Admission::new(config.classes),
                gate: WorkerGate::new(config.worker_threads),
                config,
                snapshot: Mutex::new(Arc::new(Snapshot { epoch: 0, db })),
                prepared: Mutex::new(HashMap::new()),
                metrics: Metrics::enabled(),
                stats: [ClassStats::default(), ClassStats::default(), ClassStats::default()],
                seq: AtomicU64::new(0),
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// Publish a new world: the database becomes the next epoch and
    /// every prepared plan is evicted (plans are compiled against one
    /// epoch's catalog). In-flight queries finish on their pinned
    /// snapshots. Returns the new epoch number.
    ///
    /// Column sets are warmed before the epoch swap: the snapshot is
    /// immutable once published, so every query against it shares the
    /// `Arc`'d columnar lanes instead of racing to build them on first
    /// touch — the build cost is paid once, off the query path.
    pub fn publish(&self, db: AuDatabase) -> u64 {
        db.warm_columns();
        let mut current = self.inner.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = current.epoch + 1;
        *current = Arc::new(Snapshot { epoch, db });
        drop(current);
        self.inner.prepared.lock().unwrap_or_else(PoisonError::into_inner).clear();
        epoch
    }

    /// Pin the current snapshot (readers hold it as long as they like).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.snapshot.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Stop admitting new queries; in-flight queries finish normally.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::SeqCst);
    }

    /// The engine-lifetime metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Per-class and engine-wide meters at this instant.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            epoch: self.snapshot().epoch,
            prepared_plans: self
                .inner
                .prepared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            classes: [
                self.inner.stats[0].snapshot(),
                self.inner.stats[1].snapshot(),
                self.inner.stats[2].snapshot(),
            ],
            metrics: self.inner.metrics.snapshot(),
        }
    }

    /// Serve one SQL query under `class`, through the prepared-plan
    /// cache.
    pub fn execute_sql(&self, sql: &str, class: Class) -> Result<Response, ServeError> {
        self.serve(sql, class, true)
    }

    /// Serve one algebra plan under `class`, through the prepared-plan
    /// cache (keyed on the plan's text rendering).
    pub fn execute(&self, q: &Query, class: Class) -> Result<Response, ServeError> {
        self.serve_parsed(&q.to_string(), Some(q), class, true)
    }

    /// The cold path: serve one SQL query bypassing the prepared-plan
    /// table (a fresh parse + compile + verify every call). The
    /// coherence tests and the warm-vs-cold bench diff against this.
    pub fn execute_sql_cold(&self, sql: &str, class: Class) -> Result<Response, ServeError> {
        self.serve(sql, class, false)
    }

    fn serve(&self, sql: &str, class: Class, reuse: bool) -> Result<Response, ServeError> {
        self.serve_parsed(sql, None, class, reuse)
    }

    /// The full per-query path; see the module docs for the loop.
    /// `key` is the prepared-table key; `plan` short-circuits parsing
    /// when the caller already holds the algebra.
    fn serve_parsed(
        &self,
        key: &str,
        plan: Option<&Query>,
        class: Class,
        reuse: bool,
    ) -> Result<Response, ServeError> {
        let inner = &self.inner;
        let stats = &inner.stats[class as usize];
        stats.submit();
        if inner.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }

        let started = Instant::now();
        let ticket = match inner.admission.admit(class) {
            Ok(t) => t,
            Err(shed) => {
                stats.shed();
                inner.metrics.add(Counter::Shed, 1);
                inner.metrics.record_event(ExecEvent {
                    kind: ExecEventKind::Shed,
                    driver: None,
                    morsel: None,
                    detail: format!("class {} queue depth {}", class.name(), shed.queue_depth),
                });
                return Err(ServeError::Overloaded {
                    class,
                    queue_depth: shed.queue_depth,
                    retry_after: shed.retry_after,
                });
            }
        };
        let queued = started.elapsed();
        stats.admit();
        inner.metrics.add(Counter::Admitted, 1);
        inner.metrics.record_event(ExecEvent {
            kind: ExecEventKind::Admitted,
            driver: None,
            morsel: None,
            detail: format!("class {}", class.name()),
        });

        // Pin the epoch after admission: queued queries evaluate
        // against the freshest world at the moment they start running.
        let snap = self.snapshot();
        let prepared = self.prepare(key, plan, &snap, reuse).map_err(ServeError::Query)?;
        let prepared_hit = prepared.1;
        let plan = prepared.0;

        let policy = *inner.admission.policy(class);
        let result = self.attempt_loop(&plan, &snap, &policy, class);
        drop(ticket);

        match result {
            Ok((relation, attempts, breaker_degraded)) => {
                let total = started.elapsed();
                stats.complete(total);
                Ok(Response {
                    relation,
                    epoch: snap.epoch,
                    class,
                    attempts,
                    prepared_hit,
                    breaker_degraded,
                    queued,
                    total,
                })
            }
            Err(e) => {
                match &e {
                    ServeError::Rejected(_) => stats.reject(),
                    ServeError::Failed(_) | ServeError::Query(_) => stats.fail(),
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// Look up (or build) the prepared plan for `key` on `snap`'s
    /// epoch. `reuse: false` always builds fresh and never stores —
    /// the cold path.
    fn prepare(
        &self,
        key: &str,
        plan: Option<&Query>,
        snap: &Snapshot,
        reuse: bool,
    ) -> Result<(Arc<PreparedPlan>, bool), EvalError> {
        if reuse {
            let table = self.inner.prepared.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(p) = table.get(key) {
                if p.epoch == snap.epoch {
                    return Ok((Arc::clone(p), true));
                }
            }
        }
        let query = match plan {
            Some(q) => q.clone(),
            None => parse_sql(key, snap.db())?,
        };
        let fresh = Arc::new(PreparedPlan {
            query,
            epoch: snap.epoch,
            programs: Arc::new(ProgramCache::new()),
            breaker: Breaker::new(self.inner.config.breaker),
        });
        if reuse {
            // Last insert wins on a race; both candidates were built
            // against the same (key, epoch) pair, so either is valid.
            self.inner
                .prepared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(key.to_string(), Arc::clone(&fresh));
        }
        Ok((fresh, false))
    }

    /// The bounded-retry attempt loop. Holds the caller's admission
    /// slot throughout; returns the relation, the attempt count, and
    /// whether the successful attempt ran breaker-degraded.
    fn attempt_loop(
        &self,
        plan: &PreparedPlan,
        snap: &Snapshot,
        policy: &ClassPolicy,
        class: Class,
    ) -> Result<(AuRelation, usize, bool), ServeError> {
        let inner = &self.inner;
        let retry = inner.config.retry;
        let mut rng = StdRng::seed_from_u64(inner.seq.fetch_add(1, Ordering::Relaxed));
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let compiled_wanted = inner.config.eval.compiled;
            let compiled = compiled_wanted && plan.breaker.allow_compiled();
            let cfg = AuConfig {
                compiled,
                budget: policy.budget.or(inner.config.eval.budget),
                ..inner.config.eval
            };
            let token = policy.timeout.map(CancelToken::with_deadline_in);
            let verdict = with_program_cache(Arc::clone(&plan.programs), || {
                eval_au_once(
                    snap.db(),
                    &plan.query,
                    &cfg,
                    token.as_ref(),
                    Some(&inner.gate),
                    &inner.metrics,
                )
            });
            match verdict {
                Ok(relation) => {
                    if compiled {
                        plan.breaker.record_success();
                    }
                    return Ok((relation, attempts, compiled_wanted && !compiled));
                }
                Err(EvalError::Exec(e)) if e.is_resource_limit() => {
                    if compiled {
                        plan.breaker.record_inconclusive();
                    }
                    return Err(ServeError::Rejected(EvalError::Exec(e)));
                }
                Err(EvalError::Exec(e)) => {
                    // Transient producer fault: count it against the
                    // breaker (compiled attempts only — the breaker
                    // models compiled-path health), then retry with
                    // jittered backoff inside the same admission slot.
                    if compiled && plan.breaker.record_fault() {
                        inner.metrics.add(Counter::BreakerTrips, 1);
                        inner.metrics.record_event(ExecEvent {
                            kind: ExecEventKind::BreakerTripped,
                            driver: None,
                            morsel: None,
                            detail: format!("plan epoch {}: {e}", plan.epoch),
                        });
                    }
                    if attempts > retry.max_retries {
                        return Err(ServeError::Failed(EvalError::Exec(e)));
                    }
                    inner.stats[class as usize].retry();
                    inner.metrics.add(Counter::Retries, 1);
                    inner.metrics.record_event(ExecEvent {
                        kind: ExecEventKind::Retried,
                        driver: None,
                        morsel: None,
                        detail: format!("attempt {attempts}: {e}"),
                    });
                    let backoff = retry.backoff(attempts, &mut rng);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                Err(e) => return Err(ServeError::Query(e)),
            }
        }
    }
}
