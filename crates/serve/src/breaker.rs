//! Per-prepared-plan circuit breaker over the compiled execution path.
//!
//! The compiled register programs and the interpreted `Expr`-tree
//! oracle compute identical results, so a plan whose compiled path
//! keeps faulting can be served from the interpreter instead of
//! retrying its way through the same fault on every call. The breaker
//! is the classic three-state machine, scoped to one prepared plan:
//!
//! * **Closed** — compiled execution allowed; consecutive transient
//!   faults on the compiled path are counted, a success resets the
//!   count, and the K-th fault trips the breaker;
//! * **Open** — every call runs interpreted until the cooldown passes;
//! * **Half-open** — after the cooldown, exactly one call probes the
//!   compiled path again: success closes the breaker, a fault re-opens
//!   it for another cooldown. Calls arriving during the probe stay on
//!   the interpreter, and a probe that ends without a verdict (a
//!   resource limit tripped mid-flight) re-arms the probe instead of
//!   wedging the breaker.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Trip threshold and cooldown of one [`Breaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive compiled-path faults that trip the breaker.
    pub trip_after: usize,
    /// How long a tripped breaker routes to the interpreter before
    /// half-opening.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy { trip_after: 3, cooldown: Duration::from_millis(100) }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive_faults: usize },
    Open { until: Instant },
    HalfOpen,
}

/// The breaker itself; see the module docs for the state machine.
#[derive(Debug)]
pub struct Breaker {
    policy: BreakerPolicy,
    state: Mutex<State>,
}

impl Breaker {
    pub fn new(policy: BreakerPolicy) -> Self {
        Breaker { policy, state: Mutex::new(State::Closed { consecutive_faults: 0 }) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May this call take the compiled path? Transitions an expired
    /// cooldown to half-open, granting the probe to exactly one caller.
    pub fn allow_compiled(&self) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => true,
            State::Open { until } if Instant::now() >= until => {
                *state = State::HalfOpen;
                true
            }
            State::Open { .. } | State::HalfOpen => false,
        }
    }

    /// A compiled attempt completed: the half-open probe (or a closed-
    /// state call) succeeded.
    pub fn record_success(&self) {
        *self.lock() = State::Closed { consecutive_faults: 0 };
    }

    /// A compiled attempt hit a transient fault. Returns `true` when
    /// this fault tripped the breaker open (the caller records the
    /// trip event exactly once).
    pub fn record_fault(&self) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed { consecutive_faults } => {
                let faults = consecutive_faults + 1;
                if faults >= self.policy.trip_after.max(1) {
                    *state = State::Open { until: Instant::now() + self.policy.cooldown };
                    true
                } else {
                    *state = State::Closed { consecutive_faults: faults };
                    false
                }
            }
            State::HalfOpen => {
                *state = State::Open { until: Instant::now() + self.policy.cooldown };
                true
            }
            State::Open { .. } => false,
        }
    }

    /// A compiled attempt ended without a compiled-path verdict (a
    /// resource limit tripped mid-flight): a half-open probe re-arms
    /// so the next call probes again.
    pub fn record_inconclusive(&self) {
        let mut state = self.lock();
        if matches!(*state, State::HalfOpen) {
            *state = State::Open { until: Instant::now() };
        }
    }

    /// Is the breaker currently routing to the interpreter?
    pub fn is_open(&self) -> bool {
        matches!(*self.lock(), State::Open { .. } | State::HalfOpen)
    }

    /// Stable name of the current state (for stats and docs examples).
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn fast() -> Breaker {
        Breaker::new(BreakerPolicy { trip_after: 2, cooldown: Duration::from_millis(10) })
    }

    #[test]
    fn trips_after_consecutive_faults_and_success_resets() {
        let b = fast();
        assert!(!b.record_fault());
        b.record_success();
        assert!(!b.record_fault(), "success reset the consecutive count");
        assert!(b.record_fault(), "second consecutive fault trips");
        assert!(b.is_open());
        assert!(!b.allow_compiled(), "open breaker routes to the interpreter");
    }

    #[test]
    fn cooldown_half_opens_for_one_probe() {
        let b = fast();
        b.record_fault();
        b.record_fault();
        std::thread::sleep(Duration::from_millis(12));
        assert!(b.allow_compiled(), "expired cooldown grants the probe");
        assert!(!b.allow_compiled(), "second caller stays interpreted during the probe");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.allow_compiled());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = fast();
        b.record_fault();
        b.record_fault();
        std::thread::sleep(Duration::from_millis(12));
        assert!(b.allow_compiled());
        assert!(b.record_fault(), "failed probe re-trips");
        assert!(!b.allow_compiled(), "cooldown restarted");
    }

    #[test]
    fn inconclusive_probe_rearms() {
        let b = fast();
        b.record_fault();
        b.record_fault();
        std::thread::sleep(Duration::from_millis(12));
        assert!(b.allow_compiled());
        b.record_inconclusive();
        assert!(b.allow_compiled(), "next call probes again immediately");
    }
}
