//! The retry taxonomy and jittered exponential backoff.
//!
//! Only *transient* faults retry — a contained worker panic or an
//! injected test fault, where a second attempt can genuinely succeed.
//! Resource verdicts ([`ExecError::Cancelled`],
//! [`ExecError::DeadlineExceeded`], [`ExecError::BudgetExceeded`]) are
//! final: retrying one would only re-spend the exhausted resource.
//! Deterministic evaluation errors (type errors, unknown tables, …) are
//! equally final — the same query fails the same way every time.
//!
//! Backoff is full-jitter exponential: attempt `k` sleeps a uniform
//! duration in `[0, min(cap, base·2^k))`, so synchronized clients
//! retrying a shared fault spread out instead of stampeding.

use std::time::Duration;

use audb_core::ExecError;
use rand::rngs::StdRng;
use rand::Rng;

/// Bounded-retry knobs for transient faults.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: usize,
    /// Backoff scale for the first retry.
    pub base_backoff: Duration,
    /// Ceiling the exponential curve saturates at.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Is this runtime fault worth a retry? Exactly the non-resource
    /// faults: `WorkerPanic` and `Injected`.
    pub fn is_transient(e: &ExecError) -> bool {
        !e.is_resource_limit()
    }

    /// The jittered sleep before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: usize, rng: &mut StdRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(16) as u32;
        let ceiling = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.max_backoff)
            .as_nanos() as u64;
        if ceiling == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_range(0..ceiling))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_resource_limits() {
        assert!(RetryPolicy::is_transient(&ExecError::WorkerPanic {
            morsel: 0,
            payload: "x".into()
        }));
        assert!(RetryPolicy::is_transient(&ExecError::Injected { driver: 0, morsel: 0 }));
        assert!(!RetryPolicy::is_transient(&ExecError::Cancelled));
        assert!(!RetryPolicy::is_transient(&ExecError::DeadlineExceeded));
        assert!(!RetryPolicy::is_transient(&ExecError::BudgetExceeded {
            operator: "join-probe",
            resource: "rows",
            limit: 1,
            attempted: 2,
        }));
    }

    #[test]
    fn backoff_is_bounded_and_grows() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        };
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for attempt in 1..=10 {
            let ceiling = Duration::from_millis(1)
                .saturating_mul(2u32.saturating_pow(attempt as u32 - 1))
                .min(Duration::from_millis(8));
            for _ in 0..50 {
                assert!(policy.backoff(attempt, &mut rng) < ceiling.max(Duration::from_nanos(1)));
            }
        }
    }

    #[test]
    fn zero_base_means_no_sleep() {
        let policy = RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(1, &mut rng), Duration::ZERO);
    }
}
