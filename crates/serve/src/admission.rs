//! Admission control: per-class concurrency caps and bounded wait
//! queues.
//!
//! Every query enters through [`Admission::admit`], which either hands
//! back a [`Ticket`] (an execution slot, released on drop) or sheds the
//! query with structured overload information. Waiting is bounded two
//! ways: the queue has a depth cap (queries beyond it shed immediately)
//! and a wait timeout (queued queries shed when no slot frees up in
//! time) — so a submission can never hang on admission.
//!
//! Shedding is ordered by class: a best-effort query that would have to
//! queue is shed immediately whenever the interactive or batch queues
//! have waiters, keeping the cheap-to-drop traffic from holding queue
//! capacity that paying classes are about to need.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use audb_core::BudgetSpec;

/// The admission class of one query: who it competes with and which
/// governance knobs apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Latency-sensitive foreground traffic.
    Interactive,
    /// Throughput-oriented background work.
    Batch,
    /// Shed-first traffic: dropped as soon as the engine is contended.
    BestEffort,
}

impl Class {
    /// Every class, in shed-priority order (best-effort sheds first).
    pub const ALL: [Class; 3] = [Class::Interactive, Class::Batch, Class::BestEffort];

    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Batch => "batch",
            Class::BestEffort => "besteffort",
        }
    }
}

/// Per-class admission and governance knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClassPolicy {
    /// Queries of this class running at once (minimum 1).
    pub max_concurrent: usize,
    /// Queries allowed to wait for a slot; one more sheds.
    pub queue_cap: usize,
    /// How long a queued query waits before it is shed.
    pub queue_timeout: Duration,
    /// Per-query wall-clock deadline (armed on the cancel token).
    pub timeout: Option<Duration>,
    /// Per-query resource budget.
    pub budget: Option<BudgetSpec>,
}

impl ClassPolicy {
    /// Defaults per class: interactive gets the most slots and the
    /// shortest patience, best-effort barely queues at all.
    pub fn default_for(class: Class) -> ClassPolicy {
        match class {
            Class::Interactive => ClassPolicy {
                max_concurrent: 8,
                queue_cap: 32,
                queue_timeout: Duration::from_millis(500),
                timeout: None,
                budget: None,
            },
            Class::Batch => ClassPolicy {
                max_concurrent: 2,
                queue_cap: 16,
                queue_timeout: Duration::from_secs(2),
                timeout: None,
                budget: None,
            },
            Class::BestEffort => ClassPolicy {
                max_concurrent: 1,
                queue_cap: 4,
                queue_timeout: Duration::from_millis(100),
                timeout: None,
                budget: None,
            },
        }
    }
}

/// Why a query was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Waiters in the class queue at shed time.
    pub queue_depth: usize,
    /// Backoff hint for the client: the time by which the queue should
    /// have drained.
    pub retry_after: Duration,
}

#[derive(Debug, Default)]
struct Counts {
    running: usize,
    waiting: usize,
}

#[derive(Debug)]
struct ClassSlot {
    policy: ClassPolicy,
    counts: Mutex<Counts>,
    freed: Condvar,
}

impl ClassSlot {
    fn waiting(&self) -> usize {
        self.counts.lock().unwrap_or_else(PoisonError::into_inner).waiting
    }
}

/// The engine's admission state: one slot table per class.
#[derive(Debug)]
pub struct Admission {
    classes: [Arc<ClassSlot>; 3],
}

impl Admission {
    pub fn new(policies: [ClassPolicy; 3]) -> Self {
        Admission {
            classes: policies.map(|policy| {
                Arc::new(ClassSlot {
                    policy,
                    counts: Mutex::new(Counts::default()),
                    freed: Condvar::new(),
                })
            }),
        }
    }

    /// The policy governing `class`.
    pub fn policy(&self, class: Class) -> &ClassPolicy {
        &self.classes[class as usize].policy
    }

    /// Queries of `class` currently running.
    pub fn running(&self, class: Class) -> usize {
        self.classes[class as usize].counts.lock().unwrap_or_else(PoisonError::into_inner).running
    }

    /// Acquire an execution slot for `class`, waiting (bounded) when the
    /// class is saturated. `Err` is a structured shed verdict — this
    /// method never blocks longer than the class's queue timeout.
    pub fn admit(&self, class: Class) -> Result<Ticket, Shed> {
        let slot = &self.classes[class as usize];
        let retry_after = slot.policy.queue_timeout;
        let mut counts = slot.counts.lock().unwrap_or_else(PoisonError::into_inner);
        if counts.running < slot.policy.max_concurrent.max(1) {
            counts.running += 1;
            return Ok(Ticket { slot: Arc::clone(slot) });
        }
        if counts.waiting >= slot.policy.queue_cap {
            return Err(Shed { queue_depth: counts.waiting, retry_after });
        }
        // Best-effort sheds first: it never queues behind saturation
        // while the classes that outrank it already have waiters.
        if class == Class::BestEffort {
            let contended = self.classes[Class::Interactive as usize].waiting() > 0
                || self.classes[Class::Batch as usize].waiting() > 0;
            if contended {
                return Err(Shed { queue_depth: counts.waiting, retry_after });
            }
        }
        counts.waiting += 1;
        let deadline = Instant::now() + slot.policy.queue_timeout;
        loop {
            if counts.running < slot.policy.max_concurrent.max(1) {
                counts.waiting -= 1;
                counts.running += 1;
                return Ok(Ticket { slot: Arc::clone(slot) });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                counts.waiting -= 1;
                let depth = counts.waiting;
                return Err(Shed { queue_depth: depth, retry_after });
            }
            counts = slot
                .freed
                .wait_timeout(counts, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// An execution slot. The slot is held for the query's whole attempt
/// loop (retries included — a retrying query must not re-queue behind
/// fresh arrivals) and returns to the class on drop.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ClassSlot>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut counts = self.slot.counts.lock().unwrap_or_else(PoisonError::into_inner);
        counts.running = counts.running.saturating_sub(1);
        drop(counts);
        self.slot.freed.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny(class: Class) -> ClassPolicy {
        ClassPolicy {
            max_concurrent: 1,
            queue_cap: 1,
            queue_timeout: Duration::from_millis(20),
            ..ClassPolicy::default_for(class)
        }
    }

    fn tiny_admission() -> Admission {
        Admission::new([tiny(Class::Interactive), tiny(Class::Batch), tiny(Class::BestEffort)])
    }

    #[test]
    fn slot_recycles_on_drop() {
        let adm = tiny_admission();
        let t = adm.admit(Class::Interactive).unwrap();
        assert_eq!(adm.running(Class::Interactive), 1);
        drop(t);
        assert_eq!(adm.running(Class::Interactive), 0);
        adm.admit(Class::Interactive).unwrap();
    }

    #[test]
    fn saturated_queue_sheds_with_depth() {
        let adm = tiny_admission();
        let _held = adm.admit(Class::Batch).unwrap();
        // one waiter fits in the queue; it sheds on timeout
        let start = Instant::now();
        let shed = adm.admit(Class::Batch).unwrap_err();
        assert!(start.elapsed() >= Duration::from_millis(20), "waited for the queue timeout");
        assert_eq!(shed.retry_after, Duration::from_millis(20));
        assert_eq!(shed.queue_depth, 0, "the shed waiter already left the queue");
    }

    #[test]
    fn waiter_gets_the_freed_slot() {
        let adm = Admission::new([
            ClassPolicy { queue_timeout: Duration::from_secs(5), ..tiny(Class::Interactive) },
            tiny(Class::Batch),
            tiny(Class::BestEffort),
        ]);
        let held = adm.admit(Class::Interactive).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| adm.admit(Class::Interactive));
            std::thread::sleep(Duration::from_millis(10));
            drop(held);
            assert!(h.join().unwrap().is_ok(), "waiter admitted once the slot freed");
        });
    }

    #[test]
    fn best_effort_sheds_first_under_cross_class_pressure() {
        let adm = Admission::new([
            ClassPolicy { queue_timeout: Duration::from_secs(5), ..tiny(Class::Interactive) },
            tiny(Class::Batch),
            ClassPolicy { queue_timeout: Duration::from_secs(5), ..tiny(Class::BestEffort) },
        ]);
        let _i = adm.admit(Class::Interactive).unwrap();
        let _be = adm.admit(Class::BestEffort).unwrap();
        std::thread::scope(|s| {
            // an interactive waiter queues up...
            let h = s.spawn(|| adm.admit(Class::Interactive));
            while adm.classes[Class::Interactive as usize].waiting() == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            // ...so best-effort is shed immediately instead of queueing
            let start = Instant::now();
            assert!(adm.admit(Class::BestEffort).is_err());
            assert!(start.elapsed() < Duration::from_secs(1), "immediate shed, no queue wait");
            drop(_i);
            assert!(h.join().unwrap().is_ok());
        });
    }
}
