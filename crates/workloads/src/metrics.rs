//! Accuracy metrics for the evaluation (Sections 12.2–12.3): recall of
//! certain/possible tuples, tightness of attribute-level bounds,
//! over-grouping, and aggregate-range over-estimation. Ground truth is
//! computed exactly — by lineage evaluation for SPJ queries and by
//! per-x-tuple analysis (valid thanks to block independence) for
//! single-table aggregates.

use std::collections::{BTreeMap, BTreeSet};

use audb_baselines::trio::eval_trio;
use audb_core::{EvalError, Expr, Value};
use audb_incomplete::{XDb, XRelation};
use audb_query::{AggFunc, Query};
use audb_storage::{AuRelation, Tuple};

/// Fraction of `exact` found in `found` (1.0 when `exact` is empty).
pub fn recall(found: &BTreeSet<Tuple>, exact: &BTreeSet<Tuple>) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    exact.iter().filter(|t| found.contains(*t)).count() as f64 / exact.len() as f64
}

/// Certain tuples reported by an AU result: rows with certain attribute
/// values and a positive lower-bound multiplicity.
pub fn au_certain_tuples(rel: &AuRelation) -> BTreeSet<Tuple> {
    rel.rows().iter().filter(|(t, k)| k.lb > 0 && t.is_certain()).map(|(t, _)| t.sg()).collect()
}

/// Does the AU result cover (bound) a possible tuple?
pub fn au_covers(rel: &AuRelation, t: &Tuple) -> bool {
    rel.rows().iter().any(|(rt, k)| k.ub > 0 && rt.bounds(t))
}

/// SPJ accuracy report (a Figure 17 row for one system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpjAccuracy {
    pub certain_recall: f64,
    pub possible_recall_by_id: f64,
    pub possible_recall_by_value: f64,
    pub tightness_min: f64,
    pub tightness_max: f64,
}

/// Exact possible/certain answers of an SPJ query over an x-DB, via
/// lineage evaluation (block independence makes this exact).
pub fn exact_spj(
    xdb: &XDb,
    q: &Query,
    certainty_budget: u32,
) -> Result<(BTreeSet<Tuple>, BTreeSet<Tuple>), EvalError> {
    let trio = eval_trio(xdb, q)?;
    let possible: BTreeSet<Tuple> = trio.distinct_tuples().into_iter().collect();
    let certain = possible
        .iter()
        .filter(|t| trio.is_certain(xdb, t, certainty_budget).unwrap_or(false))
        .cloned()
        .collect();
    Ok((possible, certain))
}

/// Score an AU result of an SPJ query against the exact answers.
/// `key_cols` identify result tuples for the by-id metrics.
pub fn spj_accuracy(
    xdb: &XDb,
    q: &Query,
    au_result: &AuRelation,
    key_cols: &[usize],
) -> Result<SpjAccuracy, EvalError> {
    let (possible, certain) = exact_spj(xdb, q, 4096)?;
    let found_certain = au_certain_tuples(au_result);
    let certain_recall = recall(&found_certain, &certain);

    let covered: BTreeSet<Tuple> =
        possible.iter().filter(|t| au_covers(au_result, t)).cloned().collect();
    let possible_recall_by_value =
        if possible.is_empty() { 1.0 } else { covered.len() as f64 / possible.len() as f64 };

    // by-id: a key is covered if any of its possible tuples is covered
    let mut ids: BTreeMap<Tuple, bool> = BTreeMap::new();
    for t in &possible {
        let id = t.project(key_cols);
        let e = ids.entry(id).or_insert(false);
        *e = *e || covered.contains(t);
    }
    let possible_recall_by_id = if ids.is_empty() {
        1.0
    } else {
        ids.values().filter(|c| **c).count() as f64 / ids.len() as f64
    };

    // attribute-bound tightness over certain result rows: AU width vs
    // exact per-id value spread, averaged per row ((w+1)/(w*+1) ≥ 1)
    let mut exact_bounds: BTreeMap<Tuple, Vec<(Value, Value)>> = BTreeMap::new();
    for t in &possible {
        let id = t.project(key_cols);
        let e = exact_bounds
            .entry(id)
            .or_insert_with(|| t.0.iter().map(|v| (v.clone(), v.clone())).collect());
        for (i, v) in t.0.iter().enumerate() {
            e[i].0 = Value::min_of(e[i].0.clone(), v.clone());
            e[i].1 = Value::max_of(e[i].1.clone(), v.clone());
        }
    }
    let mut tmin = f64::INFINITY;
    let mut tmax = f64::NEG_INFINITY;
    for (t, k) in au_result.rows() {
        if k.lb == 0 {
            continue;
        }
        let id = t.project(key_cols).sg();
        let Some(exact) = exact_bounds.get(&id) else { continue };
        let mut total = 0.0;
        let mut n = 0;
        for (r, (lo, hi)) in t.0.iter().zip(exact) {
            let wau = numeric_width(&r.lb, &r.ub);
            let wex = numeric_width(lo, hi);
            total += (wau + 1.0) / (wex + 1.0);
            n += 1;
        }
        if n > 0 {
            let avg = total / n as f64;
            tmin = tmin.min(avg);
            tmax = tmax.max(avg);
        }
    }
    if !tmin.is_finite() {
        tmin = 1.0;
        tmax = 1.0;
    }
    Ok(SpjAccuracy {
        certain_recall,
        possible_recall_by_id,
        possible_recall_by_value,
        tightness_min: tmin,
        tightness_max: tmax,
    })
}

fn numeric_width(lo: &Value, hi: &Value) -> f64 {
    match (lo.as_f64(), hi.as_f64()) {
        (Some(a), Some(b)) => (b - a).max(0.0),
        _ => {
            if lo == hi {
                0.0
            } else {
                1.0 // non-numeric mismatch counts one unit
            }
        }
    }
}

/// Exact information about one possible group of a single-table
/// aggregate over an x-relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupInfo {
    /// the group certainly exists (some tuple is certainly in it)
    pub certain: bool,
    pub lo: f64,
    pub hi: f64,
}

/// Exact per-group aggregate bounds for `γ_{g; f(v)}(σ_sel(x))` —
/// computable tuple-locally because x-tuples are independent.
/// Supports `Sum`, `Count`, `Min`, `Max`.
pub fn exact_group_agg(
    x: &XRelation,
    sel: Option<&Expr>,
    group_col: usize,
    func: AggFunc,
    val_col: usize,
) -> Result<BTreeMap<Value, GroupInfo>, EvalError> {
    // collect possible groups
    let mut groups: BTreeSet<Value> = BTreeSet::new();
    for xt in &x.xtuples {
        for (t, _) in &xt.alternatives {
            let pass = match sel {
                Some(p) => p.eval_bool(t.values())?,
                None => true,
            };
            if pass {
                groups.insert(t.0[group_col].clone());
            }
        }
    }
    let mut out = BTreeMap::new();
    for g in groups {
        let mut certain = false;
        let mut sum_lo = 0.0;
        let mut sum_hi = 0.0;
        let mut cnt_lo = 0u64;
        let mut cnt_hi = 0u64;
        let mut min_hi: Option<f64> = None; // upper bound on the min
        let mut min_lo: Option<f64> = None;
        let mut max_lo: Option<f64> = None;
        let mut max_hi: Option<f64> = None;
        for xt in &x.xtuples {
            // choices: alternatives passing sel, partitioned by group
            let mut in_g: Vec<f64> = Vec::new();
            let mut escapable = xt.is_optional();
            for (t, _) in &xt.alternatives {
                let pass = match sel {
                    Some(p) => p.eval_bool(t.values())?,
                    None => true,
                };
                if pass && t.0[group_col].value_eq(&g) {
                    in_g.push(t.0[val_col].as_f64().unwrap_or(0.0));
                } else {
                    escapable = true;
                }
            }
            if in_g.is_empty() {
                continue;
            }
            let vmin = in_g.iter().cloned().fold(f64::INFINITY, f64::min);
            let vmax = in_g.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if !escapable {
                certain = true;
                sum_lo += vmin;
                sum_hi += vmax;
                cnt_lo += 1;
                cnt_hi += 1;
                min_hi = Some(min_hi.map_or(vmax, |m: f64| m.min(vmax)));
                max_lo = Some(max_lo.map_or(vmin, |m: f64| m.max(vmin)));
            } else {
                sum_lo += vmin.min(0.0);
                sum_hi += vmax.max(0.0);
                cnt_hi += 1;
            }
            min_lo = Some(min_lo.map_or(vmin, |m: f64| m.min(vmin)));
            max_hi = Some(max_hi.map_or(vmax, |m: f64| m.max(vmax)));
        }
        let info = match func {
            AggFunc::Sum => GroupInfo { certain, lo: sum_lo, hi: sum_hi },
            AggFunc::Count => GroupInfo { certain, lo: cnt_lo as f64, hi: cnt_hi as f64 },
            AggFunc::Min => GroupInfo {
                certain,
                lo: min_lo.unwrap_or(0.0),
                hi: min_hi.or(min_lo).unwrap_or(0.0),
            },
            AggFunc::Max => GroupInfo {
                certain,
                lo: max_lo.or(max_hi).unwrap_or(0.0),
                hi: max_hi.unwrap_or(0.0),
            },
            AggFunc::Avg => {
                return Err(EvalError::Unsupported("exact avg bounds".into()));
            }
        };
        out.insert(g, info);
    }
    Ok(out)
}

/// Over-grouping (Figure 15a): how many extra input tuples each output
/// group's box pulls in, relative to the α-assigned tuples:
/// `(Σ|ð(g)| − Σ|α⁻¹(g)|) / Σ|α⁻¹(g)| · 100%` — mirrors the membership
/// rule of the aggregation semantics.
pub fn over_grouping_pct(rel: &AuRelation, group_by: &[usize]) -> f64 {
    use std::collections::HashMap;
    let mut groups: HashMap<Tuple, (audb_storage::RangeTuple, usize)> = HashMap::new();
    for (t, _) in rel.rows() {
        let gp = t.project(group_by);
        let key = gp.sg();
        groups
            .entry(key)
            .and_modify(|(bbox, n)| {
                *bbox = bbox.merge_keep_sg(&gp);
                *n += 1;
            })
            .or_insert((gp, 1));
    }
    let mut alpha_total = 0usize;
    let mut member_total = 0usize;
    for (key, (bbox, n)) in &groups {
        alpha_total += n;
        member_total += rel
            .rows()
            .iter()
            .filter(|(t, _)| {
                let gp = t.project(group_by);
                gp.overlaps(bbox) && !(gp.is_certain() && gp.sg() != *key)
            })
            .count();
    }
    if alpha_total == 0 {
        0.0
    } else {
        (member_total as f64 - alpha_total as f64) / alpha_total as f64 * 100.0
    }
}

/// Aggregate-range over-estimation factor (Figure 15b): mean ratio of
/// the AU result's aggregate range width to the exact (tight) width,
/// over groups present in both (widths stabilized by +1).
pub fn range_overestimation_factor(
    au_result: &AuRelation,
    group_out_col: usize,
    agg_out_col: usize,
    exact: &BTreeMap<Value, GroupInfo>,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, _) in au_result.rows() {
        let g = &t.0[group_out_col].sg;
        let Some(info) = exact.get(g) else { continue };
        let r = &t.0[agg_out_col];
        let wau = numeric_width(&r.lb, &r.ub);
        let wex = (info.hi - info.lo).max(0.0);
        total += (wau + 1.0) / (wex + 1.0);
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_incomplete::XTuple;
    use audb_query::{eval_au, table, AggSpec, AuConfig};
    use audb_storage::Schema;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn xdb() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["id", "g", "v"]),
                vec![
                    XTuple::certain(it(&[1, 1, 10])),
                    XTuple::new(vec![(it(&[2, 1, 20]), 0.5), (it(&[2, 2, 30]), 0.5)]),
                    XTuple::new(vec![(it(&[3, 2, 5]), 0.4)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn exact_spj_matches_world_enumeration() {
        let db = xdb();
        let q = table("r").select(col(1).eq(lit(1i64)));
        let (possible, certain) = exact_spj(&db, &q, 1024).unwrap();
        let inc = db.to_incomplete(64).unwrap();
        let res = inc.eval(&q).unwrap();
        assert_eq!(possible, res.all_tuples());
        assert_eq!(certain, res.certain_tuples());
    }

    #[test]
    fn au_spj_has_full_recall() {
        let db = xdb();
        let q = table("r").select(col(1).eq(lit(1i64)));
        let au = eval_au(&db.to_au(), &q, &AuConfig::precise()).unwrap();
        let acc = spj_accuracy(&db, &q, &au, &[0]).unwrap();
        assert_eq!(acc.certain_recall, 1.0);
        assert_eq!(acc.possible_recall_by_id, 1.0);
        assert_eq!(acc.possible_recall_by_value, 1.0);
        assert!(acc.tightness_min >= 1.0);
    }

    #[test]
    fn exact_group_agg_vs_enumeration() {
        let db = xdb();
        let x = db.get("r").unwrap();
        let exact = exact_group_agg(x, None, 1, AggFunc::Sum, 2).unwrap();
        // group 1: tuple1 certain 10; tuple2 may add 20 → [10, 30]
        let g1 = &exact[&Value::Int(1)];
        assert!(g1.certain);
        assert_eq!((g1.lo, g1.hi), (10.0, 30.0));
        // group 2: optional 5, alternative 30 → [0, 35]
        let g2 = &exact[&Value::Int(2)];
        assert!(!g2.certain);
        assert_eq!((g2.lo, g2.hi), (0.0, 35.0));
    }

    #[test]
    fn au_agg_bounds_contain_exact() {
        let db = xdb();
        let x = db.get("r").unwrap();
        let q = table("r").aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, col(2), "s")]);
        let au = eval_au(&db.to_au(), &q, &AuConfig::precise()).unwrap();
        let exact = exact_group_agg(x, None, 1, AggFunc::Sum, 2).unwrap();
        let factor = range_overestimation_factor(&au, 0, 1, &exact);
        assert!(factor >= 1.0, "AU ranges at least as wide as exact: {factor}");
        for (t, _) in au.rows() {
            if let Some(info) = exact.get(&t.0[0].sg) {
                let lo = t.0[1].lb.as_f64().unwrap();
                let hi = t.0[1].ub.as_f64().unwrap();
                assert!(lo <= info.lo + 1e-9 && info.hi <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn over_grouping_zero_for_certain_groups() {
        let db = xdb();
        let au = db.to_au();
        let rel = au.get("r").unwrap();
        let pct = over_grouping_pct(rel, &[0]); // ids are certain
        assert_eq!(pct, 0.0);
        let pct_g = over_grouping_pct(rel, &[1]); // group col is uncertain
        assert!(pct_g > 0.0);
    }
}
