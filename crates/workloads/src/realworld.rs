//! Real-world-shaped datasets (Section 12.3): synthetic stand-ins for
//! the paper's Netflix / Chicago Crimes / Hospital Compare datasets,
//! generated with the *same key-violation structure* the paper reports
//! (percentage of uncertain tuples, average possibilities per uncertain
//! tuple — Figure 17's dataset annotations), repaired with the
//! key-repair lens of Section 11.4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use audb_core::{col, lit, Value};
use audb_incomplete::{key_repair_lens, XDb};
use audb_query::{table, AggFunc, AggSpec, Query};
use audb_storage::{Relation, Schema, Tuple};

/// One benchmark dataset: a dirty relation, its repair as an x-DB, and
/// the two queries (SPJ + group-by) run against it.
pub struct RealWorldCase {
    pub name: &'static str,
    pub table: &'static str,
    pub xdb: XDb,
    pub spj: (&'static str, Query),
    pub groupby: (&'static str, Query),
}

fn weighted_extra_rows(rng: &mut StdRng, violation_rate: f64, avg_possibilities: f64) -> usize {
    if rng.gen_bool(violation_rate) {
        // 2.x possibilities on average: mostly 2, sometimes 3-4
        let extra = avg_possibilities - 1.0;
        let base = extra.floor() as usize;
        base + rng.gen_bool(extra - base as f64) as usize
    } else {
        0
    }
}

/// Netflix-shaped: `(show_id, title, director, release_year)`,
/// ~1.9% violations, ~2.1 possibilities.
pub fn netflix(rows: usize, seed: u64) -> XDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::named(&["show_id", "title", "director", "release_year"]);
    let mut data = Vec::new();
    for i in 0..rows {
        let director = format!("Director {}", rng.gen_range(0..(rows / 4).max(1)));
        let year = rng.gen_range(1990..=2021i64);
        let base = Tuple::new(vec![
            Value::Int(i as i64),
            Value::str(format!("Show {i}")),
            Value::str(director.clone()),
            Value::Int(year),
        ]);
        data.push((base.clone(), 1));
        for _ in 0..weighted_extra_rows(&mut rng, 0.019, 2.1) {
            // conflicting source: same show id, different year/director
            data.push((
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(format!("Show {i}")),
                    Value::str(format!("Director {}", rng.gen_range(0..(rows / 4).max(1)))),
                    Value::Int(year + rng.gen_range(-2i64..=2)),
                ]),
                1,
            ));
        }
    }
    let rel = Relation::from_rows(schema, data);
    let mut out = XDb::default();
    out.insert("netflix", key_repair_lens(&rel, &[0]));
    out
}

/// Crimes-shaped: `(id, year, district, primary_type, arrest)`,
/// ~0.1% violations, ~3.2 possibilities.
pub fn crimes(rows: usize, seed: u64) -> XDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let types = ["THEFT", "BATTERY", "HOMICIDE", "NARCOTICS", "ASSAULT"];
    let schema = Schema::named(&["id", "year", "district", "primary_type", "arrest"]);
    let mut data = Vec::new();
    for i in 0..rows {
        let year = rng.gen_range(2001..=2017i64);
        let district = rng.gen_range(1..=25i64);
        let ptype = types[rng.gen_range(0..types.len())];
        let arrest = if rng.gen_bool(0.3) { "True" } else { "False" };
        data.push((
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(year),
                Value::Int(district),
                Value::str(ptype),
                Value::str(arrest),
            ]),
            1,
        ));
        for _ in 0..weighted_extra_rows(&mut rng, 0.001, 3.2) {
            data.push((
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Int(year + rng.gen_range(0i64..=1)),
                    Value::Int(rng.gen_range(1..=25)),
                    Value::str(types[rng.gen_range(0..types.len())]),
                    Value::str(if rng.gen_bool(0.5) { "True" } else { "False" }),
                ]),
                1,
            ));
        }
    }
    let rel = Relation::from_rows(schema, data);
    let mut out = XDb::default();
    out.insert("crimes", key_repair_lens(&rel, &[0]));
    out
}

/// Healthcare-shaped: `(id, facility, state, measure, score)`,
/// ~1.0% violations, ~2.7 possibilities.
pub fn healthcare(rows: usize, seed: u64) -> XDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let states = ["TX", "CA", "NY", "IL", "FL", "OH"];
    let measures = ["HAI_1_SIR", "HAI_2_SIR", "MORT_30", "READM_30"];
    let schema = Schema::named(&["id", "facility", "state", "measure", "score"]);
    let mut data = Vec::new();
    for i in 0..rows {
        let facility = format!("Facility {}", rng.gen_range(0..(rows / 8).max(1)));
        data.push((
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::str(facility.clone()),
                Value::str(states[rng.gen_range(0..states.len())]),
                Value::str(measures[rng.gen_range(0..measures.len())]),
                Value::Int(rng.gen_range(0..=100)),
            ]),
            1,
        ));
        for _ in 0..weighted_extra_rows(&mut rng, 0.010, 2.7) {
            data.push((
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::str(facility.clone()),
                    Value::str(states[rng.gen_range(0..states.len())]),
                    Value::str(measures[rng.gen_range(0..measures.len())]),
                    Value::Int(rng.gen_range(0..=100)),
                ]),
                1,
            ));
        }
    }
    let rel = Relation::from_rows(schema, data);
    let mut out = XDb::default();
    out.insert("healthcare", key_repair_lens(&rel, &[0]));
    out
}

/// Q_{n,1}: shows released before 2017.
pub fn qn1() -> Query {
    table("netflix").select(col(3).lt(lit(2017i64))).project(vec![
        (col(1), "title"),
        (col(3), "release_year"),
        (col(2), "director"),
    ])
}

/// Q_{n,2}: most recent show per director.
pub fn qn2() -> Query {
    table("netflix").aggregate(vec![2], vec![AggSpec::new(AggFunc::Max, col(3), "latest")])
}

/// Q_{c,1}: un-arrested homicides.
pub fn qc1() -> Query {
    table("crimes")
        .select(col(3).eq(lit("HOMICIDE")).and(col(4).eq(lit("False"))))
        .project(vec![(col(1), "year"), (col(2), "district")])
}

/// Q_{c,2}: crimes per year.
pub fn qc2() -> Query {
    table("crimes").aggregate(vec![1], vec![AggSpec::count("cnt")])
}

/// Q_{h,1}: HAI_1_SIR scores outside TX/CA.
pub fn qh1() -> Query {
    table("healthcare")
        .select(col(2).neq(lit("TX")).and(col(2).neq(lit("CA"))).and(col(3).eq(lit("HAI_1_SIR"))))
        .project(vec![(col(1), "facility"), (col(3), "measure"), (col(4), "score")])
}

/// Q_{h,2}: total score per facility.
pub fn qh2() -> Query {
    table("healthcare").aggregate(vec![1], vec![AggSpec::new(AggFunc::Sum, col(4), "total")])
}

/// All six (dataset, query) cases of Figure 17.
pub fn all_cases(rows: usize, seed: u64) -> Vec<RealWorldCase> {
    vec![
        RealWorldCase {
            name: "Netflix",
            table: "netflix",
            xdb: netflix(rows, seed),
            spj: ("Qn1", qn1()),
            groupby: ("Qn2", qn2()),
        },
        RealWorldCase {
            name: "Crimes",
            table: "crimes",
            xdb: crimes(rows, seed + 1),
            spj: ("Qc1", qc1()),
            groupby: ("Qc2", qc2()),
        },
        RealWorldCase {
            name: "Healthcare",
            table: "healthcare",
            xdb: healthcare(rows, seed + 2),
            spj: ("Qh1", qh1()),
            groupby: ("Qh2", qh2()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_incomplete::repair_stats;
    use audb_query::{eval_au, eval_det, AuConfig};

    #[test]
    fn violation_rates_match_figure_17() {
        let x = netflix(4000, 1);
        let stats = repair_stats(&x.get("netflix").unwrap().clone());
        let rate = stats.violating_keys as f64 / stats.total_keys as f64;
        assert!((rate - 0.019).abs() < 0.01, "netflix violation rate {rate}");
        assert!((stats.avg_possibilities - 2.1).abs() < 0.4);

        let x = healthcare(4000, 2);
        let stats = repair_stats(&x.get("healthcare").unwrap().clone());
        let rate = stats.violating_keys as f64 / stats.total_keys as f64;
        assert!((rate - 0.010).abs() < 0.006, "healthcare violation rate {rate}");
    }

    #[test]
    fn queries_run_on_all_cases() {
        for case in all_cases(300, 3) {
            let au = case.xdb.to_au();
            let sg = case.xdb.sg_world();
            for (name, q) in [&case.spj, &case.groupby] {
                let det = eval_det(&sg, q).unwrap_or_else(|e| panic!("{name}: {e}"));
                let auout = eval_au(&au, q, &AuConfig::compressed(32))
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(auout.sg_world(), det, "{name} SGW mismatch");
            }
        }
    }

    #[test]
    fn repaired_tuples_are_certain() {
        let x = netflix(500, 4);
        let au = x.to_au();
        let rel = au.get("netflix").unwrap();
        assert!(rel.rows().iter().all(|(_, k)| k.lb == 1));
    }
}
