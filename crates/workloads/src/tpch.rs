//! PDBench-style uncertain TPC-H (Section 12.1): a scaled-down TPC-H
//! data generator with the same schema shape, plus PDBench's uncertainty
//! injection — a percentage of cells is replaced by up to 8 random
//! alternatives drawn uniformly from the attribute's domain, yielding an
//! x-DB (block-independent database).
//!
//! Substitution note (DESIGN.md): scale factors map to row counts
//! (SF 1 ≈ 6k lineitems here instead of 6M) — every reported effect is a
//! *relative* measurement, which the generator preserves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use audb_core::{col, lit, Value};
use audb_incomplete::{XDb, XRelation, XTuple};
use audb_query::{table, AggFunc, AggSpec, Query};
use audb_storage::{Database, Relation, Schema, Tuple};

pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
pub const LINE_STATUS: [&str; 2] = ["O", "F"];
/// Dates are day numbers in [1, 2557] (the 7 TPC-H years).
pub const MAX_DATE: i64 = 2557;

/// Generator configuration. `scale = 1.0` ≈ 150 customers / 1.5k orders
/// / 6k lineitems (a 1000× linear shrink of TPC-H SF1).
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    pub scale: f64,
    pub seed: u64,
}

impl TpchConfig {
    pub fn new(scale: f64, seed: u64) -> Self {
        TpchConfig { scale, seed }
    }

    pub fn customers(&self) -> usize {
        ((150.0 * self.scale) as usize).max(5)
    }
    pub fn orders(&self) -> usize {
        self.customers() * 10
    }
    pub fn lineitems(&self) -> usize {
        self.orders() * 4
    }
    /// At least one supplier per nation so "local supplier" joins (Q5)
    /// stay non-empty at small scales.
    pub fn suppliers(&self) -> usize {
        ((50.0 * self.scale) as usize).max(25)
    }
}

pub fn customer_schema() -> Schema {
    Schema::named(&["c_key", "c_nationkey", "c_acctbal", "c_mktsegment"])
}
pub fn orders_schema() -> Schema {
    Schema::named(&["o_key", "o_custkey", "o_totalprice", "o_orderdate", "o_shippriority"])
}
pub fn lineitem_schema() -> Schema {
    Schema::named(&[
        "l_orderkey",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_returnflag",
        "l_linestatus",
        "l_shipdate",
        "l_suppkey",
    ])
}
pub fn supplier_schema() -> Schema {
    Schema::named(&["s_key", "s_nationkey"])
}
pub fn nation_schema() -> Schema {
    Schema::named(&["n_key", "n_name", "n_regionkey"])
}
pub fn region_schema() -> Schema {
    Schema::named(&["r_key", "r_name"])
}

/// Generate the deterministic base database.
pub fn gen_tpch(cfg: TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();

    let regions: Vec<Tuple> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| Tuple::new(vec![Value::Int(i as i64), Value::str(*name)]))
        .collect();
    db.insert("region", Relation::from_tuples(region_schema(), regions));

    let nations: Vec<Tuple> = (0..25)
        .map(|i| {
            Tuple::new(vec![Value::Int(i), Value::str(format!("NATION_{i:02}")), Value::Int(i % 5)])
        })
        .collect();
    db.insert("nation", Relation::from_tuples(nation_schema(), nations));

    let suppliers: Vec<Tuple> = (0..cfg.suppliers())
        .map(|i| Tuple::new(vec![Value::Int(i as i64), Value::Int(i as i64 % 25)]))
        .collect();
    db.insert("supplier", Relation::from_tuples(supplier_schema(), suppliers));

    let customers: Vec<Tuple> = (0..cfg.customers())
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..25)),
                Value::float((rng.gen_range(-99999..999999) as f64) / 100.0),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ])
        })
        .collect();
    db.insert("customer", Relation::from_tuples(customer_schema(), customers));

    let n_cust = cfg.customers() as i64;
    let orders: Vec<Tuple> = (0..cfg.orders())
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_cust)),
                Value::float((rng.gen_range(10_000..50_000_000) as f64) / 100.0),
                Value::Int(rng.gen_range(1..=MAX_DATE)),
                Value::Int(rng.gen_range(0..2)),
            ])
        })
        .collect();
    db.insert("orders", Relation::from_tuples(orders_schema(), orders));

    let n_orders = cfg.orders() as i64;
    let n_supp = cfg.suppliers() as i64;
    let lineitems: Vec<Tuple> = (0..cfg.lineitems())
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..n_orders)),
                Value::Int(rng.gen_range(1..=50)),
                Value::float((rng.gen_range(90_000..10_500_000) as f64) / 100.0),
                Value::float(rng.gen_range(0..=10) as f64 / 100.0),
                Value::float(rng.gen_range(0..=8) as f64 / 100.0),
                Value::str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())]),
                Value::str(LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())]),
                Value::Int(rng.gen_range(1..=MAX_DATE)),
                Value::Int(rng.gen_range(0..n_supp)),
            ])
        })
        .collect();
    db.insert("lineitem", Relation::from_tuples(lineitem_schema(), lineitems));

    db
}

/// PDBench uncertainty injection: each cell of the fact tables is
/// uncertain with probability `cell_pct`; an uncertain row becomes an
/// x-tuple with up to `max_alts` alternatives whose uncertain cells are
/// redrawn uniformly from the column's observed domain (a worst case for
/// range bounds, as the paper notes). Dimension tables stay certain.
pub fn inject_uncertainty(db: &Database, cell_pct: f64, max_alts: usize, seed: u64) -> XDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = XDb::default();
    for (name, rel) in db.iter() {
        let keep_certain = matches!(name.as_str(), "nation" | "region");
        // per-column sample pools for alternative values
        let arity = rel.schema.arity();
        let mut pools: Vec<Vec<Value>> = vec![Vec::new(); arity];
        for (t, _) in rel.rows().iter().take(512) {
            for (i, v) in t.0.iter().enumerate() {
                pools[i].push(v.clone());
            }
        }
        let mut xtuples = Vec::with_capacity(rel.rows().len());
        for (t, k) in rel.rows() {
            for _ in 0..*k {
                if keep_certain {
                    xtuples.push(XTuple::certain(t.clone()));
                    continue;
                }
                // key columns (index 0) stay certain to keep joins sane
                let uncertain_cells: Vec<usize> =
                    (1..arity).filter(|_| rng.gen_bool(cell_pct)).collect();
                if uncertain_cells.is_empty() {
                    xtuples.push(XTuple::certain(t.clone()));
                    continue;
                }
                let alts = rng.gen_range(2..=max_alts.max(2));
                let mut alternatives = vec![t.clone()];
                for _ in 1..alts {
                    let mut alt = t.clone();
                    for &c in &uncertain_cells {
                        alt.0[c] = pools[c][rng.gen_range(0..pools[c].len())].clone();
                    }
                    alternatives.push(alt);
                }
                let p = 1.0 / alternatives.len() as f64;
                let mut weighted: Vec<(Tuple, f64)> =
                    alternatives.into_iter().map(|a| (a, p)).collect();
                // make the original row the selected guess
                weighted[0].1 += 1e-9;
                let norm: f64 = weighted.iter().map(|(_, q)| q).sum();
                for w in weighted.iter_mut() {
                    w.1 /= norm;
                }
                xtuples.push(XTuple::new(weighted));
            }
        }
        out.insert(name.clone(), XRelation::new(rel.schema.clone(), xtuples));
    }
    out
}

fn revenue(price_col: usize, disc_col: usize) -> audb_core::Expr {
    col(price_col).mul(lit(1.0f64).sub(col(disc_col)))
}

/// TPC-H Q1 (pricing summary): aggregation with certain group-by over
/// uncertain measures.
pub fn q1() -> Query {
    table("lineitem").select(col(7).leq(lit(MAX_DATE - 90))).aggregate(
        vec![5, 6],
        vec![
            AggSpec::new(AggFunc::Sum, col(1), "sum_qty"),
            AggSpec::new(AggFunc::Sum, col(2), "sum_base_price"),
            AggSpec::new(AggFunc::Sum, revenue(2, 3), "sum_disc_price"),
            AggSpec::new(AggFunc::Avg, col(1), "avg_qty"),
            AggSpec::new(AggFunc::Avg, col(2), "avg_price"),
            AggSpec::count("count_order"),
        ],
    )
}

/// TPC-H Q3 (shipping priority): 3-way join + aggregation.
pub fn q3() -> Query {
    table("customer")
        .select(col(3).eq(lit("BUILDING")))
        .join_on(table("orders"), col(0).eq(col(5)))
        .select(col(7).lt(lit(MAX_DATE / 2)))
        .join_on(table("lineitem"), col(4).eq(col(9)))
        .select(col(16).gt(lit(MAX_DATE / 2)))
        .aggregate(vec![4, 7, 8], vec![AggSpec::new(AggFunc::Sum, revenue(11, 12), "revenue")])
}

/// TPC-H Q5 (local supplier volume): 6-way join + aggregation.
pub fn q5() -> Query {
    table("region")
        .select(col(1).eq(lit("ASIA")))
        .join_on(table("nation"), col(0).eq(col(4)))
        .join_on(table("customer"), col(2).eq(col(6)))
        .join_on(table("orders"), col(5).eq(col(10)))
        .select(col(12).lt(lit(MAX_DATE / 3)))
        .join_on(table("lineitem"), col(9).eq(col(14)))
        .join_on(table("supplier"), col(22).eq(col(23)).and(col(24).eq(col(2))))
        .aggregate(vec![3], vec![AggSpec::new(AggFunc::Sum, revenue(16, 17), "revenue")])
}

/// TPC-H Q7 (volume shipping): join + grouping by nation pair.
pub fn q7() -> Query {
    table("supplier")
        .join_on(table("lineitem"), col(0).eq(col(10)))
        .join_on(table("orders"), col(2).eq(col(11)))
        .join_on(table("customer"), col(12).eq(col(16)))
        .select(
            col(9)
                .geq(lit(MAX_DATE / 4))
                .and(col(9).leq(lit(3 * MAX_DATE / 4)))
                .and(col(1).neq(col(17))),
        )
        .aggregate(vec![1, 17], vec![AggSpec::new(AggFunc::Sum, revenue(4, 5), "revenue")])
}

/// TPC-H Q10 (returned item reporting).
pub fn q10() -> Query {
    table("lineitem")
        .select(col(5).eq(lit("R")))
        .join_on(table("orders"), col(0).eq(col(9)))
        .select(col(12).geq(lit(MAX_DATE / 2)).and(col(12).lt(lit(MAX_DATE / 2 + 400))))
        .join_on(table("customer"), col(10).eq(col(14)))
        .aggregate(vec![14], vec![AggSpec::new(AggFunc::Sum, revenue(2, 3), "revenue")])
}

/// The TPC-H queries of Figure 12.
pub fn tpch_queries() -> Vec<(&'static str, Query)> {
    vec![("Q1", q1()), ("Q3", q3()), ("Q5", q5()), ("Q7", q7()), ("Q10", q10())]
}

/// The three PDBench SPJ queries (Figure 10's workload).
pub fn pdbench_queries() -> Vec<(&'static str, Query)> {
    let p1 = table("lineitem")
        .select(col(1).geq(lit(30i64)).and(col(7).leq(lit(MAX_DATE / 2))))
        .project(vec![(col(0), "l_orderkey"), (col(1), "l_quantity"), (col(2), "l_extendedprice")]);
    let p2 = table("customer")
        .join_on(table("orders"), col(0).eq(col(5)))
        .select(col(3).eq(lit("BUILDING")))
        .project(vec![(col(0), "c_key"), (col(4), "o_key"), (col(6), "o_totalprice")]);
    let p3 = table("customer")
        .join_on(table("orders"), col(0).eq(col(5)))
        .join_on(table("lineitem"), col(4).eq(col(9)))
        .select(col(10).geq(lit(25i64)))
        .project(vec![(col(0), "c_key"), (col(4), "o_key"), (col(11), "l_extendedprice")]);
    vec![("P1", p1), ("P2", p2), ("P3", p3)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_query::{eval_au, eval_det, AuConfig};

    #[test]
    fn generator_produces_consistent_sizes() {
        let cfg = TpchConfig::new(0.1, 1);
        let db = gen_tpch(cfg);
        assert_eq!(db.get("customer").unwrap().total_count() as usize, cfg.customers());
        assert_eq!(db.get("orders").unwrap().total_count() as usize, cfg.orders());
        assert_eq!(db.get("lineitem").unwrap().total_count() as usize, cfg.lineitems());
        assert_eq!(db.get("region").unwrap().total_count(), 5);
        assert_eq!(db.get("nation").unwrap().total_count(), 25);
    }

    #[test]
    fn schemas_resolve_query_columns() {
        let db = gen_tpch(TpchConfig::new(0.05, 2));
        for (name, q) in tpch_queries().iter().chain(pdbench_queries().iter()) {
            let schema = q.schema(&db).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(schema.arity() > 0, "{name}");
        }
    }

    #[test]
    fn queries_run_deterministically() {
        let db = gen_tpch(TpchConfig::new(0.05, 3));
        for (name, q) in tpch_queries() {
            let out = eval_det(&db, &q).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.is_empty(), "{name} should produce rows");
        }
        for (name, q) in pdbench_queries() {
            let _ = eval_det(&db, &q).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn uncertainty_injection_hits_target_rate() {
        let db = gen_tpch(TpchConfig::new(0.1, 4));
        let xdb = inject_uncertainty(&db, 0.10, 8, 5);
        let li = xdb.get("lineitem").unwrap();
        let ratio = li.uncertain_ratio();
        // ~8 non-key cells at 10% each ⇒ roughly half the rows uncertain
        assert!(ratio > 0.3 && ratio < 0.8, "ratio {ratio}");
        // SG world of the x-DB equals the base database (originals picked)
        assert_eq!(
            xdb.sg_world().get("lineitem").unwrap(),
            &db.get("lineitem").unwrap().normalized()
        );
    }

    #[test]
    fn au_translation_preserves_sgw_through_queries() {
        let db = gen_tpch(TpchConfig::new(0.03, 6));
        let xdb = inject_uncertainty(&db, 0.02, 4, 7);
        let au = xdb.to_au();
        let q = pdbench_queries().remove(0).1;
        let native = eval_au(&au, &q, &AuConfig::compressed(16)).unwrap();
        let det = eval_det(&db, &q).unwrap();
        assert_eq!(native.sg_world(), det);
    }

    #[test]
    fn aggregation_query_sgw_matches_det() {
        let db = gen_tpch(TpchConfig::new(0.03, 8));
        let xdb = inject_uncertainty(&db, 0.02, 4, 9);
        let au = xdb.to_au();
        let q = q1();
        let native = eval_au(&au, &q, &AuConfig::compressed(32)).unwrap();
        let det = eval_det(&db, &q).unwrap();
        assert_eq!(native.sg_world(), det);
    }
}
