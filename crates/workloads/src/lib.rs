//! # audb-workloads
//!
//! Workload generators and accuracy metrics for the paper's evaluation
//! (Section 12):
//!
//! * [`tpch`] — PDBench-style uncertain TPC-H (schema-shaped generator,
//!   cell-level uncertainty injection, queries Q1/Q3/Q5/Q7/Q10 and the
//!   PDBench SPJ queries);
//! * [`micro`] — wide synthetic tables with tunable uncertainty and
//!   range widths (Figures 13–16);
//! * [`realworld`] — key-violation datasets shaped like the paper's
//!   Netflix / Crimes / Healthcare data (Figure 17);
//! * [`metrics`] — recall, bound tightness, over-grouping and range
//!   over-estimation with exact ground truths.

pub mod metrics;
pub mod micro;
pub mod realworld;
pub mod tpch;

pub use metrics::{
    au_certain_tuples, au_covers, exact_group_agg, exact_spj, over_grouping_pct,
    range_overestimation_factor, recall, spj_accuracy, GroupInfo, SpjAccuracy,
};
pub use micro::{
    gen_micro_au, gen_micro_det, gen_micro_xdb, micro_au_db, micro_join_db, MicroConfig,
};
pub use realworld::{all_cases, RealWorldCase};
pub use tpch::{gen_tpch, inject_uncertainty, pdbench_queries, tpch_queries, TpchConfig};
