//! Microbenchmark generators (Section 12.2): wide synthetic tables with
//! tunable row count, attribute count, uncertainty percentage and
//! attribute-range width — the knobs behind Figures 13–16.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use audb_core::{AuAnnot, RangeValue, Value};
use audb_incomplete::{XDb, XRelation, XTuple};
use audb_storage::{AuDatabase, AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

/// Configuration for a synthetic table.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    pub rows: usize,
    pub cols: usize,
    /// values are uniform in `[0, domain)`
    pub domain: i64,
    /// fraction of rows that carry attribute uncertainty
    pub uncert_pct: f64,
    /// width of uncertain ranges as a fraction of the domain
    pub range_frac: f64,
    pub seed: u64,
}

impl MicroConfig {
    pub fn new(rows: usize, cols: usize) -> Self {
        MicroConfig { rows, cols, domain: 1000, uncert_pct: 0.05, range_frac: 0.05, seed: 42 }
    }
    pub fn domain(mut self, d: i64) -> Self {
        self.domain = d;
        self
    }
    pub fn uncertainty(mut self, pct: f64) -> Self {
        self.uncert_pct = pct;
        self
    }
    pub fn range_frac(mut self, f: f64) -> Self {
        self.range_frac = f;
        self
    }
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    pub fn schema(&self) -> Schema {
        Schema::new((0..self.cols).map(|i| format!("a{i}")).collect())
    }
}

/// Generate the deterministic table (the SGW).
pub fn gen_micro_det(cfg: &MicroConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows = (0..cfg.rows)
        .map(|_| {
            Tuple::new((0..cfg.cols).map(|_| Value::Int(rng.gen_range(0..cfg.domain))).collect())
        })
        .map(|t| (t, 1))
        .collect();
    Relation::from_rows(cfg.schema(), rows)
}

/// Generate the AU table directly: uncertain rows get ranges of width
/// `range_frac · domain` centred on the SG value (clamped to the domain).
pub fn gen_micro_au(cfg: &MicroConfig) -> AuRelation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let half = ((cfg.domain as f64 * cfg.range_frac) / 2.0).ceil() as i64;
    let mut out = AuRelation::empty(cfg.schema());
    for _ in 0..cfg.rows {
        let vals: Vec<i64> = (0..cfg.cols).map(|_| rng.gen_range(0..cfg.domain)).collect();
        let uncertain = rng.gen_bool(cfg.uncert_pct);
        let ranges: Vec<RangeValue> = vals
            .iter()
            .map(|v| {
                if uncertain && half > 0 {
                    RangeValue::range(
                        (*v - half).max(0),
                        *v,
                        (*v + half).min(cfg.domain - 1).max(*v),
                    )
                } else {
                    RangeValue::certain(Value::Int(*v))
                }
            })
            .collect();
        out.push(RangeTuple::new(ranges), AuAnnot::certain_one());
    }
    out.normalized()
}

/// Matching pair: the same data as `gen_micro_au` plus its SGW — use for
/// AU-DB vs Det comparisons on identical content.
pub fn gen_micro_pair(cfg: &MicroConfig) -> (AuRelation, Relation) {
    let au = gen_micro_au(cfg);
    let sg = au.sg_world();
    (au, sg)
}

/// Databases wrapping the single table `t`.
pub fn micro_au_db(cfg: &MicroConfig) -> (AuDatabase, Database) {
    let (au, sg) = gen_micro_pair(cfg);
    let mut audb = AuDatabase::new();
    audb.insert("t", au);
    let mut db = Database::new();
    db.insert("t", sg);
    (audb, db)
}

/// Two join tables `t1`, `t2` over a shared key domain (Figures 14/16).
pub fn micro_join_db(cfg: &MicroConfig) -> (AuDatabase, Database) {
    let mut audb = AuDatabase::new();
    let mut db = Database::new();
    for (i, name) in ["t1", "t2"].iter().enumerate() {
        let (au, sg) = gen_micro_pair(&MicroConfig { seed: cfg.seed + i as u64, ..*cfg });
        audb.insert(*name, au);
        db.insert(*name, sg);
    }
    (audb, db)
}

/// x-DB variant for accuracy experiments (Figure 15): uncertain rows
/// become x-tuples with `alts` alternatives drawn from the range window.
pub fn gen_micro_xdb(cfg: &MicroConfig, alts: usize) -> XDb {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let half = ((cfg.domain as f64 * cfg.range_frac) / 2.0).ceil() as i64;
    let mut xtuples = Vec::with_capacity(cfg.rows);
    for _ in 0..cfg.rows {
        let vals: Vec<i64> = (0..cfg.cols).map(|_| rng.gen_range(0..cfg.domain)).collect();
        let base = Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect());
        if rng.gen_bool(cfg.uncert_pct) && half > 0 {
            let n = alts.max(2);
            let mut alternatives = vec![base.clone()];
            for _ in 1..n {
                let alt: Vec<Value> = vals
                    .iter()
                    .map(|v| {
                        Value::Int(rng.gen_range(
                            (*v - half).max(0)..=(*v + half).min(cfg.domain - 1).max(*v),
                        ))
                    })
                    .collect();
                alternatives.push(Tuple::new(alt));
            }
            let p = 1.0 / alternatives.len() as f64;
            let mut weighted: Vec<(Tuple, f64)> =
                alternatives.into_iter().map(|a| (a, p)).collect();
            weighted[0].1 += 1e-9;
            let norm: f64 = weighted.iter().map(|(_, q)| q).sum();
            for w in weighted.iter_mut() {
                w.1 /= norm;
            }
            xtuples.push(XTuple::new(weighted));
        } else {
            xtuples.push(XTuple::certain(base));
        }
    }
    let mut out = XDb::default();
    out.insert("t", XRelation::new(cfg.schema(), xtuples));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::col;
    use audb_query::{eval_au, eval_det, table, AggFunc, AggSpec, AuConfig};

    #[test]
    fn deterministic_and_au_share_sgw() {
        let cfg = MicroConfig::new(200, 5).uncertainty(0.2).seed(7);
        let (au, sg) = gen_micro_pair(&cfg);
        assert_eq!(au.sg_world(), sg);
        assert_eq!(sg.total_count(), 200);
    }

    #[test]
    fn uncertainty_rate_close_to_target() {
        let cfg = MicroConfig::new(2000, 3).uncertainty(0.1).seed(8);
        let au = gen_micro_au(&cfg);
        let uncertain = au.rows().iter().filter(|(t, _)| !t.is_certain()).count();
        let rate = uncertain as f64 / au.len() as f64;
        assert!((rate - 0.1).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn range_width_scales_with_config() {
        let narrow = gen_micro_au(&MicroConfig::new(500, 2).range_frac(0.02).uncertainty(1.0));
        let wide = gen_micro_au(&MicroConfig::new(500, 2).range_frac(0.5).uncertainty(1.0));
        assert!(wide.mean_range_width(500.0) > narrow.mean_range_width(500.0) * 5.0);
    }

    #[test]
    fn micro_aggregation_runs_both_engines() {
        let cfg = MicroConfig::new(300, 4).uncertainty(0.05).seed(9);
        let (audb, db) = micro_au_db(&cfg);
        let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let det = eval_det(&db, &q).unwrap();
        let au = eval_au(&audb, &q, &AuConfig::compressed(25)).unwrap();
        assert_eq!(au.sg_world(), det);
    }

    #[test]
    fn xdb_variant_bounded_by_au_translation() {
        let cfg = MicroConfig::new(12, 2).uncertainty(0.5).range_frac(0.1).seed(10);
        let xdb = gen_micro_xdb(&cfg, 3);
        if let Some(inc) = xdb.to_incomplete(4096) {
            let au = xdb.to_au();
            assert!(audb_incomplete::database_bounds_incomplete(&au, &inc));
        }
    }
}
