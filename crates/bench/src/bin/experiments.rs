//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Section 12). Each subcommand prints rows/series
//! shaped like the corresponding paper artifact; EXPERIMENTS.md records
//! paper-vs-measured values.
//!
//! Usage:
//!   experiments <fig10a|fig10b|fig11|fig12|fig13a|fig13b|fig13c|fig13d|
//!                fig14|fig15|fig16|fig17|ablation|all> [--quick] [--full]
//!
//! `--quick` shrinks workloads ~5-10x for smoke runs; `--full` grows
//! them toward paper scale (slower). Default sizes complete each
//! experiment in roughly a minute on a laptop.

use audb_baselines::{
    eval_libkin, eval_trio, run_maybms, run_mcdb, run_sgqp, run_symb, trio_aggregate,
    trio_aggregate_chain, xrelation_to_vtable, VDatabase,
};
use audb_bench::{fmt_ratio, fmt_s, header, print_row, time, time_median, xdb_to_ua};
use audb_core::{col, Value};
use audb_incomplete::XDb;
use audb_query::{eval_au, eval_det, eval_ua, opt, table, AggFunc, AggSpec, AuConfig, Query};
use audb_storage::AuDatabase;
use audb_workloads::{
    exact_group_agg, gen_micro_xdb, gen_tpch, inject_uncertainty, micro_au_db, micro_join_db,
    over_grouping_pct, pdbench_queries, range_overestimation_factor, spj_accuracy, tpch_queries,
    MicroConfig, TpchConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Clone, Copy)]
struct Opts {
    /// workload multiplier: 0 = quick, 1 = default, 2 = full
    size: u8,
    seed: u64,
}

impl Opts {
    fn pick<T: Copy>(&self, quick: T, normal: T, full: T) -> T {
        match self.size {
            0 => quick,
            2 => full,
            _ => normal,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts { size: 1, seed: 20260611 };
    let mut cmd = String::from("all");
    for a in &args {
        match a.as_str() {
            "--quick" => opts.size = 0,
            "--full" => opts.size = 2,
            s if s.starts_with("--seed=") => {
                opts.seed = s.trim_start_matches("--seed=").parse().expect("seed");
            }
            s if !s.starts_with("--") => cmd = s.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    match cmd.as_str() {
        "fig10a" => fig10a(opts),
        "fig10b" => fig10b(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "fig13a" => fig13a(opts),
        "fig13b" => fig13b(opts),
        "fig13c" => fig13c(opts),
        "fig13d" => fig13d(opts),
        "fig14" => fig14(opts),
        "fig15" => fig15(opts),
        "fig16" => fig16(opts),
        "fig17" => fig17(opts),
        "ablation" => ablation(opts),
        "all" => {
            fig10a(opts);
            fig10b(opts);
            fig11(opts);
            fig12(opts);
            fig13a(opts);
            fig13b(opts);
            fig13c(opts);
            fig13d(opts);
            fig14(opts);
            fig15(opts);
            fig16(opts);
            fig17(opts);
            ablation(opts);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
}

fn vdb_of(xdb: &XDb) -> VDatabase {
    let mut vdb = VDatabase::default();
    for (name, rel) in &xdb.relations {
        vdb.insert(name.clone(), xrelation_to_vtable(rel, vec![Value::Int(0), Value::Int(1)]));
    }
    vdb
}

/// One PDBench measurement row: average runtime over the SPJ queries
/// for each system, reported as a ratio over Det (Figure 10's y-axis).
fn pdbench_ratios(xdb: &XDb, opts: Opts) -> [f64; 6] {
    let sg = xdb.sg_world();
    let audb = xdb.to_au();
    let uadb = xdb_to_ua(xdb);
    let vdb = vdb_of(xdb);
    let cfg = AuConfig::compressed(64);
    let queries = pdbench_queries();
    let mut sums = [0.0f64; 6];
    for (_, q) in &queries {
        let (_, det) = time_median(3, || run_sgqp(&sg, q).unwrap());
        let (_, ua) = time_median(3, || eval_ua(&uadb, q).unwrap());
        let (_, au) = time_median(3, || eval_au(&audb, q, &cfg).unwrap());
        let (_, libkin) = time(|| eval_libkin(&vdb, q).unwrap());
        let (_, maybms) = time(|| run_maybms(xdb, q).unwrap());
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let (_, mcdb) = time(|| run_mcdb(xdb, q, 10, &mut rng).unwrap());
        sums[0] += det;
        sums[1] += ua / det;
        sums[2] += au / det;
        sums[3] += libkin / det;
        sums[4] += maybms / det;
        sums[5] += mcdb / det;
    }
    let n = queries.len() as f64;
    [sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n, sums[4] / n, sums[5] / n]
}

/// Figure 10a: PDBench SPJ queries, varying the amount of uncertainty.
fn fig10a(opts: Opts) {
    header("Figure 10a — PDBench queries, runtime / Det-runtime, varying uncertainty");
    let scale = opts.pick(0.2, 0.5, 1.0);
    let base = gen_tpch(TpchConfig::new(scale, opts.seed));
    let widths = [8, 10, 8, 8, 8, 8, 8];
    print_row(
        &["uncert", "Det(s)", "UA-DB", "AU-DB", "Libkin", "MayBMS", "MCDB"].map(str::to_string),
        &widths,
    );
    for pct in [0.02, 0.05, 0.10, 0.30] {
        let xdb = inject_uncertainty(&base, pct, 8, opts.seed + (pct * 100.0) as u64);
        let r = pdbench_ratios(&xdb, opts);
        print_row(
            &[
                format!("{:.0}%", pct * 100.0),
                fmt_s(r[0]),
                fmt_ratio(r[1]),
                fmt_ratio(r[2]),
                fmt_ratio(r[3]),
                fmt_ratio(r[4]),
                fmt_ratio(r[5]),
            ],
            &widths,
        );
    }
}

/// Figure 10b: PDBench SPJ queries, varying database size (2% unc).
fn fig10b(opts: Opts) {
    header("Figure 10b — PDBench queries, runtime / Det-runtime, varying DB size");
    let base_scale = opts.pick(0.15, 0.3, 1.0);
    let widths = [8, 10, 8, 8, 8, 8, 8];
    print_row(
        &["size", "Det(s)", "UA-DB", "AU-DB", "Libkin", "MayBMS", "MCDB"].map(str::to_string),
        &widths,
    );
    for (label, mult) in [("0.1x", 0.1), ("1x", 1.0), ("10x", 10.0)] {
        let db = gen_tpch(TpchConfig::new(base_scale * mult, opts.seed));
        let xdb = inject_uncertainty(&db, 0.02, 8, opts.seed + 1);
        let r = pdbench_ratios(&xdb, opts);
        print_row(
            &[
                label.to_string(),
                fmt_s(r[0]),
                fmt_ratio(r[1]),
                fmt_ratio(r[2]),
                fmt_ratio(r[3]),
                fmt_ratio(r[4]),
                fmt_ratio(r[5]),
            ],
            &widths,
        );
    }
}

/// Build the chained-aggregation workload of Figure 11: a hierarchy
/// table h0..h{H-1} (h_j = leaf >> j) plus a value column, with
/// `uncertain` rows carrying a two-alternative value.
fn chain_data(rows: usize, hier: usize, uncertain: usize, seed: u64) -> XDb {
    use audb_incomplete::{XRelation, XTuple};
    use audb_storage::{Schema, Tuple};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut names: Vec<String> = (0..hier).map(|j| format!("h{j}")).collect();
    names.push("v".into());
    let mut xtuples = Vec::with_capacity(rows);
    for i in 0..rows {
        let leaf: i64 = rng.gen_range(0..1024);
        let mut vals: Vec<Value> = (0..hier).map(|j| Value::Int(leaf >> j)).collect();
        let v = rng.gen_range(0..1000i64);
        vals.push(Value::Int(v));
        let t = Tuple::new(vals.clone());
        if i < uncertain {
            let mut alt = vals;
            alt[hier] = Value::Int(rng.gen_range(0..1000));
            xtuples.push(XTuple::new(vec![(t, 0.5 + 1e-9), (Tuple::new(alt), 0.5 - 1e-9)]));
        } else {
            xtuples.push(XTuple::certain(t));
        }
    }
    let mut out = XDb::default();
    out.insert("t", XRelation::new(Schema::new(names), xtuples));
    out
}

fn chain_query(levels: usize, hier: usize) -> Query {
    assert!(levels >= 1 && levels <= hier);
    let mut q =
        table("t").aggregate((0..hier).collect(), vec![AggSpec::new(AggFunc::Sum, col(hier), "s")]);
    let mut arity = hier + 1; // group cols + s
    for _ in 1..levels {
        q = q.aggregate(
            (1..arity - 1).collect(),
            vec![AggSpec::new(AggFunc::Sum, col(arity - 1), "s")],
        );
        arity -= 1;
    }
    q
}

/// Figure 11: simple (chained) aggregation, absolute runtimes.
fn fig11(opts: Opts) {
    header("Figure 11 — chained aggregation, absolute runtime (s)");
    let rows = opts.pick(300, 1000, 3000);
    let uncertain = opts.pick(8, 10, 12);
    let hier = 10;
    let xdb = chain_data(rows, hier, uncertain, opts.seed);
    let audb = xdb.to_au();
    let sg = xdb.sg_world();
    let cfg = AuConfig::compressed(32);
    let widths = [8, 10, 10, 10, 10, 10];
    print_row(&["#aggops", "Det", "AUDB", "Trio", "Symb", "MCDB"].map(str::to_string), &widths);
    for k in 1..=opts.pick(5, 10, 10) {
        let q = chain_query(k, hier);
        let (_, det) = time_median(3, || eval_det(&sg, &q).unwrap());
        let (_, au) = time_median(3, || eval_au(&audb, &q, &cfg).unwrap());
        let x = xdb.get("t").unwrap();
        let (_, trio) = time(|| {
            let mut cur = trio_aggregate_chain(x, Some(hier - 1), AggFunc::Sum, hier).unwrap();
            for _ in 1..k {
                cur = trio_aggregate_chain(&cur, Some(0), AggFunc::Sum, 1).unwrap();
            }
            cur
        });
        let final_arity = hier + 1 - (k - 1);
        let keys: Vec<usize> = (0..final_arity - 1).collect();
        let (_, symb) = time(|| run_symb(&xdb, &q, &keys, final_arity - 1, 1 << 14).unwrap());
        let mut rng = StdRng::seed_from_u64(opts.seed + k as u64);
        let (_, mcdb) = time(|| run_mcdb(&xdb, &q, 10, &mut rng).unwrap());
        print_row(
            &[k.to_string(), fmt_s(det), fmt_s(au), fmt_s(trio), fmt_s(symb), fmt_s(mcdb)],
            &widths,
        );
    }
}

/// Figure 12 (table): TPC-H queries across uncertainty/scale configs.
fn fig12(opts: Opts) {
    header("Figure 12 — TPC-H query performance (runtime in s)");
    let mult = opts.pick(0.3, 1.0, 1.0);
    let configs = [
        ("2%/SF0.1", 0.1 * mult, 0.02),
        ("2%/SF1", 1.0 * mult, 0.02),
        ("5%/SF1", 1.0 * mult, 0.05),
        ("10%/SF1", 1.0 * mult, 0.10),
        ("30%/SF1", 1.0 * mult, 0.30),
    ];
    let widths = [6, 8, 12, 12, 12, 12, 12];
    let mut head = vec!["query".to_string(), "system".to_string()];
    head.extend(configs.iter().map(|(n, _, _)| n.to_string()));
    print_row(&head, &widths);
    let queries = tpch_queries();
    let mut results: Vec<Vec<(f64, f64, f64)>> = Vec::new();
    for (ci, (_, scale, pct)) in configs.iter().enumerate() {
        let db = gen_tpch(TpchConfig::new(*scale, opts.seed));
        let xdb = inject_uncertainty(&db, *pct, 8, opts.seed + ci as u64);
        let audb = xdb.to_au();
        let sg = xdb.sg_world();
        let cfg = AuConfig::compressed(64);
        for (qi, (_, q)) in queries.iter().enumerate() {
            let (_, au) = time(|| eval_au(&audb, q, &cfg).unwrap());
            let (_, det) = time(|| eval_det(&sg, q).unwrap());
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let (_, mcdb) = time(|| run_mcdb(&xdb, q, 10, &mut rng).unwrap());
            if results.len() <= qi {
                results.push(Vec::new());
            }
            results[qi].push((au, det, mcdb));
        }
    }
    for (qi, (name, _)) in queries.iter().enumerate() {
        for (sys, pickf) in [("AU-DB", 0usize), ("Det", 1), ("MCDB", 2)] {
            let mut rowv = vec![name.to_string(), sys.to_string()];
            for (au, det, mcdb) in &results[qi] {
                let v = match pickf {
                    0 => *au,
                    1 => *det,
                    _ => *mcdb,
                };
                rowv.push(fmt_s(v));
            }
            print_row(&rowv, &widths);
        }
    }
}

/// Figure 13a: varying the number of group-by attributes.
fn fig13a(opts: Opts) {
    header("Figure 13a — aggregation, varying #group-by attributes (s)");
    let rows = opts.pick(3_000, 20_000, 35_000);
    let cfg = MicroConfig::new(rows, 100).uncertainty(0.05).range_frac(0.05).seed(opts.seed);
    let (audb, db) = micro_au_db(&cfg);
    let aucfg = AuConfig { join_compress: Some(64), agg_compress: Some(25), ..AuConfig::default() };
    let widths = [10, 10, 10, 8];
    print_row(&["#groupby", "AUDB", "Det", "ratio"].map(str::to_string), &widths);
    for g in [1usize, 5, 10, 20, 40, 60, 80, 99] {
        let q =
            table("t").aggregate((0..g).collect(), vec![AggSpec::new(AggFunc::Sum, col(99), "s")]);
        let (_, au) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
        let (_, det) = time(|| eval_det(&db, &q).unwrap());
        print_row(&[g.to_string(), fmt_s(au), fmt_s(det), fmt_ratio(au / det)], &widths);
    }
}

/// Figure 13b: varying the number of aggregation functions.
fn fig13b(opts: Opts) {
    header("Figure 13b — aggregation, varying #aggregation functions (s)");
    let rows = opts.pick(3_000, 20_000, 35_000);
    let cfg = MicroConfig::new(rows, 100).uncertainty(0.05).range_frac(0.05).seed(opts.seed);
    let (audb, db) = micro_au_db(&cfg);
    let aucfg = AuConfig { join_compress: Some(64), agg_compress: Some(25), ..AuConfig::default() };
    let widths = [8, 10, 10, 8];
    print_row(&["#aggs", "AUDB", "Det", "ratio"].map(str::to_string), &widths);
    for n in [1usize, 5, 10, 20, 40, 60, 80, 99] {
        let aggs: Vec<AggSpec> = (0..n)
            .map(|i| AggSpec::new(AggFunc::Sum, col(1 + (i % 99)), format!("s{i}")))
            .collect();
        let q = table("t").aggregate(vec![0], aggs);
        let (_, au) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
        let (_, det) = time(|| eval_det(&db, &q).unwrap());
        print_row(&[n.to_string(), fmt_s(au), fmt_s(det), fmt_ratio(au / det)], &widths);
    }
}

/// Figure 13c: varying attribute-range width under several compression
/// budgets (CT).
fn fig13c(opts: Opts) {
    header("Figure 13c — aggregation runtime vs attribute range (s)");
    let rows = opts.pick(3_000, 20_000, 35_000);
    let widths = [8, 10, 10, 10, 10];
    print_row(&["range", "CT=4", "CT=32", "CT=256", "CT=512"].map(str::to_string), &widths);
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let cfg = MicroConfig::new(rows, 10)
            .uncertainty(0.05)
            .range_frac(frac)
            .domain(100_000)
            .seed(opts.seed);
        let (audb, _) = micro_au_db(&cfg);
        let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        let mut cells = vec![format!("{:.0}%", frac * 100.0)];
        for ct in [4usize, 32, 256, 512] {
            let aucfg =
                AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
            let (_, au) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
            cells.push(fmt_s(au));
        }
        print_row(&cells, &widths);
    }
}

/// Figure 13d: compression/accuracy trade-off — runtime and mean result
/// range vs compression size.
fn fig13d(opts: Opts) {
    header("Figure 13d — compression trade-off: runtime and mean range");
    let rows = opts.pick(2_000, 10_000, 10_000);
    let cfg = MicroConfig::new(rows, 10)
        .uncertainty(0.10)
        .range_frac(0.02)
        .domain(10_000)
        .seed(opts.seed);
    let (audb, _) = micro_au_db(&cfg);
    let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    let widths = [8, 10, 16];
    print_row(&["CT", "time(s)", "mean range"].map(str::to_string), &widths);
    for ct in [4usize, 32, 256, 4096, 65536] {
        let aucfg =
            AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
        let (out, secs) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
        // mean width of the aggregate column
        let mut total = 0.0;
        let mut n = 0usize;
        for (t, _) in out.rows() {
            total += t.0[1].width(1e9);
            n += 1;
        }
        let mean = if n == 0 { 0.0 } else { total / n as f64 };
        print_row(&[ct.to_string(), fmt_s(secs), format!("{mean:.0}")], &widths);
    }
}

/// Figures 14a/14b: join optimization — runtime and possible-tuple
/// count vs input size, unoptimized vs compressed.
fn fig14(opts: Opts) {
    header("Figure 14a/14b — join optimization: runtime (s) / possible size");
    let sizes: &[usize] = match opts.size {
        0 => &[250, 500, 1000],
        2 => &[1000, 2000, 4000, 8000],
        _ => &[500, 1000, 2000, 4000],
    };
    let widths = [8, 14, 14, 14, 14, 14];
    print_row(
        &["size", "Non-Op", "CT=4", "CT=32", "CT=256", "CT=1024"].map(str::to_string),
        &widths,
    );
    for &n in sizes {
        let cfg =
            MicroConfig::new(n, 3).uncertainty(0.03).range_frac(0.02).domain(1000).seed(opts.seed);
        let (audb, _) = micro_join_db(&cfg);
        let q = table("t1").join_on(table("t2"), col(0).eq(col(3)));
        let mut cells = vec![n.to_string()];
        let (naive, tn) = time(|| eval_au(&audb, &q, &AuConfig::precise()).unwrap());
        cells.push(format!("{}/{}", fmt_s(tn), naive.possible_size()));
        for ct in [4usize, 32, 256, 1024] {
            let aucfg =
                AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
            let (out, secs) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
            cells.push(format!("{}/{}", fmt_s(secs), out.possible_size()));
        }
        print_row(&cells, &widths);
    }
    println!("(cells are runtime/possible-size; Non-Op is the nested-loop interval join)");
}

/// Figures 15a/15b: accuracy of aggregation — over-grouping and range
/// over-estimation vs attribute range width.
fn fig15(opts: Opts) {
    header("Figure 15a/15b — over-grouping % and range over-estimation factor");
    let rows = opts.pick(500, 2000, 5000);
    let widths = [8, 8, 12, 12];
    print_row(&["unc", "range", "overgroup%", "range-factor"].map(str::to_string), &widths);
    for unc in [0.02, 0.03, 0.05] {
        for frac in [0.01, 0.02, 0.04, 0.06, 0.08, 0.10] {
            let cfg = MicroConfig::new(rows, 3)
                .uncertainty(unc)
                .range_frac(frac)
                .domain(1000)
                .seed(opts.seed);
            let xdb = gen_micro_xdb(&cfg, 10);
            let audb = xdb.to_au();
            let x = xdb.get("t").unwrap();
            let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
            let out = eval_au(&audb, &q, &AuConfig::precise()).unwrap();
            let og = over_grouping_pct(audb.get("t").unwrap(), &[0]);
            let exact = exact_group_agg(x, None, 0, AggFunc::Sum, 1).unwrap();
            let factor = range_overestimation_factor(&out, 0, 1, &exact);
            print_row(
                &[
                    format!("{:.0}%", unc * 100.0),
                    format!("{:.0}%", frac * 100.0),
                    format!("{og:.1}"),
                    format!("{factor:.2}"),
                ],
                &widths,
            );
        }
    }
}

/// Figure 16 (table): chained joins under different compression sizes.
fn fig16(opts: Opts) {
    header("Figure 16 — multi-join performance (runtime in s)");
    let rows = opts.pick(200, 1000, 4000);
    let widths = [10, 6, 10, 10, 10, 10];
    print_row(
        &["comp", "unc", "1 join", "2 joins", "3 joins", "4 joins"].map(str::to_string),
        &widths,
    );
    let comp_list: [(String, Option<usize>); 5] = [
        ("4".into(), Some(4)),
        ("16".into(), Some(16)),
        ("64".into(), Some(64)),
        ("256".into(), Some(256)),
        ("none".into(), None),
    ];
    // The uncompressed chain's intermediate results explode (that is the
    // point of Figure 16 — the paper measures 333s on Postgres); to keep
    // the harness within laptop memory the no-compression arm runs on a
    // smaller instance, reported in its row label.
    let rows_none = opts.pick(100, 300, 600);
    for (label, comp) in &comp_list {
        let rows = if comp.is_none() { rows_none } else { rows };
        for unc in [0.03, 0.10] {
            let mut audb = AuDatabase::new();
            for i in 0..5 {
                let cfg = MicroConfig::new(rows, 2)
                    .uncertainty(unc)
                    .range_frac(0.02)
                    .domain(rows as i64)
                    .seed(opts.seed + i);
                let (au, _) = audb_workloads::micro::gen_micro_pair(&cfg);
                audb.insert(format!("t{i}"), au);
            }
            let mut cells = vec![format!("{label}@{rows}"), format!("{:.0}%", unc * 100.0)];
            for joins in 1..=4usize {
                let mut q = table("t0");
                let mut arity = 2;
                for i in 1..=joins {
                    q = q.join_on(table(format!("t{i}")), col(0).eq(col(arity)));
                    arity += 2;
                }
                let aucfg =
                    AuConfig { join_compress: *comp, agg_compress: *comp, ..AuConfig::default() };
                let (_, secs) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
                cells.push(fmt_s(secs));
            }
            print_row(&cells, &widths);
        }
    }
}

/// Figure 17 (table): real-world key-repair datasets — performance and
/// accuracy for AU-DB, Trio, MCDB and UA-DB.
fn fig17(opts: Opts) {
    header("Figure 17 — real-world data: performance and accuracy");
    let rows = opts.pick(500, 2000, 4000);
    let widths = [12, 7, 8, 9, 9, 9, 9, 9];
    print_row(
        &["dataset", "query", "system", "time(s)", "cert.tup", "tight", "pos.id", "pos.val"]
            .map(str::to_string),
        &widths,
    );
    for case in audb_workloads::all_cases(rows, opts.seed) {
        let xdb = &case.xdb;
        let audb = xdb.to_au();
        let uadb = xdb_to_ua(xdb);
        let aucfg = AuConfig::compressed(64);

        // ---- SPJ query -----------------------------------------------------
        let (qname, q) = &case.spj;
        let (auout, au_t) = time(|| eval_au(&audb, q, &aucfg).unwrap());
        let acc = spj_accuracy(xdb, q, &auout, &[0]).unwrap();
        print_row(
            &[
                case.name.to_string(),
                qname.to_string(),
                "AU-DB".into(),
                fmt_s(au_t),
                format!("{:.0}%", acc.certain_recall * 100.0),
                format!("{:.2}", acc.tightness_max),
                format!("{:.1}%", acc.possible_recall_by_id * 100.0),
                format!("{:.1}%", acc.possible_recall_by_value * 100.0),
            ],
            &widths,
        );
        let (_, trio_t) = time(|| eval_trio(xdb, q).unwrap());
        print_row(
            &[
                "".into(),
                "".into(),
                "Trio".into(),
                fmt_s(trio_t),
                "100%".into(),
                "1.00".into(),
                "100%".into(),
                "100%".into(),
            ],
            &widths,
        );
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let (mres, mcdb_t) = time(|| run_mcdb(xdb, q, 10, &mut rng).unwrap());
        let (possible, _) = audb_workloads::exact_spj(xdb, q, 4096).unwrap();
        let seen = mres.seen_tuples();
        let pv = if possible.is_empty() {
            1.0
        } else {
            possible.iter().filter(|t| seen.contains_key(*t)).count() as f64 / possible.len() as f64
        };
        print_row(
            &[
                "".into(),
                "".into(),
                "MCDB".into(),
                fmt_s(mcdb_t),
                "N.A.".into(),
                "<1".into(),
                "-".into(),
                format!("{:.1}%", pv * 100.0),
            ],
            &widths,
        );
        let (uaout, ua_t) = time(|| eval_ua(&uadb, q).unwrap());
        let ua_tuples: std::collections::BTreeSet<_> =
            uaout.rows().iter().map(|(t, _)| t.clone()).collect();
        let ua_pv = if possible.is_empty() {
            1.0
        } else {
            possible.iter().filter(|t| ua_tuples.contains(*t)).count() as f64
                / possible.len() as f64
        };
        print_row(
            &[
                "".into(),
                "".into(),
                "UA-DB".into(),
                fmt_s(ua_t),
                "100%".into(),
                "N.A.".into(),
                "-".into(),
                format!("{:.1}%", ua_pv * 100.0),
            ],
            &widths,
        );

        // ---- group-by query -------------------------------------------------
        let (qname, q) = &case.groupby;
        let (auout, au_t) = time(|| eval_au(&audb, q, &aucfg).unwrap());
        // exact group bounds for the aggregate
        let x = xdb.get(case.table).unwrap();
        let (gcol, func, vcol) = match *qname {
            "Qn2" => (2usize, AggFunc::Max, 3usize),
            "Qc2" => (1, AggFunc::Count, 1),
            _ => (1, AggFunc::Sum, 4),
        };
        let exact = exact_group_agg(x, None, gcol, func, vcol).unwrap();
        let certain_groups: std::collections::BTreeSet<&Value> =
            exact.iter().filter(|(_, i)| i.certain).map(|(g, _)| g).collect();
        let found_certain = auout
            .rows()
            .iter()
            .filter(|(t, k)| k.lb > 0 && t.0[0].is_certain())
            .map(|(t, _)| &t.0[0].sg)
            .collect::<std::collections::BTreeSet<_>>();
        let crecall = if certain_groups.is_empty() {
            1.0
        } else {
            certain_groups.iter().filter(|g| found_certain.contains(*g)).count() as f64
                / certain_groups.len() as f64
        };
        let covered_groups =
            exact.keys().filter(|g| auout.rows().iter().any(|(t, _)| t.0[0].bounds(g))).count()
                as f64;
        let factor = range_overestimation_factor(&auout, 0, 1, &exact);
        print_row(
            &[
                case.name.to_string(),
                qname.to_string(),
                "AU-DB".into(),
                fmt_s(au_t),
                format!("{:.0}%", crecall * 100.0),
                format!("{factor:.2}"),
                "-".into(),
                format!("{:.1}%", covered_groups / exact.len().max(1) as f64 * 100.0),
            ],
            &widths,
        );
        let (_, trio_t) = time(|| trio_aggregate(x, Some(gcol), func, vcol).unwrap());
        let trio_groups = trio_aggregate(x, Some(gcol), func, vcol).unwrap();
        let trio_cover = exact
            .keys()
            .filter(|g| trio_groups.iter().any(|(tg, _, _)| tg.as_ref() == Some(*g)))
            .count() as f64
            / exact.len().max(1) as f64;
        print_row(
            &[
                "".into(),
                "".into(),
                "Trio".into(),
                fmt_s(trio_t),
                "100%".into(),
                "1.00".into(),
                "-".into(),
                format!("{:.1}%", trio_cover * 100.0),
            ],
            &widths,
        );
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let (mres, mcdb_t) = time(|| run_mcdb(xdb, q, 10, &mut rng).unwrap());
        let mcdb_groups: std::collections::BTreeSet<Value> = mres
            .samples
            .iter()
            .flat_map(|s| s.rows().iter().map(|(t, _)| t.0[0].clone()))
            .collect();
        let mcov = exact.keys().filter(|g| mcdb_groups.contains(*g)).count() as f64
            / exact.len().max(1) as f64;
        print_row(
            &[
                "".into(),
                "".into(),
                "MCDB".into(),
                fmt_s(mcdb_t),
                "N.A.".into(),
                "<1".into(),
                "-".into(),
                format!("{:.1}%", mcov * 100.0),
            ],
            &widths,
        );
        let (uaout, ua_t) = time(|| eval_ua(&uadb, q).unwrap());
        let ua_groups: std::collections::BTreeSet<Value> =
            uaout.rows().iter().map(|(t, _)| t.0[0].clone()).collect();
        let ucov = exact.keys().filter(|g| ua_groups.contains(*g)).count() as f64
            / exact.len().max(1) as f64;
        print_row(
            &[
                "".into(),
                "".into(),
                "UA-DB".into(),
                fmt_s(ua_t),
                "0%".into(),
                "N.A.".into(),
                "-".into(),
                format!("{:.1}%", ucov * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "(tight: attribute-bound width relative to exact; pos.id/pos.val: possible-answer recall)"
    );
}

/// Ablations called out in DESIGN.md: split-only vs split+compress for
/// joins, and precise vs compressed aggregation tightness.
fn ablation(opts: Opts) {
    header("Ablation — split vs split+compress (join), precise vs compressed (aggregation)");
    let rows = opts.pick(300, 1500, 4000);
    let cfg =
        MicroConfig::new(rows, 3).uncertainty(0.05).range_frac(0.02).domain(1000).seed(opts.seed);
    let (audb, _) = micro_join_db(&cfg);
    let q = table("t1").join_on(table("t2"), col(0).eq(col(3)));
    let widths = [22, 10, 14];
    print_row(&["variant", "time(s)", "possible size"].map(str::to_string), &widths);
    let (out, secs) = time(|| eval_au(&audb, &q, &AuConfig::precise()).unwrap());
    print_row(&["naive".into(), fmt_s(secs), out.possible_size().to_string()], &widths);
    // split-only: compression budget so large that no buckets merge
    let (out, secs) = time(|| {
        let l = audb.get("t1").unwrap();
        let r = audb.get("t2").unwrap();
        opt::optimized_join(l, r, Some(&col(0).eq(col(3))), usize::MAX / 2).unwrap()
    });
    print_row(&["split only".into(), fmt_s(secs), out.possible_size().to_string()], &widths);
    for ct in [16usize, 128] {
        let aucfg =
            AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
        let (out, secs) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
        print_row(
            &[format!("split+compress CT={ct}"), fmt_s(secs), out.possible_size().to_string()],
            &widths,
        );
    }

    // aggregation tightness ablation
    let q = table("t1").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    println!();
    print_row(&["agg variant", "time(s)", "mean range"].map(str::to_string), &widths);
    for (label, c) in [("precise", None), ("CT=16", Some(16usize)), ("CT=256", Some(256))] {
        let aucfg = AuConfig { join_compress: c, agg_compress: c, ..AuConfig::default() };
        let (out, secs) = time(|| eval_au(&audb, &q, &aucfg).unwrap());
        let mut total = 0.0;
        let mut n = 0;
        for (t, _) in out.rows() {
            total += t.0[1].width(1e9);
            n += 1;
        }
        print_row(
            &[
                label.to_string(),
                fmt_s(secs),
                format!("{:.1}", if n == 0 { 0.0 } else { total / n as f64 }),
            ],
            &widths,
        );
    }
}
