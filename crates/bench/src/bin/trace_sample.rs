//! Emit a sample `QueryTrace` as versioned JSON on stdout.
//!
//! CI (`bench-perf-history`) runs this against the 10k fused spine,
//! validates the output against the schema documented in
//! `docs/observability.md`, and uploads it with the perf-history
//! artifact — so every commit ships a machine-readable example of what
//! the engine's EXPLAIN ANALYZE actually produced at that revision.
//!
//! Usage: `trace_sample [pipeline|operator|compressed]` (default:
//! `pipeline`).

use audb_core::{col, lit};
use audb_query::au::AuConfig;
use audb_query::{eval_au_traced, table};
use audb_workloads::{micro_join_db, MicroConfig};

fn main() {
    let flavor = std::env::args().nth(1).unwrap_or_else(|| "pipeline".to_string());
    let cfg = match flavor.as_str() {
        "pipeline" => AuConfig { workers: Some(2), shards: Some(4), ..AuConfig::default() },
        "operator" => AuConfig { pipeline: false, workers: Some(2), ..AuConfig::default() },
        "compressed" => AuConfig {
            join_compress: Some(64),
            agg_compress: Some(25),
            workers: Some(2),
            ..AuConfig::default()
        },
        other => {
            eprintln!("unknown flavor {other:?}; use pipeline|operator|compressed");
            std::process::exit(2);
        }
    };
    let micro = MicroConfig {
        domain: 10_000,
        ..MicroConfig::new(10_000, 3).uncertainty(0.03).range_frac(0.02).seed(71)
    };
    let (audb, _) = micro_join_db(&micro);
    let q = table("t1")
        .select(col(1).geq(lit(0i64)))
        .join_on(table("t2"), col(0).eq(col(3)))
        .select(col(1).add(col(4)).lt(lit(5000i64)))
        .project(vec![(col(0), "k"), (col(1).add(col(4)), "v"), (col(2), "w")])
        .aggregate(
            vec![0],
            vec![audb_query::AggSpec::new(audb_query::AggFunc::Sum, col(1), "total")],
        );
    match eval_au_traced(&audb, &q, &cfg) {
        Ok((_, trace)) => {
            println!("{}", trace.to_json());
            eprintln!("{trace}");
        }
        Err(e) => {
            eprintln!("trace sample query failed: {e}");
            std::process::exit(1);
        }
    }
}
