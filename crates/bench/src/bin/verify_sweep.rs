//! Static-verifier sweep over the in-repo query corpus.
//!
//! CI (`static-analysis`) runs this binary, which:
//!
//! 1. walks every expression of the fig13 / fig14 (pipeline spine) /
//!    fig16 multi-join / TPC-H / PDBench / real-world query corpus,
//!    lowers each through **both** modes (plus the multi-output
//!    projection form), and runs Tier A + Tier B
//!    (`Program::verify_full`) on every program — the corpus must
//!    produce **zero diagnostics** (no errors, no lints);
//! 2. runs the mutation harness over every lowered program: each
//!    single-op corruption must be caught (Tier A, Tier B, or a fresh
//!    lint) or be behavior-preserving on the differential oracle rows —
//!    the detection rate (caught / non-equivalent) is gated at >= 95 %
//!    and `missed` at zero.
//!
//! Output: a JSON report on stdout (programs verified, lint/error
//! counts, per-verdict mutation tallies, detection rate), uploaded with
//! the perf-history artifact. See `docs/static-analysis.md`.

use audb_core::program::Program;
use audb_core::verify::mutate;
use audb_core::{col, Expr};
use audb_query::{AggSpec, Query};
use audb_workloads::{pdbench_queries, realworld, tpch_queries};

/// Every scalar expression a query evaluates, with projection /
/// aggregate lists kept together so the multi-output lowering is swept
/// in the form the chain compiler actually uses.
fn collect_exprs(q: &Query, singles: &mut Vec<Expr>, lists: &mut Vec<Vec<Expr>>) {
    match q {
        Query::Table(_) => {}
        Query::Select { input, predicate } => {
            singles.push(predicate.clone());
            collect_exprs(input, singles, lists);
        }
        Query::Project { input, exprs } => {
            lists.push(exprs.iter().map(|(e, _)| e.clone()).collect());
            collect_exprs(input, singles, lists);
        }
        Query::Join { left, right, predicate } => {
            if let Some(p) = predicate {
                singles.push(p.clone());
            }
            collect_exprs(left, singles, lists);
            collect_exprs(right, singles, lists);
        }
        Query::Union { left, right } | Query::Difference { left, right } => {
            collect_exprs(left, singles, lists);
            collect_exprs(right, singles, lists);
        }
        Query::Distinct { input } => collect_exprs(input, singles, lists),
        Query::Aggregate { input, aggs, .. } => {
            for AggSpec { input: e, .. } in aggs {
                singles.push(e.clone());
            }
            collect_exprs(input, singles, lists);
        }
    }
}

/// Widest column index an expression reads (the oracle rows must cover
/// it).
fn max_col(e: &Expr) -> usize {
    match e {
        Expr::Col(i) => *i + 1,
        Expr::Const(_) => 0,
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Eq(a, b)
        | Expr::Neq(a, b)
        | Expr::Leq(a, b)
        | Expr::Lt(a, b)
        | Expr::Geq(a, b)
        | Expr::Gt(a, b)
        | Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mul(a, b)
        | Expr::Div(a, b) => max_col(a).max(max_col(b)),
        Expr::Not(a) | Expr::Neg(a) => max_col(a),
        Expr::If(c, t, e) => max_col(c).max(max_col(t)).max(max_col(e)),
        Expr::Uncertain(l, s, u) => max_col(l).max(max_col(s)).max(max_col(u)),
    }
}

/// The corpus: every named query shape the benches and figure
/// experiments evaluate.
fn corpus() -> Vec<(String, Query)> {
    use audb_core::lit;
    use audb_query::{table, AggFunc};

    let mut qs: Vec<(String, Query)> = Vec::new();

    // fig13: aggregation micro-benchmarks (group-by width sweep)
    for nb in [1usize, 5, 10] {
        qs.push((
            format!("fig13_groupby{nb}"),
            table("t").aggregate((0..nb).collect(), vec![AggSpec::new(AggFunc::Sum, col(19), "s")]),
        ));
    }

    // fig14 / pipeline_engine: the fused select→join→select→project
    // 10k spine
    qs.push((
        "fig14_pipeline_spine".to_string(),
        table("t1")
            .select(col(1).geq(lit(0i64)))
            .join_on(table("t2"), col(0).eq(col(3)))
            .select(col(1).add(col(4)).lt(lit(5000i64)))
            .project(vec![(col(0), "k"), (col(1).add(col(4)), "v"), (col(2), "w")]),
    ));

    // fig16: the n-way equi-join chain
    for n in [2usize, 4, 6] {
        let arity = 3;
        let mut q: Query = table("t0");
        for i in 1..n {
            q = q.join_on(table(format!("t{i}")), col(0).eq(col(arity * i)));
        }
        qs.push((format!("fig16_join{n}"), q));
    }

    // fig12: TPC-H Q1/Q3/Q5/Q7/Q10; fig10: the PDBench SPJ workload
    for (name, q) in tpch_queries() {
        qs.push((format!("tpch_{name}"), q));
    }
    for (name, q) in pdbench_queries() {
        qs.push((format!("pdbench_{name}"), q));
    }

    // fig17: the real-world SPJ + group-by cases
    for (name, q) in [
        ("Qn1", realworld::qn1()),
        ("Qn2", realworld::qn2()),
        ("Qc1", realworld::qc1()),
        ("Qc2", realworld::qc2()),
        ("Qh1", realworld::qh1()),
        ("Qh2", realworld::qh2()),
    ] {
        qs.push((format!("realworld_{name}"), q));
    }

    qs
}

fn main() {
    let mut programs: Vec<(String, Program)> = Vec::new();
    let mut queries = 0usize;
    let mut width = 0usize;

    for (name, q) in corpus() {
        queries += 1;
        let mut singles = Vec::new();
        let mut lists = Vec::new();
        collect_exprs(&q, &mut singles, &mut lists);
        for e in singles.iter().chain(lists.iter().flatten()) {
            width = width.max(max_col(e));
        }
        for (i, e) in singles.iter().enumerate() {
            programs.push((format!("{name}/expr{i}/range"), Program::compile_range(e)));
            programs.push((format!("{name}/expr{i}/det"), Program::compile_det(e)));
        }
        for (i, es) in lists.iter().enumerate() {
            programs.push((format!("{name}/proj{i}/range"), Program::compile_range_many(es)));
            programs.push((format!("{name}/proj{i}/det"), Program::compile_det_many(es)));
        }
    }

    // --- sweep: Tier A + Tier B, zero diagnostics expected ---------------
    let mut errors: Vec<String> = Vec::new();
    let mut lints: Vec<String> = Vec::new();
    for (name, p) in &programs {
        match p.verify_full() {
            Ok(ls) => {
                for l in ls {
                    lints.push(format!("{name}: {l}"));
                }
            }
            Err(e) => errors.push(format!("{name}: {e}")),
        }
    }

    // --- mutation harness -------------------------------------------------
    let (range_rows, det_rows) = mutate::oracle_rows(width);
    let mut tallies = std::collections::BTreeMap::new();
    let mut missed: Vec<String> = Vec::new();
    for (name, p) in &programs {
        for m in mutate::mutants(p) {
            let v = mutate::classify(p, &m.program, &range_rows, &det_rows);
            *tallies.entry(v.name()).or_insert(0u64) += 1;
            if v == mutate::Verdict::Missed {
                missed.push(format!("{name}: {} ({})", m.class, m.detail));
            }
        }
    }
    let caught: u64 = ["tier_a", "tier_b", "new_lint"]
        .iter()
        .map(|k| tallies.get(*k).copied().unwrap_or(0))
        .sum();
    let missed_n = tallies.get("missed").copied().unwrap_or(0);
    let equivalent = tallies.get("oracle_equivalent").copied().unwrap_or(0);
    let judged = caught + missed_n;
    let detection_rate = if judged == 0 { 1.0 } else { caught as f64 / judged as f64 };

    // --- report (hand-rolled JSON: no serde in the workspace) -------------
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let strlist =
        |xs: &[String]| xs.iter().map(|x| format!("\"{}\"", esc(x))).collect::<Vec<_>>().join(", ");
    println!("{{");
    println!("  \"queries\": {queries},");
    println!("  \"programs_verified\": {},", programs.len());
    println!("  \"verify_errors\": [{}],", strlist(&errors));
    println!("  \"lints\": [{}],", strlist(&lints));
    println!("  \"mutants_total\": {},", caught + missed_n + equivalent);
    let verdicts =
        tallies.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect::<Vec<_>>().join(", ");
    println!("  \"mutant_verdicts\": {{{verdicts}}},");
    println!("  \"missed\": [{}],", strlist(&missed));
    println!("  \"detection_rate\": {detection_rate:.4},");
    let clean = errors.is_empty() && lints.is_empty();
    let detected = missed.is_empty() && detection_rate >= 0.95;
    println!("  \"zero_diagnostics\": {clean},");
    println!("  \"detection_gate_passed\": {detected}");
    println!("}}");

    if !clean || !detected {
        std::process::exit(1);
    }
}
