//! # audb-bench
//!
//! Shared helpers for the experiment harness (`src/bin/experiments.rs`)
//! that regenerates every table and figure of the paper's Section 12,
//! and for the criterion micro-benchmarks under `benches/`.

use std::time::Instant;

use audb_core::UaAnnot;
use audb_incomplete::XDb;
use audb_storage::{UaDatabase, UaRelation};

/// Wall-clock one invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median wall-clock over `runs` invocations (first result returned).
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs >= 1);
    let (out, first) = time(&mut f);
    let mut samples = vec![first];
    for _ in 1..runs {
        samples.push(time(&mut f).1);
    }
    samples.sort_by(f64::total_cmp);
    (out, samples[samples.len() / 2])
}

/// Convert an x-database into a UA-database: tuples take their
/// selected-guess values; a tuple is marked certain only when the whole
/// x-tuple is certain (single alternative, non-optional) — the setup of
/// Section 12.1 ("mark all tuples with at least one uncertain value as
/// uncertain").
pub fn xdb_to_ua(xdb: &XDb) -> UaDatabase {
    let mut out = UaDatabase::new();
    for (name, rel) in &xdb.relations {
        let mut ua = UaRelation::empty(rel.schema.clone());
        for xt in &rel.xtuples {
            if !xt.sg_present() {
                continue;
            }
            let certain = !xt.is_uncertain();
            ua.push(xt.pick_max().clone(), UaAnnot::new(certain as u64, 1));
        }
        ua.normalize();
        out.insert(name.clone(), ua);
    }
    out
}

/// Fixed-width row printer for paper-shaped tables.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Format seconds with 3 significant decimals (matching the paper's
/// second-granularity tables).
pub fn fmt_s(secs: f64) -> String {
    if secs < 0.0005 {
        format!("{:.1}ms", secs * 1000.0)
    } else {
        format!("{secs:.3}")
    }
}

/// Format a ratio like the paper's "runtime / Det-runtime" plots.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_incomplete::{XRelation, XTuple};
    use audb_storage::{Schema, Tuple};

    #[test]
    fn ua_conversion_marks_uncertain() {
        let t1: Tuple = [1i64].into_iter().collect();
        let t2a: Tuple = [2i64].into_iter().collect();
        let t2b: Tuple = [3i64].into_iter().collect();
        let mut xdb = XDb::default();
        xdb.insert(
            "r",
            XRelation::new(
                Schema::named(&["a"]),
                vec![
                    XTuple::certain(t1.clone()),
                    XTuple::new(vec![(t2a.clone(), 0.6), (t2b, 0.4)]),
                ],
            ),
        );
        let ua = xdb_to_ua(&xdb);
        let rel = ua.get("r").unwrap();
        assert_eq!(rel.annotation(&t1), UaAnnot::new(1, 1));
        assert_eq!(rel.annotation(&t2a), UaAnnot::new(0, 1));
    }

    #[test]
    fn timing_helpers_run() {
        let (v, s) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
        let (v, s) = time_median(3, || 1 + 1);
        assert_eq!(v, 2);
        assert!(s >= 0.0);
    }
}
