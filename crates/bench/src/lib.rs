//! # audb-bench
//!
//! Shared helpers for the experiment harness (`src/bin/experiments.rs`)
//! that regenerates every table and figure of the paper's Section 12,
//! and for the criterion micro-benchmarks under `benches/`.

use std::time::Instant;

use audb_core::obs::QueryTrace;
use audb_core::UaAnnot;
use audb_incomplete::XDb;
use audb_query::au::AuConfig;
use audb_storage::{UaDatabase, UaRelation};

/// Wall-clock one invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median wall-clock over `runs` invocations (first result returned).
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs >= 1);
    let (out, first) = time(&mut f);
    let mut samples = vec![first];
    for _ in 1..runs {
        samples.push(time(&mut f).1);
    }
    samples.sort_by(f64::total_cmp);
    (out, samples[samples.len() / 2])
}

/// Convert an x-database into a UA-database: tuples take their
/// selected-guess values; a tuple is marked certain only when the whole
/// x-tuple is certain (single alternative, non-optional) — the setup of
/// Section 12.1 ("mark all tuples with at least one uncertain value as
/// uncertain").
pub fn xdb_to_ua(xdb: &XDb) -> UaDatabase {
    let mut out = UaDatabase::new();
    for (name, rel) in &xdb.relations {
        let mut ua = UaRelation::empty(rel.schema.clone());
        for xt in &rel.xtuples {
            if !xt.sg_present() {
                continue;
            }
            let certain = !xt.is_uncertain();
            ua.push(xt.pick_max().clone(), UaAnnot::new(certain as u64, 1));
        }
        ua.normalize();
        out.insert(name.clone(), ua);
    }
    out
}

/// The current git revision (short), for stamping bench records. Falls
/// back to `GITHUB_SHA` (CI detached checkouts), then `"unknown"`.
pub fn git_rev() -> String {
    let from_git = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    from_git
        .or_else(|| std::env::var("GITHUB_SHA").ok().map(|s| s.chars().take(12).collect()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// One-line engine-configuration fingerprint for `BENCH_*.json` stamps:
/// every knob that changes what a wall-clock number means (worker and
/// shard counts, pipeline/compiled flags, compression budgets) plus the
/// git revision the binary was built from.
pub fn config_fingerprint(cfg: &AuConfig) -> String {
    let opt = |v: Option<usize>| v.map_or_else(|| "auto".to_string(), |n| n.to_string());
    format!(
        "workers={} shards={} pipeline={} compiled={} columnar={} adaptive={} join_compress={} \
         agg_compress={} rev={}",
        opt(cfg.workers),
        opt(cfg.shards),
        cfg.pipeline,
        cfg.compiled,
        cfg.columnar,
        cfg.adaptive,
        cfg.join_compress.map_or_else(|| "off".to_string(), |n| n.to_string()),
        cfg.agg_compress.map_or_else(|| "off".to_string(), |n| n.to_string()),
        git_rev(),
    )
}

/// Per-operator rollup of a [`QueryTrace`]: `(op, spans, rows_out,
/// elapsed_ns)` per distinct operator kind, in first-seen (pre-order)
/// order. Rows and time sum over every span of that kind, so a fused
/// chain shows up as one `fused-chain` line and an operator-at-a-time
/// plan as one line per operator.
pub fn operator_breakdown(trace: &QueryTrace) -> Vec<(String, u64, u64, u64)> {
    let mut out: Vec<(String, u64, u64, u64)> = Vec::new();
    trace.root.walk(&mut |s| {
        if s.op == "query" || s.op == "attempt" {
            return;
        }
        let rows = s.rows_out.unwrap_or(0);
        match out.iter_mut().find(|(op, ..)| *op == s.op) {
            Some((_, n, r, ns)) => {
                *n += 1;
                *r += rows;
                *ns += s.elapsed_ns;
            }
            None => out.push((s.op.clone(), 1, rows, s.elapsed_ns)),
        }
    });
    out
}

/// Print the trace-derived operator breakdown for a bench workload.
pub fn print_trace_breakdown(label: &str, trace: &QueryTrace) {
    println!("--- {label}: trace-derived operator breakdown ---");
    let widths = [14usize, 6, 10, 12];
    print_row(&["operator", "spans", "rows_out", "time_ms"].map(str::to_string), &widths);
    for (op, spans, rows, ns) in operator_breakdown(trace) {
        print_row(
            &[op, spans.to_string(), rows.to_string(), format!("{:.3}", ns as f64 / 1e6)],
            &widths,
        );
    }
}

/// Fixed-width row printer for paper-shaped tables.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Format seconds with 3 significant decimals (matching the paper's
/// second-granularity tables).
pub fn fmt_s(secs: f64) -> String {
    if secs < 0.0005 {
        format!("{:.1}ms", secs * 1000.0)
    } else {
        format!("{secs:.3}")
    }
}

/// Format a ratio like the paper's "runtime / Det-runtime" plots.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_incomplete::{XRelation, XTuple};
    use audb_storage::{Schema, Tuple};

    #[test]
    fn ua_conversion_marks_uncertain() {
        let t1: Tuple = [1i64].into_iter().collect();
        let t2a: Tuple = [2i64].into_iter().collect();
        let t2b: Tuple = [3i64].into_iter().collect();
        let mut xdb = XDb::default();
        xdb.insert(
            "r",
            XRelation::new(
                Schema::named(&["a"]),
                vec![
                    XTuple::certain(t1.clone()),
                    XTuple::new(vec![(t2a.clone(), 0.6), (t2b, 0.4)]),
                ],
            ),
        );
        let ua = xdb_to_ua(&xdb);
        let rel = ua.get("r").unwrap();
        assert_eq!(rel.annotation(&t1), UaAnnot::new(1, 1));
        assert_eq!(rel.annotation(&t2a), UaAnnot::new(0, 1));
    }

    #[test]
    fn fingerprint_names_every_knob() {
        let cfg = AuConfig { workers: Some(4), join_compress: Some(64), ..AuConfig::default() };
        let fp = config_fingerprint(&cfg);
        for part in [
            "workers=4",
            "shards=auto",
            "pipeline=true",
            "columnar=true",
            "join_compress=64",
            "rev=",
        ] {
            assert!(fp.contains(part), "missing {part} in {fp}");
        }
    }

    #[test]
    fn timing_helpers_run() {
        let (v, s) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
        let (v, s) = time_median(3, || 1 + 1);
        assert_eq!(v, 2);
        assert!(s >= 0.0);
    }
}
