//! Figure 14 (criterion form): unoptimized vs compressed joins.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::col;
use audb_query::{eval_au, table, AuConfig};
use audb_workloads::{micro_join_db, MicroConfig};

fn bench(c: &mut Criterion) {
    let cfg = MicroConfig::new(500, 3).uncertainty(0.03).range_frac(0.02).seed(14);
    let (audb, _) = micro_join_db(&cfg);
    let q = table("t1").join_on(table("t2"), col(0).eq(col(3)));
    let mut g = c.benchmark_group("fig14_join_opt");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.bench_function("join_nonop_500", |b| {
        b.iter(|| black_box(eval_au(&audb, &q, &AuConfig::precise()).unwrap()))
    });
    for ct in [4usize, 32, 256] {
        let aucfg =
            AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
        g.bench_function(format!("join_ct{ct}_500"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &aucfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
