//! Sharded pipeline execution vs the operator-at-a-time path: the
//! acceptance benchmark for the pipeline driver. The fused
//! select→join→project spine over 10k rows must beat the
//! operator-at-a-time evaluation by >= 1.5x at **one worker** — the win
//! is algorithmic (intermediate materializations and per-operator merge
//! barriers eliminated), not core count. The w4 variants additionally
//! feed the multi-core CI readback (w4/w1 wall-clock scaling on the
//! same fused pass).
//!
//! The `pipeline_10k_interp_*` variants run the same fused chain with
//! `AuConfig::compiled = false` (per-row `Expr`-tree interpretation
//! instead of the compiled register programs): the compiled backend
//! must be >= 1.2x over interpreted at one worker (criterion_6,
//! core-count-free like criterion_4).
//!
//! The `pipeline_10k_guarded_w1` variant runs the same fused chain with
//! the full governance apparatus armed but never tripping — a far-away
//! deadline (every cancellation checkpoint takes the `Instant::now()`
//! branch) and an unlimited budget (every charge site runs its atomic
//! meter). Guarded vs unguarded at one worker is the cancellation-check
//! overhead gate: the ratio must stay <= 1.03 (criterion_7, measured
//! within one run so machine speed cancels out).
//!
//! The `pipeline_10k_metrics_w1` variant runs the same fused chain
//! through `eval_au_traced` — live atomic counters, duration
//! histograms, and span assembly. Traced vs untraced at one worker is
//! the observability overhead gate: the ratio must stay <= 1.03
//! (criterion_8, intra-run like criterion_7). The run also prints the
//! trace-derived per-operator breakdown and the engine-config
//! fingerprint the wall-clock numbers were measured under.
//!
//! The `pipeline_10k_noverify_w1` variant runs the same fused chain
//! with `AuConfig::verify = false` (Tier B static verification skipped
//! at the chain compile sites). Default (verify on) vs noverify at one
//! worker is the verifier overhead gate: Tier B runs once per compiled
//! stage per query — never per row — so the ratio must stay <= 1.03
//! (criterion_9, intra-run like criterion_7/8).
//!
//! The `pipeline_10k_columnar_w1` / `pipeline_10k_rowmajor_w1` pair
//! runs an arithmetic-heavy **batchable** chain (select/project only —
//! probe stages break batchability, so the join spine above never
//! routes columnar) over the same homogeneous-Int 10k table, differing
//! only in `AuConfig::columnar`. Columnar must be >= 1.3x over the
//! row-major batch path at one worker (criterion_11, intra-run and
//! core-count-free): the win is op-at-a-time vector kernels over
//! contiguous typed lanes instead of per-row register slots of boxed
//! `RangeValue`s. Byte-identity of the two paths is property-tested in
//! tests/columnar_props.rs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_bench::{config_fingerprint, print_trace_breakdown};
use audb_core::{col, lit, BudgetSpec};
use audb_query::au::AuConfig;
use audb_query::{eval_au, eval_au_traced, table, Query};
use audb_workloads::{micro_join_db, MicroConfig};

fn spine() -> Query {
    // select → equi-join → select → project: one maximal row-local
    // chain, fused into a single pass per shard with one breaker
    // normalization. The post-join selection is where pipelining pays:
    // the operator-at-a-time path materializes every possible join
    // match (~130k rows — uncertain key bands keep *possible* matches)
    // before filtering, the fused chain never does.
    table("t1")
        .select(col(1).geq(lit(0i64)))
        .join_on(table("t2"), col(0).eq(col(3)))
        .select(col(1).add(col(4)).lt(lit(5000i64)))
        .project(vec![(col(0), "k"), (col(1).add(col(4)), "v"), (col(2), "w")])
}

fn batchable_chain() -> Query {
    // select → project → select → project with no probe stage: the
    // whole chain compiles and fuses, so the columnar driver runs
    // vector kernels over the t1 lanes end to end. Arithmetic-heavy on
    // purpose — every op is a typed i64 kernel (checked adds/muls that
    // never overflow on this domain, comparison kernels for the
    // selections).
    table("t1")
        .select(col(1).geq(lit(0i64)))
        .project(vec![
            (col(0), "k"),
            (col(1).add(col(2)), "s"),
            (col(2).mul(lit(3i64)), "m"),
            (col(1).sub(col(2)), "d"),
        ])
        .select(col(1).lt(lit(20_000i64)).and(col(3).geq(lit(-10_000i64))))
        .project(vec![(col(0), "k"), (col(1).add(col(2)).add(col(3)), "v")])
}

fn bench(c: &mut Criterion) {
    // fig14-style shape scaled to 10k: key domain = row count (~1 match
    // per key), 3% uncertain rows
    let cfg = MicroConfig {
        domain: 10_000,
        ..MicroConfig::new(10_000, 3).uncertainty(0.03).range_frac(0.02).seed(71)
    };
    let (audb, _) = micro_join_db(&cfg);
    let q = spine();

    let mut g = c.benchmark_group("pipeline_engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));

    for w in [1usize, 4] {
        let operator = AuConfig { pipeline: false, workers: Some(w), ..AuConfig::default() };
        g.bench_function(format!("operator_10k_w{w}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &operator).unwrap()))
        });
        let interp = AuConfig { compiled: false, workers: Some(w), ..AuConfig::default() };
        g.bench_function(format!("pipeline_10k_interp_w{w}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &interp).unwrap()))
        });
        let pipeline = AuConfig { workers: Some(w), ..AuConfig::default() };
        g.bench_function(format!("pipeline_10k_w{w}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &pipeline).unwrap()))
        });
    }

    // governance overhead: deadline armed (never expires) + budget
    // meters running (never trip) on the same fused chain
    let guarded = AuConfig { workers: Some(1), ..AuConfig::default() }
        .with_timeout(std::time::Duration::from_secs(3600))
        .with_budget(BudgetSpec::unlimited());
    g.bench_function("pipeline_10k_guarded_w1", |b| {
        b.iter(|| black_box(eval_au(&audb, &q, &guarded).unwrap()))
    });

    // static-verifier overhead: Tier B off at the chain compile sites
    // (criterion_9, vs the verify-on pipeline_10k_w1 within this run)
    let noverify = AuConfig { verify: false, workers: Some(1), ..AuConfig::default() };
    g.bench_function("pipeline_10k_noverify_w1", |b| {
        b.iter(|| black_box(eval_au(&audb, &q, &noverify).unwrap()))
    });

    // observability overhead: live metrics + trace assembly on the
    // same fused chain (criterion_8, vs pipeline_10k_w1 within this run)
    let traced_cfg = AuConfig { workers: Some(1), ..AuConfig::default() };
    g.bench_function("pipeline_10k_metrics_w1", |b| {
        b.iter(|| black_box(eval_au_traced(&audb, &q, &traced_cfg).unwrap()))
    });

    // columnar vs row-major batch execution on a fully batchable
    // arithmetic chain (criterion_11, intra-run ratio): same compiled
    // programs, same shard driver — only the evaluation substrate
    // differs (typed lane kernels vs per-row register slots)
    let bq = batchable_chain();
    let rowmajor = AuConfig { columnar: false, workers: Some(1), ..AuConfig::default() };
    g.bench_function("pipeline_10k_rowmajor_w1", |b| {
        b.iter(|| black_box(eval_au(&audb, &bq, &rowmajor).unwrap()))
    });
    let columnar = AuConfig { workers: Some(1), ..AuConfig::default() };
    g.bench_function("pipeline_10k_columnar_w1", |b| {
        b.iter(|| black_box(eval_au(&audb, &bq, &columnar).unwrap()))
    });
    g.finish();

    // one traced run outside the timing loop: where the spine spends
    // its time, per operator, straight off the execution trace
    let (_, trace) = eval_au_traced(&audb, &q, &traced_cfg).unwrap();
    print_trace_breakdown("pipeline_10k_w1", &trace);
    println!("engine fingerprint: {}", config_fingerprint(&traced_cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
