//! Figure 13 (criterion form): aggregation micro-benchmarks — varying
//! group-by width, aggregate count, and compression budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::col;
use audb_query::{eval_au, eval_det, table, AggFunc, AggSpec, AuConfig};
use audb_workloads::{micro_au_db, MicroConfig};

fn bench(c: &mut Criterion) {
    let cfg = MicroConfig::new(3000, 20).uncertainty(0.05).seed(13);
    let (audb, db) = micro_au_db(&cfg);
    let mut g = c.benchmark_group("fig13_micro_agg");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));

    for nb in [1usize, 5, 10] {
        let q =
            table("t").aggregate((0..nb).collect(), vec![AggSpec::new(AggFunc::Sum, col(19), "s")]);
        let aucfg =
            AuConfig { join_compress: Some(64), agg_compress: Some(25), ..AuConfig::default() };
        g.bench_function(format!("audb_groupby{nb}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &aucfg).unwrap()))
        });
        g.bench_function(format!("det_groupby{nb}"), |b| {
            b.iter(|| black_box(eval_det(&db, &q).unwrap()))
        });
    }

    let q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    for ct in [4usize, 64, 1024] {
        let aucfg =
            AuConfig { join_compress: Some(ct), agg_compress: Some(ct), ..AuConfig::default() };
        g.bench_function(format!("audb_ct{ct}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &aucfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
