//! Figure 17 (criterion form): real-world key-repair workloads for
//! AU-DB vs Det vs UA-DB.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_bench::xdb_to_ua;
use audb_query::{eval_au, eval_det, eval_ua, AuConfig};
use audb_workloads::all_cases;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_realworld");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for case in all_cases(500, 17) {
        let audb = case.xdb.to_au();
        let sg = case.xdb.sg_world();
        let uadb = xdb_to_ua(&case.xdb);
        let cfg = AuConfig::compressed(64);
        for (name, q) in [&case.spj, &case.groupby] {
            g.bench_function(format!("det_{name}"), |b| {
                b.iter(|| black_box(eval_det(&sg, q).unwrap()))
            });
            g.bench_function(format!("audb_{name}"), |b| {
                b.iter(|| black_box(eval_au(&audb, q, &cfg).unwrap()))
            });
            g.bench_function(format!("uadb_{name}"), |b| {
                b.iter(|| black_box(eval_ua(&uadb, q).unwrap()))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
