//! Interval-indexed join engine vs the nested-loop baseline, plus the
//! partition-parallel worker scaling of the planned join: the
//! acceptance benchmarks for the join planner (1k x 1k equality join on
//! a certain attribute must beat nested loops by >= 5x) and the exec
//! runtime (w4 must beat w1 by >= 2x on a machine with >= 4 cores;
//! on fewer cores the two collapse to the same wall clock because the
//! pool never oversubscribes meaningfully).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_bench::{config_fingerprint, print_trace_breakdown};
use audb_core::col;
use audb_query::au::{nested_loop_join_au, AuConfig};
use audb_query::planner::{join_au_planned, join_au_planned_exec};
use audb_query::{eval_au_traced, table, Executor};
use audb_workloads::{micro_join_db, MicroConfig};

fn bench(c: &mut Criterion) {
    let cfg = MicroConfig::new(1000, 3).uncertainty(0.03).range_frac(0.02).seed(41);
    let (audb, _) = micro_join_db(&cfg);
    let l = audb.get("t1").unwrap();
    let r = audb.get("t2").unwrap();
    let pred = col(0).eq(col(3));

    let mut g = c.benchmark_group("join_engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("nested_loop_1k", |b| {
        b.iter(|| black_box(nested_loop_join_au(l, r, Some(&pred)).unwrap()))
    });
    g.bench_function("planned_1k", |b| {
        b.iter(|| black_box(join_au_planned(l, r, Some(&pred)).unwrap()))
    });

    // worker scaling of the same planned join (probe + candidate loops
    // partitioned into morsels, ordered merge)
    for w in [1usize, 2, 4] {
        let exec = Executor::new(w);
        g.bench_function(format!("planned_1k_w{w}"), |b| {
            b.iter(|| black_box(join_au_planned_exec(l, r, Some(&pred), &exec).unwrap()))
        });
    }

    // comparison predicate: interval sweep vs nested loop on a smaller
    // input (the nested loop is quadratic in candidates here)
    let cfg = MicroConfig::new(300, 3).uncertainty(0.05).range_frac(0.02).seed(43);
    let (audb, _) = micro_join_db(&cfg);
    let l = audb.get("t1").unwrap();
    let r = audb.get("t2").unwrap();
    let lt = col(0).lt(col(3));
    g.bench_function("nested_loop_lt_300", |b| {
        b.iter(|| black_box(nested_loop_join_au(l, r, Some(&lt)).unwrap()))
    });
    g.bench_function("planned_lt_300", |b| {
        b.iter(|| black_box(join_au_planned(l, r, Some(&lt)).unwrap()))
    });
    for w in [1usize, 4] {
        let exec = Executor::new(w);
        g.bench_function(format!("planned_lt_300_w{w}"), |b| {
            b.iter(|| black_box(join_au_planned_exec(l, r, Some(&lt), &exec).unwrap()))
        });
    }
    g.finish();

    // trace-derived breakdown of the benched equi-join as a full query
    // (operator-at-a-time, so the join span reports its strategy)
    let cfg = MicroConfig::new(1000, 3).uncertainty(0.03).range_frac(0.02).seed(41);
    let (audb, _) = micro_join_db(&cfg);
    let q = table("t1").join_on(table("t2"), col(0).eq(col(3)));
    let traced_cfg = AuConfig { pipeline: false, workers: Some(1), ..AuConfig::default() };
    let (_, trace) = eval_au_traced(&audb, &q, &traced_cfg).unwrap();
    print_trace_breakdown("planned_1k", &trace);
    println!("engine fingerprint: {}", config_fingerprint(&traced_cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
