//! Serving-engine acceptance benchmark (criterion_10), two phases.
//!
//! **Phase 1 — prepared-plan reuse (criterion gate).** One client,
//! one worker thread, a small relation: `serve_warm_1c` answers from
//! the prepared-plan table (no parse, compiled programs revalidated by
//! cheap Tier A structural checks), `serve_cold_1c` bypasses it and
//! pays parse + rewrite + plan + compile + Tier B every call. The gate:
//! warm p50 <= 0.8x cold p50, i.e. cold/warm >= 1.25x. Small data is
//! the honest shape here — preparation cost is per *query text*, so the
//! gate must hold exactly where execution cannot amortize it.
//!
//! **Phase 2 — oversubscribed serving (zero-lost gate).** 4x more
//! client threads than exec-pool worker threads hammer one engine with
//! the mixed workload (fig13-style aggregation, fig14-style join, and
//! TPC-H Q1/Q3 on the AU-encoded uncertain instance), cycling all three
//! admission classes. Every submission must resolve — result, shed, or
//! structured verdict; per-class QPS and latency quantiles land in
//! `BENCH_serve_engine.json` (path override: `SERVE_BENCH_JSON`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use audb_core::{col, lit};
use audb_query::au::AuConfig;
use audb_query::{table, AggFunc, AggSpec, Query};
use audb_serve::{Class, Engine, EngineConfig};
use audb_workloads::{
    gen_tpch, inject_uncertainty, micro_join_db, tpch_queries, MicroConfig, TpchConfig,
};

/// fig13-style grouped aggregation over the micro table.
fn fig13_agg() -> Query {
    table("t1").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")])
}

/// fig14-style select -> equi-join -> project spine.
fn fig14_join() -> Query {
    table("t1")
        .select(col(1).geq(lit(1i64)))
        .join_on(table("t2"), col(0).eq(col(3)))
        .project(vec![(col(0), "k"), (col(1).add(col(4)), "v")])
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

fn bench(c: &mut Criterion) {
    // --- phase 1: warm vs cold at one client -------------------------------
    let small = MicroConfig {
        domain: 48,
        ..MicroConfig::new(48, 3).uncertainty(0.1).range_frac(0.1).seed(13)
    };
    let gate_engine = Engine::new(
        micro_join_db(&small).0,
        EngineConfig {
            eval: AuConfig { workers: Some(1), ..AuConfig::default() },
            worker_threads: 1,
            ..EngineConfig::default()
        },
    );
    let sql = "SELECT a0, a1, a2 FROM t1 WHERE a0 >= 0 AND a1 >= 1 AND a2 < 40";
    gate_engine.execute_sql(sql, Class::Interactive).unwrap(); // fill the plan

    let mut g = c.benchmark_group("serve_engine");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1500));
    g.bench_function("serve_cold_1c", |b| {
        b.iter(|| black_box(gate_engine.execute_sql_cold(sql, Class::Interactive).unwrap()))
    });
    g.bench_function("serve_warm_1c", |b| {
        b.iter(|| black_box(gate_engine.execute_sql(sql, Class::Interactive).unwrap()))
    });
    g.finish();

    // independent p50 readback for the committed BENCH stamp (the CI
    // gate reads the criterion medians; this keeps the JSON
    // self-contained). Cold and warm rounds interleave so machine-load
    // drift on a shared runner hits both paths equally.
    let timed = |f: &dyn Fn()| -> u64 {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos() as u64
    };
    let cold_call = || {
        black_box(gate_engine.execute_sql_cold(sql, Class::Interactive).unwrap());
    };
    let warm_call = || {
        black_box(gate_engine.execute_sql(sql, Class::Interactive).unwrap());
    };
    let (mut cold_ns, mut warm_ns) = (Vec::new(), Vec::new());
    for _ in 0..20 {
        cold_call();
        warm_call();
    }
    for _ in 0..40 {
        cold_ns.extend((0..5).map(|_| timed(&cold_call)));
        warm_ns.extend((0..5).map(|_| timed(&warm_call)));
    }
    cold_ns.sort_unstable();
    warm_ns.sort_unstable();
    let cold_p50 = percentile(&cold_ns, 0.5);
    let warm_p50 = percentile(&warm_ns, 0.5);
    let speedup = cold_p50 as f64 / warm_p50.max(1) as f64;
    println!("serve cold p50 {cold_p50} ns, warm p50 {warm_p50} ns, cold/warm {speedup:.2}x");

    // --- phase 2: 4x oversubscription on the mixed workload ----------------
    const WORKER_THREADS: usize = 2;
    const CLIENTS: usize = 4 * WORKER_THREADS;
    const ITERS: usize = 24;

    let mcfg = MicroConfig {
        domain: 800,
        ..MicroConfig::new(800, 3).uncertainty(0.03).range_frac(0.02).seed(71)
    };
    let micro = micro_join_db(&mcfg).0;
    let tpch = gen_tpch(TpchConfig::new(0.1, 21));
    let mut served = inject_uncertainty(&tpch, 0.02, 8, 22).to_au();
    served.insert("t1", micro.get("t1").unwrap().clone());
    served.insert("t2", micro.get("t2").unwrap().clone());

    let engine = Engine::new(
        served,
        EngineConfig {
            eval: AuConfig { workers: Some(WORKER_THREADS), ..AuConfig::compressed(64) },
            worker_threads: WORKER_THREADS,
            ..EngineConfig::default()
        },
    );
    let mut mix: Vec<(&str, Query)> =
        vec![("fig13_agg", fig13_agg()), ("fig14_join", fig14_join())];
    mix.extend(tpch_queries().into_iter().take(2));

    let started = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let engine = &engine;
            let mix = &mix;
            s.spawn(move || {
                for i in 0..ITERS {
                    let (_, q) = &mix[(client + i) % mix.len()];
                    let class = Class::ALL[i % Class::ALL.len()];
                    // sheds and governance verdicts are resolutions, not
                    // losses; the accounting below proves nothing vanished
                    let _ = black_box(engine.execute(q, class));
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let submitted: u64 = stats.classes.iter().map(|c| c.submitted).sum();
    let resolved: u64 =
        stats.classes.iter().map(|c| c.completed + c.shed + c.failed + c.rejected).sum();
    let failed: u64 = stats.classes.iter().map(|c| c.failed).sum();
    let zero_lost = submitted == (CLIENTS * ITERS) as u64 && resolved == submitted;
    assert!(zero_lost, "lost queries: submitted {submitted}, resolved {resolved}");

    let class_json: Vec<String> = Class::ALL
        .iter()
        .map(|&class| {
            let c = &stats.classes[class as usize];
            let ms = |q: f64| c.quantile(q).map_or(-1.0, |d| d.as_secs_f64() * 1e3);
            format!(
                "    \"{}\": {{\n      \"submitted\": {},\n      \"completed\": {},\n      \
                 \"shed\": {},\n      \"rejected\": {},\n      \"failed\": {},\n      \
                 \"retried\": {},\n      \"qps\": {:.2},\n      \"p50_ms\": {:.3},\n      \
                 \"p99_ms\": {:.3}\n    }}",
                class.name(),
                c.submitted,
                c.completed,
                c.shed,
                c.rejected,
                c.failed,
                c.retried,
                c.qps(elapsed),
                ms(0.5),
                ms(0.99),
            )
        })
        .collect();

    let warm_gate = speedup >= 1.25;
    let json = format!(
        "{{\n  \"date\": \"{date}\",\n  \"commit_context\": \"PR 9: concurrent serving engine \
         (admission control, backpressure, retry/backoff, graceful degradation)\",\n  \
         \"machine\": \"{cores} CPU cores (std::thread::available_parallelism)\",\n  \
         \"workload\": \"mixed fig13 aggregation + fig14 join (800-row micro) + TPC-H Q1/Q3 \
         (AU-encoded, scale 0.1, 2% uncertain); {clients} clients over {workers} exec worker \
         threads (4x oversubscription), classes round-robin\",\n  \"acceptance\": {{\n    \
         \"criterion_10\": \"warm prepared-plan p50 <= 0.8x cold parse+plan+compile p50 at one \
         client (cold/warm >= 1.25x), and zero queries lost under 4x oversubscription\",\n    \
         \"measured_cold_p50_ns\": {cold_p50},\n    \"measured_warm_p50_ns\": {warm_p50},\n    \
         \"measured_speedup_cold_over_warm\": {speedup:.2},\n    \
         \"criterion_10_warm_passed\": {warm_gate},\n    \
         \"oversubscription_clients\": {clients},\n    \"worker_threads\": {workers},\n    \
         \"submitted_total\": {submitted},\n    \"resolved_total\": {resolved},\n    \
         \"failed_total\": {failed},\n    \"zero_lost\": {zero_lost},\n    \
         \"criterion_10_zero_lost_passed\": {zero_lost}\n  }},\n  \"elapsed_s\": \
         {elapsed_s:.2},\n  \"classes\": {{\n{classes}\n  }}\n}}\n",
        date = std::env::var("BENCH_DATE").unwrap_or_else(|_| "unstamped".into()),
        cores = std::thread::available_parallelism().map_or(0, usize::from),
        clients = CLIENTS,
        workers = WORKER_THREADS,
        cold_p50 = cold_p50,
        warm_p50 = warm_p50,
        speedup = speedup,
        warm_gate = warm_gate,
        submitted = submitted,
        resolved = resolved,
        failed = failed,
        zero_lost = zero_lost,
        elapsed_s = elapsed.as_secs_f64(),
        classes = class_json.join(",\n"),
    );
    let path =
        std::env::var("SERVE_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve_engine.json".into());
    std::fs::write(&path, &json).expect("write BENCH_serve_engine.json");
    println!("wrote {path}");
    print!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
