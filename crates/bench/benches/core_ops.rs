//! Criterion micro-benchmarks for the core primitives: range expression
//! evaluation, `⊛_M`, compression, the SG-combiner, and the max-flow
//! bound checker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::{col, lit, AuAnnot, RangeValue};
use audb_query::au::aggregate::{boxtimes, Monoid};
use audb_query::au::combine::sg_combine;
use audb_query::opt::compress;
use audb_workloads::{gen_micro_au, MicroConfig};

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_ops");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));

    let expr = col(0).add(col(1)).mul(lit(2i64)).leq(col(2));
    let tuple = vec![
        RangeValue::range(1i64, 5i64, 9i64),
        RangeValue::range(0i64, 2i64, 4i64),
        RangeValue::range(10i64, 15i64, 30i64),
    ];
    g.bench_function("range_expr_eval", |b| {
        b.iter(|| black_box(expr.eval_range(black_box(&tuple)).unwrap()))
    });

    let k = AuAnnot::triple(1, 2, 3);
    let m = RangeValue::range(-5i64, 1i64, 7i64);
    g.bench_function("boxtimes_sum", |b| {
        b.iter(|| black_box(boxtimes(Monoid::Sum, black_box(&k), black_box(&m)).unwrap()))
    });

    let rel = gen_micro_au(&MicroConfig::new(2000, 5).uncertainty(0.1).seed(1));
    g.bench_function("compress_ct32", |b| b.iter(|| black_box(compress(&rel, 0, 32))));
    g.bench_function("sg_combine_2k", |b| b.iter(|| black_box(sg_combine(&rel))));

    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    use audb_incomplete::relation_bounds_world;
    let rel = gen_micro_au(&MicroConfig::new(200, 3).uncertainty(0.2).seed(2));
    let world = rel.sg_world();
    let mut g = c.benchmark_group("bound_checking");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.bench_function("flow_check_200", |b| {
        b.iter(|| black_box(relation_bounds_world(black_box(&rel), black_box(&world))))
    });
    g.finish();
}

criterion_group!(benches, bench_core, bench_flow);
criterion_main!(benches);
