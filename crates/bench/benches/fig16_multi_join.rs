//! Figure 16 (criterion form): chained joins under compression.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::col;
use audb_query::{eval_au, table, AuConfig, Query};
use audb_storage::AuDatabase;
use audb_workloads::{micro::gen_micro_pair, MicroConfig};

fn bench(c: &mut Criterion) {
    let mut audb = AuDatabase::new();
    for i in 0..4u64 {
        let cfg =
            MicroConfig::new(400, 2).uncertainty(0.03).range_frac(0.02).domain(400).seed(16 + i);
        let (au, _) = gen_micro_pair(&cfg);
        audb.insert(format!("t{i}"), au);
    }
    let mut g = c.benchmark_group("fig16_multi_join");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for joins in [1usize, 2, 3] {
        let mut q: Query = table("t0");
        let mut arity = 2;
        for i in 1..=joins {
            q = q.join_on(table(format!("t{i}")), col(0).eq(col(arity)));
            arity += 2;
        }
        let aucfg =
            AuConfig { join_compress: Some(16), agg_compress: Some(16), ..AuConfig::default() };
        g.bench_function(format!("chain_{joins}_ct16"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &aucfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
