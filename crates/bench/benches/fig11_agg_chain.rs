//! Figure 11 (criterion form): chained aggregation for Det vs AU-DB.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::col;
use audb_query::{eval_au, eval_det, table, AggFunc, AggSpec, AuConfig, Query};
use audb_workloads::{micro_au_db, MicroConfig};

fn chain(levels: usize) -> Query {
    // group by a0 summing a1, then repeatedly re-aggregate
    let mut q = table("t").aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    for _ in 1..levels {
        q = q.aggregate(vec![0], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
    }
    q
}

fn bench(c: &mut Criterion) {
    let cfg = MicroConfig::new(2000, 3).uncertainty(0.02).seed(11);
    let (audb, db) = micro_au_db(&cfg);
    let aucfg = AuConfig::compressed(32);
    let mut g = c.benchmark_group("fig11_agg_chain");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for k in [1usize, 3, 5] {
        let q = chain(k);
        g.bench_function(format!("det_{k}ops"), |b| {
            b.iter(|| black_box(eval_det(&db, &q).unwrap()))
        });
        g.bench_function(format!("audb_{k}ops"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &aucfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
