//! Figure 12 (criterion form): TPC-H queries Q1/Q3 for Det vs AU-DB.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_query::{eval_au, eval_det, AuConfig};
use audb_workloads::{gen_tpch, inject_uncertainty, tpch_queries, TpchConfig};

fn bench(c: &mut Criterion) {
    let db = gen_tpch(TpchConfig::new(0.2, 21));
    let xdb = inject_uncertainty(&db, 0.02, 8, 22);
    let audb = xdb.to_au();
    let sg = xdb.sg_world();
    let cfg = AuConfig::compressed(64);
    let mut g = c.benchmark_group("fig12_tpch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for (name, q) in tpch_queries().into_iter().take(2) {
        g.bench_function(format!("det_{name}"), |b| {
            b.iter(|| black_box(eval_det(&sg, &q).unwrap()))
        });
        g.bench_function(format!("audb_{name}"), |b| {
            b.iter(|| black_box(eval_au(&audb, &q, &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
