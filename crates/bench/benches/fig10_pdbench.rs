//! Figure 10 (criterion form): PDBench SPJ queries over uncertain TPC-H
//! for Det, UA-DB and AU-DB at a small fixed scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_bench::xdb_to_ua;
use audb_query::{eval_au, eval_det, eval_ua, AuConfig};
use audb_workloads::{gen_tpch, inject_uncertainty, pdbench_queries, TpchConfig};

fn bench(c: &mut Criterion) {
    let db = gen_tpch(TpchConfig::new(0.2, 7));
    let xdb = inject_uncertainty(&db, 0.02, 8, 8);
    let audb = xdb.to_au();
    let uadb = xdb_to_ua(&xdb);
    let sg = xdb.sg_world();
    let cfg = AuConfig::compressed(64);
    let queries = pdbench_queries();

    let mut g = c.benchmark_group("fig10_pdbench");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for (name, q) in &queries {
        g.bench_function(format!("det_{name}"), |b| {
            b.iter(|| black_box(eval_det(&sg, q).unwrap()))
        });
        g.bench_function(format!("uadb_{name}"), |b| {
            b.iter(|| black_box(eval_ua(&uadb, q).unwrap()))
        });
        g.bench_function(format!("audb_{name}"), |b| {
            b.iter(|| black_box(eval_au(&audb, q, &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
