//! Index-backed, partition-parallel aggregation vs the retained
//! groups × tuples membership scan, plus worker scaling for
//! aggregation and set difference — the acceptance benchmarks for the
//! exec runtime's aggregation driver: the sweep-indexed grouping must
//! beat `aggregate_au_scan` even at 1 worker, and w4 must beat w1 by
//! >= 2x on a machine with >= 4 cores.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use audb_core::col;
use audb_query::au::aggregate::{aggregate_au_exec, aggregate_au_scan};
use audb_query::au::difference::{difference_au_exec, difference_au_scan};
use audb_query::{AggFunc, AggSpec, Executor};
use audb_storage::AuRelation;
use audb_workloads::{gen_micro_au, micro_join_db, MicroConfig};

fn bench(c: &mut Criterion) {
    // 10k rows, ~1k SG groups on col 0, 20% of rows with uncertain
    // attributes: the old membership scan tests every group box against
    // every uncertain row; the sweep touches only overlapping pairs.
    let cfg = MicroConfig::new(10_000, 3).uncertainty(0.2).range_frac(0.02).seed(47);
    let rel = gen_micro_au(&cfg);
    let aggs = [
        AggSpec::new(AggFunc::Sum, col(1), "s"),
        AggSpec::count("c"),
        AggSpec::new(AggFunc::Min, col(2), "lo"),
        AggSpec::new(AggFunc::Max, col(2), "hi"),
    ];

    let mut g = c.benchmark_group("agg_engine");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("agg_scan_10k", |b| {
        b.iter(|| black_box(aggregate_au_scan(&rel, &[0], &aggs, None).unwrap()))
    });
    for w in [1usize, 2, 4] {
        let exec = Executor::new(w);
        g.bench_function(format!("agg_indexed_10k_w{w}"), |b| {
            b.iter(|| black_box(aggregate_au_exec(&rel, &[0], &aggs, None, &exec).unwrap()))
        });
    }

    // indexed set difference under the same runtime (5k − 5k over a
    // shared key domain)
    let cfg = MicroConfig::new(5_000, 3).uncertainty(0.05).range_frac(0.02).seed(53);
    let (audb, _) = micro_join_db(&cfg);
    let l = audb.get("t1").unwrap();
    let r = audb.get("t2").unwrap();
    g.bench_function("diff_scan_5k", |b| b.iter(|| black_box(difference_au_scan(l, r).unwrap())));
    for w in [1usize, 4] {
        let exec = Executor::new(w);
        g.bench_function(format!("diff_indexed_5k_w{w}"), |b| {
            b.iter(|| black_box(difference_au_exec(l, r, &exec).unwrap()))
        });
    }

    // parallel normalization: the hash-merge + sort tail, sharded by
    // tuple hash (40k raw rows with 4x duplication onto 10k tuples).
    // Each iteration must clone the non-normalized input (normalize
    // consumes it; the criterion shim has no iter_batched), so the
    // clone-only baseline is benched too — subtract it to read the
    // driver's own w4/w1 scaling.
    let cfg = MicroConfig::new(10_000, 3).uncertainty(0.2).range_frac(0.02).seed(61);
    let base = gen_micro_au(&cfg);
    let mut messy = AuRelation::empty(base.schema.clone());
    for _ in 0..4 {
        messy.extend_from(&base);
    }
    g.bench_function("normalize_40k_clone", |b| b.iter(|| black_box(messy.clone())));
    for w in [1usize, 2, 4] {
        let exec = Executor::new(w);
        g.bench_function(format!("normalize_40k_w{w}"), |b| {
            b.iter(|| {
                let mut r = messy.clone();
                r.normalize_with(&exec).unwrap();
                black_box(r)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
