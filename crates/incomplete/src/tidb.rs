//! Tuple-independent databases (TI-DBs, Section 11.1) and their
//! translation into AU-DBs (`trans_TI`, Theorem 9).

use audb_core::AuAnnot;
use audb_storage::{AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

use crate::worlds::IncompleteDb;

/// A probabilistic TI-relation: each tuple is present independently with
/// its marginal probability (`p = 1.0` means certain; the incomplete
/// variant maps "optional" to any `p < 1`).
#[derive(Debug, Clone)]
pub struct TiRelation {
    pub schema: Schema,
    pub tuples: Vec<(Tuple, f64)>,
}

impl TiRelation {
    pub fn new(schema: Schema, tuples: Vec<(Tuple, f64)>) -> Self {
        assert!(tuples.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
        TiRelation { schema, tuples }
    }

    /// Number of uncertain (optional) tuples.
    pub fn uncertain_count(&self) -> usize {
        self.tuples.iter().filter(|(_, p)| *p < 1.0).count()
    }

    /// Enumerate all possible worlds (exponential — test-sized inputs
    /// only; guarded by `max_worlds`).
    pub fn worlds(&self, max_worlds: usize) -> Option<Vec<Relation>> {
        let optional: Vec<usize> =
            self.tuples.iter().enumerate().filter(|(_, (_, p))| *p < 1.0).map(|(i, _)| i).collect();
        if optional.len() > 20 || (1usize << optional.len()) > max_worlds {
            return None;
        }
        let mut out = Vec::with_capacity(1 << optional.len());
        for mask in 0..(1u32 << optional.len()) {
            let mut rows = Vec::new();
            for (i, (t, p)) in self.tuples.iter().enumerate() {
                let include = if *p >= 1.0 {
                    true
                } else {
                    let bit = optional.iter().position(|x| *x == i).unwrap();
                    mask & (1 << bit) != 0
                };
                if include {
                    rows.push((t.clone(), 1u64));
                }
            }
            out.push(Relation::from_rows(self.schema.clone(), rows));
        }
        Some(out)
    }

    /// The selected-guess world: all tuples with `p ≥ 0.5` (the highest
    /// probability world of a TI-DB).
    pub fn sg_world(&self) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.tuples.iter().filter(|(_, p)| *p >= 0.5).map(|(t, _)| (t.clone(), 1)).collect(),
        )
    }

    /// `trans_TI` (Section 11.1): attribute values are certain; the
    /// tuple annotation is `(⟦p = 1⟧, ⟦p ≥ 0.5⟧, ⟦p > 0⟧)`.
    pub fn to_au(&self) -> AuRelation {
        let rows = self
            .tuples
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(t, p)| {
                (RangeTuple::certain(t), AuAnnot::triple((*p >= 1.0) as u64, (*p >= 0.5) as u64, 1))
            })
            .collect();
        AuRelation::from_rows(self.schema.clone(), rows)
    }
}

/// A TI-database plus helpers to view it as explicit possible worlds.
#[derive(Debug, Clone, Default)]
pub struct TiDb {
    pub relations: Vec<(String, TiRelation)>,
}

impl TiDb {
    pub fn insert(&mut self, name: impl Into<String>, rel: TiRelation) {
        self.relations.push((name.into(), rel));
    }

    /// Explicit possible worlds (cartesian product across relations).
    pub fn to_incomplete(&self, max_worlds: usize) -> Option<IncompleteDb> {
        let mut worlds: Vec<Database> = vec![Database::new()];
        for (name, rel) in &self.relations {
            let rel_worlds = rel.worlds(max_worlds)?;
            let mut next = Vec::with_capacity(worlds.len() * rel_worlds.len());
            for w in &worlds {
                for rw in &rel_worlds {
                    let mut db = w.clone();
                    db.insert(name.clone(), rw.clone());
                    next.push(db);
                }
            }
            if next.len() > max_worlds {
                return None;
            }
            worlds = next;
        }
        // locate the SG world
        let mut sg = Database::new();
        for (name, rel) in &self.relations {
            sg.insert(name.clone(), rel.sg_world());
        }
        let sg = sg.normalized();
        let sg_index = worlds.iter().position(|w| w.normalized() == sg)?;
        Some(IncompleteDb::new(worlds, sg_index))
    }

    pub fn to_au(&self) -> audb_storage::AuDatabase {
        let mut out = audb_storage::AuDatabase::new();
        for (name, rel) in &self.relations {
            out.insert(name.clone(), rel.to_au());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::database_bounds_incomplete;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn sample() -> TiDb {
        let mut db = TiDb::default();
        db.insert(
            "r",
            TiRelation::new(
                Schema::named(&["a"]),
                vec![(it(&[1]), 1.0), (it(&[2]), 0.7), (it(&[3]), 0.2)],
            ),
        );
        db
    }

    #[test]
    fn world_enumeration() {
        let db = sample();
        let inc = db.to_incomplete(64).unwrap();
        assert_eq!(inc.worlds.len(), 4); // two optional tuples
                                         // SG world: p ≥ 0.5 → tuples 1, 2
        let sgw = inc.sg_world().get("r").unwrap();
        assert_eq!(sgw.multiplicity(&it(&[1])), 1);
        assert_eq!(sgw.multiplicity(&it(&[2])), 1);
        assert_eq!(sgw.multiplicity(&it(&[3])), 0);
    }

    /// Theorem 9: `trans_TI(D)` bounds `D`.
    #[test]
    fn translation_bounds_input() {
        let db = sample();
        let au = db.to_au();
        let inc = db.to_incomplete(64).unwrap();
        assert!(database_bounds_incomplete(&au, &inc));
    }

    #[test]
    fn annotations_follow_probability() {
        let db = sample();
        let au = db.to_au();
        let rel = au.get("r").unwrap();
        assert_eq!(rel.annotation(&RangeTuple::certain(&it(&[1]))), AuAnnot::triple(1, 1, 1));
        assert_eq!(rel.annotation(&RangeTuple::certain(&it(&[2]))), AuAnnot::triple(0, 1, 1));
        assert_eq!(rel.annotation(&RangeTuple::certain(&it(&[3]))), AuAnnot::triple(0, 0, 1));
    }
}
