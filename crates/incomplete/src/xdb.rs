//! x-DBs / block-independent databases (Section 11.2): each *x-tuple*
//! is a set of mutually exclusive alternatives with probabilities;
//! `trans_X` (Theorem 10) translates them into AU-DBs with one range
//! tuple per x-tuple. PDBench-style uncertainty injection produces x-DBs.

use audb_core::{AuAnnot, RangeValue};
use audb_storage::{AuDatabase, AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

use crate::worlds::IncompleteDb;

/// An x-tuple: alternatives with probabilities summing to ≤ 1
/// (`P(τ) < 1` makes the x-tuple optional).
#[derive(Debug, Clone)]
pub struct XTuple {
    pub alternatives: Vec<(Tuple, f64)>,
}

impl XTuple {
    pub fn certain(t: Tuple) -> Self {
        XTuple { alternatives: vec![(t, 1.0)] }
    }

    pub fn new(alternatives: Vec<(Tuple, f64)>) -> Self {
        assert!(!alternatives.is_empty());
        let total: f64 = alternatives.iter().map(|(_, p)| p).sum();
        assert!(total <= 1.0 + 1e-9, "alternative probabilities exceed 1: {total}");
        XTuple { alternatives }
    }

    /// `P(τ)`: total probability that some alternative exists.
    pub fn total_prob(&self) -> f64 {
        self.alternatives.iter().map(|(_, p)| p).sum()
    }

    pub fn is_optional(&self) -> bool {
        self.total_prob() < 1.0 - 1e-9
    }

    pub fn is_uncertain(&self) -> bool {
        self.alternatives.len() > 1 || self.is_optional()
    }

    /// `pickMax(τ)`: highest-probability alternative (first on ties).
    pub fn pick_max(&self) -> &Tuple {
        let mut best = &self.alternatives[0];
        for a in &self.alternatives[1..] {
            if a.1 > best.1 {
                best = a;
            }
        }
        &best.0
    }

    /// Is `pickMax` part of the SGW? Yes iff existing is at least as
    /// likely as being absent: `1 − P(τ) ≤ P(pickMax)`.
    pub fn sg_present(&self) -> bool {
        let pm = self.alternatives.iter().map(|(_, p)| *p).fold(f64::NEG_INFINITY, f64::max);
        1.0 - self.total_prob() <= pm + 1e-12
    }
}

/// An x-relation.
#[derive(Debug, Clone)]
pub struct XRelation {
    pub schema: Schema,
    pub xtuples: Vec<XTuple>,
}

impl XRelation {
    pub fn new(schema: Schema, xtuples: Vec<XTuple>) -> Self {
        XRelation { schema, xtuples }
    }

    /// Fraction of x-tuples with more than one possibility (the
    /// "uncertainty percentage" reported in the evaluation).
    pub fn uncertain_ratio(&self) -> f64 {
        if self.xtuples.is_empty() {
            return 0.0;
        }
        self.xtuples.iter().filter(|x| x.is_uncertain()).count() as f64 / self.xtuples.len() as f64
    }

    /// The selected-guess world.
    pub fn sg_world(&self) -> Relation {
        Relation::from_rows(
            self.schema.clone(),
            self.xtuples
                .iter()
                .filter(|x| x.sg_present())
                .map(|x| (x.pick_max().clone(), 1))
                .collect(),
        )
    }

    /// Enumerate possible worlds (choices per x-tuple, + absent when
    /// optional). `None` when more than `max_worlds`.
    pub fn worlds(&self, max_worlds: usize) -> Option<Vec<Relation>> {
        let mut worlds: Vec<Vec<(Tuple, u64)>> = vec![Vec::new()];
        for x in &self.xtuples {
            let mut options: Vec<Option<&Tuple>> =
                x.alternatives.iter().map(|(t, _)| Some(t)).collect();
            if x.is_optional() {
                options.push(None);
            }
            let mut next = Vec::with_capacity(worlds.len() * options.len());
            for w in &worlds {
                for opt in &options {
                    let mut w2 = w.clone();
                    if let Some(t) = opt {
                        w2.push(((*t).clone(), 1));
                    }
                    next.push(w2);
                }
            }
            if next.len() > max_worlds {
                return None;
            }
            worlds = next;
        }
        Some(
            worlds.into_iter().map(|rows| Relation::from_rows(self.schema.clone(), rows)).collect(),
        )
    }

    /// `trans_X` (Section 11.2): one AU tuple per x-tuple; attribute
    /// ranges cover all alternatives; SG values from `pickMax`.
    pub fn to_au(&self) -> AuRelation {
        let n = self.schema.arity();
        let mut rows = Vec::with_capacity(self.xtuples.len());
        for x in &self.xtuples {
            let sg = x.pick_max();
            let mut ranges = Vec::with_capacity(n);
            for i in 0..n {
                let mut lo = x.alternatives[0].0 .0[i].clone();
                let mut hi = lo.clone();
                for (t, _) in &x.alternatives[1..] {
                    lo = audb_core::Value::min_of(lo, t.0[i].clone());
                    hi = audb_core::Value::max_of(hi, t.0[i].clone());
                }
                ranges.push(
                    RangeValue::new(lo, sg.0[i].clone(), hi)
                        .expect("pickMax within alternative bounds"),
                );
            }
            let lb = (!x.is_optional()) as u64;
            let sg_mult = x.sg_present() as u64;
            rows.push((
                RangeTuple::new(ranges),
                AuAnnot::triple(lb.min(sg_mult), sg_mult.max(lb), 1),
            ));
        }
        AuRelation::from_rows(self.schema.clone(), rows)
    }
}

/// An x-database.
#[derive(Debug, Clone, Default)]
pub struct XDb {
    pub relations: Vec<(String, XRelation)>,
}

impl XDb {
    pub fn insert(&mut self, name: impl Into<String>, rel: XRelation) {
        self.relations.push((name.into(), rel));
    }

    pub fn get(&self, name: &str) -> Option<&XRelation> {
        self.relations.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// The selected-guess world of the whole database.
    pub fn sg_world(&self) -> Database {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(name.clone(), rel.sg_world());
        }
        db
    }

    /// Explicit possible worlds (test-sized only).
    pub fn to_incomplete(&self, max_worlds: usize) -> Option<IncompleteDb> {
        let mut worlds: Vec<Database> = vec![Database::new()];
        for (name, rel) in &self.relations {
            let rel_worlds = rel.worlds(max_worlds)?;
            let mut next = Vec::with_capacity(worlds.len() * rel_worlds.len());
            for w in &worlds {
                for rw in &rel_worlds {
                    let mut db = w.clone();
                    db.insert(name.clone(), rw.clone());
                    next.push(db);
                }
            }
            if next.len() > max_worlds {
                return None;
            }
            worlds = next;
        }
        let sg = self.sg_world().normalized();
        let sg_index = worlds.iter().position(|w| w.normalized() == sg)?;
        Some(IncompleteDb::new(worlds, sg_index))
    }

    pub fn to_au(&self) -> AuDatabase {
        let mut out = AuDatabase::new();
        for (name, rel) in &self.relations {
            out.insert(name.clone(), rel.to_au());
        }
        out
    }

    /// Sample one world (used by the MCDB baseline).
    pub fn sample_world(&self, rng: &mut impl rand::Rng) -> Database {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            let mut rows = Vec::new();
            for x in &rel.xtuples {
                let roll: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen: Option<&Tuple> = None;
                for (t, p) in &x.alternatives {
                    acc += p;
                    if roll < acc {
                        chosen = Some(t);
                        break;
                    }
                }
                if let Some(t) = chosen {
                    rows.push((t.clone(), 1));
                }
            }
            db.insert(name.clone(), Relation::from_rows(rel.schema.clone(), rows));
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::database_bounds_incomplete;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn sample() -> XDb {
        let mut db = XDb::default();
        db.insert(
            "r",
            XRelation::new(
                Schema::named(&["a", "b"]),
                vec![
                    XTuple::certain(it(&[1, 10])),
                    XTuple::new(vec![(it(&[2, 20]), 0.5), (it(&[3, 30]), 0.5)]),
                    XTuple::new(vec![(it(&[4, 40]), 0.3)]),
                ],
            ),
        );
        db
    }

    #[test]
    fn pick_max_and_sg() {
        let x = XTuple::new(vec![(it(&[1]), 0.3), (it(&[2]), 0.4)]);
        assert_eq!(x.pick_max(), &it(&[2]));
        assert!(x.sg_present()); // absent prob 0.3 ≤ 0.4
        let y = XTuple::new(vec![(it(&[1]), 0.2)]);
        assert!(!y.sg_present()); // absent prob 0.8 > 0.2
    }

    #[test]
    fn world_enumeration_counts() {
        let db = sample();
        // x1: 1 choice; x2: 2 choices (not optional); x3: present/absent
        let inc = db.to_incomplete(64).unwrap();
        assert_eq!(inc.worlds.len(), 4);
    }

    /// Theorem 10: `trans_X(D)` bounds `D`.
    #[test]
    fn translation_bounds_input() {
        let db = sample();
        let au = db.to_au();
        let inc = db.to_incomplete(64).unwrap();
        assert!(database_bounds_incomplete(&au, &inc));
    }

    #[test]
    fn ranges_cover_alternatives() {
        let db = sample();
        let au = db.to_au();
        let rel = au.get("r").unwrap();
        let alt_row = rel
            .rows()
            .iter()
            .find(|(t, _)| !t.is_certain())
            .expect("x-tuple with alternatives becomes a range tuple");
        assert!(alt_row.0.bounds(&it(&[2, 20])));
        assert!(alt_row.0.bounds(&it(&[3, 30])));
        assert!(!alt_row.0.bounds(&it(&[1, 10])));
    }

    #[test]
    fn sampling_respects_alternatives() {
        use rand::SeedableRng;
        let db = sample();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let w = db.sample_world(&mut rng);
            let r = w.get("r").unwrap();
            // the certain tuple is always present
            assert_eq!(r.multiplicity(&it(&[1, 10])), 1);
            // alternatives are exclusive
            assert!(r.multiplicity(&it(&[2, 20])) + r.multiplicity(&it(&[3, 30])) <= 1);
        }
    }

    #[test]
    fn uncertain_ratio() {
        let db = sample();
        let r = db.get("r").unwrap();
        assert!((r.uncertain_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }
}
