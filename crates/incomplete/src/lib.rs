//! # audb-incomplete
//!
//! Incomplete-database models and their translations into AU-DBs
//! (paper Sections 3.2 and 11), plus the machinery to *verify* bounding:
//!
//! * [`worlds`] — explicit possible-worlds databases, certain/possible
//!   annotations (glb/lub);
//! * [`tidb`] — tuple-independent databases (`trans_TI`, Theorem 9);
//! * [`xdb`] — x-DBs / block-independent databases (`trans_X`,
//!   Theorem 10), the model PDBench generates;
//! * [`ctable`] — C-tables with finite-domain variables and a
//!   brute-force solver substitute (`trans_C`, Theorem 11; Theorem 2's
//!   3-colorability reduction);
//! * [`vtable`] — V-tables / Codd tables with labeled nulls;
//! * [`lens`] — the key-repair cleaning lens (Section 11.4);
//! * [`maxflow`], [`bounding`] — tuple-matching existence (Definitions
//!   15–17) decided by max-flow with lower bounds: the ground-truth
//!   oracle for all bound-preservation property tests.

pub mod bounding;
pub mod ctable;
pub mod lens;
pub mod maxflow;
pub mod tidb;
pub mod vtable;
pub mod worlds;
pub mod xdb;

pub use bounding::{
    database_bounds_incomplete, database_bounds_world, relation_bounds_incomplete,
    relation_bounds_world,
};
pub use ctable::{CTable, CVal};
pub use lens::{key_repair_lens, repair_stats, RepairStats};
pub use tidb::{TiDb, TiRelation};
pub use vtable::{VCell, VTable};
pub use worlds::{IncompleteDb, IncompleteRelation};
pub use xdb::{XDb, XRelation, XTuple};
