//! V-tables / Codd tables: tuples with labeled nulls, each null ranging
//! over a finite domain. Input model for the Libkin-style
//! certain-answer under-approximation baseline and a source of AU-DBs
//! (nulls become domain-wide ranges).

use audb_core::{AuAnnot, RangeValue, Value};
use audb_storage::{AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

use crate::worlds::IncompleteDb;

/// A cell of a V-table: a constant or a labeled null (`Var(id)`); equal
/// ids denote the same unknown value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VCell {
    Const(Value),
    Var(usize),
}

/// A V-table with a shared finite domain for all labeled nulls.
#[derive(Debug, Clone)]
pub struct VTable {
    pub schema: Schema,
    pub rows: Vec<Vec<VCell>>,
    /// Domain that labeled nulls range over.
    pub null_domain: Vec<Value>,
    /// Number of distinct labeled nulls.
    pub var_count: usize,
}

impl VTable {
    pub fn new(schema: Schema, null_domain: Vec<Value>) -> Self {
        VTable { schema, rows: Vec::new(), null_domain, var_count: 0 }
    }

    pub fn fresh_var(&mut self) -> usize {
        self.var_count += 1;
        self.var_count - 1
    }

    pub fn add_row(&mut self, cells: Vec<VCell>) {
        assert_eq!(cells.len(), self.schema.arity());
        for c in &cells {
            if let VCell::Var(v) = c {
                assert!(*v < self.var_count, "register nulls via fresh_var");
            }
        }
        self.rows.push(cells);
    }

    fn instantiate(&self, valuation: &[Value]) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|cells| {
                let vals: Vec<Value> = cells
                    .iter()
                    .map(|c| match c {
                        VCell::Const(v) => v.clone(),
                        VCell::Var(i) => valuation[*i].clone(),
                    })
                    .collect();
                (Tuple::new(vals), 1u64)
            })
            .collect();
        Relation::from_rows(self.schema.clone(), rows)
    }

    /// Enumerate possible worlds (domain^var_count; test-sized only).
    pub fn worlds(&self, max_worlds: usize) -> Option<Vec<Relation>> {
        let count = self.null_domain.len().checked_pow(self.var_count as u32)?;
        if count > max_worlds {
            return None;
        }
        let mut valuations: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..self.var_count {
            let mut next = Vec::with_capacity(valuations.len() * self.null_domain.len());
            for v in &valuations {
                for d in &self.null_domain {
                    let mut v2 = v.clone();
                    v2.push(d.clone());
                    next.push(v2);
                }
            }
            valuations = next;
        }
        Some(valuations.iter().map(|v| self.instantiate(v)).collect())
    }

    /// SG valuation: the first domain value for every null.
    pub fn sg_world(&self) -> Relation {
        let valuation: Vec<Value> =
            (0..self.var_count).map(|_| self.null_domain[0].clone()).collect();
        self.instantiate(&valuation)
    }

    /// Translate into an AU-relation: labeled nulls become ranges over
    /// the null domain with the SG valuation's value as selected guess.
    pub fn to_au(&self) -> AuRelation {
        let lo = self.null_domain.iter().cloned().reduce(Value::min_of).unwrap_or(Value::MinVal);
        let hi = self.null_domain.iter().cloned().reduce(Value::max_of).unwrap_or(Value::MaxVal);
        let mut out = AuRelation::empty(self.schema.clone());
        for cells in &self.rows {
            let ranges: Vec<RangeValue> = cells
                .iter()
                .map(|c| match c {
                    VCell::Const(v) => RangeValue::certain(v.clone()),
                    VCell::Var(_) => {
                        RangeValue::new(lo.clone(), self.null_domain[0].clone(), hi.clone())
                            .expect("domain ordered")
                    }
                })
                .collect();
            out.push(RangeTuple::new(ranges), AuAnnot::certain_one());
        }
        out.normalized()
    }

    /// Explicit possible worlds as a single-relation database.
    pub fn to_incomplete(&self, name: &str, max_worlds: usize) -> Option<IncompleteDb> {
        let worlds = self.worlds(max_worlds)?;
        let sg = self.sg_world().normalized();
        let sg_index = worlds.iter().position(|w| w.normalized() == sg)?;
        let dbs = worlds
            .into_iter()
            .map(|w| {
                let mut db = Database::new();
                db.insert(name.to_string(), w);
                db
            })
            .collect();
        Some(IncompleteDb::new(dbs, sg_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::database_bounds_incomplete;

    fn sample() -> VTable {
        let mut vt = VTable::new(Schema::named(&["a", "b"]), vec![Value::Int(1), Value::Int(2)]);
        let x = vt.fresh_var();
        vt.add_row(vec![VCell::Const(Value::Int(7)), VCell::Var(x)]);
        vt.add_row(vec![VCell::Var(x), VCell::Const(Value::Int(9))]);
        vt
    }

    #[test]
    fn shared_nulls_correlate_worlds() {
        let vt = sample();
        let worlds = vt.worlds(16).unwrap();
        // one shared null over a 2-value domain: 2 worlds
        assert_eq!(worlds.len(), 2);
        for w in &worlds {
            let rows = w.rows();
            // in every world, row1.b == row2.a (same labeled null)
            let b = rows.iter().find(|(t, _)| t.0[0] == Value::Int(7)).unwrap().0 .0[1].clone();
            assert!(rows.iter().any(|(t, _)| t.0[0] == b && t.0[1] == Value::Int(9)));
        }
    }

    #[test]
    fn translation_bounds_input() {
        let vt = sample();
        let mut audb = audb_storage::AuDatabase::new();
        audb.insert("r", vt.to_au());
        let inc = vt.to_incomplete("r", 16).unwrap();
        assert!(database_bounds_incomplete(&audb, &inc));
    }

    #[test]
    fn nulls_become_domain_ranges() {
        let vt = sample();
        let au = vt.to_au();
        let row = au.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(7)).unwrap();
        assert_eq!(row.0 .0[1].lb, Value::Int(1));
        assert_eq!(row.0 .0[1].ub, Value::Int(2));
    }
}
