//! Deciding the bounding relations of Definitions 15–17: does an
//! AU-relation bound a possible world / an incomplete database?
//!
//! A *tuple matching* distributes each world tuple's multiplicity over
//! AU tuples that bound it; the AU-relation bounds the world iff a
//! single matching exists whose per-AU-tuple totals fall within
//! `[lb, ub]`. That is exactly a transportation-feasibility problem,
//! decided here by max-flow with lower bounds ([`crate::maxflow`]).
//!
//! These checkers are the ground-truth oracle for the property-based
//! bound-preservation tests (Theorems 3–6, Corollary 2).

use audb_storage::{AuDatabase, AuRelation, Database, Relation};

use crate::maxflow::{feasible_flow, BoundedEdge};
use crate::worlds::{IncompleteDb, IncompleteRelation};

/// Does the AU-relation bound the deterministic relation (one possible
/// world) in the sense of Definition 16?
pub fn relation_bounds_world(au: &AuRelation, world: &Relation) -> bool {
    let world = world.normalized();
    let w = world.rows();
    let a = au.rows();
    // nodes: 0 = source, 1 = sink, 2..2+|w| world tuples, then AU tuples
    let s = 0usize;
    let t = 1usize;
    let wbase = 2usize;
    let abase = wbase + w.len();
    let nodes = abase + a.len();

    let mut edges: Vec<BoundedEdge> = Vec::new();
    for (i, (tup, mult)) in w.iter().enumerate() {
        // world multiplicity must be fully distributed
        edges.push(BoundedEdge { from: s, to: wbase + i, lower: *mult, upper: *mult });
        for (j, (rt, _)) in a.iter().enumerate() {
            if rt.bounds(tup) {
                edges.push(BoundedEdge { from: wbase + i, to: abase + j, lower: 0, upper: *mult });
            }
        }
    }
    for (j, (_, k)) in a.iter().enumerate() {
        edges.push(BoundedEdge { from: abase + j, to: t, lower: k.lb, upper: k.ub });
    }
    feasible_flow(nodes, s, t, &edges)
}

/// Does the AU-relation bound an incomplete relation (Definition 17)?
/// Every world must be bounded, and the SGW must be encoded exactly.
pub fn relation_bounds_incomplete(au: &AuRelation, inc: &IncompleteRelation) -> bool {
    if au.sg_world().normalized() != inc.sg_world().normalized() {
        return false;
    }
    inc.worlds.iter().all(|w| relation_bounds_world(au, w))
}

/// Does an AU-database bound a deterministic database relation-wise?
pub fn database_bounds_world(au: &AuDatabase, world: &Database) -> bool {
    for (name, rel) in world.iter() {
        match au.get(name) {
            Ok(aurel) => {
                if !relation_bounds_world(aurel, rel) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Does an AU-database bound an incomplete database (Definition 17)?
pub fn database_bounds_incomplete(au: &AuDatabase, inc: &IncompleteDb) -> bool {
    if au.sg_world().normalized() != inc.sg_world().normalized() {
        return false;
    }
    inc.worlds.iter().all(|w| database_bounds_world(au, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::RangeValue;
    use audb_storage::{au_row, certain_row, Schema, Tuple};

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    /// Example 8: the AU-relation of Example 7 bounds both worlds.
    #[test]
    fn example_8_bounds_both_worlds() {
        let schema = Schema::named(&["A", "B"]);
        let au = AuRelation::from_rows(
            schema.clone(),
            vec![
                certain_row(&[1, 1], 2, 2, 3),
                au_row(
                    vec![RangeValue::certain(1i64), RangeValue::range(1i64, 1i64, 3i64)],
                    2,
                    3,
                    3,
                ),
                au_row(
                    vec![RangeValue::range(1i64, 2i64, 2i64), RangeValue::certain(3i64)],
                    1,
                    1,
                    1,
                ),
            ],
        );
        let d1 = Relation::from_rows(schema.clone(), vec![(it(&[1, 1]), 5), (it(&[2, 3]), 1)]);
        let d2 = Relation::from_rows(
            schema.clone(),
            vec![(it(&[1, 1]), 2), (it(&[1, 3]), 2), (it(&[2, 4]), 1)],
        );
        assert!(relation_bounds_world(&au, &d1));
        // d2's (2,4) is not bounded by any AU tuple (B=4 out of range)
        assert!(!relation_bounds_world(&au, &d2));
        // the paper's D2 has (2,4) — but tuple 3's B is certain 3, so the
        // world is only bounded if the last tuple is (2,3):
        let d2fix =
            Relation::from_rows(schema, vec![(it(&[1, 1]), 2), (it(&[1, 3]), 2), (it(&[2, 3]), 1)]);
        assert!(relation_bounds_world(&au, &d2fix));
    }

    #[test]
    fn lower_bound_violation_detected() {
        let schema = Schema::named(&["A"]);
        // AU tuple demands at least 2 copies of something in [1..3]
        let au = AuRelation::from_rows(
            schema.clone(),
            vec![au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 2, 2, 2)],
        );
        let ok = Relation::from_rows(schema.clone(), vec![(it(&[1]), 1), (it(&[3]), 1)]);
        assert!(relation_bounds_world(&au, &ok));
        let bad = Relation::from_rows(schema, vec![(it(&[1]), 1)]);
        assert!(!relation_bounds_world(&au, &bad));
    }

    #[test]
    fn upper_bound_violation_detected() {
        let schema = Schema::named(&["A"]);
        let au = AuRelation::from_rows(
            schema.clone(),
            vec![au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 0, 1, 2)],
        );
        let ok = Relation::from_rows(schema.clone(), vec![(it(&[2]), 2)]);
        assert!(relation_bounds_world(&au, &ok));
        let bad = Relation::from_rows(schema, vec![(it(&[2]), 3)]);
        assert!(!relation_bounds_world(&au, &bad));
    }

    /// Overlapping AU tuples: the matching must *split* a world tuple's
    /// multiplicity across them (the ambiguity Section 4 discusses).
    #[test]
    fn splitting_across_overlapping_tuples() {
        let schema = Schema::named(&["A"]);
        let au = AuRelation::from_rows(
            schema.clone(),
            vec![
                au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 1, 1, 1),
                au_row(vec![RangeValue::range(2i64, 3i64, 5i64)], 1, 1, 1),
            ],
        );
        // one tuple (2) with multiplicity 2: each AU tuple takes one copy
        let w = Relation::from_rows(schema.clone(), vec![(it(&[2]), 2)]);
        assert!(relation_bounds_world(&au, &w));
        // multiplicity 3 exceeds the combined upper bounds
        let w = Relation::from_rows(schema, vec![(it(&[2]), 3)]);
        assert!(!relation_bounds_world(&au, &w));
    }

    #[test]
    fn empty_world_needs_no_matching_unless_lb() {
        let schema = Schema::named(&["A"]);
        let empty = Relation::empty(schema.clone());
        let optional = AuRelation::from_rows(schema.clone(), vec![certain_row(&[1], 0, 1, 1)]);
        assert!(relation_bounds_world(&optional, &empty));
        let required = AuRelation::from_rows(schema, vec![certain_row(&[1], 1, 1, 1)]);
        assert!(!relation_bounds_world(&required, &empty));
    }
}
