//! Data-cleaning lenses (Section 11.4): expose the uncertainty of a
//! cleaning heuristic as an incomplete database. Implemented here: the
//! *key-repair lens* used by the paper's real-world experiments
//! (Section 12.3) — groups of tuples violating a key constraint become
//! x-tuples whose alternatives are the conflicting rows.

use audb_storage::{Relation, Tuple};
use std::collections::HashMap;

use crate::xdb::{XRelation, XTuple};

/// Repair key violations: group rows by the key attributes; each group
/// becomes one x-tuple with uniform probabilities over its members
/// (the selected guess is the first row of the group, mirroring the
/// paper's "randomly pick one tuple for the SGW").
pub fn key_repair_lens(rel: &Relation, key: &[usize]) -> XRelation {
    let mut groups: HashMap<Tuple, Vec<Tuple>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for (t, k) in rel.rows() {
        let kt = t.project(key);
        let entry = groups.entry(kt.clone()).or_insert_with(|| {
            order.push(kt);
            Vec::new()
        });
        for _ in 0..*k {
            entry.push(t.clone());
        }
    }
    let mut xtuples = Vec::with_capacity(order.len());
    for kt in order {
        let members = groups.remove(&kt).unwrap();
        let p = 1.0 / members.len() as f64;
        // give the first member the residual so the probabilities sum to
        // exactly 1 (the x-tuple is certain: some repair exists)
        let mut alts: Vec<(Tuple, f64)> = members.into_iter().map(|t| (t, p)).collect();
        let total: f64 = alts.iter().map(|(_, q)| q).sum();
        alts[0].1 += 1.0 - total;
        // make the first member the selected guess deterministically
        alts[0].1 += 1e-9;
        let norm: f64 = alts.iter().map(|(_, q)| q).sum();
        for a in alts.iter_mut() {
            a.1 /= norm;
        }
        xtuples.push(XTuple::new(alts));
    }
    XRelation::new(rel.schema.clone(), xtuples)
}

/// Statistics about a key-repair problem (percentage of uncertain
/// tuples, average possibilities per uncertain tuple — the numbers
/// Figure 17 reports per dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairStats {
    pub total_keys: usize,
    pub violating_keys: usize,
    pub avg_possibilities: f64,
}

pub fn repair_stats(x: &XRelation) -> RepairStats {
    let violating: Vec<usize> = x
        .xtuples
        .iter()
        .filter(|t| t.alternatives.len() > 1)
        .map(|t| t.alternatives.len())
        .collect();
    RepairStats {
        total_keys: x.xtuples.len(),
        violating_keys: violating.len(),
        avg_possibilities: if violating.is_empty() {
            0.0
        } else {
            violating.iter().sum::<usize>() as f64 / violating.len() as f64
        },
    }
}

/// The `MakeUncertain(e↓, e^sg, e↑)` construct (Example 16): wrap a
/// computed selected guess with explicit bounds.
pub fn make_uncertain(
    lb: audb_core::Value,
    sg: audb_core::Value,
    ub: audb_core::Value,
) -> Result<audb_core::RangeValue, audb_core::EvalError> {
    audb_core::RangeValue::new(lb, sg, ub)
}

/// Convenience: repair a deterministic relation and return the schema
/// for downstream use.
pub fn repair_to_xrelation(rel: &Relation, key_cols: &[&str]) -> XRelation {
    let key: Vec<usize> =
        key_cols.iter().map(|c| rel.schema.index_of(c).expect("key column")).collect();
    key_repair_lens(rel, &key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::Value;
    use audb_storage::Schema;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn dirty() -> Relation {
        Relation::from_rows(
            Schema::named(&["k", "v"]),
            vec![
                (it(&[1, 10]), 1),
                (it(&[1, 11]), 1),
                (it(&[2, 20]), 1),
                (it(&[3, 30]), 1),
                (it(&[3, 31]), 1),
                (it(&[3, 32]), 1),
            ],
        )
    }

    #[test]
    fn groups_by_key() {
        let x = key_repair_lens(&dirty(), &[0]);
        assert_eq!(x.xtuples.len(), 3);
        let stats = repair_stats(&x);
        assert_eq!(stats.total_keys, 3);
        assert_eq!(stats.violating_keys, 2);
        assert!((stats.avg_possibilities - 2.5).abs() < 1e-9);
    }

    #[test]
    fn each_group_certainly_exists() {
        let x = key_repair_lens(&dirty(), &[0]);
        for t in &x.xtuples {
            assert!(!t.is_optional(), "a repaired key always has one row");
        }
    }

    #[test]
    fn au_translation_covers_all_repairs() {
        let x = key_repair_lens(&dirty(), &[0]);
        let au = x.to_au();
        // key 3's value ranges over [30, 32]
        let row = au.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(3)).unwrap();
        assert_eq!(row.0 .0[1].lb, Value::Int(30));
        assert_eq!(row.0 .0[1].ub, Value::Int(32));
        assert_eq!(row.1.lb, 1, "repaired tuple certainly exists");
    }

    #[test]
    fn repairs_enumerate_worlds() {
        let x = key_repair_lens(&dirty(), &[0]);
        let worlds = x.worlds(100).unwrap();
        assert_eq!(worlds.len(), 2 * 3);
    }

    #[test]
    fn make_uncertain_validates() {
        assert!(make_uncertain(Value::Int(1), Value::Int(2), Value::Int(3)).is_ok());
        assert!(make_uncertain(Value::Int(3), Value::Int(2), Value::Int(3)).is_err());
    }
}
