//! Dinic's maximum-flow algorithm plus feasibility of flows with lower
//! bounds — the decision procedure behind tuple-matching existence
//! (Definitions 15–17): "does an AU-relation bound this possible world?"
//! reduces to a transportation-feasibility problem.

/// A directed edge with remaining capacity.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
    rev: usize,
}

/// A flow network on `n` nodes (Dinic's algorithm).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
}

impl FlowNetwork {
    pub fn new(nodes: usize) -> Self {
        FlowNetwork { graph: vec![Vec::new(); nodes] }
    }

    pub fn nodes(&self) -> usize {
        self.graph.len()
    }

    pub fn add_node(&mut self) -> usize {
        self.graph.push(Vec::new());
        self.graph.len() - 1
    }

    /// Add a directed edge with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) {
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge { to, cap, rev: rev_from });
        self.graph[to].push(Edge { to: from, cap: 0, rev: rev_to });
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.graph.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in &self.graph[u] {
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if level[t] < 0 {
            None
        } else {
            Some(level)
        }
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        t: usize,
        f: u64,
        level: &[i32],
        iter: &mut [usize],
    ) -> u64 {
        if u == t {
            return f;
        }
        while iter[u] < self.graph[u].len() {
            let (to, cap, rev) = {
                let e = &self.graph[u][iter[u]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let d = self.dfs_augment(to, t, f.min(cap), level, iter);
                if d > 0 {
                    self.graph[u][iter[u]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut flow = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let f = self.dfs_augment(s, t, u64::MAX, &level, &mut iter);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// An edge specification with lower and upper capacity bounds.
#[derive(Debug, Clone, Copy)]
pub struct BoundedEdge {
    pub from: usize,
    pub to: usize,
    pub lower: u64,
    pub upper: u64,
}

/// Decide whether a *circulation* satisfying all edge bounds exists
/// (standard reduction: excess/deficit super-source and super-sink).
/// Nodes are `0..nodes`; conservation must hold at every node.
pub fn feasible_circulation(nodes: usize, edges: &[BoundedEdge]) -> bool {
    // super source = nodes, super sink = nodes + 1
    let s = nodes;
    let t = nodes + 1;
    let mut net = FlowNetwork::new(nodes + 2);
    let mut excess = vec![0i128; nodes];
    for e in edges {
        if e.lower > e.upper {
            return false;
        }
        net.add_edge(e.from, e.to, e.upper - e.lower);
        excess[e.to] += e.lower as i128;
        excess[e.from] -= e.lower as i128;
    }
    let mut need = 0u64;
    for (v, ex) in excess.iter().enumerate() {
        match ex.cmp(&0) {
            std::cmp::Ordering::Greater => {
                net.add_edge(s, v, *ex as u64);
                need += *ex as u64;
            }
            std::cmp::Ordering::Less => {
                net.add_edge(v, t, (-*ex) as u64);
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    net.max_flow(s, t) == need
}

/// Decide whether an `s`–`t` flow with the given edge bounds exists
/// (adds the `t → s` infinite return edge and checks the circulation).
pub fn feasible_flow(nodes: usize, s: usize, t: usize, edges: &[BoundedEdge]) -> bool {
    let mut all = edges.to_vec();
    all.push(BoundedEdge { from: t, to: s, lower: 0, upper: u64::MAX / 4 });
    feasible_circulation(nodes, &all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_max_flow() {
        // s=0 → 1 → t=3; s → 2 → t with caps forming max flow 5
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 4);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn disconnected_flow_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 2 left nodes (1, 2), 2 right nodes (3, 4); perfect matching
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        net.add_edge(2, 4, 1);
        net.add_edge(3, 5, 1);
        net.add_edge(4, 5, 1);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn circulation_with_lower_bounds() {
        // 0 → 1 with bounds [2,3]; 1 → 0 with bounds [0,5]: feasible
        let edges = [
            BoundedEdge { from: 0, to: 1, lower: 2, upper: 3 },
            BoundedEdge { from: 1, to: 0, lower: 0, upper: 5 },
        ];
        assert!(feasible_circulation(2, &edges));
        // but requiring 1 → 0 at least 4 while 0 → 1 at most 3 is not
        let edges = [
            BoundedEdge { from: 0, to: 1, lower: 2, upper: 3 },
            BoundedEdge { from: 1, to: 0, lower: 4, upper: 5 },
        ];
        assert!(!feasible_circulation(2, &edges));
    }

    #[test]
    fn st_flow_with_lower_bounds() {
        // s=0 must push between [1,2] to node 1, node 1 → t=2 within [0,1]
        let edges = [
            BoundedEdge { from: 0, to: 1, lower: 1, upper: 2 },
            BoundedEdge { from: 1, to: 2, lower: 0, upper: 1 },
        ];
        assert!(feasible_flow(3, 0, 2, &edges));
        let edges = [
            BoundedEdge { from: 0, to: 1, lower: 2, upper: 2 },
            BoundedEdge { from: 1, to: 2, lower: 0, upper: 1 },
        ];
        assert!(!feasible_flow(3, 0, 2, &edges));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        /// Max-flow never exceeds the source's outgoing capacity and is
        /// reproducible (deterministic algorithm).
        #[test]
        fn flow_bounded_by_source_capacity(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 1u64..8), 1..12)
        ) {
            let mut net = FlowNetwork::new(6);
            let mut cap_out = 0u64;
            for (f, t, c) in &edges {
                if f != t {
                    net.add_edge(*f, *t, *c);
                    if *f == 0 {
                        cap_out += c;
                    }
                }
            }
            let mut net2 = net.clone();
            let flow = net.max_flow(0, 5);
            prop_assert!(flow <= cap_out);
            prop_assert_eq!(flow, net2.max_flow(0, 5));
        }

        /// Feasibility with all-zero lower bounds always holds (the zero
        /// circulation is valid).
        #[test]
        fn zero_lower_bounds_always_feasible(
            edges in proptest::collection::vec((0usize..5, 0usize..5, 0u64..9), 0..10)
        ) {
            let bounded: Vec<BoundedEdge> = edges
                .iter()
                .map(|(f, t, c)| BoundedEdge { from: *f, to: *t, lower: 0, upper: *c })
                .collect();
            prop_assert!(feasible_circulation(5, &bounded));
        }
    }
}
