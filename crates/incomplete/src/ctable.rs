//! C-tables (Imielinski & Lipski, Section 11.3): tuples over constants
//! and variables, with local conditions per tuple and a global condition,
//! over *finite* variable domains.
//!
//! The paper uses a constraint solver to derive attribute bounds and
//! tautology/satisfiability of conditions; our substitute is a
//! brute-force finite-domain valuation enumerator (exact on test-sized
//! inputs — the same answers a solver would give, with exponential cost,
//! which is also what makes the `Symb` baseline slow).

use audb_core::{AuAnnot, EvalError, Expr, RangeValue, Value};
use audb_storage::{AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

use crate::worlds::IncompleteDb;

/// A cell: a constant or a named variable.
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    Const(Value),
    Var(String),
}

/// A C-table: rows with local conditions, a global condition, and finite
/// variable domains. Conditions are [`Expr`]s whose `Col(i)` references
/// index into the ordered variable list.
#[derive(Debug, Clone)]
pub struct CTable {
    pub schema: Schema,
    pub rows: Vec<(Vec<CVal>, Expr)>,
    pub global: Expr,
    /// variable name → finite domain (ordered registration)
    pub vars: Vec<(String, Vec<Value>)>,
}

impl CTable {
    pub fn new(schema: Schema) -> Self {
        CTable { schema, rows: Vec::new(), global: audb_core::lit(true), vars: Vec::new() }
    }

    pub fn add_var(&mut self, name: impl Into<String>, domain: Vec<Value>) -> usize {
        self.vars.push((name.into(), domain));
        self.vars.len() - 1
    }

    pub fn var_index(&self, name: &str) -> Result<usize, EvalError> {
        self.vars
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| EvalError::NotFound(format!("variable {name}")))
    }

    pub fn add_row(&mut self, cells: Vec<CVal>, condition: Expr) {
        assert_eq!(cells.len(), self.schema.arity());
        self.rows.push((cells, condition));
    }

    /// Total number of valuations.
    pub fn valuation_count(&self) -> usize {
        self.vars.iter().map(|(_, d)| d.len().max(1)).product()
    }

    /// Enumerate all valuations (assignments variable → value).
    pub fn valuations(&self) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = vec![Vec::new()];
        for (_, domain) in &self.vars {
            let mut next = Vec::with_capacity(out.len() * domain.len());
            for v in &out {
                for d in domain {
                    let mut v2 = v.clone();
                    v2.push(d.clone());
                    next.push(v2);
                }
            }
            out = next;
        }
        out
    }

    fn instantiate(&self, cells: &[CVal], valuation: &[Value]) -> Result<Tuple, EvalError> {
        let mut vals = Vec::with_capacity(cells.len());
        for c in cells {
            vals.push(match c {
                CVal::Const(v) => v.clone(),
                CVal::Var(name) => valuation[self.var_index(name)?].clone(),
            });
        }
        Ok(Tuple::new(vals))
    }

    /// The world induced by one valuation (set semantics: condition-true
    /// rows, duplicates merged additively as in the bag embedding).
    pub fn world_for(&self, valuation: &[Value]) -> Result<Option<Relation>, EvalError> {
        if !self.global.eval_bool(valuation)? {
            return Ok(None);
        }
        let mut rows = Vec::new();
        for (cells, cond) in &self.rows {
            if cond.eval_bool(valuation)? {
                rows.push((self.instantiate(cells, valuation)?, 1u64));
            }
        }
        Ok(Some(Relation::from_rows(self.schema.clone(), rows)))
    }

    /// Enumerate all worlds. The chosen SG valuation is the first one
    /// satisfying the global condition (`μ_SG`).
    pub fn worlds(&self, max_worlds: usize) -> Result<Option<Vec<Relation>>, EvalError> {
        if self.valuation_count() > max_worlds {
            return Ok(None);
        }
        let mut out = Vec::new();
        for v in self.valuations() {
            if let Some(w) = self.world_for(&v)? {
                out.push(w);
            }
        }
        Ok(Some(out))
    }

    /// The SG valuation `μ_SG`: first valuation satisfying the global
    /// condition.
    pub fn sg_valuation(&self) -> Result<Option<Vec<Value>>, EvalError> {
        for v in self.valuations() {
            if self.global.eval_bool(&v)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// `isTautology(φ)` over satisfying valuations of the global
    /// condition (solver substitute).
    pub fn is_tautology(&self, cond: &Expr) -> Result<bool, EvalError> {
        for v in self.valuations() {
            if self.global.eval_bool(&v)? && !cond.eval_bool(&v)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// `isSatisfiable(φ)` (conjoined with the global condition).
    pub fn is_satisfiable(&self, cond: &Expr) -> Result<bool, EvalError> {
        for v in self.valuations() {
            if self.global.eval_bool(&v)? && cond.eval_bool(&v)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// `trans_C` (Section 11.3): per-row attribute bounds via
    /// enumeration over valuations satisfying the row's local condition;
    /// tuple annotations via tautology/satisfiability.
    pub fn to_au(&self) -> Result<AuRelation, EvalError> {
        let sg_val = self
            .sg_valuation()?
            .ok_or_else(|| EvalError::Unsupported("unsatisfiable global condition".into()))?;
        let mut out = AuRelation::empty(self.schema.clone());
        for (cells, cond) in &self.rows {
            if !self.is_satisfiable(cond)? {
                continue;
            }
            // bounds over valuations where the row exists
            let mut lo: Option<Tuple> = None;
            let mut hi: Option<Tuple> = None;
            for v in self.valuations() {
                if !self.global.eval_bool(&v)? || !cond.eval_bool(&v)? {
                    continue;
                }
                let t = self.instantiate(cells, &v)?;
                lo = Some(match lo {
                    None => t.clone(),
                    Some(l) => Tuple::new(
                        l.0.into_iter()
                            .zip(&t.0)
                            .map(|(a, b)| Value::min_of(a, b.clone()))
                            .collect(),
                    ),
                });
                hi = Some(match hi {
                    None => t.clone(),
                    Some(h) => Tuple::new(
                        h.0.into_iter()
                            .zip(&t.0)
                            .map(|(a, b)| Value::max_of(a, b.clone()))
                            .collect(),
                    ),
                });
            }
            let (lo, hi) = (lo.unwrap(), hi.unwrap());
            let sg = self.instantiate(cells, &sg_val)?;
            let in_sg = cond.eval_bool(&sg_val)?;
            let mut ranges = Vec::with_capacity(cells.len());
            for i in 0..cells.len() {
                // the SG instantiation may fall outside the satisfying
                // bounds when the row is absent from the SGW; widen.
                let l = Value::min_of(lo.0[i].clone(), sg.0[i].clone());
                let h = Value::max_of(hi.0[i].clone(), sg.0[i].clone());
                ranges.push(RangeValue::new(l, sg.0[i].clone(), h)?);
            }
            let lb = self.is_tautology(cond)? as u64;
            let annot = AuAnnot::triple(lb.min(in_sg as u64), in_sg as u64, 1);
            out.push(RangeTuple::new(ranges), annot);
        }
        Ok(out.normalized())
    }

    /// Explicit possible worlds (single-relation database named `name`).
    pub fn to_incomplete(
        &self,
        name: &str,
        max_worlds: usize,
    ) -> Result<Option<IncompleteDb>, EvalError> {
        let Some(mut worlds) = self.worlds(max_worlds)? else {
            return Ok(None);
        };
        let sg_val = self
            .sg_valuation()?
            .ok_or_else(|| EvalError::Unsupported("unsatisfiable global condition".into()))?;
        let sg_world = self.world_for(&sg_val)?.unwrap().normalized();
        let sg_index =
            worlds.iter().position(|w| w.normalized() == sg_world).unwrap_or_else(|| {
                worlds.push(sg_world.clone());
                worlds.len() - 1
            });
        let dbs = worlds
            .into_iter()
            .map(|w| {
                let mut db = Database::new();
                db.insert(name.to_string(), w);
                db
            })
            .collect();
        Ok(Some(IncompleteDb::new(dbs, sg_index)))
    }
}

/// Build the 3-colorability C-table of Theorem 2's reduction for a graph
/// — used to exhibit why maximally tight bounds are intractable.
pub fn three_coloring_ctable(vertices: usize, edges: &[(usize, usize)]) -> CTable {
    let mut ct = CTable::new(Schema::named(&["one"]));
    let colors: Vec<Value> = vec![Value::Int(0), Value::Int(1), Value::Int(2)];
    for v in 0..vertices {
        ct.add_var(format!("x{v}"), colors.clone());
    }
    // global: each variable already ranges over {r, g, b} via its domain
    let mut local = Vec::new();
    for (a, b) in edges {
        local.push(audb_core::col(*a).neq(audb_core::col(*b)));
    }
    ct.add_row(vec![CVal::Const(Value::Int(1))], Expr::conj(local));
    ct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounding::database_bounds_incomplete;
    use audb_core::{col, lit};

    fn sample() -> CTable {
        let mut ct = CTable::new(Schema::named(&["a", "b"]));
        ct.add_var("x", vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        ct.add_var("y", vec![Value::Int(0), Value::Int(1)]);
        // row 1: (x, 10) exists iff x ≤ 2
        ct.add_row(vec![CVal::Var("x".into()), CVal::Const(Value::Int(10))], col(0).leq(lit(2i64)));
        // row 2: (5, y) always exists
        ct.add_row(vec![CVal::Const(Value::Int(5)), CVal::Var("y".into())], lit(true));
        ct
    }

    #[test]
    fn world_enumeration() {
        let ct = sample();
        assert_eq!(ct.valuation_count(), 6);
        let worlds = ct.worlds(100).unwrap().unwrap();
        assert_eq!(worlds.len(), 6);
    }

    #[test]
    fn tautology_and_satisfiability() {
        let ct = sample();
        assert!(ct.is_tautology(&lit(true)).unwrap());
        assert!(!ct.is_tautology(&col(0).leq(lit(2i64))).unwrap());
        assert!(ct.is_satisfiable(&col(0).leq(lit(2i64))).unwrap());
        assert!(!ct.is_satisfiable(&col(0).gt(lit(9i64))).unwrap());
    }

    /// Theorem 11: `trans_C(D)` bounds `D`.
    #[test]
    fn translation_bounds_input() {
        let ct = sample();
        let au = ct.to_au().unwrap();
        let mut audb = audb_storage::AuDatabase::new();
        audb.insert("r", au);
        let inc = ct.to_incomplete("r", 100).unwrap().unwrap();
        assert!(database_bounds_incomplete(&audb, &inc));
    }

    #[test]
    fn bounds_reflect_conditions() {
        let ct = sample();
        let au = ct.to_au().unwrap();
        // row 1 exists only when x ≤ 2 → a ∈ [1, 2]; not a tautology → lb 0
        let row1 = au.rows().iter().find(|(t, _)| t.0[1].sg == Value::Int(10)).unwrap();
        assert_eq!(row1.0 .0[0].lb, Value::Int(1));
        assert_eq!(row1.0 .0[0].ub, Value::Int(2));
        assert_eq!(row1.1.lb, 0);
        // row 2 is certain with b ∈ [0, 1]
        let row2 = au.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(5)).unwrap();
        assert_eq!(row2.1.lb, 1);
        assert_eq!(row2.0 .0[1].lb, Value::Int(0));
        assert_eq!(row2.0 .0[1].ub, Value::Int(1));
    }

    /// Theorem 2's reduction: the tuple is possible iff the graph is
    /// 3-colorable.
    #[test]
    fn three_coloring_reduction() {
        // triangle: 3-colorable
        let ct = three_coloring_ctable(3, &[(0, 1), (1, 2), (0, 2)]);
        let au = ct.to_au().unwrap();
        assert_eq!(au.len(), 1, "tight upper bound 1 iff colorable");
        // K4: not 3-colorable → tuple never exists → absent from the AU-DB
        let k4 = three_coloring_ctable(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let au = k4.to_au().unwrap();
        assert!(au.is_empty());
    }
}
