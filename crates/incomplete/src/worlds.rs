//! Incomplete K-databases as explicit sets of possible worlds
//! (Section 3.2) with certain/possible annotations (glb/lub over the
//! natural order — for bags: min/max multiplicity across worlds).

use std::collections::BTreeSet;

use audb_core::EvalError;
use audb_storage::{Database, Relation, Tuple};

use audb_query::{eval_det, Query};

/// An incomplete database: a non-empty set of possible worlds, one of
/// which is designated the selected-guess world.
#[derive(Debug, Clone)]
pub struct IncompleteDb {
    pub worlds: Vec<Database>,
    /// Index of the selected-guess world in `worlds`.
    pub sg_index: usize,
}

impl IncompleteDb {
    pub fn new(worlds: Vec<Database>, sg_index: usize) -> Self {
        assert!(!worlds.is_empty(), "an incomplete database has at least one world");
        assert!(sg_index < worlds.len());
        IncompleteDb { worlds, sg_index }
    }

    pub fn sg_world(&self) -> &Database {
        &self.worlds[self.sg_index]
    }

    /// Possible-worlds query semantics (Definition 1 / Equation 2):
    /// evaluate in every world.
    pub fn eval(&self, q: &Query) -> Result<IncompleteRelation, EvalError> {
        let worlds: Result<Vec<Relation>, _> = self.worlds.iter().map(|w| eval_det(w, q)).collect();
        Ok(IncompleteRelation { worlds: worlds?, sg_index: self.sg_index })
    }
}

/// A relation-valued possible-worlds set (query result).
#[derive(Debug, Clone)]
pub struct IncompleteRelation {
    pub worlds: Vec<Relation>,
    pub sg_index: usize,
}

impl IncompleteRelation {
    pub fn sg_world(&self) -> &Relation {
        &self.worlds[self.sg_index]
    }

    /// All tuples appearing in any world.
    pub fn all_tuples(&self) -> BTreeSet<Tuple> {
        let mut out = BTreeSet::new();
        for w in &self.worlds {
            for (t, _) in w.rows() {
                out.insert(t.clone());
            }
        }
        out
    }

    /// `cert_N(D, t)` — glb (min) of the tuple's multiplicity across all
    /// worlds (Section 3.2.1).
    pub fn certain_multiplicity(&self, t: &Tuple) -> u64 {
        self.worlds.iter().map(|w| w.multiplicity(t)).min().unwrap_or(0)
    }

    /// `poss_N(D, t)` — lub (max) multiplicity across all worlds.
    pub fn possible_multiplicity(&self, t: &Tuple) -> u64 {
        self.worlds.iter().map(|w| w.multiplicity(t)).max().unwrap_or(0)
    }

    /// Certain tuples (certain multiplicity > 0).
    pub fn certain_tuples(&self) -> BTreeSet<Tuple> {
        self.all_tuples().into_iter().filter(|t| self.certain_multiplicity(t) > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_query::table;
    use audb_storage::Schema;

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn two_worlds() -> IncompleteDb {
        // Example 3's incomplete N-database
        let schema = Schema::named(&["state"]);
        let mut d1 = Database::new();
        d1.insert("r", Relation::from_rows(schema.clone(), vec![(it(&[1]), 2), (it(&[2]), 2)]));
        let mut d2 = Database::new();
        d2.insert(
            "r",
            Relation::from_rows(schema, vec![(it(&[1]), 3), (it(&[2]), 1), (it(&[3]), 5)]),
        );
        IncompleteDb::new(vec![d1, d2], 1)
    }

    #[test]
    fn certain_and_possible_annotations_example_3() {
        let db = two_worlds();
        let r = db.eval(&table("r")).unwrap();
        assert_eq!(r.certain_multiplicity(&it(&[1])), 2);
        assert_eq!(r.possible_multiplicity(&it(&[1])), 3);
        assert_eq!(r.certain_multiplicity(&it(&[3])), 0);
        assert_eq!(r.possible_multiplicity(&it(&[3])), 5);
        assert_eq!(r.certain_tuples().len(), 2);
    }

    #[test]
    fn query_distributes_over_worlds() {
        let db = two_worlds();
        let q = table("r").select(col(0).geq(lit(2i64)));
        let r = db.eval(&q).unwrap();
        assert_eq!(r.worlds.len(), 2);
        assert_eq!(r.certain_multiplicity(&it(&[2])), 1);
        assert_eq!(r.possible_multiplicity(&it(&[2])), 2);
    }
}
