//! Commutative semirings, natural orders, l-semirings, monus, and
//! semiring homomorphisms (paper Section 3.1), plus the provenance
//! polynomial semiring `N[X]` used to exercise the framework's
//! generality (homomorphisms commute with queries).

use std::collections::BTreeMap;
use std::fmt::Debug;

/// A commutative semiring `⟨K, +, ·, 0, 1⟩`.
pub trait Semiring: Clone + Eq + Debug {
    fn zero() -> Self;
    fn one() -> Self;
    fn plus(&self, other: &Self) -> Self;
    fn times(&self, other: &Self) -> Self;

    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// `k_1 + ... + k_n` over an iterator.
    fn sum<I: IntoIterator<Item = Self>>(items: I) -> Self {
        items.into_iter().fold(Self::zero(), |a, b| a.plus(&b))
    }
}

/// Semirings whose natural order `k ⪯ k'` (∃k'': k + k'' = k') is a
/// partial order (Equation 1).
pub trait NaturallyOrdered: Semiring {
    fn nat_leq(&self, other: &Self) -> bool;
}

/// l-semirings: the natural order forms a lattice (Section 3.2.1);
/// `glb` = ⊓ and `lub` = ⊔ define certain and possible annotations.
pub trait LSemiring: NaturallyOrdered {
    fn glb(&self, other: &Self) -> Self;
    fn lub(&self, other: &Self) -> Self;
}

/// m-semirings: semirings with a monus `k1 − k2 = min{k3 | k2 + k3 ⪰ k1}`
/// supporting set difference (Section 8.2, after Geerts & Poggi).
pub trait MonusSemiring: Semiring {
    fn monus(&self, other: &Self) -> Self;
}

/// Duplicate-elimination operator `δ` (Section 9.6): `δ(0)=0`, else `1`.
pub fn delta<K: Semiring>(k: &K) -> K {
    if k.is_zero() {
        K::zero()
    } else {
        K::one()
    }
}

// ---- N: bag semantics ----------------------------------------------------

/// The natural-number semiring `N` (bag semantics): tuple multiplicities.
pub type Nat = u64;

impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn plus(&self, other: &Self) -> Self {
        self.saturating_add(*other)
    }
    fn times(&self, other: &Self) -> Self {
        self.saturating_mul(*other)
    }
}
impl NaturallyOrdered for u64 {
    fn nat_leq(&self, other: &Self) -> bool {
        self <= other
    }
}
impl LSemiring for u64 {
    fn glb(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn lub(&self, other: &Self) -> Self {
        *self.max(other)
    }
}
impl MonusSemiring for u64 {
    fn monus(&self, other: &Self) -> Self {
        self.saturating_sub(*other)
    }
}

// ---- B: set semantics -----------------------------------------------------

impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn plus(&self, other: &Self) -> Self {
        *self || *other
    }
    fn times(&self, other: &Self) -> Self {
        *self && *other
    }
}
impl NaturallyOrdered for bool {
    fn nat_leq(&self, other: &Self) -> bool {
        !*self || *other
    }
}
impl LSemiring for bool {
    fn glb(&self, other: &Self) -> Self {
        *self && *other
    }
    fn lub(&self, other: &Self) -> Self {
        *self || *other
    }
}
impl MonusSemiring for bool {
    fn monus(&self, other: &Self) -> Self {
        *self && !*other
    }
}

// ---- Direct products ------------------------------------------------------

/// Direct product semiring `K1 × K2` with pointwise operations — the
/// construction behind both `K_UA = K²` and `K_AU = K³`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prod<A, B>(pub A, pub B);

impl<A: Semiring, B: Semiring> Semiring for Prod<A, B> {
    fn zero() -> Self {
        Prod(A::zero(), B::zero())
    }
    fn one() -> Self {
        Prod(A::one(), B::one())
    }
    fn plus(&self, other: &Self) -> Self {
        Prod(self.0.plus(&other.0), self.1.plus(&other.1))
    }
    fn times(&self, other: &Self) -> Self {
        Prod(self.0.times(&other.0), self.1.times(&other.1))
    }
}

impl<A: NaturallyOrdered, B: NaturallyOrdered> NaturallyOrdered for Prod<A, B> {
    fn nat_leq(&self, other: &Self) -> bool {
        self.0.nat_leq(&other.0) && self.1.nat_leq(&other.1)
    }
}

// ---- N[X]: provenance polynomials ----------------------------------------

/// A monomial: variable name → exponent.
pub type Monomial = BTreeMap<String, u32>;

/// The provenance-polynomial semiring `N[X]` (Green et al.): the most
/// general semiring; homomorphisms into any other semiring commute with
/// queries. Included to demonstrate the framework generality the paper
/// inherits from K-relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PolyNX {
    /// monomial → coefficient; no zero coefficients stored.
    pub terms: BTreeMap<Monomial, u64>,
}

impl PolyNX {
    pub fn var(name: impl Into<String>) -> Self {
        let mut m = Monomial::new();
        m.insert(name.into(), 1);
        PolyNX { terms: BTreeMap::from([(m, 1)]) }
    }

    pub fn constant(c: u64) -> Self {
        if c == 0 {
            PolyNX::default()
        } else {
            PolyNX { terms: BTreeMap::from([(Monomial::new(), c)]) }
        }
    }

    /// Apply the homomorphism induced by a variable assignment
    /// `X → N`; evaluates the polynomial.
    pub fn eval_hom(&self, assignment: &BTreeMap<String, u64>) -> u64 {
        let mut total: u64 = 0;
        for (mono, coeff) in &self.terms {
            let mut term = *coeff;
            for (var, exp) in mono {
                let v = assignment.get(var).copied().unwrap_or(0);
                for _ in 0..*exp {
                    term = term.saturating_mul(v);
                }
            }
            total = total.saturating_add(term);
        }
        total
    }
}

impl Semiring for PolyNX {
    fn zero() -> Self {
        PolyNX::default()
    }
    fn one() -> Self {
        PolyNX::constant(1)
    }
    fn plus(&self, other: &Self) -> Self {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            *terms.entry(m.clone()).or_insert(0) += c;
        }
        terms.retain(|_, c| *c != 0);
        PolyNX { terms }
    }
    fn times(&self, other: &Self) -> Self {
        let mut terms: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                for (v, e) in m2 {
                    *m.entry(v.clone()).or_insert(0) += e;
                }
                *terms.entry(m).or_insert(0) += c1 * c2;
            }
        }
        terms.retain(|_, c| *c != 0);
        PolyNX { terms }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn check_semiring_laws<K: Semiring>(samples: &[K]) {
        for a in samples {
            assert_eq!(a.plus(&K::zero()), *a, "additive identity");
            assert_eq!(a.times(&K::one()), *a, "multiplicative identity");
            assert_eq!(a.times(&K::zero()), K::zero(), "annihilation");
            for b in samples {
                assert_eq!(a.plus(b), b.plus(a), "commutative +");
                assert_eq!(a.times(b), b.times(a), "commutative ·");
                for c in samples {
                    assert_eq!(a.plus(&b.plus(c)), a.plus(b).plus(c), "assoc +");
                    assert_eq!(a.times(&b.times(c)), a.times(b).times(c), "assoc ·");
                    assert_eq!(a.times(&b.plus(c)), a.times(b).plus(&a.times(c)), "distributivity");
                }
            }
        }
    }

    #[test]
    fn nat_semiring_laws() {
        check_semiring_laws::<u64>(&[0, 1, 2, 3, 7]);
    }

    #[test]
    fn bool_semiring_laws() {
        check_semiring_laws::<bool>(&[false, true]);
    }

    #[test]
    fn prod_semiring_laws() {
        let samples: Vec<Prod<u64, bool>> =
            vec![Prod(0, false), Prod(1, true), Prod(2, false), Prod(3, true)];
        check_semiring_laws(&samples);
    }

    #[test]
    fn poly_semiring_laws() {
        let x = PolyNX::var("x");
        let y = PolyNX::var("y");
        let samples = vec![
            PolyNX::zero(),
            PolyNX::one(),
            x.clone(),
            y.clone(),
            x.plus(&y),
            x.times(&y).plus(&PolyNX::constant(2)),
        ];
        check_semiring_laws(&samples);
    }

    #[test]
    fn nat_monus_truncates() {
        assert_eq!(5u64.monus(&3), 2);
        assert_eq!(3u64.monus(&5), 0);
        // monus law: k2 + (k1 − k2) ⪰ k1
        for a in 0..6u64 {
            for b in 0..6u64 {
                assert!(a.nat_leq(&b.plus(&a.monus(&b))));
            }
        }
    }

    #[test]
    fn bool_lattice_matches_certain_possible() {
        // certain = glb = ∧, possible = lub = ∨ (Section 3.2.1)
        assert!(!true.glb(&false));
        assert!(true.lub(&false));
        assert_eq!(u64::glb(&2, &3), 2);
        assert_eq!(u64::lub(&2, &3), 3);
    }

    #[test]
    fn delta_is_dedup() {
        assert_eq!(delta(&0u64), 0);
        assert_eq!(delta(&17u64), 1);
    }

    #[test]
    fn poly_homomorphism_evaluates() {
        // 30 ⊗ x1 + 20 ⊗ x2 with h(x1)=2, h(x2)=4 → 2·30-style example of §9.1
        let p = PolyNX::var("x1")
            .times(&PolyNX::constant(30))
            .plus(&PolyNX::var("x2").times(&PolyNX::constant(20)));
        let h = BTreeMap::from([("x1".to_string(), 2u64), ("x2".to_string(), 4u64)]);
        assert_eq!(p.eval_hom(&h), 30 * 2 + 20 * 4);
    }

    #[test]
    fn poly_hom_is_semiring_hom() {
        let x = PolyNX::var("x");
        let y = PolyNX::var("y");
        let h = BTreeMap::from([("x".to_string(), 3u64), ("y".to_string(), 5u64)]);
        let a = x.plus(&y.times(&x));
        let b = y.times(&y).plus(&PolyNX::constant(7));
        assert_eq!(a.plus(&b).eval_hom(&h), a.eval_hom(&h) + b.eval_hom(&h));
        assert_eq!(a.times(&b).eval_hom(&h), a.eval_hom(&h) * b.eval_hom(&h));
    }
}
