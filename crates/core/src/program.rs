//! Compiled expression backend: [`Expr`] trees lowered once into a flat
//! register [`Program`] — a linear op array evaluated over a reusable
//! register file with no recursion and no per-row allocation.
//!
//! The tree-walking interpreters ([`Expr::eval`], [`Expr::eval_range`])
//! pay per-node dispatch, `Box` pointer chasing, a clone per `Col` /
//! `Const` leaf, and (for the derived operators `≠ ≥ >`) a per-row
//! clone-and-rebuild of whole subtrees. Inside a fused operator chain
//! those costs dominate per-row work (the U-relations observation: keep
//! the uncertain-data hot loop flat), so the query engines compile each
//! select/project/predicate stage once per chain and run the program
//! per row — or, for select/project-only chains, one op at a time over
//! a whole shard of rows ([`Program::eval_range_batch`]).
//!
//! Ops address their operands *directly* ([`Src`]): a register for
//! compound sub-results, a tuple column, or a pooled constant — leaf
//! operands are read in place instead of being cloned into registers
//! (the interpreter clones both). A [`Op::CheckCol`] bounds probe is
//! emitted where the interpreter would have evaluated the column
//! reference, so `UnknownColumn` errors keep their exact position in
//! the error order.
//!
//! Both lowerings reuse the *same per-node combinators* as the
//! interpreters (`expr::range_*`, `Value` arithmetic), so compiled
//! results — values, sg-widening, the cross-type `Div` spans-zero
//! guard, and `EvalError` classification — are identical by
//! construction; the differential property suite
//! (`tests/compiled_exprs_props.rs`) pins it.
//!
//! Two lowering modes exist because the two semantics differ in control
//! flow, not just domain:
//!
//! * **Range** (Definition 9) is straight-line: every operand of every
//!   node is evaluated (`If` merges both branches), so the program is a
//!   pure dataflow op list.
//! * **Det** (Definition 4) short-circuits: `And`/`Or` skip their right
//!   operand and `If` evaluates only the taken branch, so the lowering
//!   emits explicit `Jump`/`JumpIfFalse`/`JumpIfTrue` ops. Skipping is
//!   semantically load-bearing — the skipped subexpression may error —
//!   which also rules out op-at-a-time batching for det programs.

use std::fmt;

use crate::error::EvalError;
use crate::expr::{
    self, range_add, range_and, range_div, range_eq, range_if_merge, range_leq, range_lt,
    range_mul, range_neg, range_not, range_or, range_sub, range_uncertain,
};
use crate::lane::{self, LaneSlice, LaneTag, ValueLane};
use crate::range::RangeValue;
use crate::value::Value;
use crate::Expr;

/// Register index into a program's register file.
pub type Reg = u32;

/// Which semantics a program was lowered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Range-annotated semantics over `RangeValue` registers.
    Range,
    /// Deterministic semantics over `Value` registers.
    Det,
}

/// An op operand, addressed in place: a register holding a compound
/// sub-result, an input tuple column, or a pooled constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    Reg(Reg),
    Col(u32),
    Const(u32),
}

/// One flat instruction. `Range*` ops appear only in `Mode::Range`
/// programs, `Det*`/load/jump ops only in `Mode::Det` programs;
/// `CheckCol` is shared.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// Bounds-probe a column reference (`UnknownColumn` past the
    /// arity), emitted where the interpreter would have *evaluated* the
    /// reference — later ops then read the column in place.
    CheckCol {
        col: u32,
    },

    // ---- range mode (straight-line dataflow) ---------------------------
    RangeAnd {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeOr {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeNot {
        a: Src,
        dst: Reg,
    },
    RangeEq {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeLeq {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeLt {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeAdd {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeSub {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeMul {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeDiv {
        a: Src,
        b: Src,
        dst: Reg,
    },
    RangeNeg {
        a: Src,
        dst: Reg,
    },
    /// Validate that `src` is a boolean triple — emitted after an `If`
    /// condition so non-boolean conditions error *before* the branch
    /// bodies run, exactly like the interpreter.
    RangeCheckBool3 {
        src: Src,
    },
    /// Merge the (eagerly evaluated) branch results under the condition.
    RangeIfMerge {
        c: Src,
        t: Src,
        e: Src,
        dst: Reg,
    },
    RangeUncertain {
        l: Src,
        s: Src,
        u: Src,
        dst: Reg,
    },

    // ---- det mode (short-circuit control flow) -------------------------
    /// `dst ← tuple[col]` (an `If` branch must deposit into the shared
    /// destination register).
    LoadCol {
        col: u32,
        dst: Reg,
    },
    /// `dst ← consts[idx]`.
    LoadConst {
        idx: u32,
        dst: Reg,
    },
    DetAdd {
        a: Src,
        b: Src,
        dst: Reg,
    },
    DetSub {
        a: Src,
        b: Src,
        dst: Reg,
    },
    DetMul {
        a: Src,
        b: Src,
        dst: Reg,
    },
    DetDiv {
        a: Src,
        b: Src,
        dst: Reg,
    },
    DetNeg {
        a: Src,
        dst: Reg,
    },
    /// `dst ← Bool(value_eq(a, b))`.
    DetEq {
        a: Src,
        b: Src,
        dst: Reg,
    },
    /// `dst ← Bool(a ≤ b ∨ value_eq(a, b))` — the interpreter's `leq`.
    DetLeq {
        a: Src,
        b: Src,
        dst: Reg,
    },
    /// `dst ← Bool(a < b ∧ ¬value_eq(a, b))` — the interpreter's `lt`.
    DetLt {
        a: Src,
        b: Src,
        dst: Reg,
    },
    /// `dst ← Bool(¬as_bool(a))`.
    DetNot {
        a: Src,
        dst: Reg,
    },
    /// `dst ← Bool(as_bool(src))` — materializes an `And`/`Or` operand.
    DetAsBool {
        src: Src,
        dst: Reg,
    },
    Jump {
        to: u32,
    },
    /// `as_bool(src)?`; jump when false.
    JumpIfFalse {
        src: Src,
        to: u32,
    },
    /// `as_bool(src)?`; jump when true.
    JumpIfTrue {
        src: Src,
        to: u32,
    },
}

/// A compiled expression (or expression list): flat ops, a constant
/// pool, and one output location per compiled expression. Programs are
/// immutable and `Sync` — compile once per chain, share across workers,
/// and give each worker its own register file.
///
/// Every op carries a *span* ([`Program::spans`]): the preorder index
/// of the source [`Expr`] node that emitted it, global across the
/// compiled expression list. The static verifier
/// ([`crate::verify`]) leans on spans to reconstruct which ops belong
/// to which subtree (jump targets are uniquely determined by the
/// emitting node's op interval) and to name the offending source node
/// in diagnostics.
#[must_use = "a compiled program does nothing until evaluated"]
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) mode: Mode,
    pub(crate) ops: Vec<Op>,
    /// Constant pool for `Mode::Det` (and the source of `consts_range`).
    pub(crate) consts: Vec<Value>,
    /// The same pool pre-lifted to certain ranges for `Mode::Range`.
    pub(crate) consts_range: Vec<RangeValue>,
    pub(crate) nregs: usize,
    pub(crate) outputs: Vec<Src>,
    /// Per-op source node: `spans[i]` is the global preorder id of the
    /// `Expr` node that emitted op `i`.
    pub(crate) spans: Vec<u32>,
    /// The source expressions, kept for diagnostics and re-verification.
    pub(crate) srcs: Vec<Expr>,
    /// `node_offsets[k]` is the global preorder id of `srcs[k]`'s root;
    /// one sentinel entry past the end holds the total node count.
    pub(crate) node_offsets: Vec<u32>,
}

impl Program {
    /// Lower one expression for range-annotated evaluation.
    pub fn compile_range(e: &Expr) -> Program {
        Self::compile_range_many(std::slice::from_ref(e))
    }

    /// Lower a list of expressions (a projection) into one program with
    /// one output each; expressions evaluate in list order, so the
    /// first error wins exactly as in per-expression interpretation.
    pub fn compile_range_many(exprs: &[Expr]) -> Program {
        Self::lower_many(Mode::Range, exprs).expect_well_formed()
    }

    /// Lower one expression for deterministic evaluation.
    pub fn compile_det(e: &Expr) -> Program {
        Self::compile_det_many(std::slice::from_ref(e))
    }

    /// Deterministic analog of [`Program::compile_range_many`].
    pub fn compile_det_many(exprs: &[Expr]) -> Program {
        Self::lower_many(Mode::Det, exprs).expect_well_formed()
    }

    /// Raw lowering without the Tier A gate — the verifier's
    /// translation-validation pass re-lowers a program's sources through
    /// this to compare op-for-op (it must not recurse into
    /// verification).
    fn lower_many(mode: Mode, exprs: &[Expr]) -> Program {
        let mut l = Lowerer::new(mode);
        let mut nid = 0u32;
        let outputs = exprs
            .iter()
            .map(|e| {
                let s = match mode {
                    Mode::Range => l.lower_range_value(e, nid),
                    Mode::Det => l.lower_det_value(e, nid),
                };
                nid += e.node_count();
                s
            })
            .collect();
        l.finish(outputs, exprs)
    }

    /// Re-lower this program's sources from scratch (unverified); used
    /// by [`crate::verify`]'s translation validation.
    pub(crate) fn relower(&self) -> Program {
        Self::lower_many(self.mode, &self.srcs)
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of registers an evaluation needs.
    pub fn nregs(&self) -> usize {
        self.nregs
    }

    /// Number of compiled expressions (outputs).
    pub fn arity(&self) -> usize {
        self.outputs.len()
    }

    /// Number of ops in the program (disassembly length).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    // ---- static verification --------------------------------------------

    /// Tier A: the structural dataflow verifier ([`crate::verify`]).
    /// Runs unconditionally at compile time via
    /// [`Program::expect_well_formed`]; a freshly lowered program that
    /// fails it is a lowerer bug.
    pub fn verify(&self) -> Result<(), crate::verify::VerifyError> {
        crate::verify::check_structure(self)
    }

    /// Tier A + Tier B: structural verification followed by abstract
    /// interpretation over the type × interval lattice. Returns the
    /// advisory lints Tier B collected (a sound program may still carry
    /// lints, e.g. statically-certain errors in reachable code).
    pub fn verify_full(
        &self,
    ) -> Result<Vec<crate::verify::ProgramLint>, crate::verify::VerifyError> {
        crate::verify::check_structure(self)?;
        crate::verify::check_abstract(self)
    }

    /// The source `Expr` node behind global preorder id `nid`, if any.
    pub(crate) fn node_expr(&self, nid: u32) -> Option<&Expr> {
        let k = self.node_offsets.partition_point(|&off| off <= nid).checked_sub(1)?;
        let root = self.srcs.get(k)?;
        root.preorder_node((nid - self.node_offsets[k]) as usize)
    }

    /// Panic (lowerer bug) if Tier A rejects this freshly built program.
    fn expect_well_formed(self) -> Program {
        if let Err(e) = self.verify() {
            panic!("lowerer produced a malformed program: {e}\n{self}");
        }
        self
    }

    // ---- per-row range evaluation ---------------------------------------

    /// Grow `regs` to this program's register count (reusing the buffer
    /// across rows and across programs of different sizes).
    pub fn prepare_range_regs(&self, regs: &mut Vec<RangeValue>) {
        if regs.len() < self.nregs {
            regs.resize(self.nregs, RangeValue::certain(Value::Null));
        }
    }

    #[inline]
    fn rsrc<'r>(
        &'r self,
        s: Src,
        tuple: &'r [RangeValue],
        regs: &'r [RangeValue],
    ) -> &'r RangeValue {
        match s {
            Src::Reg(r) => &regs[r as usize],
            // in bounds: a CheckCol precedes every Col operand
            Src::Col(c) => &tuple[c as usize],
            Src::Const(i) => &self.consts_range[i as usize],
        }
    }

    /// Take ownership of an operand: move out of a register, clone a
    /// column/constant (what the interpreter's leaf evaluation does).
    #[inline]
    fn rtake(&self, s: Src, tuple: &[RangeValue], regs: &mut [RangeValue]) -> RangeValue {
        match s {
            Src::Reg(r) => {
                std::mem::replace(&mut regs[r as usize], RangeValue::certain(Value::Null))
            }
            Src::Col(c) => tuple[c as usize].clone(),
            Src::Const(i) => self.consts_range[i as usize].clone(),
        }
    }

    /// Run the program over one range-annotated tuple; `i`-th result
    /// readable via [`Program::range_output`].
    pub fn eval_range_into(
        &self,
        tuple: &[RangeValue],
        regs: &mut [RangeValue],
    ) -> Result<(), EvalError> {
        debug_assert_eq!(self.mode, Mode::Range, "range evaluation of a det program");
        for op in &self.ops {
            match op {
                Op::CheckCol { col } => {
                    let c = *col as usize;
                    if c >= tuple.len() {
                        return Err(EvalError::UnknownColumn(c));
                    }
                }
                Op::RangeAnd { a, b, dst } => {
                    let v = range_and(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeOr { a, b, dst } => {
                    let v = range_or(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeNot { a, dst } => {
                    let v = range_not(self.rsrc(*a, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeEq { a, b, dst } => {
                    let v = range_eq(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs));
                    regs[*dst as usize] = v;
                }
                Op::RangeLeq { a, b, dst } => {
                    let v = range_leq(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs));
                    regs[*dst as usize] = v;
                }
                Op::RangeLt { a, b, dst } => {
                    let v = range_lt(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs));
                    regs[*dst as usize] = v;
                }
                Op::RangeAdd { a, b, dst } => {
                    let v = range_add(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeSub { a, b, dst } => {
                    let v = range_sub(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeMul { a, b, dst } => {
                    let v = range_mul(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeDiv { a, b, dst } => {
                    let v = range_div(self.rsrc(*a, tuple, regs), self.rsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeNeg { a, dst } => {
                    let v = range_neg(self.rsrc(*a, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::RangeCheckBool3 { src } => {
                    self.rsrc(*src, tuple, regs).as_bool3()?;
                }
                Op::RangeIfMerge { c, t, e, dst } => {
                    let tv = self.rtake(*t, tuple, regs);
                    let ev = self.rtake(*e, tuple, regs);
                    let v = range_if_merge(self.rsrc(*c, tuple, regs), tv, ev)?;
                    regs[*dst as usize] = v;
                }
                Op::RangeUncertain { l, s, u, dst } => {
                    let v = range_uncertain(
                        self.rsrc(*l, tuple, regs),
                        self.rsrc(*s, tuple, regs),
                        self.rsrc(*u, tuple, regs),
                    )?;
                    regs[*dst as usize] = v;
                }
                _ => unreachable!("det op in a range program"),
            }
        }
        Ok(())
    }

    /// Read the `i`-th output after [`Program::eval_range_into`].
    #[inline]
    pub fn range_output<'r>(
        &'r self,
        i: usize,
        tuple: &'r [RangeValue],
        regs: &'r [RangeValue],
    ) -> &'r RangeValue {
        self.rsrc(self.outputs[i], tuple, regs)
    }

    /// Single-output range evaluation.
    pub fn eval_range(
        &self,
        tuple: &[RangeValue],
        regs: &mut Vec<RangeValue>,
    ) -> Result<RangeValue, EvalError> {
        self.prepare_range_regs(regs);
        self.eval_range_into(tuple, regs)?;
        Ok(self.range_output(0, tuple, regs).clone())
    }

    /// Single-output range predicate evaluation: boolean triple.
    pub fn eval_range_bool3(
        &self,
        tuple: &[RangeValue],
        regs: &mut Vec<RangeValue>,
    ) -> Result<(bool, bool, bool), EvalError> {
        self.prepare_range_regs(regs);
        self.eval_range_into(tuple, regs)?;
        self.range_output(0, tuple, regs).as_bool3()
    }

    // ---- per-row det evaluation -----------------------------------------

    /// Grow `regs` to this program's register count.
    pub fn prepare_det_regs(&self, regs: &mut Vec<Value>) {
        if regs.len() < self.nregs {
            regs.resize(self.nregs, Value::Null);
        }
    }

    #[inline]
    fn dsrc<'r>(&'r self, s: Src, tuple: &'r [Value], regs: &'r [Value]) -> &'r Value {
        match s {
            Src::Reg(r) => &regs[r as usize],
            Src::Col(c) => &tuple[c as usize],
            Src::Const(i) => &self.consts[i as usize],
        }
    }

    /// Run the program over one deterministic tuple (with short-circuit
    /// jumps); `i`-th result readable via [`Program::det_output`].
    pub fn eval_det_into(&self, tuple: &[Value], regs: &mut [Value]) -> Result<(), EvalError> {
        debug_assert_eq!(self.mode, Mode::Det, "det evaluation of a range program");
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::CheckCol { col } => {
                    let c = *col as usize;
                    if c >= tuple.len() {
                        return Err(EvalError::UnknownColumn(c));
                    }
                }
                Op::LoadCol { col, dst } => {
                    let c = *col as usize;
                    regs[*dst as usize] =
                        tuple.get(c).cloned().ok_or(EvalError::UnknownColumn(c))?;
                }
                Op::LoadConst { idx, dst } => {
                    regs[*dst as usize] = self.consts[*idx as usize].clone();
                }
                Op::DetAdd { a, b, dst } => {
                    let v = self.dsrc(*a, tuple, regs).add(self.dsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::DetSub { a, b, dst } => {
                    let v = self.dsrc(*a, tuple, regs).sub(self.dsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::DetMul { a, b, dst } => {
                    let v = self.dsrc(*a, tuple, regs).mul(self.dsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::DetDiv { a, b, dst } => {
                    let v = self.dsrc(*a, tuple, regs).div(self.dsrc(*b, tuple, regs))?;
                    regs[*dst as usize] = v;
                }
                Op::DetNeg { a, dst } => {
                    let v = self.dsrc(*a, tuple, regs).neg()?;
                    regs[*dst as usize] = v;
                }
                Op::DetEq { a, b, dst } => {
                    let v = self.dsrc(*a, tuple, regs).value_eq(self.dsrc(*b, tuple, regs));
                    regs[*dst as usize] = Value::Bool(v);
                }
                Op::DetLeq { a, b, dst } => {
                    let v = expr::leq(self.dsrc(*a, tuple, regs), self.dsrc(*b, tuple, regs));
                    regs[*dst as usize] = Value::Bool(v);
                }
                Op::DetLt { a, b, dst } => {
                    let v = expr::lt(self.dsrc(*a, tuple, regs), self.dsrc(*b, tuple, regs));
                    regs[*dst as usize] = Value::Bool(v);
                }
                Op::DetNot { a, dst } => {
                    let v = !self.dsrc(*a, tuple, regs).as_bool()?;
                    regs[*dst as usize] = Value::Bool(v);
                }
                Op::DetAsBool { src, dst } => {
                    let v = self.dsrc(*src, tuple, regs).as_bool()?;
                    regs[*dst as usize] = Value::Bool(v);
                }
                Op::Jump { to } => {
                    pc = *to as usize;
                    continue;
                }
                Op::JumpIfFalse { src, to } => {
                    if !self.dsrc(*src, tuple, regs).as_bool()? {
                        pc = *to as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue { src, to } => {
                    if self.dsrc(*src, tuple, regs).as_bool()? {
                        pc = *to as usize;
                        continue;
                    }
                }
                _ => unreachable!("range op in a det program"),
            }
            pc += 1;
        }
        Ok(())
    }

    /// Read the `i`-th output after [`Program::eval_det_into`].
    #[inline]
    pub fn det_output<'r>(&'r self, i: usize, tuple: &'r [Value], regs: &'r [Value]) -> &'r Value {
        self.dsrc(self.outputs[i], tuple, regs)
    }

    /// Single-output deterministic evaluation.
    pub fn eval_det(&self, tuple: &[Value], regs: &mut Vec<Value>) -> Result<Value, EvalError> {
        self.prepare_det_regs(regs);
        self.eval_det_into(tuple, regs)?;
        Ok(self.det_output(0, tuple, regs).clone())
    }

    /// Single-output deterministic predicate evaluation.
    pub fn eval_det_bool(&self, tuple: &[Value], regs: &mut Vec<Value>) -> Result<bool, EvalError> {
        self.prepare_det_regs(regs);
        self.eval_det_into(tuple, regs)?;
        self.det_output(0, tuple, regs).as_bool()
    }

    // ---- batch range evaluation -----------------------------------------

    /// Evaluate the program over a whole batch of rows (a shard), **one
    /// op at a time over every row** — register *columns* instead of a
    /// register file, the flat-columnar execution shape.
    ///
    /// Error semantics are row-major, identical to evaluating the rows
    /// one after another: a row that errors is poisoned (its later ops
    /// are skipped) and after the sweep the error of the *earliest* row
    /// is returned. On `Ok`, every output is fully populated
    /// ([`RangeBatch::output`]).
    pub fn eval_range_batch(
        &self,
        rows: &[&[RangeValue]],
        batch: &mut RangeBatch,
    ) -> Result<(), EvalError> {
        self.eval_range_batch_lenient(rows, batch, None)?;
        if let Some(e) = batch.errs.iter().flatten().next() {
            return Err(e.clone());
        }
        Ok(())
    }

    /// [`Program::eval_range_batch`] without the final error check:
    /// erroring rows are left poisoned in the batch
    /// ([`RangeBatch::row_error`]) and every clean row's outputs are
    /// populated. Chain-level batching uses this to carry poison across
    /// several program runs and report the earliest *source* row's
    /// error only once the whole chain has been applied.
    ///
    /// Range mode only: det programs short-circuit via jumps, which is
    /// per-row control flow (and skipping is semantically load-bearing —
    /// the skipped operand may error).
    ///
    /// `cancel` is the cooperative cancellation token of the running
    /// query (if any): it is checked between op sweeps, so a cancelled
    /// long batch stops within one op's row loop instead of finishing
    /// the whole program. A cancellation verdict poisons nothing — the
    /// batch is simply abandoned.
    pub fn eval_range_batch_lenient(
        &self,
        rows: &[&[RangeValue]],
        batch: &mut RangeBatch,
        cancel: Option<&crate::govern::CancelToken>,
    ) -> Result<(), crate::govern::ExecError> {
        assert_eq!(self.mode, Mode::Range, "batch evaluation requires a range program");
        let n = rows.len();
        batch.reset(self.nregs, n);
        let cols = &mut batch.cols;
        let errs = &mut batch.errs;

        // Resolve an operand for row `i` against the register columns.
        macro_rules! src {
            ($s:expr, $i:expr, $cols:expr) => {
                match $s {
                    Src::Reg(r) => &$cols[*r as usize][$i],
                    Src::Col(c) => &rows[$i][*c as usize],
                    Src::Const(k) => &self.consts_range[*k as usize],
                }
            };
        }
        // `dst` is always distinct from the operand registers (the
        // lowerer never reuses registers), so take the destination
        // column out, fill it, and put it back — no aliasing.
        macro_rules! unary {
            ($a:expr, $dst:expr, |$x:ident| $body:expr) => {{
                let mut d = std::mem::take(&mut cols[*$dst as usize]);
                for i in 0..n {
                    if errs[i].is_some() {
                        continue;
                    }
                    let $x = src!($a, i, cols);
                    match $body {
                        Ok(v) => d[i] = v,
                        Err(e) => errs[i] = Some(e),
                    }
                }
                cols[*$dst as usize] = d;
            }};
        }
        macro_rules! binary {
            ($a:expr, $b:expr, $dst:expr, |$x:ident, $y:ident| $body:expr) => {{
                let mut d = std::mem::take(&mut cols[*$dst as usize]);
                for i in 0..n {
                    if errs[i].is_some() {
                        continue;
                    }
                    let ($x, $y) = (src!($a, i, cols), src!($b, i, cols));
                    match $body {
                        Ok(v) => d[i] = v,
                        Err(e) => errs[i] = Some(e),
                    }
                }
                cols[*$dst as usize] = d;
            }};
        }

        for op in &self.ops {
            if let Some(token) = cancel {
                token.check()?;
            }
            match op {
                Op::CheckCol { col } => {
                    let c = *col as usize;
                    for i in 0..n {
                        if errs[i].is_none() && c >= rows[i].len() {
                            errs[i] = Some(EvalError::UnknownColumn(c));
                        }
                    }
                }
                Op::RangeAnd { a, b, dst } => binary!(a, b, dst, |x, y| range_and(x, y)),
                Op::RangeOr { a, b, dst } => binary!(a, b, dst, |x, y| range_or(x, y)),
                Op::RangeNot { a, dst } => unary!(a, dst, |x| range_not(x)),
                Op::RangeEq { a, b, dst } => {
                    binary!(a, b, dst, |x, y| Ok::<_, EvalError>(range_eq(x, y)))
                }
                Op::RangeLeq { a, b, dst } => {
                    binary!(a, b, dst, |x, y| Ok::<_, EvalError>(range_leq(x, y)))
                }
                Op::RangeLt { a, b, dst } => {
                    binary!(a, b, dst, |x, y| Ok::<_, EvalError>(range_lt(x, y)))
                }
                Op::RangeAdd { a, b, dst } => binary!(a, b, dst, |x, y| range_add(x, y)),
                Op::RangeSub { a, b, dst } => binary!(a, b, dst, |x, y| range_sub(x, y)),
                Op::RangeMul { a, b, dst } => binary!(a, b, dst, |x, y| range_mul(x, y)),
                Op::RangeDiv { a, b, dst } => binary!(a, b, dst, |x, y| range_div(x, y)),
                Op::RangeNeg { a, dst } => unary!(a, dst, |x| range_neg(x)),
                Op::RangeCheckBool3 { src } => {
                    for i in 0..n {
                        if errs[i].is_some() {
                            continue;
                        }
                        if let Err(e) = src!(src, i, cols).as_bool3() {
                            errs[i] = Some(e);
                        }
                    }
                }
                Op::RangeIfMerge { c, t, e, dst } => {
                    let mut d = std::mem::take(&mut cols[*dst as usize]);
                    for i in 0..n {
                        if errs[i].is_some() {
                            continue;
                        }
                        let null = RangeValue::certain(Value::Null);
                        let tv = match t {
                            Src::Reg(r) => {
                                std::mem::replace(&mut cols[*r as usize][i], null.clone())
                            }
                            _ => src!(t, i, cols).clone(),
                        };
                        let ev = match e {
                            Src::Reg(r) => std::mem::replace(&mut cols[*r as usize][i], null),
                            _ => src!(e, i, cols).clone(),
                        };
                        match range_if_merge(src!(c, i, cols), tv, ev) {
                            Ok(v) => d[i] = v,
                            Err(e2) => errs[i] = Some(e2),
                        }
                    }
                    cols[*dst as usize] = d;
                }
                Op::RangeUncertain { l, s, u, dst } => {
                    let mut d = std::mem::take(&mut cols[*dst as usize]);
                    for i in 0..n {
                        if errs[i].is_some() {
                            continue;
                        }
                        match range_uncertain(src!(l, i, cols), src!(s, i, cols), src!(u, i, cols))
                        {
                            Ok(v) => d[i] = v,
                            Err(e2) => errs[i] = Some(e2),
                        }
                    }
                    cols[*dst as usize] = d;
                }
                _ => unreachable!("det op in a range program"),
            }
        }
        Ok(())
    }

    // ---- columnar (lane) range evaluation -------------------------------

    /// [`Program::eval_range_batch_lenient`] over typed value lanes:
    /// the true column-at-a-time execution shape. Each op first tries
    /// its typed vector kernel ([`crate::lane`]) — a tight loop over
    /// contiguous `i64`/`f64`/`bool` component arrays with no per-cell
    /// enum dispatch — and **demotes** to the shared `range_*`
    /// combinators (into a boxed lane) whenever operand shapes or a
    /// produced value leave the homogeneous type lattice. Kernels are
    /// exact refinements of the combinators, so results, error
    /// classification, and error *positions* are identical to the
    /// row-major batch path by construction.
    ///
    /// `cols` are the input attribute lanes (each of length `nrows`);
    /// poisoned rows keep their error in the batch and are skipped by
    /// later generic sweeps (typed kernels may compute them — typed
    /// lanes always hold genuine domain values, so the extra work is
    /// harmless). Outputs are read back via [`LaneBatch::output_lane`]
    /// / [`LaneBatch::take_output`].
    pub fn eval_range_lanes(
        &self,
        cols: &[LaneSlice<'_>],
        nrows: usize,
        batch: &mut LaneBatch,
        cancel: Option<&crate::govern::CancelToken>,
    ) -> Result<(), crate::govern::ExecError> {
        assert_eq!(self.mode, Mode::Range, "lane evaluation requires a range program");
        debug_assert!(cols.iter().all(|c| c.len() == nrows));
        batch.reset(self, nrows);
        let LaneBatch { regs, consts, errs } = batch;

        // A column reference past the arity poisons every row at its
        // `CheckCol` probe (the lowerer emits one before any read), but
        // later ops still sweep the batch — give them a stand-in lane
        // whose values are never read. Only allocated when the program
        // actually probes past the arity.
        let oob = self
            .ops
            .iter()
            .any(|op| matches!(op, Op::CheckCol { col } if *col as usize >= cols.len()));
        let missing = if oob {
            ValueLane::splat(&RangeValue::certain(Value::Null), nrows)
        } else {
            ValueLane::default()
        };

        // Resolve an operand as a borrowed lane view.
        macro_rules! lsrc {
            ($s:expr) => {
                match $s {
                    Src::Reg(r) => regs[*r as usize].as_slice(),
                    Src::Col(c) if (*c as usize) < cols.len() => cols[*c as usize],
                    Src::Col(_) => missing.as_slice(),
                    Src::Const(k) => consts[*k as usize].as_slice(),
                }
            };
        }
        // Kernel-or-demote for unary/binary ops. The computed lane is
        // bound *outside* the operand borrows, then stored: the lowerer
        // never reuses registers, so `dst` is distinct from operands.
        macro_rules! unary {
            ($a:expr, $dst:expr, $kernel:expr, $generic:expr) => {{
                let out = {
                    let x = lsrc!($a);
                    match $kernel(&x) {
                        Some(l) => l,
                        None => lane_generic1(&x, nrows, errs, $generic),
                    }
                };
                regs[*$dst as usize] = out;
            }};
        }
        macro_rules! binary {
            ($a:expr, $b:expr, $dst:expr, $kernel:expr, $generic:expr) => {{
                let out = {
                    let (x, y) = (lsrc!($a), lsrc!($b));
                    match $kernel(&x, &y) {
                        Some(l) => l,
                        None => lane_generic2(&x, &y, nrows, errs, $generic),
                    }
                };
                regs[*$dst as usize] = out;
            }};
        }
        // A "kernel" that always demotes (division's spans-zero guard
        // stays scalar).
        fn never2(_a: &LaneSlice<'_>, _b: &LaneSlice<'_>) -> Option<ValueLane> {
            None
        }

        for op in &self.ops {
            if let Some(token) = cancel {
                token.check()?;
            }
            match op {
                Op::CheckCol { col } => {
                    // Columnar rows share one arity, so the row batch's
                    // per-row bounds probe collapses to a single test.
                    let c = *col as usize;
                    if c >= cols.len() {
                        for e in errs.iter_mut() {
                            if e.is_none() {
                                *e = Some(EvalError::UnknownColumn(c));
                            }
                        }
                    }
                }
                Op::RangeAnd { a, b, dst } => binary!(a, b, dst, lane::k_and, range_and),
                Op::RangeOr { a, b, dst } => binary!(a, b, dst, lane::k_or, range_or),
                Op::RangeNot { a, dst } => unary!(a, dst, lane::k_not, range_not),
                Op::RangeEq { a, b, dst } => {
                    binary!(a, b, dst, lane::k_eq, |x, y| Ok(range_eq(x, y)))
                }
                Op::RangeLeq { a, b, dst } => {
                    binary!(a, b, dst, lane::k_leq, |x, y| Ok(range_leq(x, y)))
                }
                Op::RangeLt { a, b, dst } => {
                    binary!(a, b, dst, lane::k_lt, |x, y| Ok(range_lt(x, y)))
                }
                Op::RangeAdd { a, b, dst } => binary!(a, b, dst, lane::k_add, range_add),
                Op::RangeSub { a, b, dst } => binary!(a, b, dst, lane::k_sub, range_sub),
                Op::RangeMul { a, b, dst } => binary!(a, b, dst, lane::k_mul, range_mul),
                Op::RangeDiv { a, b, dst } => binary!(a, b, dst, never2, range_div),
                Op::RangeNeg { a, dst } => unary!(a, dst, lane::k_neg, range_neg),
                Op::RangeCheckBool3 { src } => {
                    let s = lsrc!(src);
                    // A Bool lane is a boolean triple by construction —
                    // the check that follows every `If` condition is
                    // free on the typed hot path.
                    if s.tag() != LaneTag::Bool {
                        for (i, e) in errs.iter_mut().enumerate() {
                            if e.is_none() {
                                if let Err(err) = s.bool3(i) {
                                    *e = Some(err);
                                }
                            }
                        }
                    }
                }
                Op::RangeIfMerge { c, t, e, dst } => {
                    let out = {
                        let (cc, tt, ee) = (lsrc!(c), lsrc!(t), lsrc!(e));
                        let null = RangeValue::certain(Value::Null);
                        let mut o = Vec::with_capacity(nrows);
                        for (i, err) in errs.iter_mut().enumerate().take(nrows) {
                            if err.is_some() {
                                o.push(null.clone());
                                continue;
                            }
                            let cv = cc.get(i);
                            match range_if_merge(&cv, tt.get(i), ee.get(i)) {
                                Ok(v) => o.push(v),
                                Err(e2) => {
                                    *err = Some(e2);
                                    o.push(null.clone());
                                }
                            }
                        }
                        ValueLane::Boxed(o)
                    };
                    regs[*dst as usize] = out;
                }
                Op::RangeUncertain { l, s, u, dst } => {
                    let out = {
                        let (ll, ss, uu) = (lsrc!(l), lsrc!(s), lsrc!(u));
                        let null = RangeValue::certain(Value::Null);
                        let mut o = Vec::with_capacity(nrows);
                        for (i, err) in errs.iter_mut().enumerate().take(nrows) {
                            if err.is_some() {
                                o.push(null.clone());
                                continue;
                            }
                            let (lv, sv, uv) = (ll.get(i), ss.get(i), uu.get(i));
                            match range_uncertain(&lv, &sv, &uv) {
                                Ok(v) => o.push(v),
                                Err(e2) => {
                                    *err = Some(e2);
                                    o.push(null.clone());
                                }
                            }
                        }
                        ValueLane::Boxed(o)
                    };
                    regs[*dst as usize] = out;
                }
                _ => unreachable!("det op in a range program"),
            }
        }
        Ok(())
    }
}

/// Run an op generically over a lane pair: the shared scalar combinator
/// per live row, into a boxed lane (poisoned/erroring rows get a `Null`
/// placeholder — never read, the poison slot wins).
fn lane_generic2(
    a: &LaneSlice<'_>,
    b: &LaneSlice<'_>,
    nrows: usize,
    errs: &mut [Option<EvalError>],
    f: impl Fn(&RangeValue, &RangeValue) -> Result<RangeValue, EvalError>,
) -> ValueLane {
    let null = RangeValue::certain(Value::Null);
    let mut out = Vec::with_capacity(nrows);
    for (i, e) in errs.iter_mut().enumerate() {
        if e.is_some() {
            out.push(null.clone());
            continue;
        }
        let (x, y) = (a.get(i), b.get(i));
        match f(&x, &y) {
            Ok(v) => out.push(v),
            Err(err) => {
                *e = Some(err);
                out.push(null.clone());
            }
        }
    }
    ValueLane::Boxed(out)
}

/// Unary analog of [`lane_generic2`].
fn lane_generic1(
    a: &LaneSlice<'_>,
    nrows: usize,
    errs: &mut [Option<EvalError>],
    f: impl Fn(&RangeValue) -> Result<RangeValue, EvalError>,
) -> ValueLane {
    let null = RangeValue::certain(Value::Null);
    let mut out = Vec::with_capacity(nrows);
    for (i, e) in errs.iter_mut().enumerate() {
        if e.is_some() {
            out.push(null.clone());
            continue;
        }
        let x = a.get(i);
        match f(&x) {
            Ok(v) => out.push(v),
            Err(err) => {
                *e = Some(err);
                out.push(null.clone());
            }
        }
    }
    ValueLane::Boxed(out)
}

/// Reusable scratch for [`Program::eval_range_lanes`]: one typed lane
/// per register, the constant pool broadcast to the chunk length, and
/// the per-row poison slots.
#[derive(Default)]
pub struct LaneBatch {
    regs: Vec<ValueLane>,
    consts: Vec<ValueLane>,
    errs: Vec<Option<EvalError>>,
}

impl LaneBatch {
    fn reset(&mut self, prog: &Program, nrows: usize) {
        self.regs.clear();
        self.regs.resize_with(prog.nregs, ValueLane::default);
        self.consts.clear();
        self.consts.extend(prog.consts_range.iter().map(|c| ValueLane::splat(c, nrows)));
        self.errs.clear();
        self.errs.resize(nrows, None);
    }

    /// The `out`-th output as a borrowed lane (the input lanes are
    /// needed because outputs may address input columns in place);
    /// valid at non-poisoned rows after a lane evaluation.
    pub fn output_lane<'r>(
        &'r self,
        prog: &Program,
        out: usize,
        cols: &[LaneSlice<'r>],
    ) -> LaneSlice<'r> {
        match prog.outputs[out] {
            Src::Reg(r) => self.regs[r as usize].as_slice(),
            Src::Col(c) => cols[c as usize],
            Src::Const(k) => self.consts[k as usize].as_slice(),
        }
    }

    /// Steal an output's register lane — the zero-copy projection path
    /// when no row of the chunk is poisoned. `None` when the output
    /// addresses an input column or constant (the caller gathers or
    /// copies those).
    pub fn take_output(&mut self, prog: &Program, out: usize) -> Option<ValueLane> {
        match prog.outputs[out] {
            Src::Reg(r) => Some(std::mem::take(&mut self.regs[r as usize])),
            _ => None,
        }
    }

    /// The poison slot of row `i` after a lane evaluation.
    pub fn row_error(&self, i: usize) -> Option<&EvalError> {
        self.errs[i].as_ref()
    }
}

/// Reusable scratch for [`Program::eval_range_batch`]: one register
/// *column* per register plus the per-row poison slots.
#[derive(Default)]
pub struct RangeBatch {
    cols: Vec<Vec<RangeValue>>,
    errs: Vec<Option<EvalError>>,
}

impl RangeBatch {
    fn reset(&mut self, nregs: usize, nrows: usize) {
        let null = RangeValue::certain(Value::Null);
        if self.cols.len() < nregs {
            self.cols.resize_with(nregs, Vec::new);
        }
        for c in &mut self.cols[..nregs] {
            c.resize(nrows, null.clone());
        }
        self.errs.clear();
        self.errs.resize(nrows, None);
    }

    /// The `out`-th output of batch row `i` (its own tuple is needed
    /// because outputs may address input columns in place); valid after
    /// an `Ok` batch evaluation (or, after a lenient one, at
    /// non-poisoned rows).
    pub fn output<'r>(
        &'r self,
        prog: &'r Program,
        out: usize,
        i: usize,
        row: &'r [RangeValue],
    ) -> &'r RangeValue {
        match prog.outputs[out] {
            Src::Reg(r) => &self.cols[r as usize][i],
            Src::Col(c) => &row[c as usize],
            Src::Const(k) => &prog.consts_range[k as usize],
        }
    }

    /// The poison slot of row `i` after a lenient batch evaluation.
    pub fn row_error(&self, i: usize) -> Option<&EvalError> {
        self.errs[i].as_ref()
    }
}

/// `Display` is a disassembly listing (one op per line), mainly for
/// docs and debugging.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {:?} program, {} regs, outputs {:?}", self.mode, self.nregs, self.outputs)?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "{i:4}: {op:?}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct Lowerer {
    mode: Mode,
    ops: Vec<Op>,
    /// One entry per op: the global preorder id of the emitting node.
    spans: Vec<u32>,
    consts: Vec<Value>,
    next: u32,
}

/// Global preorder ids of a node's children: the first child is the
/// next preorder slot, each later child starts past its predecessor's
/// subtree. Works for any child the lowering visits in any order —
/// ids are *structural*, independent of visit order (det `Uncertain`
/// skips two subtrees, `Geq`/`Gt` lower right-first).
fn child_nids(e: &Expr, nid: u32) -> [u32; 3] {
    let [c0, c1, _] = e.children();
    let n0 = nid + 1;
    let n1 = n0 + c0.map_or(0, Expr::node_count);
    let n2 = n1 + c1.map_or(0, Expr::node_count);
    [n0, n1, n2]
}

impl Lowerer {
    fn new(mode: Mode) -> Self {
        Lowerer { mode, ops: Vec::new(), spans: Vec::new(), consts: Vec::new(), next: 0 }
    }

    fn reg(&mut self) -> Reg {
        let r = self.next;
        self.next += 1;
        r
    }

    fn konst(&mut self, v: &Value) -> u32 {
        match self.consts.iter().position(|c| c == v) {
            Some(i) => i as u32,
            None => {
                self.consts.push(v.clone());
                (self.consts.len() - 1) as u32
            }
        }
    }

    /// Emit one op attributed to source node `nid`.
    fn emit(&mut self, nid: u32, op: Op) {
        self.ops.push(op);
        self.spans.push(nid);
    }

    /// Emit a placeholder jump; returns its op index for patching.
    fn emit_jump(&mut self, nid: u32, op: Op) -> usize {
        self.emit(nid, op);
        self.ops.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        let to = self.ops.len() as u32;
        match &mut self.ops[at] {
            Op::Jump { to: t } | Op::JumpIfFalse { to: t, .. } | Op::JumpIfTrue { to: t, .. } => {
                *t = to
            }
            _ => unreachable!("patching a non-jump"),
        }
    }

    fn finish(self, outputs: Vec<Src>, srcs: &[Expr]) -> Program {
        let consts_range = self.consts.iter().map(|v| RangeValue::certain(v.clone())).collect();
        let mut node_offsets = Vec::with_capacity(srcs.len() + 1);
        let mut off = 0u32;
        for e in srcs {
            node_offsets.push(off);
            off += e.node_count();
        }
        node_offsets.push(off);
        debug_assert_eq!(self.ops.len(), self.spans.len());
        Program {
            mode: self.mode,
            ops: self.ops,
            consts: self.consts,
            consts_range,
            nregs: self.next as usize,
            outputs,
            spans: self.spans,
            srcs: srcs.to_vec(),
            node_offsets,
        }
    }

    // ---- range lowering (straight-line) ---------------------------------

    /// Lower an expression, returning where its value will live. Leaves
    /// are addressed in place (a `CheckCol` keeps the bounds error at
    /// the position the interpreter would have raised it).
    fn lower_range_value(&mut self, e: &Expr, nid: u32) -> Src {
        let [na, nb, nc] = child_nids(e, nid);
        match e {
            Expr::Col(i) => {
                self.emit(nid, Op::CheckCol { col: *i as u32 });
                Src::Col(*i as u32)
            }
            Expr::Const(v) => Src::Const(self.konst(v)),
            Expr::And(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeAnd { a, b, dst })
            }
            Expr::Or(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeOr { a, b, dst })
            }
            Expr::Not(a) => {
                let ra = self.lower_range_value(a, na);
                let dst = self.reg();
                self.emit(nid, Op::RangeNot { a: ra, dst });
                Src::Reg(dst)
            }
            Expr::Eq(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeEq { a, b, dst })
            }
            Expr::Neq(a, b) => {
                // Eq then Not — the interpreter's derivation, without
                // its per-row subtree clone.
                let eq =
                    self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeEq { a, b, dst });
                let dst = self.reg();
                self.emit(nid, Op::RangeNot { a: eq, dst });
                Src::Reg(dst)
            }
            Expr::Leq(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeLeq { a, b, dst })
            }
            Expr::Lt(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeLt { a, b, dst })
            }
            // Derived comparisons: swapped operator, so the *syntactic
            // right* operand lowers (and therefore evaluates) first —
            // matching the interpreter's operand order for identical
            // error classification.
            Expr::Geq(a, b) => {
                self.range_bin((b, nb), (a, na), nid, |b, a, dst| Op::RangeLeq { a: b, b: a, dst })
            }
            Expr::Gt(a, b) => {
                self.range_bin((b, nb), (a, na), nid, |b, a, dst| Op::RangeLt { a: b, b: a, dst })
            }
            Expr::Add(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeAdd { a, b, dst })
            }
            Expr::Sub(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeSub { a, b, dst })
            }
            Expr::Mul(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeMul { a, b, dst })
            }
            Expr::Div(a, b) => {
                self.range_bin((a, na), (b, nb), nid, |a, b, dst| Op::RangeDiv { a, b, dst })
            }
            Expr::Neg(a) => {
                let ra = self.lower_range_value(a, na);
                let dst = self.reg();
                self.emit(nid, Op::RangeNeg { a: ra, dst });
                Src::Reg(dst)
            }
            Expr::If(c, t, e2) => {
                let rc = self.lower_range_value(c, na);
                self.emit(nid, Op::RangeCheckBool3 { src: rc });
                let rt = self.lower_range_value(t, nb);
                let re = self.lower_range_value(e2, nc);
                let dst = self.reg();
                self.emit(nid, Op::RangeIfMerge { c: rc, t: rt, e: re, dst });
                Src::Reg(dst)
            }
            Expr::Uncertain(l, s, u) => {
                let rl = self.lower_range_value(l, na);
                let rs = self.lower_range_value(s, nb);
                let ru = self.lower_range_value(u, nc);
                let dst = self.reg();
                self.emit(nid, Op::RangeUncertain { l: rl, s: rs, u: ru, dst });
                Src::Reg(dst)
            }
        }
    }

    fn range_bin(
        &mut self,
        a: (&Expr, u32),
        b: (&Expr, u32),
        nid: u32,
        mk: impl Fn(Src, Src, Reg) -> Op,
    ) -> Src {
        let ra = self.lower_range_value(a.0, a.1);
        let rb = self.lower_range_value(b.0, b.1);
        let dst = self.reg();
        self.emit(nid, mk(ra, rb, dst));
        Src::Reg(dst)
    }

    // ---- det lowering (short-circuit jumps) -----------------------------

    fn lower_det_value(&mut self, e: &Expr, nid: u32) -> Src {
        match e {
            Expr::Col(i) => {
                self.emit(nid, Op::CheckCol { col: *i as u32 });
                Src::Col(*i as u32)
            }
            Expr::Const(v) => Src::Const(self.konst(v)),
            _ => {
                let dst = self.reg();
                self.lower_det_into(e, nid, dst);
                Src::Reg(dst)
            }
        }
    }

    fn det_bin(
        &mut self,
        a: (&Expr, u32),
        b: (&Expr, u32),
        nid: u32,
        dst: Reg,
        mk: impl Fn(Src, Src, Reg) -> Op,
    ) {
        let ra = self.lower_det_value(a.0, a.1);
        let rb = self.lower_det_value(b.0, b.1);
        self.emit(nid, mk(ra, rb, dst));
    }

    /// Lower an expression so its value lands in `dst` (needed by `If`
    /// branches, which must deposit into a shared register).
    fn lower_det_into(&mut self, e: &Expr, nid: u32, dst: Reg) {
        let [na, nb, nc] = child_nids(e, nid);
        match e {
            Expr::Col(i) => self.emit(nid, Op::LoadCol { col: *i as u32, dst }),
            Expr::Const(v) => {
                let idx = self.konst(v);
                self.emit(nid, Op::LoadConst { idx, dst });
            }
            Expr::And(a, b) => {
                // dst ← a; if !dst skip b; dst ← b — Rust's `&&` in the
                // interpreter, including the skipped operand's skipped
                // errors.
                let ra = self.lower_det_value(a, na);
                self.emit(nid, Op::DetAsBool { src: ra, dst });
                let j = self.emit_jump(nid, Op::JumpIfFalse { src: Src::Reg(dst), to: u32::MAX });
                let rb = self.lower_det_value(b, nb);
                self.emit(nid, Op::DetAsBool { src: rb, dst });
                self.patch_jump(j);
            }
            Expr::Or(a, b) => {
                let ra = self.lower_det_value(a, na);
                self.emit(nid, Op::DetAsBool { src: ra, dst });
                let j = self.emit_jump(nid, Op::JumpIfTrue { src: Src::Reg(dst), to: u32::MAX });
                let rb = self.lower_det_value(b, nb);
                self.emit(nid, Op::DetAsBool { src: rb, dst });
                self.patch_jump(j);
            }
            Expr::Not(a) => {
                let ra = self.lower_det_value(a, na);
                self.emit(nid, Op::DetNot { a: ra, dst });
            }
            Expr::Eq(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetEq { a, b, dst })
            }
            Expr::Neq(a, b) => {
                let ra = self.lower_det_value(a, na);
                let rb = self.lower_det_value(b, nb);
                let r = self.reg();
                self.emit(nid, Op::DetEq { a: ra, b: rb, dst: r });
                self.emit(nid, Op::DetNot { a: Src::Reg(r), dst });
            }
            Expr::Leq(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetLeq { a, b, dst })
            }
            Expr::Lt(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetLt { a, b, dst })
            }
            // Det `x ≥ y` is `leq(y, x)` — operands still evaluate in
            // syntactic order (the interpreter evaluates both up front).
            Expr::Geq(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetLeq { a: b, b: a, dst })
            }
            Expr::Gt(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetLt { a: b, b: a, dst })
            }
            Expr::Add(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetAdd { a, b, dst })
            }
            Expr::Sub(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetSub { a, b, dst })
            }
            Expr::Mul(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetMul { a, b, dst })
            }
            Expr::Div(a, b) => {
                self.det_bin((a, na), (b, nb), nid, dst, |a, b, dst| Op::DetDiv { a, b, dst })
            }
            Expr::Neg(a) => {
                let ra = self.lower_det_value(a, na);
                self.emit(nid, Op::DetNeg { a: ra, dst });
            }
            Expr::If(c, t, e2) => {
                let rc = self.lower_det_value(c, na);
                let jelse = self.emit_jump(nid, Op::JumpIfFalse { src: rc, to: u32::MAX });
                self.lower_det_into(t, nb, dst);
                let jend = self.emit_jump(nid, Op::Jump { to: u32::MAX });
                self.patch_jump(jelse);
                self.lower_det_into(e2, nc, dst);
                self.patch_jump(jend);
            }
            // Deterministic engines see only the selected guess.
            Expr::Uncertain(_, s, _) => self.lower_det_into(s, nb, dst),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{col, lit};

    fn rv(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::range(lb, sg, ub)
    }

    /// A grab-bag of expressions covering every operator.
    fn exprs() -> Vec<Expr> {
        vec![
            col(0).add(col(1)),
            col(0).sub(col(1)).mul(col(0)),
            col(0).div(col(1)),
            col(0).neg(),
            col(0).leq(col(1)),
            col(0).lt(lit(2i64)),
            col(0).geq(col(1)),
            col(0).gt(col(1)),
            col(0).eq(col(1)),
            col(0).neq(col(1)),
            col(0).leq(col(1)).and(col(0).geq(lit(0i64))),
            col(0).leq(col(1)).or(col(0).geq(lit(3i64))),
            col(0).lt(lit(5i64)).not(),
            Expr::if_then_else(col(0).leq(col(1)), col(0).add(lit(1i64)), col(1)),
            Expr::if_then_else(col(0).leq(col(1)), col(0), lit(9i64)),
            Expr::make_uncertain(col(0), col(1), col(0).add(col(1))),
            Expr::conj(vec![col(0).leq(lit(9i64)), col(1).geq(lit(-9i64))]),
            col(0),
            lit(42i64),
        ]
    }

    #[test]
    fn compiled_range_matches_interpreter() {
        let tuples = [
            vec![rv(1, 2, 3), rv(0, 0, 5)],
            vec![rv(-3, -1, 0), rv(2, 2, 2)],
            vec![rv(1, 1, 1), rv(1, 1, 1)],
            vec![
                RangeValue::new(Value::Int(1), Value::Int(1), Value::float(1.0)).unwrap(),
                RangeValue::new(Value::Int(0), Value::float(0.5), Value::Int(2)).unwrap(),
            ],
        ];
        let mut regs = Vec::new();
        for e in exprs() {
            let p = Program::compile_range(&e);
            for t in &tuples {
                let interp = e.eval_range(t);
                let compiled = p.eval_range(t, &mut regs);
                assert_eq!(interp, compiled, "range mismatch for {e} on {t:?}");
            }
        }
    }

    #[test]
    fn compiled_det_matches_interpreter() {
        let tuples = [
            vec![Value::Int(1), Value::Int(4)],
            vec![Value::Int(-2), Value::float(1.5)],
            vec![Value::float(2.0), Value::Int(2)],
            vec![Value::Int(0), Value::Int(0)],
        ];
        let mut regs = Vec::new();
        for e in exprs() {
            let p = Program::compile_det(&e);
            for t in &tuples {
                let interp = e.eval(t);
                let compiled = p.eval_det(t, &mut regs);
                assert_eq!(interp, compiled, "det mismatch for {e} on {t:?}");
            }
        }
    }

    /// Det short-circuit is preserved: the skipped operand's error never
    /// surfaces, exactly like the interpreter.
    #[test]
    fn det_short_circuit_skips_errors() {
        let mut regs = Vec::new();
        // false && (1/0): interpreter short-circuits to false
        let e = lit(false).and(lit(1i64).div(lit(0i64)).gt(lit(0i64)));
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(Program::compile_det(&e).eval_det(&[], &mut regs).unwrap(), Value::Bool(false));
        // true || (1/0)
        let e = lit(true).or(lit(1i64).div(lit(0i64)).gt(lit(0i64)));
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(Program::compile_det(&e).eval_det(&[], &mut regs).unwrap(), Value::Bool(true));
        // if picks only the taken branch
        let e = Expr::if_then_else(lit(true), lit(7i64), lit(1i64).div(lit(0i64)));
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(7));
        assert_eq!(Program::compile_det(&e).eval_det(&[], &mut regs).unwrap(), Value::Int(7));
        // ... and errors when the erroring branch IS taken
        let e = Expr::if_then_else(lit(false), lit(7i64), lit(1i64).div(lit(0i64)));
        assert_eq!(e.eval(&[]).unwrap_err(), EvalError::DivisionByZero);
        assert_eq!(
            Program::compile_det(&e).eval_det(&[], &mut regs).unwrap_err(),
            EvalError::DivisionByZero
        );
    }

    /// Error classification matches the interpreter op for op —
    /// including the position of `UnknownColumn` probes relative to
    /// other errors.
    #[test]
    fn error_classification_matches() {
        let cases: Vec<(Expr, Vec<RangeValue>)> = vec![
            // unknown column
            (col(7).add(lit(1i64)), vec![rv(1, 1, 1)]),
            // the left operand's column error beats the right operand's
            // division error (evaluation order)
            (col(7).add(lit(1i64).div(lit(0i64))), vec![rv(1, 1, 1)]),
            // ... and vice versa when the column reference comes second
            (lit(1i64).div(col(0)).add(col(7)), vec![rv(-1, 0, 1)]),
            // spans-zero division
            (lit(1i64).div(col(0)), vec![rv(-1, 0, 1)]),
            // non-boolean And operand
            (col(0).and(lit(true)), vec![rv(1, 1, 2)]),
            // non-boolean If condition errors before the branches
            (Expr::if_then_else(col(0), lit(1i64).div(lit(0i64)), lit(2i64)), vec![rv(1, 1, 2)]),
            // type error in arithmetic
            (col(0).add(lit("x")), vec![rv(1, 1, 1)]),
        ];
        let mut regs = Vec::new();
        for (e, t) in cases {
            let interp = e.eval_range(&t).unwrap_err();
            let compiled = Program::compile_range(&e).eval_range(&t, &mut regs).unwrap_err();
            assert_eq!(interp, compiled, "error mismatch for {e}");
        }
    }

    /// The batch entry point equals row-at-a-time evaluation, including
    /// row-major error selection (earliest erroring row wins even when a
    /// later row errors at an earlier op).
    #[test]
    fn batch_matches_rows_and_error_order() {
        let e = col(0).add(col(1)).div(col(1));
        let p = Program::compile_range(&e);
        let rows: Vec<Vec<RangeValue>> =
            vec![vec![rv(1, 2, 3), rv(1, 1, 2)], vec![rv(0, 1, 2), rv(2, 2, 4)]];
        let refs: Vec<&[RangeValue]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut batch = RangeBatch::default();
        p.eval_range_batch(&refs, &mut batch).unwrap();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(*batch.output(&p, 0, i, r), e.eval_range(r).unwrap());
        }

        // row 0 errors at the Div (late op), row 1 at the column probe
        // (early op): row-major semantics report row 0's error.
        let p2 = Program::compile_range(&col(1).div(col(0)));
        let rows: Vec<Vec<RangeValue>> = vec![
            vec![rv(-1, 0, 1), rv(1, 1, 1)], // div spans zero
            vec![rv(2, 2, 2)],               // missing column 1
        ];
        let refs: Vec<&[RangeValue]> = rows.iter().map(|r| r.as_slice()).collect();
        let err = p2.eval_range_batch(&refs, &mut batch).unwrap_err();
        assert_eq!(err, EvalError::RangeDivisionSpansZero);
    }

    /// The lane (columnar) entry point equals the row batch cell for
    /// cell — outputs, error classification, and error positions — on
    /// homogeneous Int, homogeneous Float, and mixed/boxed corpora,
    /// including rows that poison (spans-zero division, type errors)
    /// and rows that force kernel demotion (i64 overflow).
    #[test]
    fn lanes_match_row_batch() {
        let corpora: Vec<Vec<Vec<RangeValue>>> = vec![
            // homogeneous Int (typed kernels all the way)
            vec![
                vec![rv(1, 2, 3), rv(0, 0, 5)],
                vec![rv(-3, -1, 0), rv(2, 2, 2)],
                vec![rv(4, 4, 4), rv(1, 1, 1)],
            ],
            // homogeneous Float
            vec![
                vec![
                    RangeValue::range(1.5f64, 2.0f64, 3.0f64),
                    RangeValue::range(0.5f64, 1.0f64, 1.5f64),
                ],
                vec![
                    RangeValue::range(-2.0f64, 0.0f64, 2.0f64),
                    RangeValue::certain(Value::float(3.0)),
                ],
            ],
            // mixed Int/Float cells and a string: boxed lanes
            vec![
                vec![
                    RangeValue::new(Value::Int(1), Value::Int(1), Value::float(1.5)).unwrap(),
                    rv(0, 1, 2),
                ],
                vec![RangeValue::certain(Value::str("x")), rv(1, 1, 1)],
                vec![RangeValue::unknown(Value::Int(0)), rv(2, 2, 2)],
            ],
            // poison inducers: col(1) spans zero on row 0, overflow on
            // row 1 (demotes the typed kernel mid-corpus)
            vec![
                vec![rv(1, 1, 1), rv(-1, 0, 1)],
                vec![rv(i64::MAX, i64::MAX, i64::MAX), rv(1, 1, 2)],
                vec![rv(5, 6, 7), rv(1, 2, 3)],
            ],
        ];
        let mut exprs_all = exprs();
        exprs_all.push(col(7).add(lit(1i64))); // unknown column, uniform arity
        exprs_all.push(col(0).and(lit(true))); // non-boolean And operand
        let mut rb = RangeBatch::default();
        let mut lb = LaneBatch::default();
        for rows in &corpora {
            let n = rows.len();
            let arity = rows[0].len();
            let lanes: Vec<ValueLane> =
                (0..arity).map(|c| ValueLane::from_cells(rows.iter().map(|r| &r[c]))).collect();
            let slices: Vec<LaneSlice<'_>> = lanes.iter().map(|l| l.as_slice()).collect();
            let refs: Vec<&[RangeValue]> = rows.iter().map(|r| r.as_slice()).collect();
            for e in &exprs_all {
                let p = Program::compile_range(e);
                p.eval_range_batch_lenient(&refs, &mut rb, None).unwrap();
                p.eval_range_lanes(&slices, n, &mut lb, None).unwrap();
                for i in 0..n {
                    assert_eq!(
                        rb.row_error(i),
                        lb.row_error(i),
                        "error mismatch for {e} on row {i} of {rows:?}"
                    );
                    if rb.row_error(i).is_none() {
                        let lane_out = lb.output_lane(&p, 0, &slices);
                        assert_eq!(
                            *rb.output(&p, 0, i, &rows[i]),
                            lane_out.get(i),
                            "output mismatch for {e} on row {i} of {rows:?}"
                        );
                    }
                }
            }
        }
    }

    /// Multi-output programs evaluate expressions in list order and
    /// support identity (`Col`) and constant outputs in place.
    #[test]
    fn multi_output_projection() {
        let es = vec![col(0).add(col(1)), col(0), col(0).mul(lit(2i64)), lit(7i64)];
        let p = Program::compile_range_many(&es);
        let t = vec![rv(1, 2, 3), rv(4, 5, 6)];
        let mut regs = Vec::new();
        p.prepare_range_regs(&mut regs);
        p.eval_range_into(&t, &mut regs).unwrap();
        for (i, e) in es.iter().enumerate() {
            assert_eq!(*p.range_output(i, &t, &regs), e.eval_range(&t).unwrap());
        }
        let pd = Program::compile_det_many(&es);
        let td = vec![Value::Int(3), Value::Int(9)];
        let mut dregs = Vec::new();
        pd.prepare_det_regs(&mut dregs);
        pd.eval_det_into(&td, &mut dregs).unwrap();
        for (i, e) in es.iter().enumerate() {
            assert_eq!(*pd.det_output(i, &td, &dregs), e.eval(&td).unwrap());
        }
    }
}
