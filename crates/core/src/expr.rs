//! Scalar expressions (paper Section 5): syntax (Definition 3),
//! deterministic semantics (Definition 4), incomplete semantics over sets
//! of valuations (Definition 5), and range-annotated semantics
//! (Definition 9) which is proven bound-preserving (Theorem 1).
//!
//! Variables are column references (`Expr::Col`) resolved positionally
//! against a tuple, which plays the role of the valuation `φ`.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::EvalError;
use crate::range::RangeValue;
use crate::value::Value;

/// Expression AST (Definition 3 plus the derived operators `≠ ≥ < > -`
/// the paper notes are expressible).
///
/// The same expression evaluates deterministically against plain tuples
/// and — bound-preservingly (Theorem 1) — against range-annotated ones:
///
/// ```
/// use audb_core::{col, lit, RangeValue, Value};
///
/// let e = col(0).add(lit(10i64));
/// assert_eq!(e.eval(&[Value::Int(5)]).unwrap(), Value::Int(15));
/// assert_eq!(
///     e.eval_range(&[RangeValue::range(1i64, 5i64, 9i64)]).unwrap(),
///     RangeValue::range(11i64, 15i64, 19i64),
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable: reference to the i-th attribute of the input tuple.
    Col(usize),
    Const(Value),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Eq(Box<Expr>, Box<Expr>),
    Neq(Box<Expr>, Box<Expr>),
    Leq(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    Geq(Box<Expr>, Box<Expr>),
    Gt(Box<Expr>, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// The `MakeUncertain(e↓, e^sg, e↑)` lens construct (Section 11.4,
    /// Example 16): introduces attribute-level uncertainty from within a
    /// query. Deterministic evaluation sees only the selected guess;
    /// range-annotated evaluation produces `[e↓ / e^sg / e↑]` (widened
    /// so the triple stays ordered).
    Uncertain(Box<Expr>, Box<Expr>, Box<Expr>),
}

// ---- constructor helpers (builder style) --------------------------------

pub fn col(i: usize) -> Expr {
    Expr::Col(i)
}
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Const(v.into())
}

// Builder methods deliberately mirror the operator names of the paper's
// expression syntax rather than implementing `std::ops` (they build AST
// nodes, not values).
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(other))
    }
    pub fn neq(self, other: Expr) -> Expr {
        Expr::Neq(Box::new(self), Box::new(other))
    }
    pub fn leq(self, other: Expr) -> Expr {
        Expr::Leq(Box::new(self), Box::new(other))
    }
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(other))
    }
    pub fn geq(self, other: Expr) -> Expr {
        Expr::Geq(Box::new(self), Box::new(other))
    }
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(other))
    }
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
    pub fn if_then_else(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }
    /// `MakeUncertain(lb, sg, ub)` (Example 16).
    pub fn make_uncertain(lb: Expr, sg: Expr, ub: Expr) -> Expr {
        Expr::Uncertain(Box::new(lb), Box::new(sg), Box::new(ub))
    }

    /// Conjunction of a list of expressions (`true` when empty).
    pub fn conj(exprs: Vec<Expr>) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => lit(true),
            Some(first) => it.fold(first, |acc, e| acc.and(e)),
        }
    }

    // ---- structural traversal (spans for the compiled backend) ----------

    /// The node's children in syntactic order (up to three).
    pub(crate) fn children(&self) -> [Option<&Expr>; 3] {
        match self {
            Expr::Col(_) | Expr::Const(_) => [None, None, None],
            Expr::Not(a) | Expr::Neg(a) => [Some(a), None, None],
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Neq(a, b)
            | Expr::Leq(a, b)
            | Expr::Lt(a, b)
            | Expr::Geq(a, b)
            | Expr::Gt(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b) => [Some(a), Some(b), None],
            Expr::If(c, t, e) | Expr::Uncertain(c, t, e) => [Some(c), Some(t), Some(e)],
        }
    }

    /// Number of AST nodes in this subtree (the node itself included).
    /// Preorder node ids are assigned against this count: a node's first
    /// child is `id + 1`, each later child starts past its predecessor's
    /// subtree. The compiled backend stamps every emitted op with the id
    /// of its emitting node ([`crate::Program`]'s spans).
    pub fn node_count(&self) -> u32 {
        1 + self.children().iter().flatten().map(|c| c.node_count()).sum::<u32>()
    }

    /// The node at preorder index `idx` within this subtree (`0` is the
    /// root), or `None` past the end.
    pub fn preorder_node(&self, idx: usize) -> Option<&Expr> {
        if idx == 0 {
            return Some(self);
        }
        let mut rest = idx - 1;
        for c in self.children().iter().flatten() {
            let n = c.node_count() as usize;
            if rest < n {
                return c.preorder_node(rest);
            }
            rest -= n;
        }
        None
    }

    /// `vars(e)`: the set of referenced columns.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Col(i) => {
                out.insert(*i);
            }
            Expr::Const(_) => {}
            Expr::Not(a) | Expr::Neg(a) => a.collect_columns(out),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Neq(a, b)
            | Expr::Leq(a, b)
            | Expr::Lt(a, b)
            | Expr::Geq(a, b)
            | Expr::Gt(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::If(c, t, e) | Expr::Uncertain(c, t, e) => {
                c.collect_columns(out);
                t.collect_columns(out);
                e.collect_columns(out);
            }
        }
    }

    /// Rewrite column references through a mapping (used by the rewrite
    /// middleware and by plan composition).
    pub fn remap_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(f(*i)),
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_columns(f))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.remap_columns(f))),
            Expr::And(a, b) => {
                Expr::And(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Or(a, b) => Expr::Or(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f))),
            Expr::Eq(a, b) => Expr::Eq(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f))),
            Expr::Neq(a, b) => {
                Expr::Neq(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Leq(a, b) => {
                Expr::Leq(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Lt(a, b) => Expr::Lt(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f))),
            Expr::Geq(a, b) => {
                Expr::Geq(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Gt(a, b) => Expr::Gt(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f))),
            Expr::Add(a, b) => {
                Expr::Add(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Sub(a, b) => {
                Expr::Sub(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Mul(a, b) => {
                Expr::Mul(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::Div(a, b) => {
                Expr::Div(Box::new(a.remap_columns(f)), Box::new(b.remap_columns(f)))
            }
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.remap_columns(f)),
                Box::new(t.remap_columns(f)),
                Box::new(e.remap_columns(f)),
            ),
            Expr::Uncertain(l, s, u) => Expr::Uncertain(
                Box::new(l.remap_columns(f)),
                Box::new(s.remap_columns(f)),
                Box::new(u.remap_columns(f)),
            ),
        }
    }

    /// Extract the column pairs of a conjunctive equi-join predicate
    /// `⋀ Col(l_i) = Col(r_i)` where `l_i < split ≤ r_i`.
    /// Returns `None` if the predicate has any other shape.
    pub fn equi_join_columns(&self, split: usize) -> Option<Vec<(usize, usize)>> {
        let mut pairs = Vec::new();
        if self.collect_equi_pairs(split, &mut pairs) {
            Some(pairs)
        } else {
            None
        }
    }

    fn collect_equi_pairs(&self, split: usize, out: &mut Vec<(usize, usize)>) -> bool {
        match self {
            Expr::And(a, b) => a.collect_equi_pairs(split, out) && b.collect_equi_pairs(split, out),
            Expr::Eq(a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(l), Expr::Col(r)) if *l < split && *r >= split => {
                    out.push((*l, *r - split));
                    true
                }
                (Expr::Col(r), Expr::Col(l)) if *l < split && *r >= split => {
                    out.push((*l, *r - split));
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }

    // ---- deterministic semantics (Definition 4) -------------------------

    /// Evaluate against a deterministic tuple (valuation).
    pub fn eval(&self, tuple: &[Value]) -> Result<Value, EvalError> {
        match self {
            Expr::Col(i) => tuple.get(*i).cloned().ok_or(EvalError::UnknownColumn(*i)),
            Expr::Const(v) => Ok(v.clone()),
            Expr::And(a, b) => {
                Ok(Value::Bool(a.eval(tuple)?.as_bool()? && b.eval(tuple)?.as_bool()?))
            }
            Expr::Or(a, b) => {
                Ok(Value::Bool(a.eval(tuple)?.as_bool()? || b.eval(tuple)?.as_bool()?))
            }
            Expr::Not(a) => Ok(Value::Bool(!a.eval(tuple)?.as_bool()?)),
            Expr::Eq(a, b) => Ok(Value::Bool(a.eval(tuple)?.value_eq(&b.eval(tuple)?))),
            Expr::Neq(a, b) => Ok(Value::Bool(!a.eval(tuple)?.value_eq(&b.eval(tuple)?))),
            Expr::Leq(a, b) => {
                let (x, y) = (a.eval(tuple)?, b.eval(tuple)?);
                Ok(Value::Bool(x <= y || x.value_eq(&y)))
            }
            Expr::Lt(a, b) => {
                // `<` must agree with value_eq (Int 2 < Float 2.0 is false)
                let (x, y) = (a.eval(tuple)?, b.eval(tuple)?);
                Ok(Value::Bool(x < y && !x.value_eq(&y)))
            }
            Expr::Geq(a, b) => {
                let (x, y) = (a.eval(tuple)?, b.eval(tuple)?);
                Ok(Value::Bool(x >= y || x.value_eq(&y)))
            }
            Expr::Gt(a, b) => {
                let (x, y) = (a.eval(tuple)?, b.eval(tuple)?);
                Ok(Value::Bool(x > y && !x.value_eq(&y)))
            }
            Expr::Add(a, b) => a.eval(tuple)?.add(&b.eval(tuple)?),
            Expr::Sub(a, b) => a.eval(tuple)?.sub(&b.eval(tuple)?),
            Expr::Mul(a, b) => a.eval(tuple)?.mul(&b.eval(tuple)?),
            Expr::Div(a, b) => a.eval(tuple)?.div(&b.eval(tuple)?),
            Expr::Neg(a) => a.eval(tuple)?.neg(),
            Expr::If(c, t, e) => {
                if c.eval(tuple)?.as_bool()? {
                    t.eval(tuple)
                } else {
                    e.eval(tuple)
                }
            }
            // deterministic engines see only the selected guess
            Expr::Uncertain(_, sg, _) => sg.eval(tuple),
        }
    }

    /// Boolean shortcut for predicates.
    pub fn eval_bool(&self, tuple: &[Value]) -> Result<bool, EvalError> {
        self.eval(tuple)?.as_bool()
    }

    // ---- incomplete semantics (Definition 5) -----------------------------

    /// Evaluate over an *incomplete valuation* — a set of possible tuples —
    /// yielding the set of possible results.
    pub fn eval_incomplete(&self, worlds: &[Vec<Value>]) -> Result<BTreeSet<Value>, EvalError> {
        worlds.iter().map(|w| self.eval(w)).collect()
    }

    // ---- range-annotated semantics (Definition 9) ------------------------

    /// Evaluate against a range-annotated tuple. Bound-preserving
    /// (Theorem 1): if the input tuple bounds an incomplete valuation,
    /// the result bounds all possible outcomes.
    ///
    /// This tree-walking interpreter is the semantic *oracle*: the
    /// compiled register backend ([`crate::program::Program`]) lowers
    /// the same per-node combinators (`range_*` below) into a flat op
    /// array, and the differential test-suite pins the two byte-equal.
    pub fn eval_range(&self, tuple: &[RangeValue]) -> Result<RangeValue, EvalError> {
        match self {
            Expr::Col(i) => tuple.get(*i).cloned().ok_or(EvalError::UnknownColumn(*i)),
            Expr::Const(v) => Ok(RangeValue::certain(v.clone())),
            Expr::And(a, b) => range_and(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Or(a, b) => range_or(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Not(a) => range_not(&a.eval_range(tuple)?),
            Expr::Eq(a, b) => Ok(range_eq(&a.eval_range(tuple)?, &b.eval_range(tuple)?)),
            Expr::Neq(a, b) => range_not(&range_eq(&a.eval_range(tuple)?, &b.eval_range(tuple)?)),
            Expr::Leq(a, b) => Ok(range_leq(&a.eval_range(tuple)?, &b.eval_range(tuple)?)),
            Expr::Lt(a, b) => Ok(range_lt(&a.eval_range(tuple)?, &b.eval_range(tuple)?)),
            // Derived comparisons evaluate the *syntactic right* operand
            // first (they are sugar for the swapped operator) — the
            // compiled lowering mirrors this operand order exactly so
            // error classification cannot diverge.
            Expr::Geq(a, b) => Ok(range_leq(&b.eval_range(tuple)?, &a.eval_range(tuple)?)),
            Expr::Gt(a, b) => Ok(range_lt(&b.eval_range(tuple)?, &a.eval_range(tuple)?)),
            Expr::Add(a, b) => range_add(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Sub(a, b) => range_sub(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Mul(a, b) => range_mul(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Div(a, b) => range_div(&a.eval_range(tuple)?, &b.eval_range(tuple)?),
            Expr::Neg(a) => range_neg(&a.eval_range(tuple)?),
            Expr::If(c, t, e) => {
                let cond = c.eval_range(tuple)?;
                cond.as_bool3()?; // non-boolean conditions error before the branches run
                let tv = t.eval_range(tuple)?;
                let ev = e.eval_range(tuple)?;
                range_if_merge(&cond, tv, ev)
            }
            Expr::Uncertain(l, s, u) => {
                let lv = l.eval_range(tuple)?;
                let sv = s.eval_range(tuple)?;
                let uv = u.eval_range(tuple)?;
                range_uncertain(&lv, &sv, &uv)
            }
        }
    }

    /// Range-annotated predicate evaluation: boolean triple.
    pub fn eval_range_bool3(&self, tuple: &[RangeValue]) -> Result<(bool, bool, bool), EvalError> {
        self.eval_range(tuple)?.as_bool3()
    }
}

// ---- shared per-node combinators (Definition 9) --------------------------
//
// One function per operator over *already evaluated* operand ranges,
// shared verbatim between the tree interpreter above and the compiled
// register backend in `crate::program` — the two execution paths cannot
// drift because they run the same combinator code.

pub(crate) fn bool_range(lb: bool, sg: bool, ub: bool) -> RangeValue {
    // The boolean order is false < true; a comparison's components always
    // satisfy lb => sg => ub by construction.
    RangeValue::new_unchecked(Value::Bool(lb), Value::Bool(sg), Value::Bool(ub))
}

pub(crate) fn leq(a: &Value, b: &Value) -> bool {
    a <= b || a.value_eq(b)
}
pub(crate) fn lt(a: &Value, b: &Value) -> bool {
    a < b && !a.value_eq(b)
}

pub(crate) fn range_and(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    let (xl, xs, xu) = x.as_bool3()?;
    let (yl, ys, yu) = y.as_bool3()?;
    Ok(bool_range(xl && yl, xs && ys, xu && yu))
}

pub(crate) fn range_or(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    let (xl, xs, xu) = x.as_bool3()?;
    let (yl, ys, yu) = y.as_bool3()?;
    Ok(bool_range(xl || yl, xs || ys, xu || yu))
}

pub(crate) fn range_not(x: &RangeValue) -> Result<RangeValue, EvalError> {
    let (xl, xs, xu) = x.as_bool3()?;
    Ok(bool_range(!xu, !xs, !xl))
}

pub(crate) fn range_eq(x: &RangeValue, y: &RangeValue) -> RangeValue {
    // certainly equal iff both are certain and equal
    let lb = x.ub.value_eq(&y.lb) && y.ub.value_eq(&x.lb);
    // possibly equal iff the ranges overlap; `value_eq`-aware so
    // `Int 2` vs `Float 2.0` endpoints count as touching (keeps the
    // triple ordered with the value_eq-based lb)
    let ub = leq(&x.lb, &y.ub) && leq(&y.lb, &x.ub);
    bool_range(lb, x.sg.value_eq(&y.sg), ub)
}

pub(crate) fn range_leq(x: &RangeValue, y: &RangeValue) -> RangeValue {
    bool_range(leq(&x.ub, &y.lb), leq(&x.sg, &y.sg), leq(&x.lb, &y.ub))
}

pub(crate) fn range_lt(x: &RangeValue, y: &RangeValue) -> RangeValue {
    bool_range(lt(&x.ub, &y.lb), lt(&x.sg, &y.sg), lt(&x.lb, &y.ub))
}

pub(crate) fn range_add(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    RangeValue::new(x.lb.add(&y.lb)?, x.sg.add(&y.sg)?, x.ub.add(&y.ub)?)
}

// The corner bounds of Sub/Mul/Div/Neg are numerically correct but live
// in a total order where `Int(k) < Float(k.0)`: on a numeric tie the sg
// result's *representation* can escape them (e.g. `[1/1/2] −
// [Int 0/Int 0/Float 0.0]` has corner lb `Float(1.0)` above sg
// `Int(1)`). Widening by sg keeps the triple ordered and is sound — the
// sg world is a possible world, so the true bounds contain it.

pub(crate) fn range_sub(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    let sg = x.sg.sub(&y.sg)?;
    Ok(RangeValue::new_unchecked(
        Value::min_of(x.lb.sub(&y.ub)?, sg.clone()),
        sg.clone(),
        Value::max_of(x.ub.sub(&y.lb)?, sg),
    ))
}

pub(crate) fn range_mul(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    let combos = [x.lb.mul(&y.lb)?, x.lb.mul(&y.ub)?, x.ub.mul(&y.lb)?, x.ub.mul(&y.ub)?];
    let [c0, c1, c2, c3] = combos;
    let lo =
        Value::min_of(Value::min_of(c0.clone(), c1.clone()), Value::min_of(c2.clone(), c3.clone()));
    let hi = Value::max_of(Value::max_of(c0, c1), Value::max_of(c2, c3));
    let sg = x.sg.mul(&y.sg)?;
    Ok(RangeValue::new_unchecked(Value::min_of(lo, sg.clone()), sg.clone(), Value::max_of(hi, sg)))
}

pub(crate) fn range_div(x: &RangeValue, y: &RangeValue) -> Result<RangeValue, EvalError> {
    // Undefined when the denominator may be 0 (Definition 9).
    // Zero has exactly two representations in the domain's total order,
    // `Int(0)` and `Float(0.0)`, and they are *adjacent* (numeric ties
    // order `Int` before `Float`), so a denominator interval may contain
    // one without the other — e.g. `[Float(0.0), Int(5)]` excludes
    // `Int(0)` and `[Int(-1), Int(0)]` excludes `Float(0.0)`. Testing
    // both representations is therefore exactly the "interval contains a
    // zero-valued element" condition, for pure-`Int`, pure-`Float`, and
    // mixed endpoints alike (pinned down in `div_spans_zero_guard_*`
    // tests).
    if y.bounds(&Value::Int(0)) || y.bounds(&Value::float(0.0)) {
        return Err(EvalError::RangeDivisionSpansZero);
    }
    let combos = [x.lb.div(&y.lb)?, x.lb.div(&y.ub)?, x.ub.div(&y.lb)?, x.ub.div(&y.ub)?];
    let [c0, c1, c2, c3] = combos;
    let lo =
        Value::min_of(Value::min_of(c0.clone(), c1.clone()), Value::min_of(c2.clone(), c3.clone()));
    let hi = Value::max_of(Value::max_of(c0, c1), Value::max_of(c2, c3));
    let sg = x.sg.div(&y.sg)?;
    Ok(RangeValue::new_unchecked(Value::min_of(lo, sg.clone()), sg.clone(), Value::max_of(hi, sg)))
}

pub(crate) fn range_neg(x: &RangeValue) -> Result<RangeValue, EvalError> {
    let sg = x.sg.neg()?;
    Ok(RangeValue::new_unchecked(
        Value::min_of(x.ub.neg()?, sg.clone()),
        sg.clone(),
        Value::max_of(x.lb.neg()?, sg),
    ))
}

/// Merge the two branch results of `If` under an (already
/// boolean-checked) condition triple.
pub(crate) fn range_if_merge(
    cond: &RangeValue,
    tv: RangeValue,
    ev: RangeValue,
) -> Result<RangeValue, EvalError> {
    let (cl, cs, cu) = cond.as_bool3()?;
    if cl && cu {
        Ok(tv)
    } else if !cl && !cu {
        Ok(ev)
    } else {
        let sg = if cs { tv.sg.clone() } else { ev.sg.clone() };
        RangeValue::new(Value::min_of(tv.lb, ev.lb), sg, Value::max_of(tv.ub, ev.ub))
    }
}

/// `MakeUncertain`: widen so the triple stays ordered even if the three
/// sub-expressions disagree.
pub(crate) fn range_uncertain(
    lv: &RangeValue,
    sv: &RangeValue,
    uv: &RangeValue,
) -> Result<RangeValue, EvalError> {
    RangeValue::new(
        Value::min_of(lv.lb.clone(), sv.sg.clone()),
        sv.sg.clone(),
        Value::max_of(uv.ub.clone(), sv.sg.clone()),
    )
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::And(a, b) => write!(f, "({a} ∧ {b})"),
            Expr::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Expr::Not(a) => write!(f, "¬{a}"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Neq(a, b) => write!(f, "({a} ≠ {b})"),
            Expr::Leq(a, b) => write!(f, "({a} ≤ {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Geq(a, b) => write!(f, "({a} ≥ {b})"),
            Expr::Gt(a, b) => write!(f, "({a} > {b})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} · {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "-{a}"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Uncertain(l, s, u) => write!(f, "uncertain({l}, {s}, {u})"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn deterministic_eval_example_4() {
        // e := x + y over {(1,4), (2,4), (1,5)} yields {5, 6}
        let e = col(0).add(col(1));
        let worlds = vec![ints(&[1, 4]), ints(&[2, 4]), ints(&[1, 5])];
        let out = e.eval_incomplete(&worlds).unwrap();
        let expect: BTreeSet<Value> = [Value::Int(5), Value::Int(6)].into();
        assert_eq!(out, expect);
    }

    #[test]
    fn range_addition() {
        let e = col(0).add(col(1));
        let t = vec![RangeValue::range(1i64, 2i64, 3i64), RangeValue::range(10i64, 10i64, 20i64)];
        assert_eq!(e.eval_range(&t).unwrap(), RangeValue::range(11i64, 12i64, 23i64));
    }

    #[test]
    fn range_subtraction_crosses_bounds() {
        let e = col(0).sub(col(1));
        let t = vec![RangeValue::range(1i64, 2i64, 3i64), RangeValue::range(1i64, 1i64, 5i64)];
        assert_eq!(e.eval_range(&t).unwrap(), RangeValue::range(-4i64, 1i64, 2i64));
    }

    #[test]
    fn range_multiplication_negative() {
        let e = col(0).mul(col(1));
        let t = vec![RangeValue::range(-2i64, 1i64, 3i64), RangeValue::range(-5i64, -5i64, 4i64)];
        // combos: 10, -8, -15, 12 → [-15, 12]
        assert_eq!(e.eval_range(&t).unwrap(), RangeValue::range(-15i64, -5i64, 12i64));
    }

    #[test]
    fn range_comparison() {
        let e = col(0).leq(col(1));
        // certainly true
        let t = vec![RangeValue::range(1i64, 2i64, 3i64), RangeValue::range(3i64, 4i64, 5i64)];
        assert_eq!(e.eval_range(&t).unwrap().as_bool3().unwrap(), (true, true, true));
        // uncertain
        let t = vec![RangeValue::range(1i64, 2i64, 6i64), RangeValue::range(3i64, 4i64, 5i64)];
        assert_eq!(e.eval_range(&t).unwrap().as_bool3().unwrap(), (false, true, true));
        // certainly false
        let t = vec![RangeValue::range(7i64, 8i64, 9i64), RangeValue::range(3i64, 4i64, 5i64)];
        assert_eq!(e.eval_range(&t).unwrap().as_bool3().unwrap(), (false, false, false));
    }

    #[test]
    fn range_equality_example_9() {
        // [1/2/3] = [2/2/2]  evaluates to [F/T/T]
        let e = col(0).eq(lit(2i64));
        let t = vec![RangeValue::range(1i64, 2i64, 3i64)];
        assert_eq!(e.eval_range(&t).unwrap().as_bool3().unwrap(), (false, true, true));
    }

    #[test]
    fn range_negation_flips() {
        let e = col(0).lt(lit(5i64)).not();
        let t = vec![RangeValue::range(1i64, 2i64, 9i64)];
        // x < 5 is [F/T/T]; negation is [F/F/T]
        assert_eq!(e.eval_range(&t).unwrap().as_bool3().unwrap(), (false, false, true));
    }

    #[test]
    fn range_if_then_else_merges() {
        let e = Expr::if_then_else(col(0).leq(lit(0i64)), lit(10i64), lit(20i64));
        let t = vec![RangeValue::range(-1i64, 0i64, 1i64)];
        assert_eq!(e.eval_range(&t).unwrap(), RangeValue::range(10i64, 10i64, 20i64));
        // certain condition picks one branch exactly
        let t = vec![RangeValue::certain(Value::Int(-3))];
        assert_eq!(e.eval_range(&t).unwrap(), RangeValue::certain(Value::Int(10)));
    }

    #[test]
    fn range_division_guard() {
        let e = lit(1i64).div(col(0));
        let spans_zero = vec![RangeValue::range(-1i64, 1i64, 2i64)];
        assert_eq!(e.eval_range(&spans_zero).unwrap_err(), EvalError::RangeDivisionSpansZero);
        let pos = vec![RangeValue::range(2i64, 4i64, 8i64)];
        assert_eq!(e.eval_range(&pos).unwrap(), RangeValue::range(0.125f64, 0.25f64, 0.5f64));
    }

    /// The spans-zero guard must treat `Int(0)` and `Float(0.0)` as the
    /// same forbidden denominator value even though they are *distinct,
    /// adjacent* elements of the total order — an interval can contain
    /// one without the other.
    #[test]
    fn div_spans_zero_guard_cross_type_boundaries() {
        let e = lit(1i64).div(col(0));
        let spans = |r: RangeValue| e.eval_range(&[r]).unwrap_err();
        // pure-Int zero: excludes Float(0.0), still guarded
        assert_eq!(spans(RangeValue::range(-1i64, 0i64, 0i64)), EvalError::RangeDivisionSpansZero);
        // pure-Float zero: excludes Int(0), still guarded
        assert_eq!(
            spans(RangeValue::range(0.0f64, 0.5f64, 1.0f64)),
            EvalError::RangeDivisionSpansZero
        );
        // mixed endpoints around zero: Float lb, Int ub
        assert_eq!(
            spans(RangeValue::new(Value::float(-0.5), Value::Int(1), Value::Int(2)).unwrap()),
            EvalError::RangeDivisionSpansZero
        );
        // [Float(0.0), Int(5)] contains no Int(0) (Int sorts before
        // Float on numeric ties) but does contain Float(0.0)
        assert_eq!(
            spans(RangeValue::new(Value::float(0.0), Value::Int(1), Value::Int(5)).unwrap()),
            EvalError::RangeDivisionSpansZero
        );
    }

    /// Denominator intervals strictly on one side of zero divide fine,
    /// including mixed `Int`/`Float` endpoints and negative ranges.
    #[test]
    fn div_nonzero_cross_type_ranges_divide() {
        let e = lit(1i64).div(col(0));
        // negative, mixed types: [-2, -0.5]
        let r = RangeValue::new(Value::Int(-2), Value::Int(-1), Value::float(-0.5)).unwrap();
        let out = e.eval_range(&[r]).unwrap();
        assert_eq!(out, RangeValue::range(-2.0f64, -1.0f64, -0.5f64));
        // positive, Float lb just above zero
        let r = RangeValue::new(Value::float(0.5), Value::Int(1), Value::Int(4)).unwrap();
        let out = e.eval_range(&[r]).unwrap();
        assert_eq!(out, RangeValue::range(0.25f64, 1.0f64, 2.0f64));
    }

    #[test]
    fn equi_join_detection() {
        let p = col(0).eq(col(3)).and(col(5).eq(col(1)));
        assert_eq!(p.equi_join_columns(3), Some(vec![(0, 0), (1, 2)]));
        let notequi = col(0).leq(col(3));
        assert_eq!(notequi.equi_join_columns(3), None);
    }

    #[test]
    fn columns_collects_vars() {
        let e = col(0).add(col(2)).leq(col(5));
        assert_eq!(e.columns(), BTreeSet::from([0, 2, 5]));
    }

    /// Theorem 1 smoke check: brute-force an expression over small
    /// incomplete valuations and verify the range result bounds every
    /// possible outcome.
    #[test]
    fn theorem1_bound_preservation_smoke() {
        let exprs = vec![
            col(0).add(col(1)),
            col(0).mul(col(1)),
            col(0).sub(col(1)).mul(col(0)),
            Expr::if_then_else(col(0).leq(col(1)), col(0), col(1).add(lit(1i64))),
            col(0).leq(col(1)),
            col(0).eq(col(1)),
        ];
        let ranges =
            vec![RangeValue::range(-2i64, 1i64, 3i64), RangeValue::range(0i64, 0i64, 2i64)];
        // enumerate all deterministic tuples bounded by `ranges` where the
        // sg tuple is included (Definition 8)
        let mut worlds = vec![];
        for a in -2..=3i64 {
            for b in 0..=2i64 {
                worlds.push(vec![Value::Int(a), Value::Int(b)]);
            }
        }
        for e in exprs {
            let bound = e.eval_range(&ranges).unwrap();
            for w in &worlds {
                let v = e.eval(w).unwrap();
                assert!(bound.bounds(&v), "{e}: {bound} does not bound {v} at {w:?}");
            }
            // sg component must equal deterministic evaluation on sg tuple
            let sg_tuple: Vec<Value> = ranges.iter().map(|r| r.sg.clone()).collect();
            assert_eq!(bound.sg, e.eval(&sg_tuple).unwrap());
        }
    }
}
