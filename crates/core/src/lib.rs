//! # audb-core
//!
//! Core data model for **AU-DBs** (attribute-annotated uncertain
//! databases), reproducing *"Efficient Uncertainty Tracking for Complex
//! Queries with Attribute-level Bounds"* (SIGMOD 2021):
//!
//! * [`value`] — the totally ordered universal value domain `D`;
//! * [`range`] — range-annotated values `[lb/sg/ub]` (`D_I`, Definition 6);
//! * [`expr`] — scalar expressions with deterministic, incomplete and
//!   bound-preserving range-annotated semantics (Section 5, Theorem 1);
//! * [`semiring`] — commutative semirings, natural orders, l-semirings,
//!   monus, provenance polynomials (Section 3.1);
//! * [`annot`] — tuple annotations `K_UA = K²` and `K_AU ⊂ K³`
//!   (Definitions 2 and 11);
//! * [`krelation`] — minimal generic K-relations validating the framework;
//! * [`lane`] — columnar value lanes and the typed vector kernels the
//!   compiled backend runs over them;
//! * [`obs`] — query-engine observability: metrics sink, execution
//!   traces, EXPLAIN ANALYZE renderers.
//!
//! Like the execution runtime, this crate denies stray
//! `unwrap`/`expect` in non-test code
//! (`clippy::unwrap_used`/`expect_used`): evaluation errors are values
//! ([`EvalError`]), and the only sanctioned panics are explicit
//! invariant assertions (e.g. the lowerer's Tier A gate).

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod annot;
pub mod error;
pub mod expr;
pub mod govern;
pub mod krelation;
pub mod lane;
pub mod obs;
pub mod program;
pub mod range;
pub mod semiring;
pub mod value;
pub mod verify;

pub use annot::{AuAnnot, UaAnnot};
pub use error::EvalError;
pub use expr::{col, lit, Expr};
pub use govern::{Budget, BudgetSpec, CancelToken, ExecError};
pub use lane::{LaneSlice, LaneTag, ValueLane};
pub use obs::{
    Counter, ExecEvent, ExecEventKind, Metrics, MetricsSnapshot, QueryTrace, Site, SiteStats,
    TraceBuilder, TraceSpan, TRACE_SCHEMA_VERSION,
};
pub use program::{LaneBatch, Program, RangeBatch};
pub use range::RangeValue;
pub use semiring::{
    delta, LSemiring, MonusSemiring, Nat, NaturallyOrdered, PolyNX, Prod, Semiring,
};
pub use value::{Value, F64};
pub use verify::{LintKind, ProgramLint, VerifyError, VerifyErrorKind};
