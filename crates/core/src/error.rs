//! Error types shared across the workspace.

use std::fmt;

use crate::govern::ExecError;

/// Errors raised while evaluating scalar expressions or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Operand has the wrong type for the operator.
    TypeError {
        expected: &'static str,
        found: String,
    },
    /// Binary operator applied to incompatible operands.
    BinOpTypeError {
        op: &'static str,
        left: String,
        right: String,
    },
    DivisionByZero,
    /// Range division where the denominator interval contains 0 (Def. 9).
    RangeDivisionSpansZero,
    NotANumber,
    /// `MaxVal + MinVal` and friends.
    IndeterminateSentinel,
    /// Column reference out of bounds.
    UnknownColumn(usize),
    /// Named entity (table, column, variable) not found.
    NotFound(String),
    /// A range triple violating `lb <= sg <= ub`.
    InvalidRange(String),
    /// An annotation triple violating the natural order `lb ⪯ sg ⪯ ub`.
    InvalidAnnotation(String),
    /// Schema arity/name mismatch between operator inputs.
    SchemaMismatch(String),
    /// Operation unsupported by the evaluator (e.g. difference on UA-DBs).
    Unsupported(String),
    /// A structured execution-runtime fault: contained worker panic,
    /// cancellation/deadline, or an exhausted resource budget.
    Exec(ExecError),
}

impl EvalError {
    pub fn type_error(expected: &'static str, found: &impl fmt::Debug) -> Self {
        EvalError::TypeError { expected, found: format!("{found:?}") }
    }

    pub fn binop_type_error(
        op: &'static str,
        left: &impl fmt::Debug,
        right: &impl fmt::Debug,
    ) -> Self {
        EvalError::BinOpTypeError { op, left: format!("{left:?}"), right: format!("{right:?}") }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeError { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            EvalError::BinOpTypeError { op, left, right } => {
                write!(f, "type error: cannot apply `{op}` to {left} and {right}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::RangeDivisionSpansZero => {
                write!(f, "range division undefined: denominator interval contains zero")
            }
            EvalError::NotANumber => write!(f, "NaN is not a domain value"),
            EvalError::IndeterminateSentinel => {
                write!(f, "indeterminate sentinel arithmetic (e.g. +inf + -inf)")
            }
            EvalError::UnknownColumn(i) => write!(f, "unknown column index {i}"),
            EvalError::NotFound(n) => write!(f, "not found: {n}"),
            EvalError::InvalidRange(m) => write!(f, "invalid range triple: {m}"),
            EvalError::InvalidAnnotation(m) => write!(f, "invalid annotation triple: {m}"),
            EvalError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            EvalError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            EvalError::Exec(e) => write!(f, "execution fault: {e}"),
        }
    }
}

impl From<ExecError> for EvalError {
    fn from(e: ExecError) -> EvalError {
        EvalError::Exec(e)
    }
}

impl std::error::Error for EvalError {}
