//! Columnar value lanes: the column-major representation of one
//! attribute of range-annotated rows, and the typed vector kernels the
//! compiled backend runs over them.
//!
//! A [`ValueLane`] stores a column of [`RangeValue`]s as three
//! contiguous component arrays (`lb`/`sg`/`ub`) when every cell of the
//! column is homogeneously typed — `Int`, `Float`, or `Bool` in all
//! three components of every row — and falls back to a boxed row of
//! `RangeValue`s otherwise (mixed numeric columns, strings, sentinels,
//! `Null`). This is the flat succinct encoding that made U-relations
//! fast: homogeneous inner loops touch raw `i64`/`f64`/`bool` arrays
//! with no per-cell enum dispatch, so the compiler can unroll and
//! auto-vectorize them.
//!
//! # Exactness contract
//!
//! The typed kernels in this module are *refinements* of the shared
//! `range_*` combinators (`crate::expr`), never reinterpretations:
//! for every input they either produce the bit-identical result the
//! combinator would, or they **demote** — return `None`, telling the
//! caller to rerun the whole op through the generic per-cell combinator
//! into a boxed lane. Demotion triggers exactly where the scalar
//! semantics leave the homogeneous type lattice:
//!
//! * `i64` checked arithmetic returning `None` — the scalar path
//!   *promotes that component to float* (`Value::add` et al.), so the
//!   result column is no longer homogeneous `Int`;
//! * an `f64` kernel producing NaN — the scalar path raises
//!   [`EvalError::NotANumber`] for that row, which only the generic
//!   path can report per-row.
//!
//! The `f64` kernels canonicalize `-0.0` to `0.0` after every
//! operation, mirroring `F64::try_new` (e.g. `-1.0 * 0.0` is `-0.0` in
//! IEEE arithmetic but `0.0` in the value domain). Mixed `Int`/`Float`
//! operand pairs may use the `f64` kernels because the scalar mixed
//! semantics are themselves f64-cast based: `Value::add` computes
//! `a as f64 + b`, and the comparison tie rules (`Int` sorts before
//! `Float` on numeric ties, `value_eq` casts) reduce `leq`/`lt`/
//! `value_eq` to plain `<=`/`</`==` on the casts. `Int ⊗ Int`
//! comparisons use exact `i64` compares — beyond 2^53 the cast is
//! lossy, the integers are not.

use std::ops::Range;

use crate::error::EvalError;
use crate::range::RangeValue;
use crate::value::{Value, F64};

/// The type tag of a lane: which component representation it uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneTag {
    /// Every cell is `[Int / Int / Int]`.
    Int,
    /// Every cell is `[Float / Float / Float]`.
    Float,
    /// Every cell is `[Bool / Bool / Bool]`.
    Bool,
    /// Anything else: per-cell `RangeValue`s (the fallback lane).
    Boxed,
}

/// One attribute column of range-annotated values, column-major.
///
/// Typed variants hold the `lb`/`sg`/`ub` components in three parallel
/// arrays; [`ValueLane::Boxed`] is the row-shaped fallback for columns
/// that are not homogeneously typed. Every variant materializes cells
/// back into [`RangeValue`]s on demand ([`ValueLane::get`]), so the row
/// `Tuple` view is always recoverable.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueLane {
    Int { lb: Vec<i64>, sg: Vec<i64>, ub: Vec<i64> },
    Float { lb: Vec<f64>, sg: Vec<f64>, ub: Vec<f64> },
    Bool { lb: Vec<bool>, sg: Vec<bool>, ub: Vec<bool> },
    Boxed(Vec<RangeValue>),
}

impl Default for ValueLane {
    fn default() -> Self {
        ValueLane::Boxed(Vec::new())
    }
}

/// Borrowed view of (part of) a [`ValueLane`] — what kernels and
/// chunked executors actually operate on.
#[derive(Debug, Clone, Copy)]
pub enum LaneSlice<'a> {
    Int { lb: &'a [i64], sg: &'a [i64], ub: &'a [i64] },
    Float { lb: &'a [f64], sg: &'a [f64], ub: &'a [f64] },
    Bool { lb: &'a [bool], sg: &'a [bool], ub: &'a [bool] },
    Boxed(&'a [RangeValue]),
}

impl ValueLane {
    pub fn len(&self) -> usize {
        match self {
            ValueLane::Int { lb, .. } => lb.len(),
            ValueLane::Float { lb, .. } => lb.len(),
            ValueLane::Bool { lb, .. } => lb.len(),
            ValueLane::Boxed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn tag(&self) -> LaneTag {
        match self {
            ValueLane::Int { .. } => LaneTag::Int,
            ValueLane::Float { .. } => LaneTag::Float,
            ValueLane::Bool { .. } => LaneTag::Bool,
            ValueLane::Boxed(_) => LaneTag::Boxed,
        }
    }

    /// Materialize cell `i` as a [`RangeValue`].
    pub fn get(&self, i: usize) -> RangeValue {
        self.as_slice().get(i)
    }

    /// Borrow the whole lane.
    pub fn as_slice(&self) -> LaneSlice<'_> {
        self.slice(0..self.len())
    }

    /// Borrow a sub-range of the lane.
    pub fn slice(&self, r: Range<usize>) -> LaneSlice<'_> {
        match self {
            ValueLane::Int { lb, sg, ub } => {
                LaneSlice::Int { lb: &lb[r.clone()], sg: &sg[r.clone()], ub: &ub[r] }
            }
            ValueLane::Float { lb, sg, ub } => {
                LaneSlice::Float { lb: &lb[r.clone()], sg: &sg[r.clone()], ub: &ub[r] }
            }
            ValueLane::Bool { lb, sg, ub } => {
                LaneSlice::Bool { lb: &lb[r.clone()], sg: &sg[r.clone()], ub: &ub[r] }
            }
            ValueLane::Boxed(v) => LaneSlice::Boxed(&v[r]),
        }
    }

    /// Build a lane from a column of cells, choosing the tightest
    /// representation: a typed lane iff *every* cell is homogeneously
    /// `Int`/`Float`/`Bool` in all three components, boxed otherwise
    /// (so mixed-type columns and sentinel-carrying cells — e.g. the
    /// `[MinVal / sg / MaxVal]` encoding of `null` — take the fallback
    /// lane and keep exact scalar semantics).
    pub fn from_cells<'a>(cells: impl Iterator<Item = &'a RangeValue> + Clone) -> ValueLane {
        let (mut all_int, mut all_float, mut all_bool, mut n) = (true, true, true, 0usize);
        for c in cells.clone() {
            n += 1;
            all_int &=
                matches!((&c.lb, &c.sg, &c.ub), (Value::Int(_), Value::Int(_), Value::Int(_)));
            all_float &= matches!(
                (&c.lb, &c.sg, &c.ub),
                (Value::Float(_), Value::Float(_), Value::Float(_))
            );
            all_bool &=
                matches!((&c.lb, &c.sg, &c.ub), (Value::Bool(_), Value::Bool(_), Value::Bool(_)));
            if !(all_int || all_float || all_bool) {
                break;
            }
        }
        let _ = n;
        if all_int {
            let (mut lb, mut sg, mut ub) = (Vec::new(), Vec::new(), Vec::new());
            for c in cells {
                if let (Value::Int(l), Value::Int(s), Value::Int(u)) = (&c.lb, &c.sg, &c.ub) {
                    lb.push(*l);
                    sg.push(*s);
                    ub.push(*u);
                }
            }
            ValueLane::Int { lb, sg, ub }
        } else if all_float {
            let (mut lb, mut sg, mut ub) = (Vec::new(), Vec::new(), Vec::new());
            for c in cells {
                if let (Value::Float(l), Value::Float(s), Value::Float(u)) = (&c.lb, &c.sg, &c.ub) {
                    lb.push(l.get());
                    sg.push(s.get());
                    ub.push(u.get());
                }
            }
            ValueLane::Float { lb, sg, ub }
        } else if all_bool {
            let (mut lb, mut sg, mut ub) = (Vec::new(), Vec::new(), Vec::new());
            for c in cells {
                if let (Value::Bool(l), Value::Bool(s), Value::Bool(u)) = (&c.lb, &c.sg, &c.ub) {
                    lb.push(*l);
                    sg.push(*s);
                    ub.push(*u);
                }
            }
            ValueLane::Bool { lb, sg, ub }
        } else {
            ValueLane::Boxed(cells.cloned().collect())
        }
    }

    /// A lane of `n` copies of one cell (constants broadcast to a
    /// chunk's length so kernels see uniform operands).
    pub fn splat(cell: &RangeValue, n: usize) -> ValueLane {
        match (&cell.lb, &cell.sg, &cell.ub) {
            (Value::Int(l), Value::Int(s), Value::Int(u)) => {
                ValueLane::Int { lb: vec![*l; n], sg: vec![*s; n], ub: vec![*u; n] }
            }
            (Value::Float(l), Value::Float(s), Value::Float(u)) => ValueLane::Float {
                lb: vec![l.get(); n],
                sg: vec![s.get(); n],
                ub: vec![u.get(); n],
            },
            (Value::Bool(l), Value::Bool(s), Value::Bool(u)) => {
                ValueLane::Bool { lb: vec![*l; n], sg: vec![*s; n], ub: vec![*u; n] }
            }
            _ => ValueLane::Boxed(vec![cell.clone(); n]),
        }
    }

    /// Exact heap footprint of this lane's component storage in bytes
    /// (element payloads plus, for boxed cells, their string heap).
    pub fn lane_bytes(&self) -> u64 {
        match self {
            ValueLane::Int { lb, .. } => (3 * lb.len() * std::mem::size_of::<i64>()) as u64,
            ValueLane::Float { lb, .. } => (3 * lb.len() * std::mem::size_of::<f64>()) as u64,
            ValueLane::Bool { lb, .. } => (3 * lb.len()) as u64,
            ValueLane::Boxed(cells) => {
                let mut total = (cells.len() * std::mem::size_of::<RangeValue>()) as u64;
                for c in cells {
                    for v in [&c.lb, &c.sg, &c.ub] {
                        if let Value::Str(s) = v {
                            total += s.len() as u64;
                        }
                    }
                }
                total
            }
        }
    }
}

impl<'a> LaneSlice<'a> {
    pub fn len(&self) -> usize {
        match self {
            LaneSlice::Int { lb, .. } => lb.len(),
            LaneSlice::Float { lb, .. } => lb.len(),
            LaneSlice::Bool { lb, .. } => lb.len(),
            LaneSlice::Boxed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn tag(&self) -> LaneTag {
        match self {
            LaneSlice::Int { .. } => LaneTag::Int,
            LaneSlice::Float { .. } => LaneTag::Float,
            LaneSlice::Bool { .. } => LaneTag::Bool,
            LaneSlice::Boxed(_) => LaneTag::Boxed,
        }
    }

    /// Materialize cell `i` as a [`RangeValue`].
    pub fn get(&self, i: usize) -> RangeValue {
        match self {
            LaneSlice::Int { lb, sg, ub } => {
                RangeValue { lb: Value::Int(lb[i]), sg: Value::Int(sg[i]), ub: Value::Int(ub[i]) }
            }
            LaneSlice::Float { lb, sg, ub } => RangeValue {
                lb: Value::Float(F64::new(lb[i])),
                sg: Value::Float(F64::new(sg[i])),
                ub: Value::Float(F64::new(ub[i])),
            },
            LaneSlice::Bool { lb, sg, ub } => RangeValue {
                lb: Value::Bool(lb[i]),
                sg: Value::Bool(sg[i]),
                ub: Value::Bool(ub[i]),
            },
            LaneSlice::Boxed(v) => v[i].clone(),
        }
    }

    /// Boolean-triple view of cell `i` — free on a `Bool` lane, exact
    /// scalar error classification elsewhere.
    pub fn bool3(&self, i: usize) -> Result<(bool, bool, bool), EvalError> {
        match self {
            LaneSlice::Bool { lb, sg, ub } => Ok((lb[i], sg[i], ub[i])),
            LaneSlice::Boxed(v) => v[i].as_bool3(),
            other => other.get(i).as_bool3(),
        }
    }

    /// Gather the cells at `idx` (in order) into an owned lane of the
    /// same representation — the compaction step after a selection.
    pub fn gather(&self, idx: &[u32]) -> ValueLane {
        match self {
            LaneSlice::Int { lb, sg, ub } => ValueLane::Int {
                lb: idx.iter().map(|&i| lb[i as usize]).collect(),
                sg: idx.iter().map(|&i| sg[i as usize]).collect(),
                ub: idx.iter().map(|&i| ub[i as usize]).collect(),
            },
            LaneSlice::Float { lb, sg, ub } => ValueLane::Float {
                lb: idx.iter().map(|&i| lb[i as usize]).collect(),
                sg: idx.iter().map(|&i| sg[i as usize]).collect(),
                ub: idx.iter().map(|&i| ub[i as usize]).collect(),
            },
            LaneSlice::Bool { lb, sg, ub } => ValueLane::Bool {
                lb: idx.iter().map(|&i| lb[i as usize]).collect(),
                sg: idx.iter().map(|&i| sg[i as usize]).collect(),
                ub: idx.iter().map(|&i| ub[i as usize]).collect(),
            },
            LaneSlice::Boxed(v) => {
                ValueLane::Boxed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Copy into an owned lane.
    pub fn to_lane(&self) -> ValueLane {
        match self {
            LaneSlice::Int { lb, sg, ub } => {
                ValueLane::Int { lb: lb.to_vec(), sg: sg.to_vec(), ub: ub.to_vec() }
            }
            LaneSlice::Float { lb, sg, ub } => {
                ValueLane::Float { lb: lb.to_vec(), sg: sg.to_vec(), ub: ub.to_vec() }
            }
            LaneSlice::Bool { lb, sg, ub } => {
                ValueLane::Bool { lb: lb.to_vec(), sg: sg.to_vec(), ub: ub.to_vec() }
            }
            LaneSlice::Boxed(v) => ValueLane::Boxed(v.to_vec()),
        }
    }
}

// ---------------------------------------------------------------------------
// Typed kernels
// ---------------------------------------------------------------------------
//
// Each kernel returns `Some(lane)` with the bit-exact result of running
// the corresponding `range_*` combinator over every row, or `None` to
// demote: the operand shapes (or a produced value) left the homogeneous
// type lattice and the caller must rerun the op generically. Kernels
// may compute rows the caller knows are poisoned — typed lanes always
// hold genuine domain values, so the extra work is harmless (a demotion
// triggered by a poisoned row's data costs performance, never
// correctness).

/// Canonicalize an f64 the way `F64::try_new` does (`-0.0` → `0.0`).
#[inline]
fn canon(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

#[inline]
fn fmin(a: f64, b: f64) -> f64 {
    // total_cmp order on canonical, NaN-free floats is the usual order;
    // ties return `a`, matching `Value::min_of`.
    if b < a {
        b
    } else {
        a
    }
}

#[inline]
fn fmax(a: f64, b: f64) -> f64 {
    if b > a {
        b
    } else {
        a
    }
}

/// f64 view of a numeric lane component: `Int` components cast
/// elementwise (exactly what the scalar mixed-numeric semantics do).
fn numeric_f64(s: &LaneSlice<'_>) -> Option<[Vec<f64>; 3]> {
    match s {
        LaneSlice::Int { lb, sg, ub } => Some([
            lb.iter().map(|&v| v as f64).collect(),
            sg.iter().map(|&v| v as f64).collect(),
            ub.iter().map(|&v| v as f64).collect(),
        ]),
        LaneSlice::Float { lb, sg, ub } => Some([lb.to_vec(), sg.to_vec(), ub.to_vec()]),
        _ => None,
    }
}

fn checked_zip(a: &[i64], b: &[i64], f: impl Fn(i64, i64) -> Option<i64>) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        out.push(f(x, y)?);
    }
    Some(out)
}

/// f64 map over two components; `None` when any element is NaN (the
/// scalar path raises `NotANumber` there — only the generic path can
/// report it per-row).
fn f64_zip(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> Option<Vec<f64>> {
    let mut out = Vec::with_capacity(a.len());
    let mut ok = true;
    for (&x, &y) in a.iter().zip(b) {
        let v = canon(f(x, y));
        ok &= !v.is_nan();
        out.push(v);
    }
    ok.then_some(out)
}

/// The scalar `Value::sub` is `add(neg(b))`: `i64::MIN` fails to negate
/// (and float-promotes) even when `a - b` itself is representable.
#[inline]
fn int_sub(a: i64, b: i64) -> Option<i64> {
    b.checked_neg().and_then(|nb| a.checked_add(nb))
}

/// `range_add` kernel: componentwise sums. Monotone, so the validating
/// `RangeValue::new` of the scalar path cannot fail on the homogeneous
/// inputs this kernel accepts.
pub(crate) fn k_add(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Int { lb: al, sg: asg, ub: au },
            LaneSlice::Int { lb: bl, sg: bsg, ub: bu },
        ) => Some(ValueLane::Int {
            lb: checked_zip(al, bl, i64::checked_add)?,
            sg: checked_zip(asg, bsg, i64::checked_add)?,
            ub: checked_zip(au, bu, i64::checked_add)?,
        }),
        _ => {
            let [al, asg, au] = numeric_f64(a)?;
            let [bl, bsg, bu] = numeric_f64(b)?;
            Some(ValueLane::Float {
                lb: f64_zip(&al, &bl, |x, y| x + y)?,
                sg: f64_zip(&asg, &bsg, |x, y| x + y)?,
                ub: f64_zip(&au, &bu, |x, y| x + y)?,
            })
        }
    }
}

/// `range_sub` kernel: `sg = a.sg − b.sg`, bounds `a.lb − b.ub` and
/// `a.ub − b.lb` widened by `sg`.
pub(crate) fn k_sub(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Int { lb: al, sg: asg, ub: au },
            LaneSlice::Int { lb: bl, sg: bsg, ub: bu },
        ) => {
            let sg = checked_zip(asg, bsg, int_sub)?;
            let dl = checked_zip(al, bu, int_sub)?;
            let du = checked_zip(au, bl, int_sub)?;
            let lb = dl.iter().zip(&sg).map(|(&d, &s)| d.min(s)).collect();
            let ub = du.iter().zip(&sg).map(|(&d, &s)| d.max(s)).collect();
            Some(ValueLane::Int { lb, sg, ub })
        }
        _ => {
            let [al, asg, au] = numeric_f64(a)?;
            let [bl, bsg, bu] = numeric_f64(b)?;
            // IEEE negation is exact and `x + (-y) == x - y`, so the
            // scalar `add(neg(b))` chain is plain subtraction here.
            let sg = f64_zip(&asg, &bsg, |x, y| x - y)?;
            let dl = f64_zip(&al, &bu, |x, y| x - y)?;
            let du = f64_zip(&au, &bl, |x, y| x - y)?;
            let lb = dl.iter().zip(&sg).map(|(&d, &s)| fmin(d, s)).collect();
            let ub = du.iter().zip(&sg).map(|(&d, &s)| fmax(d, s)).collect();
            Some(ValueLane::Float { lb, sg, ub })
        }
    }
}

/// `range_mul` kernel: four corner products, min/max envelope, widened
/// by the sg product.
pub(crate) fn k_mul(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Int { lb: al, sg: asg, ub: au },
            LaneSlice::Int { lb: bl, sg: bsg, ub: bu },
        ) => {
            let c0 = checked_zip(al, bl, i64::checked_mul)?;
            let c1 = checked_zip(al, bu, i64::checked_mul)?;
            let c2 = checked_zip(au, bl, i64::checked_mul)?;
            let c3 = checked_zip(au, bu, i64::checked_mul)?;
            let sg: Vec<i64> = checked_zip(asg, bsg, i64::checked_mul)?;
            let n = sg.len();
            let mut lb = Vec::with_capacity(n);
            let mut ub = Vec::with_capacity(n);
            for i in 0..n {
                let lo = c0[i].min(c1[i]).min(c2[i].min(c3[i]));
                let hi = c0[i].max(c1[i]).max(c2[i].max(c3[i]));
                lb.push(lo.min(sg[i]));
                ub.push(hi.max(sg[i]));
            }
            Some(ValueLane::Int { lb, sg, ub })
        }
        _ => {
            let [al, asg, au] = numeric_f64(a)?;
            let [bl, bsg, bu] = numeric_f64(b)?;
            let c0 = f64_zip(&al, &bl, |x, y| x * y)?;
            let c1 = f64_zip(&al, &bu, |x, y| x * y)?;
            let c2 = f64_zip(&au, &bl, |x, y| x * y)?;
            let c3 = f64_zip(&au, &bu, |x, y| x * y)?;
            let sg = f64_zip(&asg, &bsg, |x, y| x * y)?;
            let n = sg.len();
            let mut lb = Vec::with_capacity(n);
            let mut ub = Vec::with_capacity(n);
            for i in 0..n {
                let lo = fmin(fmin(c0[i], c1[i]), fmin(c2[i], c3[i]));
                let hi = fmax(fmax(c0[i], c1[i]), fmax(c2[i], c3[i]));
                lb.push(fmin(lo, sg[i]));
                ub.push(fmax(hi, sg[i]));
            }
            Some(ValueLane::Float { lb, sg, ub })
        }
    }
}

/// `range_neg` kernel: `sg = −a.sg`, bounds `−a.ub` / `−a.lb` widened
/// by `sg`.
pub(crate) fn k_neg(a: &LaneSlice<'_>) -> Option<ValueLane> {
    match a {
        LaneSlice::Int { lb: al, sg: asg, ub: au } => {
            let mut sg = Vec::with_capacity(asg.len());
            let mut lb = Vec::with_capacity(asg.len());
            let mut ub = Vec::with_capacity(asg.len());
            for i in 0..asg.len() {
                let s = asg[i].checked_neg()?;
                lb.push(au[i].checked_neg()?.min(s));
                ub.push(al[i].checked_neg()?.max(s));
                sg.push(s);
            }
            Some(ValueLane::Int { lb, sg, ub })
        }
        LaneSlice::Float { lb: al, sg: asg, ub: au } => {
            let sg: Vec<f64> = asg.iter().map(|&v| canon(-v)).collect();
            let lb = au.iter().zip(&sg).map(|(&v, &s)| fmin(canon(-v), s)).collect();
            let ub = al.iter().zip(&sg).map(|(&v, &s)| fmax(canon(-v), s)).collect();
            Some(ValueLane::Float { lb, sg, ub })
        }
        _ => None,
    }
}

/// `range_leq` kernel: `(a.ub ≤ b.lb, a.sg ≤ b.sg, a.lb ≤ b.ub)`.
pub(crate) fn k_leq(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    cmp_kernel(a, b, |x, y| x <= y, |x, y| x <= y)
}

/// `range_lt` kernel: strict variants of the same components.
pub(crate) fn k_lt(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    cmp_kernel(a, b, |x, y| x < y, |x, y| x < y)
}

fn cmp_kernel(
    a: &LaneSlice<'_>,
    b: &LaneSlice<'_>,
    fi: impl Fn(i64, i64) -> bool + Copy,
    ff: impl Fn(f64, f64) -> bool + Copy,
) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Int { lb: al, sg: asg, ub: au },
            LaneSlice::Int { lb: bl, sg: bsg, ub: bu },
        ) => Some(ValueLane::Bool {
            lb: au.iter().zip(bl.iter()).map(|(&x, &y)| fi(x, y)).collect(),
            sg: asg.iter().zip(bsg.iter()).map(|(&x, &y)| fi(x, y)).collect(),
            ub: al.iter().zip(bu.iter()).map(|(&x, &y)| fi(x, y)).collect(),
        }),
        _ => {
            // Mixed Int/Float compares reduce to the casts: `leq` is
            // `a <= b || value_eq`, and both the total order's numeric
            // tie rule and `value_eq` are f64-cast based, so
            // `leq ⇔ af <= bf` and `lt ⇔ af < bf` whenever a float is
            // involved.
            let [al, asg, au] = numeric_f64(a)?;
            let [bl, bsg, bu] = numeric_f64(b)?;
            Some(ValueLane::Bool {
                lb: au.iter().zip(bl.iter()).map(|(&x, &y)| ff(x, y)).collect(),
                sg: asg.iter().zip(bsg.iter()).map(|(&x, &y)| ff(x, y)).collect(),
                ub: al.iter().zip(bu.iter()).map(|(&x, &y)| ff(x, y)).collect(),
            })
        }
    }
}

/// `range_eq` kernel: certainly-equal iff both endpoints pin the same
/// value, possibly-equal iff the ranges overlap (`value_eq`-aware,
/// which for numeric lanes is exactly the cast equality).
pub(crate) fn k_eq(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Int { lb: al, sg: asg, ub: au },
            LaneSlice::Int { lb: bl, sg: bsg, ub: bu },
        ) => {
            let n = al.len();
            let mut lb = Vec::with_capacity(n);
            let mut sg = Vec::with_capacity(n);
            let mut ub = Vec::with_capacity(n);
            for i in 0..n {
                lb.push(au[i] == bl[i] && bu[i] == al[i]);
                sg.push(asg[i] == bsg[i]);
                ub.push(al[i] <= bu[i] && bl[i] <= au[i]);
            }
            Some(ValueLane::Bool { lb, sg, ub })
        }
        _ => {
            let [al, asg, au] = numeric_f64(a)?;
            let [bl, bsg, bu] = numeric_f64(b)?;
            let n = al.len();
            let mut lb = Vec::with_capacity(n);
            let mut sg = Vec::with_capacity(n);
            let mut ub = Vec::with_capacity(n);
            for i in 0..n {
                lb.push(au[i] == bl[i] && bu[i] == al[i]);
                sg.push(asg[i] == bsg[i]);
                ub.push(al[i] <= bu[i] && bl[i] <= au[i]);
            }
            Some(ValueLane::Bool { lb, sg, ub })
        }
    }
}

/// `range_and` kernel over two boolean lanes (componentwise `&&`).
pub(crate) fn k_and(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Bool { lb: al, sg: asg, ub: au },
            LaneSlice::Bool { lb: bl, sg: bsg, ub: bu },
        ) => Some(ValueLane::Bool {
            lb: al.iter().zip(bl.iter()).map(|(&x, &y)| x && y).collect(),
            sg: asg.iter().zip(bsg.iter()).map(|(&x, &y)| x && y).collect(),
            ub: au.iter().zip(bu.iter()).map(|(&x, &y)| x && y).collect(),
        }),
        _ => None,
    }
}

/// `range_or` kernel (componentwise `||`).
pub(crate) fn k_or(a: &LaneSlice<'_>, b: &LaneSlice<'_>) -> Option<ValueLane> {
    match (a, b) {
        (
            LaneSlice::Bool { lb: al, sg: asg, ub: au },
            LaneSlice::Bool { lb: bl, sg: bsg, ub: bu },
        ) => Some(ValueLane::Bool {
            lb: al.iter().zip(bl.iter()).map(|(&x, &y)| x || y).collect(),
            sg: asg.iter().zip(bsg.iter()).map(|(&x, &y)| x || y).collect(),
            ub: au.iter().zip(bu.iter()).map(|(&x, &y)| x || y).collect(),
        }),
        _ => None,
    }
}

/// `range_not` kernel: negate and swap the bounds (`¬` is
/// antimonotone).
pub(crate) fn k_not(a: &LaneSlice<'_>) -> Option<ValueLane> {
    match a {
        LaneSlice::Bool { lb, sg, ub } => Some(ValueLane::Bool {
            lb: ub.iter().map(|&v| !v).collect(),
            sg: sg.iter().map(|&v| !v).collect(),
            ub: lb.iter().map(|&v| !v).collect(),
        }),
        _ => None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::expr::{range_add, range_eq, range_leq, range_lt, range_mul, range_neg, range_sub};

    fn lane_of(cells: &[RangeValue]) -> ValueLane {
        ValueLane::from_cells(cells.iter())
    }

    fn int_cells() -> Vec<RangeValue> {
        vec![
            RangeValue::range(1i64, 2i64, 3i64),
            RangeValue::range(-7i64, 0i64, 4i64),
            RangeValue::certain(Value::Int(9)),
            RangeValue::range(i64::MIN + 1, 0i64, i64::MAX - 1),
        ]
    }

    fn float_cells() -> Vec<RangeValue> {
        vec![
            RangeValue::range(1.5f64, 2.0f64, 3.25f64),
            RangeValue::range(-0.5f64, 0.0f64, 0.5f64),
            RangeValue::certain(Value::float(-9.75)),
            RangeValue::range(-1e300f64, 0.0f64, 1e300f64),
        ]
    }

    #[test]
    fn classification_picks_tightest_lane() {
        assert_eq!(lane_of(&int_cells()).tag(), LaneTag::Int);
        assert_eq!(lane_of(&float_cells()).tag(), LaneTag::Float);
        let bools =
            vec![RangeValue::certain(Value::Bool(true)), RangeValue::range(false, false, true)];
        assert_eq!(lane_of(&bools).tag(), LaneTag::Bool);
        // mixed numeric and sentinel cells force the boxed lane
        let mixed =
            vec![RangeValue::certain(Value::Int(1)), RangeValue::certain(Value::float(1.0))];
        assert_eq!(lane_of(&mixed).tag(), LaneTag::Boxed);
        let null = vec![RangeValue::unknown(Value::Int(0))];
        assert_eq!(lane_of(&null).tag(), LaneTag::Boxed);
    }

    #[test]
    fn roundtrip_preserves_cells() {
        for cells in [int_cells(), float_cells()] {
            let lane = lane_of(&cells);
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(lane.get(i), *c);
            }
            assert_eq!(lane.slice(1..3).get(0), cells[1]);
        }
    }

    /// Every kernel matches its scalar combinator cell for cell, across
    /// Int⊗Int, Float⊗Float, and mixed Int⊗Float lane pairs.
    #[test]
    fn kernels_match_combinators() {
        let ints = lane_of(&int_cells());
        let floats = lane_of(&float_cells());
        let pairs: Vec<(&ValueLane, &ValueLane)> =
            vec![(&ints, &ints), (&floats, &floats), (&ints, &floats), (&floats, &ints)];
        for (a, b) in pairs {
            let (sa, sb) = (a.as_slice(), b.as_slice());
            for i in 0..a.len() {
                let (ca, cb) = (a.get(i), b.get(i));
                if let Some(out) = k_add(&sa, &sb) {
                    assert_eq!(out.get(i), range_add(&ca, &cb).unwrap(), "add {ca} {cb}");
                }
                if let Some(out) = k_sub(&sa, &sb) {
                    assert_eq!(out.get(i), range_sub(&ca, &cb).unwrap(), "sub {ca} {cb}");
                }
                if let Some(out) = k_mul(&sa, &sb) {
                    assert_eq!(out.get(i), range_mul(&ca, &cb).unwrap(), "mul {ca} {cb}");
                }
                if let Some(out) = k_neg(&sa) {
                    assert_eq!(out.get(i), range_neg(&ca).unwrap(), "neg {ca}");
                }
                let out = k_leq(&sa, &sb).unwrap();
                assert_eq!(out.get(i), range_leq(&ca, &cb), "leq {ca} {cb}");
                let out = k_lt(&sa, &sb).unwrap();
                assert_eq!(out.get(i), range_lt(&ca, &cb), "lt {ca} {cb}");
                let out = k_eq(&sa, &sb).unwrap();
                assert_eq!(out.get(i), range_eq(&ca, &cb), "eq {ca} {cb}");
            }
        }
    }

    /// Arithmetic that would overflow i64 demotes instead of producing
    /// a wrong typed result (the scalar path float-promotes there).
    #[test]
    fn int_overflow_demotes() {
        let a = lane_of(&[RangeValue::certain(Value::Int(i64::MAX))]);
        let b = lane_of(&[RangeValue::certain(Value::Int(1))]);
        assert!(k_add(&a.as_slice(), &b.as_slice()).is_none());
        let m = lane_of(&[RangeValue::certain(Value::Int(i64::MIN))]);
        assert!(k_neg(&m.as_slice()).is_none());
        // i64::MIN as a *subtrahend* fails neg even when a - b fits
        let a2 = lane_of(&[RangeValue::certain(Value::Int(-1))]);
        assert!(k_sub(&a2.as_slice(), &m.as_slice()).is_none());
    }

    /// `-0.0` never escapes a float kernel (mirrors `F64::try_new`).
    #[test]
    fn float_kernels_canonicalize_negative_zero() {
        let a = lane_of(&[RangeValue::range(-1.0f64, 0.0f64, 1.0f64)]);
        let z = lane_of(&[RangeValue::certain(Value::float(0.0))]);
        let out = k_mul(&a.as_slice(), &z.as_slice()).unwrap();
        assert_eq!(out.get(0), RangeValue::certain(Value::float(0.0)));
        let out = k_neg(&z.as_slice()).unwrap();
        assert_eq!(out.get(0), RangeValue::certain(Value::float(0.0)));
    }

    #[test]
    fn bool_kernels_match() {
        use crate::expr::{range_and, range_not, range_or};
        let cells = [
            RangeValue::range(false, false, false),
            RangeValue::range(false, false, true),
            RangeValue::range(false, true, true),
            RangeValue::range(true, true, true),
        ];
        let lane = lane_of(&cells);
        let s = lane.as_slice();
        for i in 0..cells.len() {
            for j in 0..cells.len() {
                // pair lane: cell i on the left, cell j on the right
                let right = lane_of(&vec![cells[j].clone(); 4]);
                let sr = right.as_slice();
                let and = k_and(&s, &sr).unwrap();
                assert_eq!(and.get(i), range_and(&cells[i], &cells[j]).unwrap());
                let or = k_or(&s, &sr).unwrap();
                assert_eq!(or.get(i), range_or(&cells[i], &cells[j]).unwrap());
            }
            let not = k_not(&s).unwrap();
            assert_eq!(not.get(i), range_not(&cells[i]).unwrap());
        }
    }

    #[test]
    fn gather_and_splat() {
        let lane = lane_of(&int_cells());
        let g = lane.as_slice().gather(&[2, 0]);
        assert_eq!(g.get(0), lane.get(2));
        assert_eq!(g.get(1), lane.get(0));
        let s = ValueLane::splat(&RangeValue::certain(Value::str("x")), 3);
        assert_eq!(s.tag(), LaneTag::Boxed);
        assert_eq!(s.len(), 3);
        let s = ValueLane::splat(&RangeValue::certain(Value::Int(5)), 2);
        assert_eq!(s.tag(), LaneTag::Int);
    }

    #[test]
    fn lane_bytes_accounting() {
        let lane = lane_of(&int_cells());
        assert_eq!(lane.lane_bytes(), 3 * 8 * 4);
        let boxed =
            lane_of(&[RangeValue::certain(Value::str("abcd")), RangeValue::certain(Value::Int(1))]);
        let base = 2 * std::mem::size_of::<RangeValue>() as u64;
        assert_eq!(boxed.lane_bytes(), base + 3 * 4);
    }
}
