//! Execution governance: structured runtime faults, cooperative
//! cancellation, and resource budgets.
//!
//! The execution runtime (`audb_exec`) guarantees that any query either
//! completes, returns a structured error, or is cancelled — never
//! wedging the worker pool. The three primitives that carry that
//! contract live here (in `audb_core`, below the runtime) so the
//! query layer's error type can embed them without a dependency cycle:
//!
//! * [`ExecError`] — the structured runtime fault: a contained worker
//!   panic, a cancellation/deadline, or an exhausted resource budget;
//! * [`CancelToken`] — a shared run/cancelled/deadline flag checked
//!   cooperatively at morsel boundaries and inside batch row loops;
//! * [`Budget`] / [`BudgetSpec`] — a per-query cap on materialized rows
//!   and estimated bytes, charged by the operators that can expand an
//!   intermediate (join probes, pipeline breakers, reduce scatter).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Structured runtime faults
// ---------------------------------------------------------------------------

/// A structured execution-runtime fault. Every variant is a *contained*
/// failure: the pool's sibling workers drain cleanly, no mutex is
/// poisoned, and the same [`Executor`](../audb_exec) runs the next
/// query untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker panicked while producing `morsel`; the panic was caught
    /// at the morsel boundary and its payload captured.
    WorkerPanic {
        /// Index of the morsel whose producer panicked.
        morsel: usize,
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// carried verbatim).
        payload: String,
    },
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
    /// The query's wall-clock deadline passed (`AuConfig::timeout`).
    DeadlineExceeded,
    /// A resource budget was exhausted.
    BudgetExceeded {
        /// The charging site that tripped (e.g. `"join-probe"`,
        /// `"pipeline-chain"`, `"sharded-reduce"`).
        operator: &'static str,
        /// Which meter tripped: `"rows"` or `"bytes"`.
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// The total that the failed charge would have reached.
        attempted: u64,
    },
    /// A fault injected by the deterministic test harness
    /// (`audb_exec::faults`, feature `faults`).
    Injected {
        /// Sequence number of the executor entry the fault fired in.
        driver: usize,
        /// Morsel index the fault fired at.
        morsel: usize,
    },
}

impl ExecError {
    /// Is this a resource-governance verdict (cancellation, deadline,
    /// budget) rather than a producer failure? Governance verdicts are
    /// final: retrying (e.g. the compiled → interpreted degradation
    /// path) would only re-spend the exhausted resource.
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            ExecError::Cancelled | ExecError::DeadlineExceeded | ExecError::BudgetExceeded { .. }
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorkerPanic { morsel, payload } => {
                write!(f, "worker panicked in morsel {morsel}: {payload}")
            }
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ExecError::BudgetExceeded { operator, resource, limit, attempted } => {
                write!(
                    f,
                    "resource budget exceeded in {operator}: {attempted} {resource} > limit {limit}"
                )
            }
            ExecError::Injected { driver, morsel } => {
                write!(f, "injected fault at driver {driver} morsel {morsel}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Lets infallible-looking `String`-error producers (the runtime's own
/// unit tests) absorb runtime faults.
impl From<ExecError> for String {
    fn from(e: ExecError) -> String {
        e.to_string()
    }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

const STATE_RUN: u8 = 0;
const STATE_CANCELLED: u8 = 1;
const STATE_DEADLINE: u8 = 2;

#[derive(Debug)]
struct CancelInner {
    /// run / cancelled / deadline-exceeded. Monotonic: once non-zero it
    /// never returns to run, so a relaxed load suffices at check sites.
    state: AtomicU8,
    /// Wall-clock deadline; checked lazily at [`CancelToken::check`]
    /// sites and latched into `state` so later checks are one load.
    deadline: Option<Instant>,
}

/// A shared cancellation flag, checked cooperatively at morsel
/// boundaries and batch row loops. Cloning shares the flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; trips only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner { state: AtomicU8::new(STATE_RUN), deadline: None }),
        }
    }

    /// A token that additionally trips once `timeout` has elapsed.
    pub fn with_deadline_in(timeout: Duration) -> Self {
        // an unreachable deadline (overflowing Instant) means "no deadline"
        let deadline = Instant::now().checked_add(timeout);
        CancelToken { inner: Arc::new(CancelInner { state: AtomicU8::new(STATE_RUN), deadline }) }
    }

    /// Request cancellation. Idempotent; a deadline verdict that already
    /// latched wins (cancellation after the deadline changes nothing).
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            STATE_RUN,
            STATE_CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Has the token tripped (cancelled or past its deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The cooperative checkpoint: `Ok(())` while running, the
    /// structured verdict once tripped. Deadline expiry is detected
    /// here and latched, so the verdict is stable across checks.
    pub fn check(&self) -> Result<(), ExecError> {
        match self.inner.state.load(Ordering::Relaxed) {
            STATE_CANCELLED => return Err(ExecError::Cancelled),
            STATE_DEADLINE => return Err(ExecError::DeadlineExceeded),
            _ => {}
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                let _ = self.inner.state.compare_exchange(
                    STATE_RUN,
                    STATE_DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // re-read: a concurrent cancel() may have won the latch
                return match self.inner.state.load(Ordering::Relaxed) {
                    STATE_CANCELLED => Err(ExecError::Cancelled),
                    _ => Err(ExecError::DeadlineExceeded),
                };
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Resource budgets
// ---------------------------------------------------------------------------

/// The per-query resource limits: materialized rows and estimated bytes
/// across all charging operators. `u64::MAX` disables a meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Maximum rows materialized across all charging sites.
    pub max_rows: u64,
    /// Maximum estimated bytes materialized across all charging sites.
    pub max_bytes: u64,
}

impl BudgetSpec {
    /// Cap rows only.
    pub fn rows(max_rows: u64) -> Self {
        BudgetSpec { max_rows, max_bytes: u64::MAX }
    }

    /// Cap estimated bytes only.
    pub fn bytes(max_bytes: u64) -> Self {
        BudgetSpec { max_rows: u64::MAX, max_bytes }
    }

    /// No limits (meters still run; useful for overhead measurement).
    pub fn unlimited() -> Self {
        BudgetSpec { max_rows: u64::MAX, max_bytes: u64::MAX }
    }
}

#[derive(Debug)]
struct BudgetInner {
    spec: BudgetSpec,
    rows: AtomicU64,
    bytes: AtomicU64,
}

/// A live budget: the spec plus shared meters. Cloning shares the
/// meters, so every charging site of one query draws from one pool.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Budget {
    pub fn new(spec: BudgetSpec) -> Self {
        Budget {
            inner: Arc::new(BudgetInner {
                spec,
                rows: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
            }),
        }
    }

    pub fn spec(&self) -> BudgetSpec {
        self.inner.spec
    }

    /// Rows charged so far.
    pub fn rows_used(&self) -> u64 {
        self.inner.rows.load(Ordering::Relaxed)
    }

    /// Estimated bytes charged so far.
    pub fn bytes_used(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Charge `rows` materialized rows / `bytes` estimated bytes against
    /// the budget on behalf of `operator`. The first charge that pushes
    /// a meter past its limit reports [`ExecError::BudgetExceeded`]
    /// naming that operator. Meters saturate, so a verdict is stable:
    /// once exceeded, every later charge fails too.
    pub fn charge(&self, operator: &'static str, rows: u64, bytes: u64) -> Result<(), ExecError> {
        let total_rows = saturating_fetch_add(&self.inner.rows, rows);
        if total_rows > self.inner.spec.max_rows {
            return Err(ExecError::BudgetExceeded {
                operator,
                resource: "rows",
                limit: self.inner.spec.max_rows,
                attempted: total_rows,
            });
        }
        let total_bytes = saturating_fetch_add(&self.inner.bytes, bytes);
        if total_bytes > self.inner.spec.max_bytes {
            return Err(ExecError::BudgetExceeded {
                operator,
                resource: "bytes",
                limit: self.inner.spec.max_bytes,
                attempted: total_bytes,
            });
        }
        Ok(())
    }
}

/// `fetch_add` that saturates at `u64::MAX` instead of wrapping (a
/// wrapped meter would silently re-admit an over-budget query).
fn saturating_fetch_add(meter: &AtomicU64, delta: u64) -> u64 {
    let mut current = meter.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(delta);
        match meter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(observed) => current = observed,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_trips_once() {
        let t = CancelToken::new();
        assert_eq!(t.check(), Ok(()));
        t.cancel();
        assert_eq!(t.check(), Err(ExecError::Cancelled));
        // idempotent
        t.cancel();
        assert_eq!(t.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn deadline_token_latches_deadline_exceeded() {
        let t = CancelToken::with_deadline_in(Duration::ZERO);
        assert_eq!(t.check(), Err(ExecError::DeadlineExceeded));
        // cancel after the deadline latched does not change the verdict
        t.cancel();
        assert_eq!(t.check(), Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let t = CancelToken::with_deadline_in(Duration::from_secs(3600));
        assert_eq!(t.check(), Ok(()));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn budget_rows_trip_names_operator() {
        let b = Budget::new(BudgetSpec::rows(10));
        assert_eq!(b.charge("join-probe", 6, 100), Ok(()));
        assert_eq!(b.charge("join-probe", 4, 100), Ok(()));
        let err = b.charge("sharded-reduce", 1, 0).unwrap_err();
        assert_eq!(
            err,
            ExecError::BudgetExceeded {
                operator: "sharded-reduce",
                resource: "rows",
                limit: 10,
                attempted: 11
            }
        );
        // verdict is stable: the meter stays past the limit
        assert!(b.charge("join-probe", 0, 0).is_err());
    }

    #[test]
    fn budget_bytes_trip() {
        let b = Budget::new(BudgetSpec::bytes(1000));
        assert_eq!(b.charge("pipeline-chain", 5, 999), Ok(()));
        let err = b.charge("pipeline-chain", 5, 2).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { resource: "bytes", .. }));
    }

    #[test]
    fn budget_meters_saturate() {
        let b = Budget::new(BudgetSpec::unlimited());
        assert_eq!(b.charge("x", u64::MAX, u64::MAX), Ok(()));
        assert_eq!(b.charge("x", u64::MAX, 1), Ok(()));
        assert_eq!(b.rows_used(), u64::MAX);
    }

    #[test]
    fn resource_limit_classification() {
        assert!(ExecError::Cancelled.is_resource_limit());
        assert!(ExecError::DeadlineExceeded.is_resource_limit());
        assert!(ExecError::BudgetExceeded {
            operator: "x",
            resource: "rows",
            limit: 0,
            attempted: 1
        }
        .is_resource_limit());
        assert!(!ExecError::WorkerPanic { morsel: 0, payload: String::new() }.is_resource_limit());
        assert!(!ExecError::Injected { driver: 0, morsel: 0 }.is_resource_limit());
    }
}
