//! The universal, totally ordered value domain `D` (paper, Section 3).
//!
//! The paper assumes "a universal domain of attribute values D" together
//! with "a total order over the elements of D".  We realise this with a
//! dynamically typed [`Value`] enum whose `Ord` implementation is a total
//! order across *all* variants: the two sentinels [`Value::MinVal`] and
//! [`Value::MaxVal`] are the least and greatest elements of the domain and
//! are what an AU-DB uses to say "this attribute could be anything"
//! (e.g. the `null` size of Sacramento in Figure 1 of the paper).

use std::cmp::Ordering;
use std::fmt;

use crate::error::EvalError;

/// A 64-bit float with a *total* order, no NaN, and canonical zero.
///
/// Range bounds require a total order; IEEE-754 `f64` only has a partial
/// one.  `F64` refuses NaN at construction and normalizes `-0.0` to `0.0`
/// so that `Eq`/`Hash`/`Ord` agree.
#[derive(Debug, Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wrap a float. Panics on NaN (NaN never enters the domain; use
    /// [`F64::try_new`] when the input is untrusted).
    #[allow(clippy::expect_used)] // the panic is this constructor's documented contract
    pub fn new(v: f64) -> Self {
        Self::try_new(v).expect("NaN is not a member of the value domain")
    }

    /// Fallible constructor used by expression evaluation.
    pub fn try_new(v: f64) -> Result<Self, EvalError> {
        if v.is_nan() {
            return Err(EvalError::NotANumber);
        }
        // Canonicalize -0.0 so Hash and Eq agree.
        Ok(F64(if v == 0.0 { 0.0 } else { v }))
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

/// A value from the universal domain `D`.
///
/// Total order (see module docs):
/// `MinVal < Null < Bool(false) < Bool(true) < numeric < Str < MaxVal`,
/// where `Int` and `Float` are compared numerically against each other
/// (ties broken by kind, `Int` first, to keep `Ord` consistent with `Eq`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Least element of the domain ("-∞"); lower bound of a completely
    /// unknown attribute value.
    MinVal,
    /// SQL-style missing value. AU-DB *construction* turns nulls into
    /// `[MinVal / sg / MaxVal]` ranges; inside the engine `Null` behaves
    /// as an ordinary (small) domain element.
    Null,
    Bool(bool),
    Int(i64),
    Float(F64),
    Str(String),
    /// Greatest element of the domain ("+∞").
    MaxVal,
}

impl Value {
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v))
    }

    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Rank of the variant in the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::MinVal => 0,
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::MaxVal => 5,
        }
    }

    /// Rank of the variant in the cross-type total order (`MinVal`
    /// first, `MaxVal` last; `Int` and `Float` share a rank, with
    /// numeric ties ordering `Int` first). Exposed for
    /// order-preserving key encoders — a packed byte key must lead
    /// with exactly this rank to sort like [`Value::total_cmp`].
    pub fn order_rank(&self) -> u8 {
        self.type_rank()
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric view; `None` for non-numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::type_error("bool", other)),
        }
    }

    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(EvalError::type_error("int", other)),
        }
    }

    /// "Database equality": `Int 2 == Float 2.0` holds, unlike the
    /// structural `PartialEq`. Used by `Expr::Eq`.
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == b.get(),
            (Value::Float(a), Value::Int(b)) => a.get() == (*b as f64),
            (a, b) => a == b,
        }
    }

    /// Comparison in the domain's total order (used for range bounds and
    /// for `<`, `<=`, ... predicates).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::MinVal, Value::MinVal)
            | (Value::Null, Value::Null)
            | (Value::MaxVal, Value::MaxVal) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.cmp(b),
            (Value::Int(a), Value::Float(b)) => match (*a as f64).total_cmp(&b.get()) {
                // Numeric tie: Int sorts before Float to keep Ord
                // consistent with the structural Eq.
                Ordering::Equal => Ordering::Less,
                o => o,
            },
            (Value::Float(a), Value::Int(b)) => match a.get().total_cmp(&(*b as f64)) {
                Ordering::Equal => Ordering::Greater,
                o => o,
            },
            _ => unreachable!("same rank covered above"),
        }
    }

    pub fn min_of(a: Value, b: Value) -> Value {
        if a.total_cmp(&b) == Ordering::Greater {
            b
        } else {
            a
        }
    }

    pub fn max_of(a: Value, b: Value) -> Value {
        if a.total_cmp(&b) == Ordering::Less {
            b
        } else {
            a
        }
    }

    /// Sign of a numeric or sentinel value: -1, 0, or 1.
    fn signum(&self) -> Result<i8, EvalError> {
        match self {
            Value::MinVal => Ok(-1),
            Value::MaxVal => Ok(1),
            Value::Int(i) => Ok(i.signum() as i8),
            Value::Float(f) => {
                let v = f.get();
                Ok(if v > 0.0 {
                    1
                } else if v < 0.0 {
                    -1
                } else {
                    0
                })
            }
            other => Err(EvalError::type_error("numeric", other)),
        }
    }

    /// Addition with saturating sentinel arithmetic:
    /// `MaxVal + finite = MaxVal`; `MaxVal + MinVal` is indeterminate.
    /// `Null` propagates through arithmetic (SQL-style), so aggregate
    /// results over possibly-empty inputs compose with further queries.
    pub fn add(&self, other: &Value) -> Result<Value, EvalError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::MaxVal, Value::MinVal) | (Value::MinVal, Value::MaxVal) => {
                Err(EvalError::IndeterminateSentinel)
            }
            (Value::MaxVal, _) | (_, Value::MaxVal) => Ok(Value::MaxVal),
            (Value::MinVal, _) | (_, Value::MinVal) => Ok(Value::MinVal),
            (Value::Int(a), Value::Int(b)) => Ok(match a.checked_add(*b) {
                Some(s) => Value::Int(s),
                None => Value::float(*a as f64 + *b as f64),
            }),
            #[allow(clippy::unwrap_used)] // is_numeric guarantees as_f64 succeeds
            (a, b) if a.is_numeric() && b.is_numeric() => {
                Ok(Value::Float(F64::try_new(a.as_f64().unwrap() + b.as_f64().unwrap())?))
            }
            (a, b) => Err(EvalError::binop_type_error("+", a, b)),
        }
    }

    pub fn sub(&self, other: &Value) -> Result<Value, EvalError> {
        self.add(&other.neg()?)
    }

    pub fn neg(&self) -> Result<Value, EvalError> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::MaxVal => Ok(Value::MinVal),
            Value::MinVal => Ok(Value::MaxVal),
            Value::Int(i) => Ok(match i.checked_neg() {
                Some(n) => Value::Int(n),
                None => Value::float(-(*i as f64)),
            }),
            Value::Float(f) => Ok(Value::float(-f.get())),
            other => Err(EvalError::type_error("numeric", other)),
        }
    }

    /// Multiplication with sign-aware sentinel rules (`MinVal * negative =
    /// MaxVal`, `sentinel * 0 = 0`, ...), needed when multiplying range
    /// bounds that may be domain-wide.
    pub fn mul(&self, other: &Value) -> Result<Value, EvalError> {
        let sentinel = |sign_self: i8, other: &Value| -> Result<Value, EvalError> {
            let s = other.signum()? as i32 * sign_self as i32;
            Ok(match s {
                0 => Value::Int(0),
                x if x > 0 => Value::MaxVal,
                _ => Value::MinVal,
            })
        };
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::MaxVal, b) => sentinel(1, b),
            (a, Value::MaxVal) => sentinel(1, a),
            (Value::MinVal, b) => sentinel(-1, b),
            (a, Value::MinVal) => sentinel(-1, a),
            (Value::Int(a), Value::Int(b)) => Ok(match a.checked_mul(*b) {
                Some(p) => Value::Int(p),
                None => Value::float(*a as f64 * *b as f64),
            }),
            #[allow(clippy::unwrap_used)] // is_numeric guarantees as_f64 succeeds
            (a, b) if a.is_numeric() && b.is_numeric() => {
                Ok(Value::Float(F64::try_new(a.as_f64().unwrap() * b.as_f64().unwrap())?))
            }
            (a, b) => Err(EvalError::binop_type_error("*", a, b)),
        }
    }

    /// Division; always produces a float. Division by zero is an error
    /// (the paper's `1/e` is undefined when `e` may be 0).
    pub fn div(&self, other: &Value) -> Result<Value, EvalError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (_, Value::Int(0)) => Err(EvalError::DivisionByZero),
            (_, Value::Float(f)) if f.get() == 0.0 => Err(EvalError::DivisionByZero),
            (Value::MaxVal, b) => {
                let s = b.signum()?;
                Ok(if s >= 0 { Value::MaxVal } else { Value::MinVal })
            }
            (Value::MinVal, b) => {
                let s = b.signum()?;
                Ok(if s >= 0 { Value::MinVal } else { Value::MaxVal })
            }
            (a, Value::MaxVal) | (a, Value::MinVal) => {
                a.signum()?; // type check
                Ok(Value::float(0.0))
            }
            #[allow(clippy::unwrap_used)] // is_numeric guarantees as_f64 succeeds
            (a, b) if a.is_numeric() && b.is_numeric() => {
                Ok(Value::Float(F64::try_new(a.as_f64().unwrap() / b.as_f64().unwrap())?))
            }
            (a, b) => Err(EvalError::binop_type_error("/", a, b)),
        }
    }

    /// Multiply a value by a bag multiplicity (semimodule action
    /// `k *_{N,SUM} m`, Section 9.2). Multiplicities beyond `i64::MAX`
    /// promote to float instead of wrapping to a *negative* factor
    /// (`u64::MAX as i64 == -1` would silently flip aggregate bounds) —
    /// the same promotion `Int` arithmetic overflow already takes.
    ///
    /// Caveat shared with every float promotion in this domain (and
    /// with the relational encoding, whose multiplicity columns are
    /// `Int`-typed): `as f64` rounds to nearest, so results beyond
    /// 2^53 are exact only to ~1 ULP — not directionally rounded per
    /// bound.
    pub fn mul_count(&self, k: u64) -> Result<Value, EvalError> {
        match i64::try_from(k) {
            Ok(i) => self.mul(&Value::Int(i)),
            Err(_) => self.mul(&Value::float(k as f64)),
        }
    }

    /// Canonical hash-join key: integers collapse to their float
    /// representation so that `value_eq`-equal values (`Int 2` and
    /// `Float 2.0`) produce identical keys. Exact for integers within
    /// f64's exact-integer range, which join keys are assumed to stay in
    /// (shared by the deterministic and AU join paths).
    pub fn join_key(&self) -> Value {
        match self {
            Value::Int(i) => Value::float(*i as f64),
            other => other.clone(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::MinVal => write!(f, "-inf"),
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{}", v.get()),
            Value::Str(s) => write!(f, "{s}"),
            Value::MaxVal => write!(f, "+inf"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn total_order_across_types() {
        let vs = vec![
            Value::MinVal,
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-5),
            Value::Int(3),
            Value::float(3.5),
            Value::str("a"),
            Value::str("b"),
            Value::MaxVal,
        ];
        for i in 0..vs.len() {
            for j in 0..vs.len() {
                assert_eq!(vs[i].total_cmp(&vs[j]), i.cmp(&j), "{:?} vs {:?}", vs[i], vs[j]);
            }
        }
    }

    #[test]
    fn int_float_numeric_order() {
        assert_eq!(Value::Int(2).total_cmp(&Value::float(2.5)), Ordering::Less);
        assert_eq!(Value::float(2.5).total_cmp(&Value::Int(3)), Ordering::Less);
        // numeric tie: Int before Float, but value_eq treats them equal
        assert_eq!(Value::Int(2).total_cmp(&Value::float(2.0)), Ordering::Less);
        assert!(Value::Int(2).value_eq(&Value::float(2.0)));
    }

    #[test]
    fn ord_consistent_with_eq() {
        let a = Value::Int(2);
        let b = Value::float(2.0);
        assert_ne!(a, b);
        assert_ne!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn arithmetic_basic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).mul(&Value::Int(3)).unwrap(), Value::Int(6));
        assert_eq!(Value::Int(2).add(&Value::float(0.5)).unwrap(), Value::float(2.5));
        assert_eq!(Value::Int(7).sub(&Value::Int(9)).unwrap(), Value::Int(-2));
        assert_eq!(Value::Int(1).div(&Value::Int(4)).unwrap(), Value::float(0.25));
    }

    #[test]
    fn arithmetic_overflow_promotes() {
        let big = Value::Int(i64::MAX);
        let r = big.add(&Value::Int(1)).unwrap();
        assert!(matches!(r, Value::Float(_)));
        let r = big.mul(&Value::Int(2)).unwrap();
        assert!(matches!(r, Value::Float(_)));
    }

    #[test]
    fn sentinel_arithmetic() {
        assert_eq!(Value::MaxVal.add(&Value::Int(5)).unwrap(), Value::MaxVal);
        assert_eq!(Value::MinVal.add(&Value::Int(5)).unwrap(), Value::MinVal);
        assert!(Value::MaxVal.add(&Value::MinVal).is_err());
        assert_eq!(Value::MaxVal.mul(&Value::Int(-2)).unwrap(), Value::MinVal);
        assert_eq!(Value::MinVal.mul(&Value::Int(-2)).unwrap(), Value::MaxVal);
        assert_eq!(Value::MaxVal.mul(&Value::Int(0)).unwrap(), Value::Int(0));
        assert_eq!(Value::MaxVal.neg().unwrap(), Value::MinVal);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Int(1).div(&Value::float(0.0)).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(F64::try_new(f64::NAN).is_err());
        assert_eq!(F64::new(-0.0), F64::new(0.0));
    }

    #[test]
    fn mul_count_scales() {
        assert_eq!(Value::Int(30).mul_count(2).unwrap(), Value::Int(60));
        assert_eq!(Value::float(1.5).mul_count(4).unwrap(), Value::float(6.0));
        assert_eq!(Value::MaxVal.mul_count(0).unwrap(), Value::Int(0));
        assert_eq!(Value::MaxVal.mul_count(3).unwrap(), Value::MaxVal);
    }

    #[test]
    fn type_errors_surface() {
        assert!(Value::str("x").add(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).mul(&Value::Int(1)).is_err());
        assert_eq!(Value::Null.neg().unwrap(), Value::Null); // Null propagates
    }
}
