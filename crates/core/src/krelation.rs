//! Minimal generic K-relations (Section 3.1): positive relational algebra
//! over an arbitrary commutative semiring, used to validate the semiring
//! framework (homomorphisms commute with `RA+` queries) independently of
//! the bag-specialized engine in `audb-query`.

use crate::error::EvalError;
use crate::expr::Expr;
use crate::semiring::Semiring;
use crate::value::Value;

/// A K-relation: tuples annotated with semiring elements. Tuples absent
/// from `rows` are implicitly annotated with `0_K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KRelation<K: Semiring> {
    pub arity: usize,
    pub rows: Vec<(Vec<Value>, K)>,
}

impl<K: Semiring> KRelation<K> {
    pub fn new(arity: usize) -> Self {
        KRelation { arity, rows: Vec::new() }
    }

    pub fn from_rows(arity: usize, rows: Vec<(Vec<Value>, K)>) -> Self {
        let mut r = KRelation { arity, rows };
        r.normalize();
        r
    }

    /// Merge duplicate tuples with `+_K` and drop zero annotations, so the
    /// relation is a function from tuples to annotations.
    pub fn normalize(&mut self) {
        let mut merged: Vec<(Vec<Value>, K)> = Vec::with_capacity(self.rows.len());
        'outer: for (t, k) in self.rows.drain(..) {
            for (t2, k2) in merged.iter_mut() {
                if *t2 == t {
                    *k2 = k2.plus(&k);
                    continue 'outer;
                }
            }
            merged.push((t, k));
        }
        merged.retain(|(_, k)| !k.is_zero());
        self.rows = merged;
    }

    /// `R(t)`: the annotation of a tuple.
    pub fn annotation(&self, t: &[Value]) -> K {
        self.rows
            .iter()
            .find(|(t2, _)| t2.as_slice() == t)
            .map(|(_, k)| k.clone())
            .unwrap_or_else(K::zero)
    }

    /// Selection `σ_θ(R)(t) = R(t) · θ(t)` with `θ(t) ∈ {0_K, 1_K}`.
    pub fn select(&self, theta: &Expr) -> Result<Self, EvalError> {
        let mut rows = Vec::new();
        for (t, k) in &self.rows {
            if theta.eval_bool(t)? {
                rows.push((t.clone(), k.clone()));
            }
        }
        Ok(KRelation::from_rows(self.arity, rows))
    }

    /// Projection `π_U(R)(t) = Σ_{t = t'[U]} R(t')`.
    pub fn project(&self, cols: &[usize]) -> Self {
        let rows = self
            .rows
            .iter()
            .map(|(t, k)| (cols.iter().map(|c| t[*c].clone()).collect(), k.clone()))
            .collect();
        KRelation::from_rows(cols.len(), rows)
    }

    /// Natural product (cross product with annotation `·_K`).
    pub fn join(&self, other: &Self) -> Self {
        let mut rows = Vec::new();
        for (t1, k1) in &self.rows {
            for (t2, k2) in &other.rows {
                let mut t = t1.clone();
                t.extend(t2.iter().cloned());
                rows.push((t, k1.times(k2)));
            }
        }
        KRelation::from_rows(self.arity + other.arity, rows)
    }

    /// Union `(R1 ∪ R2)(t) = R1(t) + R2(t)`.
    pub fn union(&self, other: &Self) -> Self {
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        KRelation::from_rows(self.arity, rows)
    }

    /// Lift a semiring homomorphism to the relation (apply to every
    /// annotation).
    pub fn map_annotations<K2: Semiring>(&self, h: impl Fn(&K) -> K2) -> KRelation<K2> {
        KRelation::from_rows(self.arity, self.rows.iter().map(|(t, k)| (t.clone(), h(k))).collect())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::semiring::PolyNX;
    use std::collections::BTreeMap;

    fn iv(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn bag_semantics_basics() {
        let r = KRelation::<u64>::from_rows(1, vec![(iv(&[1]), 2), (iv(&[2]), 3), (iv(&[1]), 1)]);
        assert_eq!(r.annotation(&iv(&[1])), 3);
        let s = r.select(&col(0).eq(lit(1i64))).unwrap();
        assert_eq!(s.annotation(&iv(&[1])), 3);
        assert_eq!(s.annotation(&iv(&[2])), 0);
    }

    #[test]
    fn projection_sums() {
        let r = KRelation::<u64>::from_rows(
            2,
            vec![(iv(&[1, 10]), 2), (iv(&[1, 20]), 3), (iv(&[2, 10]), 1)],
        );
        let p = r.project(&[0]);
        assert_eq!(p.annotation(&iv(&[1])), 5);
        assert_eq!(p.annotation(&iv(&[2])), 1);
    }

    #[test]
    fn join_multiplies() {
        let r = KRelation::<u64>::from_rows(1, vec![(iv(&[1]), 2)]);
        let s = KRelation::<u64>::from_rows(1, vec![(iv(&[7]), 3)]);
        let j = r.join(&s);
        assert_eq!(j.annotation(&iv(&[1, 7])), 6);
    }

    /// Queries commute with semiring homomorphisms (Section 3.1):
    /// `h(Q(D)) = Q(h(D))` for an `RA+` query over `N[X]` and the
    /// evaluation homomorphism into `N`.
    #[test]
    fn homomorphisms_commute_with_queries() {
        let x1 = PolyNX::var("x1");
        let x2 = PolyNX::var("x2");
        let x3 = PolyNX::var("x3");
        let r = KRelation::<PolyNX>::from_rows(
            2,
            vec![
                (iv(&[1, 10]), x1.clone()),
                (iv(&[1, 20]), x2.clone()),
                (iv(&[2, 20]), x3.clone()),
            ],
        );
        let assignment = BTreeMap::from([
            ("x1".to_string(), 2u64),
            ("x2".to_string(), 0u64),
            ("x3".to_string(), 5u64),
        ]);
        let h = |p: &PolyNX| p.eval_hom(&assignment);

        let q = |r: &KRelation<PolyNX>| -> KRelation<PolyNX> {
            r.select(&col(1).geq(lit(10i64))).unwrap().join(r).project(&[0, 3])
        };
        let q_n = |r: &KRelation<u64>| -> KRelation<u64> {
            r.select(&col(1).geq(lit(10i64))).unwrap().join(r).project(&[0, 3])
        };

        let lhs = q(&r).map_annotations(h);
        let rhs = q_n(&r.map_annotations(h));
        assert_eq!(lhs, rhs);
    }
}
