//! Static verification of compiled [`Program`]s.
//!
//! The compiled expression backend (PR 5) is ~1.2k lines of hand-rolled
//! lowering with explicit jump targets, direct operand addressing, and a
//! shared register file; until now its only correctness evidence was
//! differential testing against the tree-walking interpreters. This
//! module turns "tested" into "verified by construction" with a two-tier
//! static analyzer:
//!
//! * **Tier A** ([`check_structure`]): a linear pass plus forward
//!   dataflow over the op array. Checks span/table consistency, const
//!   pool integrity, mode separation, register-file and const-pool
//!   bounds, jump-target validity (forward-only, in-bounds, confined to
//!   the emitting node's op region — no jump into the middle of a merged
//!   `If` region), subtree-extent contiguity (ops of one source node
//!   never interleave with a disjoint subtree's ops), register
//!   init-before-use on *every* path, single-assignment in range mode,
//!   `CheckCol`-dominates-every-`Col`-operand coverage, exit
//!   reachability, and output validity. Runs unconditionally at
//!   lowering time ([`Program::compile_range`] and friends panic on a
//!   Tier A failure — a freshly lowered program that fails is a lowerer
//!   bug) and is the gate a cached or deserialized program must pass
//!   before it may execute.
//!
//! * **Tier B** ([`check_abstract`]): translation validation plus
//!   abstract interpretation. Translation validation re-lowers the
//!   program's retained sources through the same lowerer and compares
//!   op-for-op — any non-behavior-preserving corruption of the op
//!   stream, spans, constant pool, or outputs diverges. The abstract
//!   interpreter then symbolically executes the program over a type ×
//!   interval lattice ([`Abs`]: type tag × `[lo,hi]` band with
//!   sg-containment) and proves every op's output satisfies the AU-DB
//!   triple invariant `lb ≤ sg ≤ ub` given well-formed inputs —
//!   constant subcomputations are folded through the *same* combinators
//!   the runtime uses, so the proof covers the real semantics, not a
//!   model of them. Statically decidable hazards are reported as
//!   advisory [`ProgramLint`]s (a certainly-erroring `Div`, a branch
//!   condition that is abstractly constant, unreachable ops, dead
//!   registers).
//!
//! Both tiers emit structured diagnostics naming the exact op index and
//! the source [`Expr`] node (via the per-op spans the lowerer records).
//!
//! The verifier itself is proven by a mutation harness ([`mutate`]):
//! random single-op corruptions of corpus-lowered programs (retargeted
//! jumps, dropped `CheckCol`s, swapped operands, clobbered registers,
//! …) must be caught by Tier A/B or be behavior-preserving under the
//! differential oracle.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::error::EvalError;
use crate::expr::{
    self, range_add, range_and, range_div, range_eq, range_if_merge, range_leq, range_lt,
    range_mul, range_neg, range_not, range_or, range_sub, range_uncertain,
};
use crate::program::{Mode, Op, Program, Reg, Src};
use crate::range::RangeValue;
use crate::value::Value;
use crate::Expr;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A structural verification failure: the program must not execute.
///
/// Carries the offending op index and, when the span tables are intact
/// enough to resolve it, the global preorder id and rendering of the
/// source [`Expr`] node that emitted the op.
#[must_use = "a verification failure means the program must not execute"]
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub kind: VerifyErrorKind,
    /// Offending op index, when the failure is attributable to one op.
    pub op: Option<usize>,
    /// Global preorder id of the source node behind the op.
    pub node: Option<u32>,
    /// Rendering of that source node.
    pub source: Option<String>,
}

/// What [`check_structure`] / [`check_abstract`] rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyErrorKind {
    /// `spans` and `ops` disagree in length.
    SpanTableMismatch { ops: usize, spans: usize },
    /// `node_offsets` does not describe `srcs` (length, base offsets, or
    /// the total-node-count sentinel).
    NodeTableInvalid { detail: String },
    /// An op's span is not a valid global preorder id.
    SpanOutOfBounds { span: u32, nodes: u32 },
    /// `consts_range[idx]` is not the certain lift of `consts[idx]`.
    ConstPoolMismatch { idx: usize },
    /// An op of the other lowering mode.
    ForeignOp { mode: Mode },
    /// A register operand or destination past the register file.
    RegisterOutOfBounds { reg: Reg, nregs: usize },
    /// A constant operand past the pool.
    ConstOutOfBounds { idx: u32, len: usize },
    /// A jump target past one-past-the-end.
    JumpOutOfBounds { to: u32, len: usize },
    /// A jump that does not move strictly forward (termination).
    JumpNotForward { to: u32 },
    /// A jump escaping its emitting node's op region — e.g. into the
    /// middle of a sibling `If` arm.
    JumpEscapesRegion { to: u32, region_end: usize },
    /// Ops of one source subtree interleave with a disjoint subtree's.
    SubtreeInterleaved,
    /// Range mode rewrote a register (range programs are
    /// single-assignment by construction).
    RegisterRewritten { reg: Reg },
    /// A register read on some path before any write.
    UninitRegisterRead { reg: Reg },
    /// A `Col` operand not dominated by a `CheckCol`/`LoadCol` probe of
    /// the same column.
    UncheckedColumnRead { col: u32 },
    /// Program exit is unreachable.
    ExitUnreachable,
    /// `outputs` and `srcs` disagree in length.
    OutputArityMismatch { outputs: usize, srcs: usize },
    /// An output reads a register that may be uninitialized at exit.
    OutputUninit { output: usize, reg: Reg },
    /// An output reads a column no path has checked.
    OutputUnchecked { output: usize, col: u32 },
    /// An output constant past the pool.
    OutputConstOutOfBounds { output: usize, idx: u32 },
    /// Tier B: re-lowering the retained sources produced a different
    /// program — the op stream does not implement its sources.
    TranslationDivergence { detail: String },
    /// Tier B: an op's abstract output violates `lb ≤ sg ≤ ub`.
    BoundViolation { detail: String },
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyErrorKind::*;
        match self {
            SpanTableMismatch { ops, spans } => {
                write!(f, "span table has {spans} entries for {ops} ops")
            }
            NodeTableInvalid { detail } => write!(f, "node offset table invalid: {detail}"),
            SpanOutOfBounds { span, nodes } => {
                write!(f, "span {span} out of bounds ({nodes} source nodes)")
            }
            ConstPoolMismatch { idx } => {
                write!(f, "consts_range[{idx}] is not the certain lift of consts[{idx}]")
            }
            ForeignOp { mode } => write!(f, "op from the other lowering mode in a {mode:?} program"),
            RegisterOutOfBounds { reg, nregs } => {
                write!(f, "register r{reg} out of bounds (register file holds {nregs})")
            }
            ConstOutOfBounds { idx, len } => {
                write!(f, "constant #{idx} out of bounds (pool holds {len})")
            }
            JumpOutOfBounds { to, len } => {
                write!(f, "jump target {to} out of bounds ({len} ops)")
            }
            JumpNotForward { to } => write!(f, "jump target {to} is not strictly forward"),
            JumpEscapesRegion { to, region_end } => write!(
                f,
                "jump target {to} escapes the emitting node's op region (which ends at {region_end})"
            ),
            SubtreeInterleaved => write!(f, "ops of disjoint source subtrees interleave"),
            RegisterRewritten { reg } => {
                write!(f, "register r{reg} written twice in a single-assignment range program")
            }
            UninitRegisterRead { reg } => {
                write!(f, "register r{reg} may be read before initialization")
            }
            UncheckedColumnRead { col } => {
                write!(f, "column {col} read without a dominating bounds probe")
            }
            ExitUnreachable => write!(f, "program exit is unreachable"),
            OutputArityMismatch { outputs, srcs } => {
                write!(f, "{outputs} outputs for {srcs} source expressions")
            }
            OutputUninit { output, reg } => {
                write!(f, "output {output} reads register r{reg}, possibly uninitialized at exit")
            }
            OutputUnchecked { output, col } => {
                write!(f, "output {output} reads column {col} without a bounds probe on some path")
            }
            OutputConstOutOfBounds { output, idx } => {
                write!(f, "output {output} reads constant #{idx} past the pool")
            }
            TranslationDivergence { detail } => {
                write!(f, "program diverges from the lowering of its sources: {detail}")
            }
            BoundViolation { detail } => {
                write!(f, "abstract output violates lb \u{2264} sg \u{2264} ub: {detail}")
            }
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.op, self.node, &self.source) {
            (Some(op), Some(nid), Some(src)) => {
                write!(f, "op {op} (node {nid}: `{src}`): {}", self.kind)
            }
            (Some(op), Some(nid), None) => write!(f, "op {op} (node {nid}): {}", self.kind),
            (Some(op), ..) => write!(f, "op {op}: {}", self.kind),
            _ => write!(f, "{}", self.kind),
        }
    }
}

impl std::error::Error for VerifyError {}

impl VerifyError {
    /// A failure attributable to op `op` of `p`; resolves the source
    /// node through the span tables when they are intact.
    fn at(p: &Program, op: usize, kind: VerifyErrorKind) -> VerifyError {
        let node = p.spans.get(op).copied();
        let source = node.and_then(|n| p.node_expr(n)).map(|e| e.to_string());
        VerifyError { kind, op: Some(op), node, source }
    }

    /// A program-level failure not tied to one op.
    fn global(kind: VerifyErrorKind) -> VerifyError {
        VerifyError { kind, op: None, node: None, source: None }
    }
}

/// An advisory Tier B finding: the program is sound to execute but
/// contains a statically decidable hazard.
#[must_use = "lints are the verifier's findings; dropping them hides hazards"]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramLint {
    pub kind: LintKind,
    /// Op index the hazard anchors to.
    pub op: usize,
    /// Global preorder id of the source node behind the op.
    pub node: u32,
    /// Rendering of that source node.
    pub source: String,
}

/// Statically decidable hazards reported by Tier B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// A division whose abstract divisor band certainly spans (or is)
    /// zero — the op errors on every row that reaches it.
    CertainDivByZero,
    /// An op whose abstract operand types certainly error (e.g.
    /// arithmetic on a boolean, a numeric branch condition).
    CertainTypeError,
    /// A non-literal branch / `CheckBool3` condition that is abstractly
    /// constant — the other arm is dead on every row.
    ConstantCondition,
    /// A det-mode op no jump path can reach.
    UnreachableOp,
    /// A range-mode register written but never read nor output.
    DeadRegister,
}

impl LintKind {
    /// Stable machine name (report JSON, CI gates).
    pub fn name(self) -> &'static str {
        match self {
            LintKind::CertainDivByZero => "certain_div_by_zero",
            LintKind::CertainTypeError => "certain_type_error",
            LintKind::ConstantCondition => "constant_condition",
            LintKind::UnreachableOp => "unreachable_op",
            LintKind::DeadRegister => "dead_register",
        }
    }
}

impl fmt::Display for ProgramLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {} (node {}: `{}`): {}", self.op, self.node, self.source, self.kind.name())
    }
}

fn lint(p: &Program, op: usize, kind: LintKind) -> ProgramLint {
    let node = p.spans.get(op).copied().unwrap_or(0);
    let source = p.node_expr(node).map(|e| e.to_string()).unwrap_or_default();
    ProgramLint { kind, op, node, source }
}

// ---------------------------------------------------------------------------
// Op shape helpers
// ---------------------------------------------------------------------------

/// Which mode an op belongs to (`None`: shared).
fn op_mode(op: &Op) -> Option<Mode> {
    match op {
        Op::CheckCol { .. } => None,
        Op::RangeAnd { .. }
        | Op::RangeOr { .. }
        | Op::RangeNot { .. }
        | Op::RangeEq { .. }
        | Op::RangeLeq { .. }
        | Op::RangeLt { .. }
        | Op::RangeAdd { .. }
        | Op::RangeSub { .. }
        | Op::RangeMul { .. }
        | Op::RangeDiv { .. }
        | Op::RangeNeg { .. }
        | Op::RangeCheckBool3 { .. }
        | Op::RangeIfMerge { .. }
        | Op::RangeUncertain { .. } => Some(Mode::Range),
        Op::LoadCol { .. }
        | Op::LoadConst { .. }
        | Op::DetAdd { .. }
        | Op::DetSub { .. }
        | Op::DetMul { .. }
        | Op::DetDiv { .. }
        | Op::DetNeg { .. }
        | Op::DetEq { .. }
        | Op::DetLeq { .. }
        | Op::DetLt { .. }
        | Op::DetNot { .. }
        | Op::DetAsBool { .. }
        | Op::Jump { .. }
        | Op::JumpIfFalse { .. }
        | Op::JumpIfTrue { .. } => Some(Mode::Det),
    }
}

/// The operands an op reads (up to three).
fn op_reads(op: &Op) -> [Option<Src>; 3] {
    match op {
        Op::CheckCol { .. } | Op::LoadCol { .. } | Op::LoadConst { .. } | Op::Jump { .. } => {
            [None, None, None]
        }
        Op::RangeNot { a, .. }
        | Op::RangeNeg { a, .. }
        | Op::DetNeg { a, .. }
        | Op::DetNot { a, .. } => [Some(*a), None, None],
        Op::RangeCheckBool3 { src }
        | Op::DetAsBool { src, .. }
        | Op::JumpIfFalse { src, .. }
        | Op::JumpIfTrue { src, .. } => [Some(*src), None, None],
        Op::RangeAnd { a, b, .. }
        | Op::RangeOr { a, b, .. }
        | Op::RangeEq { a, b, .. }
        | Op::RangeLeq { a, b, .. }
        | Op::RangeLt { a, b, .. }
        | Op::RangeAdd { a, b, .. }
        | Op::RangeSub { a, b, .. }
        | Op::RangeMul { a, b, .. }
        | Op::RangeDiv { a, b, .. }
        | Op::DetAdd { a, b, .. }
        | Op::DetSub { a, b, .. }
        | Op::DetMul { a, b, .. }
        | Op::DetDiv { a, b, .. }
        | Op::DetEq { a, b, .. }
        | Op::DetLeq { a, b, .. }
        | Op::DetLt { a, b, .. } => [Some(*a), Some(*b), None],
        Op::RangeIfMerge { c, t, e, .. } => [Some(*c), Some(*t), Some(*e)],
        Op::RangeUncertain { l, s, u, .. } => [Some(*l), Some(*s), Some(*u)],
    }
}

/// The register an op writes, if any.
fn op_dst(op: &Op) -> Option<Reg> {
    match op {
        Op::CheckCol { .. }
        | Op::RangeCheckBool3 { .. }
        | Op::Jump { .. }
        | Op::JumpIfFalse { .. }
        | Op::JumpIfTrue { .. } => None,
        Op::RangeAnd { dst, .. }
        | Op::RangeOr { dst, .. }
        | Op::RangeNot { dst, .. }
        | Op::RangeEq { dst, .. }
        | Op::RangeLeq { dst, .. }
        | Op::RangeLt { dst, .. }
        | Op::RangeAdd { dst, .. }
        | Op::RangeSub { dst, .. }
        | Op::RangeMul { dst, .. }
        | Op::RangeDiv { dst, .. }
        | Op::RangeNeg { dst, .. }
        | Op::RangeIfMerge { dst, .. }
        | Op::RangeUncertain { dst, .. }
        | Op::LoadCol { dst, .. }
        | Op::LoadConst { dst, .. }
        | Op::DetAdd { dst, .. }
        | Op::DetSub { dst, .. }
        | Op::DetMul { dst, .. }
        | Op::DetDiv { dst, .. }
        | Op::DetNeg { dst, .. }
        | Op::DetEq { dst, .. }
        | Op::DetLeq { dst, .. }
        | Op::DetLt { dst, .. }
        | Op::DetNot { dst, .. }
        | Op::DetAsBool { dst, .. } => Some(*dst),
    }
}

/// A jump op's target, if the op is a jump.
fn op_jump(op: &Op) -> Option<u32> {
    match op {
        Op::Jump { to } | Op::JumpIfFalse { to, .. } | Op::JumpIfTrue { to, .. } => Some(*to),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Tier A: structural dataflow verifier
// ---------------------------------------------------------------------------

/// Initialized-register / checked-column facts at one program point.
/// Merges at join points intersect (a fact must hold on *every* path).
#[derive(Clone, PartialEq)]
struct Flow {
    regs: Vec<u64>,
    cols: BTreeSet<u32>,
}

impl Flow {
    fn empty(nregs: usize) -> Flow {
        Flow { regs: vec![0; nregs.div_ceil(64)], cols: BTreeSet::new() }
    }
    fn reg(&self, r: Reg) -> bool {
        self.regs[r as usize / 64] & (1 << (r % 64)) != 0
    }
    fn set_reg(&mut self, r: Reg) {
        self.regs[r as usize / 64] |= 1 << (r % 64);
    }
    fn intersect(&mut self, other: &Flow) {
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            *a &= b;
        }
        self.cols.retain(|c| other.cols.contains(c));
    }
}

fn merge_flow(slot: &mut Option<Flow>, incoming: &Flow) {
    match slot {
        None => *slot = Some(incoming.clone()),
        Some(prev) => prev.intersect(incoming),
    }
}

/// The chain of source-subtree preorder intervals from the owning
/// expression's root down to node `nid` (outermost first). Fails when
/// `nid` does not resolve through the node tables.
fn ancestor_chain(p: &Program, nid: u32, out: &mut Vec<(u32, u32)>) -> bool {
    out.clear();
    let k = match p.node_offsets.partition_point(|&off| off <= nid).checked_sub(1) {
        Some(k) if k < p.srcs.len() => k,
        _ => return false,
    };
    let mut cur = &p.srcs[k];
    let mut cur_id = p.node_offsets[k];
    loop {
        out.push((cur_id, cur_id + cur.node_count()));
        if cur_id == nid {
            return true;
        }
        let mut child_id = cur_id + 1;
        let mut next = None;
        for c in p_children(cur) {
            let end = child_id + c.node_count();
            if (child_id..end).contains(&nid) {
                next = Some((c, child_id));
                break;
            }
            child_id = end;
        }
        match next {
            Some((c, id)) => {
                cur = c;
                cur_id = id;
            }
            None => return false,
        }
    }
}

fn p_children(e: &Expr) -> impl Iterator<Item = &Expr> {
    e.children().into_iter().flatten()
}

/// Tier A: the structural dataflow verifier. `O(ops · depth)`; no
/// abstract interpretation, no re-lowering — safe to run on every
/// compile unconditionally.
pub fn check_structure(p: &Program) -> Result<(), VerifyError> {
    use VerifyErrorKind::*;
    let n = p.ops.len();

    // -- table consistency ------------------------------------------------
    if p.spans.len() != n {
        return Err(VerifyError::global(SpanTableMismatch { ops: n, spans: p.spans.len() }));
    }
    if p.outputs.len() != p.srcs.len() {
        return Err(VerifyError::global(OutputArityMismatch {
            outputs: p.outputs.len(),
            srcs: p.srcs.len(),
        }));
    }
    if p.node_offsets.len() != p.srcs.len() + 1 {
        return Err(VerifyError::global(NodeTableInvalid {
            detail: format!("{} entries for {} sources", p.node_offsets.len(), p.srcs.len()),
        }));
    }
    let mut off = 0u32;
    for (k, e) in p.srcs.iter().enumerate() {
        if p.node_offsets[k] != off {
            return Err(VerifyError::global(NodeTableInvalid {
                detail: format!("offset {} for source {k}, expected {off}", p.node_offsets[k]),
            }));
        }
        off += e.node_count();
    }
    let nodes = off;
    if *p.node_offsets.last().unwrap_or(&0) != nodes {
        return Err(VerifyError::global(NodeTableInvalid {
            detail: format!("sentinel {:?}, expected {nodes}", p.node_offsets.last()),
        }));
    }
    for (i, &s) in p.spans.iter().enumerate() {
        if s >= nodes {
            return Err(VerifyError::at(p, i, SpanOutOfBounds { span: s, nodes }));
        }
    }

    // -- constant pool integrity ------------------------------------------
    if p.consts_range.len() != p.consts.len() {
        return Err(VerifyError::global(ConstPoolMismatch {
            idx: p.consts_range.len().min(p.consts.len()),
        }));
    }
    for (i, (v, rv)) in p.consts.iter().zip(&p.consts_range).enumerate() {
        if *rv != RangeValue::certain(v.clone()) {
            return Err(VerifyError::global(ConstPoolMismatch { idx: i }));
        }
    }

    // -- per-op bounds and mode separation --------------------------------
    for (i, op) in p.ops.iter().enumerate() {
        if let Some(m) = op_mode(op) {
            if m != p.mode {
                return Err(VerifyError::at(p, i, ForeignOp { mode: p.mode }));
            }
        }
        for s in op_reads(op).into_iter().flatten() {
            match s {
                Src::Reg(r) if (r as usize) >= p.nregs => {
                    return Err(VerifyError::at(
                        p,
                        i,
                        RegisterOutOfBounds { reg: r, nregs: p.nregs },
                    ))
                }
                Src::Const(k) if (k as usize) >= p.consts.len() => {
                    return Err(VerifyError::at(
                        p,
                        i,
                        ConstOutOfBounds { idx: k, len: p.consts.len() },
                    ))
                }
                _ => {}
            }
        }
        if let Op::LoadConst { idx, .. } = op {
            if (*idx as usize) >= p.consts.len() {
                return Err(VerifyError::at(
                    p,
                    i,
                    ConstOutOfBounds { idx: *idx, len: p.consts.len() },
                ));
            }
        }
        if let Some(d) = op_dst(op) {
            if (d as usize) >= p.nregs {
                return Err(VerifyError::at(p, i, RegisterOutOfBounds { reg: d, nregs: p.nregs }));
            }
        }
        if let Some(to) = op_jump(op) {
            if (to as usize) > n {
                return Err(VerifyError::at(p, i, JumpOutOfBounds { to, len: n }));
            }
            if (to as usize) <= i {
                return Err(VerifyError::at(p, i, JumpNotForward { to }));
            }
        }
    }

    // -- subtree-extent contiguity ----------------------------------------
    // Walk the ops keeping the stack of currently open source subtrees
    // (as preorder-id intervals). Leaving a subtree closes it; a span
    // landing back inside a closed subtree means ops of disjoint
    // subtrees interleave — which would also defeat the jump-region
    // argument below.
    let mut open: Vec<(u32, u32)> = Vec::new();
    let mut closed: BTreeMap<u32, u32> = BTreeMap::new();
    let mut chain: Vec<(u32, u32)> = Vec::new();
    for (i, &s) in p.spans.iter().enumerate() {
        if !ancestor_chain(p, s, &mut chain) {
            return Err(VerifyError::at(p, i, SpanOutOfBounds { span: s, nodes }));
        }
        let mut k = 0;
        while k < open.len() && k < chain.len() && open[k] == chain[k] {
            k += 1;
        }
        while open.len() > k {
            if let Some((lo, hi)) = open.pop() {
                let inner: Vec<u32> = closed.range(lo..hi).map(|(a, _)| *a).collect();
                for a in inner {
                    closed.remove(&a);
                }
                closed.insert(lo, hi);
            }
        }
        for &(lo, hi) in &chain[k..] {
            if let Some((_, &chi)) = closed.range(..=lo).next_back() {
                if lo < chi {
                    return Err(VerifyError::at(p, i, SubtreeInterleaved));
                }
            }
            open.push((lo, hi));
        }
    }

    // -- jump confinement -------------------------------------------------
    // A jump emitted by node `s` may target only ops of `s`'s own
    // subtree, or the single op just past its extent (the lowerer's
    // "end" label). Anything else jumps into the middle of some other
    // node's merged region.
    for (i, op) in p.ops.iter().enumerate() {
        if let Some(to) = op_jump(op) {
            let s = p.spans[i];
            let cnt = p.node_expr(s).map_or(0, Expr::node_count);
            let sub = s..s + cnt;
            let extent_end = (0..n).rev().find(|&j| sub.contains(&p.spans[j])).unwrap_or(i);
            if (to as usize) > extent_end + 1 {
                return Err(VerifyError::at(
                    p,
                    i,
                    JumpEscapesRegion { to, region_end: extent_end },
                ));
            }
        }
    }

    // -- forward dataflow: init-before-use, checked columns, exit ---------
    // Jumps are strictly forward (checked above), so one in-order pass
    // reaches the fixpoint: every predecessor of op `i` has index < i.
    let mut states: Vec<Option<Flow>> = vec![None; n + 1];
    states[0] = Some(Flow::empty(p.nregs));
    let mut written = vec![false; p.nregs];
    for i in 0..n {
        let Some(flow) = states[i].clone() else { continue };
        let op = &p.ops[i];
        for s in op_reads(op).into_iter().flatten() {
            match s {
                Src::Reg(r) if !flow.reg(r) => {
                    return Err(VerifyError::at(p, i, UninitRegisterRead { reg: r }))
                }
                Src::Col(c) if !flow.cols.contains(&c) => {
                    return Err(VerifyError::at(p, i, UncheckedColumnRead { col: c }))
                }
                _ => {}
            }
        }
        let mut out = flow;
        match op {
            Op::CheckCol { col } => {
                out.cols.insert(*col);
            }
            Op::LoadCol { col, dst } => {
                // LoadCol bounds-checks the column itself, so it both
                // initializes `dst` and establishes the column fact.
                out.cols.insert(*col);
                out.set_reg(*dst);
            }
            _ => {
                if let Some(d) = op_dst(op) {
                    if p.mode == Mode::Range && written[d as usize] {
                        return Err(VerifyError::at(p, i, RegisterRewritten { reg: d }));
                    }
                    written[d as usize] = true;
                    out.set_reg(d);
                }
            }
        }
        match op {
            Op::Jump { to } => merge_flow(&mut states[*to as usize], &out),
            Op::JumpIfFalse { to, .. } | Op::JumpIfTrue { to, .. } => {
                merge_flow(&mut states[*to as usize], &out);
                merge_flow(&mut states[i + 1], &out);
            }
            _ => merge_flow(&mut states[i + 1], &out),
        }
    }
    let Some(exit) = &states[n] else {
        return Err(VerifyError::global(ExitUnreachable));
    };

    // -- outputs ----------------------------------------------------------
    for (k, out) in p.outputs.iter().enumerate() {
        match *out {
            Src::Reg(r) if (r as usize) >= p.nregs || !exit.reg(r) => {
                return Err(VerifyError::global(OutputUninit { output: k, reg: r }))
            }
            Src::Col(c) if !exit.cols.contains(&c) => {
                return Err(VerifyError::global(OutputUnchecked { output: k, col: c }))
            }
            Src::Const(idx) if (idx as usize) >= p.consts.len() => {
                return Err(VerifyError::global(OutputConstOutOfBounds { output: k, idx }))
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Tier B: translation validation + abstract interpretation
// ---------------------------------------------------------------------------

/// The abstract value lattice: a type tag with an optional exact
/// constant or `[lo,hi]` band. `Exact` is the bottom-most informative
/// element — a triple known completely, folded through the *runtime*
/// combinators; `Bool` knows a boolean triple's components partially;
/// `Num` knows only "certainly numeric, within this band". Bands
/// over-approximate the union of all three triple components, so
/// sg-containment holds by construction.
#[derive(Debug, Clone, PartialEq)]
enum Abs {
    /// No value yet (unwritten register on this path).
    Bot,
    /// Exactly this triple on every row.
    Exact(RangeValue),
    /// Certainly a boolean triple, components partially known.
    Bool { lb: Option<bool>, sg: Option<bool>, ub: Option<bool> },
    /// Certainly numeric (Int/Float), all components within the band.
    Num { lo: f64, hi: f64 },
    /// Certainly neither numeric nor boolean (Null/Str/sentinel).
    Other,
    /// Any well-formed value.
    Top,
}

impl Abs {
    fn join(&self, other: &Abs) -> Abs {
        use Abs::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x.clone(),
            (a, b) if a == b => a.clone(),
            (a, b) => match (a.widen(), b.widen()) {
                (Bool { lb, sg, ub }, Bool { lb: l2, sg: s2, ub: u2 }) => {
                    Bool { lb: join_opt(lb, l2), sg: join_opt(sg, s2), ub: join_opt(ub, u2) }
                }
                (Num { lo, hi }, Num { lo: l2, hi: h2 }) => num_band(lo.min(l2), hi.max(h2)),
                (Other, Other) => Other,
                _ => Top,
            },
        }
    }

    /// Drop the `Exact` constant down to its tag + band.
    fn widen(&self) -> Abs {
        match self {
            Abs::Exact(rv) => match abs_tag(rv) {
                Some(t) => t,
                None => Abs::Top,
            },
            other => other.clone(),
        }
    }

    /// The boolean triple view, if this value can be a boolean at all.
    /// `Err(())` means "certainly errors under `as_bool3`".
    #[allow(clippy::type_complexity)] // a one-off triple-of-options view
    fn as_bool3(&self) -> Result<(Option<bool>, Option<bool>, Option<bool>), ()> {
        match self {
            Abs::Exact(rv) => match rv.as_bool3() {
                Ok((l, s, u)) => Ok((Some(l), Some(s), Some(u))),
                Err(_) => Err(()),
            },
            Abs::Bool { lb, sg, ub } => Ok((*lb, *sg, *ub)),
            Abs::Num { .. } | Abs::Other => Err(()),
            Abs::Top | Abs::Bot => Ok((None, None, None)),
        }
    }

    /// Is arithmetic on this operand certain to raise a type error?
    fn certainly_non_numeric(&self) -> bool {
        match self {
            Abs::Bool { .. } | Abs::Other => true,
            Abs::Exact(rv) => {
                !matches!(rv.lb, Value::Int(_) | Value::Float(_))
                    || !matches!(rv.sg, Value::Int(_) | Value::Float(_))
                    || !matches!(rv.ub, Value::Int(_) | Value::Float(_))
            }
            _ => false,
        }
    }

    /// The numeric band, if this value is certainly numeric.
    fn band(&self) -> Option<(f64, f64)> {
        match self {
            Abs::Num { lo, hi } => Some((*lo, *hi)),
            Abs::Exact(rv) if !self.certainly_non_numeric() => {
                let lo = value_f64(&rv.lb)?;
                let hi = value_f64(&rv.ub)?;
                Some((lo, hi))
            }
            _ => None,
        }
    }
}

fn join_opt(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) if x == y => Some(x),
        _ => None,
    }
}

fn value_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(_) => v.as_f64(),
        _ => None,
    }
}

/// NaN-proof band constructor (`inf - inf` widens to the full line).
fn num_band(lo: f64, hi: f64) -> Abs {
    if lo.is_nan() || hi.is_nan() {
        Abs::Num { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    } else {
        Abs::Num { lo, hi }
    }
}

/// Tag + band of an exact triple (for joins).
fn abs_tag(rv: &RangeValue) -> Option<Abs> {
    match rv.as_bool3() {
        Ok((l, s, u)) => Some(Abs::Bool { lb: Some(l), sg: Some(s), ub: Some(u) }),
        Err(_) => {
            let all_num = [&rv.lb, &rv.sg, &rv.ub]
                .iter()
                .all(|v| matches!(v, Value::Int(_) | Value::Float(_)));
            if all_num {
                Some(num_band(value_f64(&rv.lb)?, value_f64(&rv.ub)?))
            } else if [&rv.lb, &rv.sg, &rv.ub]
                .iter()
                .all(|v| matches!(v, Value::Null | Value::Str(_)))
            {
                Some(Abs::Other)
            } else {
                None
            }
        }
    }
}

/// The per-op proof obligation: every abstract output must itself
/// satisfy `lb ≤ sg ≤ ub` (exact triples via the real total order,
/// boolean triples via the implication chain, bands via `lo ≤ hi`).
fn check_wf(p: &Program, i: usize, a: &Abs) -> Result<(), VerifyError> {
    let violation =
        |detail: String| Err(VerifyError::at(p, i, VerifyErrorKind::BoundViolation { detail }));
    match a {
        Abs::Exact(rv) => {
            use std::cmp::Ordering::Greater;
            if rv.lb.total_cmp(&rv.sg) == Greater || rv.sg.total_cmp(&rv.ub) == Greater {
                return violation(format!("[{} / {} / {}]", rv.lb, rv.sg, rv.ub));
            }
            Ok(())
        }
        Abs::Bool { lb, sg, ub } => {
            // certainly-true ⇒ selected-guess-true ⇒ possibly-true
            if (*lb == Some(true) && *sg == Some(false))
                || (*sg == Some(true) && *ub == Some(false))
                || (*lb == Some(true) && *ub == Some(false))
            {
                return violation(format!("bool triple [{lb:?} / {sg:?} / {ub:?}]"));
            }
            Ok(())
        }
        Abs::Num { lo, hi } => {
            if lo > hi {
                return violation(format!("band [{lo}, {hi}]"));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Map a certainly-raised [`EvalError`] to the lint class it proves.
fn error_lint(e: &EvalError) -> LintKind {
    match e {
        EvalError::DivisionByZero | EvalError::RangeDivisionSpansZero => LintKind::CertainDivByZero,
        _ => LintKind::CertainTypeError,
    }
}

/// Is the condition behind op `i` a literal `Const` in the source? A
/// constant branch on a literal is idiomatic (`lit(true)` predicates,
/// `Expr::conj(vec![])`), so [`LintKind::ConstantCondition`] skips it.
fn literal_condition(p: &Program, i: usize) -> bool {
    let Some(node) = p.spans.get(i) else { return false };
    match p.node_expr(*node) {
        Some(Expr::And(a, _)) | Some(Expr::Or(a, _)) | Some(Expr::If(a, _, _)) => {
            matches!(**a, Expr::Const(_))
        }
        _ => false,
    }
}

/// Tier B entry point: translation validation, then abstract
/// interpretation of the matching mode. Returns the advisory lints
/// collected along the way (sorted by op index); a hard error means the
/// program must not execute.
pub fn check_abstract(p: &Program) -> Result<Vec<ProgramLint>, VerifyError> {
    check_translation(p)?;
    let mut lints = match p.mode {
        Mode::Range => interpret_range(p)?,
        Mode::Det => interpret_det(p)?,
    };
    lints.sort_by_key(|l| (l.op, l.kind));
    Ok(lints)
}

/// Translation validation: re-lower the retained sources through the
/// same lowerer and require an op-for-op identical program. The
/// lowerer is deterministic, so any divergence means the op stream no
/// longer implements its sources (cache corruption, a tampered
/// program, or a non-deterministic lowerer bug).
fn check_translation(p: &Program) -> Result<(), VerifyError> {
    let q = p.relower();
    let diverged = |detail: String, op: Option<usize>| {
        let mut e = VerifyError::global(VerifyErrorKind::TranslationDivergence { detail });
        if let Some(i) = op {
            e = VerifyError::at(p, i, e.kind);
        }
        Err(e)
    };
    if p.ops.len() != q.ops.len() {
        return diverged(format!("{} ops, re-lowering has {}", p.ops.len(), q.ops.len()), None);
    }
    for (i, (a, b)) in p.ops.iter().zip(&q.ops).enumerate() {
        if a != b {
            return diverged(format!("op {i} is {a:?}, re-lowering has {b:?}"), Some(i));
        }
    }
    for (i, (a, b)) in p.spans.iter().zip(&q.spans).enumerate() {
        if a != b {
            return diverged(format!("span {i} is {a}, re-lowering has {b}"), Some(i));
        }
    }
    if p.nregs != q.nregs {
        return diverged(format!("{} registers, re-lowering has {}", p.nregs, q.nregs), None);
    }
    if p.outputs != q.outputs {
        return diverged(format!("outputs {:?} vs {:?}", p.outputs, q.outputs), None);
    }
    if p.consts != q.consts {
        return diverged("constant pool differs".to_string(), None);
    }
    if p.consts_range != q.consts_range {
        return diverged("range constant pool differs".to_string(), None);
    }
    if p.node_offsets != q.node_offsets {
        return diverged("node offset table differs".to_string(), None);
    }
    Ok(())
}

/// Shared transfer for the boolean connectives: fold exact operands
/// through `comb`, certainly-non-boolean operands lint, otherwise apply
/// the three-valued component function.
#[allow(clippy::too_many_arguments)]
fn bool_transfer(
    p: &Program,
    i: usize,
    a: &Abs,
    b: &Abs,
    comb: impl Fn(&RangeValue, &RangeValue) -> Result<RangeValue, EvalError>,
    f3: impl Fn(Option<bool>, Option<bool>) -> Option<bool>,
    lints: &mut Vec<ProgramLint>,
) -> Abs {
    if let (Abs::Exact(x), Abs::Exact(y)) = (a, b) {
        return match comb(x, y) {
            Ok(v) => Abs::Exact(v),
            Err(e) => {
                lints.push(lint(p, i, error_lint(&e)));
                Abs::Top
            }
        };
    }
    match (a.as_bool3(), b.as_bool3()) {
        (Err(()), _) | (_, Err(())) => {
            lints.push(lint(p, i, LintKind::CertainTypeError));
            Abs::Top
        }
        (Ok((l1, s1, u1)), Ok((l2, s2, u2))) => {
            Abs::Bool { lb: f3(l1, l2), sg: f3(s1, s2), ub: f3(u1, u2) }
        }
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Shared transfer for arithmetic: fold exact operands through `comb`,
/// certainly-non-numeric operands lint, numeric operands propagate
/// their band through `band_op`.
fn arith_transfer(
    p: &Program,
    i: usize,
    a: &Abs,
    b: &Abs,
    comb: impl Fn(&RangeValue, &RangeValue) -> Result<RangeValue, EvalError>,
    band_op: impl Fn((f64, f64), (f64, f64)) -> Abs,
    lints: &mut Vec<ProgramLint>,
) -> Abs {
    if let (Abs::Exact(x), Abs::Exact(y)) = (a, b) {
        return match comb(x, y) {
            Ok(v) => Abs::Exact(v),
            Err(e) => {
                lints.push(lint(p, i, error_lint(&e)));
                Abs::Top
            }
        };
    }
    if a.certainly_non_numeric() || b.certainly_non_numeric() {
        lints.push(lint(p, i, LintKind::CertainTypeError));
        return Abs::Top;
    }
    match (a.band(), b.band()) {
        (Some(x), Some(y)) => band_op(x, y),
        _ => Abs::Top,
    }
}

fn mul_band((al, ah): (f64, f64), (bl, bh): (f64, f64)) -> Abs {
    let corners = [al * bl, al * bh, ah * bl, ah * bh];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    num_band(lo, hi)
}

/// Abstract interpretation of a range program (straight-line, one pass).
fn interpret_range(p: &Program) -> Result<Vec<ProgramLint>, VerifyError> {
    let mut lints = Vec::new();
    let mut regs: Vec<Abs> = vec![Abs::Bot; p.nregs];
    let src_abs = |regs: &[Abs], s: Src| -> Abs {
        match s {
            Src::Reg(r) => regs[r as usize].clone(),
            Src::Col(_) => Abs::Top,
            Src::Const(k) => Abs::Exact(p.consts_range[k as usize].clone()),
        }
    };
    for (i, op) in p.ops.iter().enumerate() {
        let write = |regs: &mut Vec<Abs>, dst: Reg, a: Abs| -> Result<(), VerifyError> {
            check_wf(p, i, &a)?;
            regs[dst as usize] = a;
            Ok(())
        };
        match op {
            Op::CheckCol { .. } => {}
            Op::RangeAnd { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = bool_transfer(p, i, &x, &y, range_and, and3, &mut lints);
                write(&mut regs, *dst, v)?;
            }
            Op::RangeOr { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = bool_transfer(p, i, &x, &y, range_or, or3, &mut lints);
                write(&mut regs, *dst, v)?;
            }
            Op::RangeNot { a, dst } => {
                let x = src_abs(&regs, *a);
                let v = if let Abs::Exact(rv) = &x {
                    match range_not(rv) {
                        Ok(v) => Abs::Exact(v),
                        Err(e) => {
                            lints.push(lint(p, i, error_lint(&e)));
                            Abs::Top
                        }
                    }
                } else {
                    match x.as_bool3() {
                        // ¬[l/s/u] = [¬u/¬s/¬l]: bounds swap.
                        Ok((l, s, u)) => {
                            Abs::Bool { lb: u.map(|b| !b), sg: s.map(|b| !b), ub: l.map(|b| !b) }
                        }
                        Err(()) => {
                            lints.push(lint(p, i, LintKind::CertainTypeError));
                            Abs::Top
                        }
                    }
                };
                write(&mut regs, *dst, v)?;
            }
            Op::RangeEq { a, b, dst } | Op::RangeLeq { a, b, dst } | Op::RangeLt { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = if let (Abs::Exact(xr), Abs::Exact(yr)) = (&x, &y) {
                    Abs::Exact(match op {
                        Op::RangeEq { .. } => range_eq(xr, yr),
                        Op::RangeLeq { .. } => range_leq(xr, yr),
                        _ => range_lt(xr, yr),
                    })
                } else {
                    // Comparisons are total: certainly boolean.
                    Abs::Bool { lb: None, sg: None, ub: None }
                };
                write(&mut regs, *dst, v)?;
            }
            Op::RangeAdd { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = arith_transfer(
                    p,
                    i,
                    &x,
                    &y,
                    range_add,
                    |(al, ah), (bl, bh)| num_band(al + bl, ah + bh),
                    &mut lints,
                );
                write(&mut regs, *dst, v)?;
            }
            Op::RangeSub { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = arith_transfer(
                    p,
                    i,
                    &x,
                    &y,
                    range_sub,
                    |(al, ah), (bl, bh)| num_band(al - bh, ah - bl),
                    &mut lints,
                );
                write(&mut regs, *dst, v)?;
            }
            Op::RangeMul { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = arith_transfer(p, i, &x, &y, range_mul, mul_band, &mut lints);
                write(&mut regs, *dst, v)?;
            }
            Op::RangeDiv { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                // A non-exact divisor band spanning zero only *may* hit
                // the spans-zero guard, so no lint; the quotient band is
                // conservatively unbounded either way (integer division
                // truncates, so corner quotients are not attained
                // bounds).
                let v = arith_transfer(
                    p,
                    i,
                    &x,
                    &y,
                    range_div,
                    |_, _| num_band(f64::NEG_INFINITY, f64::INFINITY),
                    &mut lints,
                );
                write(&mut regs, *dst, v)?;
            }
            Op::RangeNeg { a, dst } => {
                let x = src_abs(&regs, *a);
                let v = if let Abs::Exact(rv) = &x {
                    match range_neg(rv) {
                        Ok(v) => Abs::Exact(v),
                        Err(e) => {
                            lints.push(lint(p, i, error_lint(&e)));
                            Abs::Top
                        }
                    }
                } else if x.certainly_non_numeric() {
                    lints.push(lint(p, i, LintKind::CertainTypeError));
                    Abs::Top
                } else if let Some((lo, hi)) = x.band() {
                    num_band(-hi, -lo)
                } else {
                    Abs::Top
                };
                write(&mut regs, *dst, v)?;
            }
            Op::RangeCheckBool3 { src } => match src_abs(&regs, *src).as_bool3() {
                Err(()) => lints.push(lint(p, i, LintKind::CertainTypeError)),
                Ok((Some(l), Some(s), Some(u))) if l == u && s == l => {
                    if !literal_condition(p, i) {
                        lints.push(lint(p, i, LintKind::ConstantCondition));
                    }
                }
                Ok(_) => {}
            },
            Op::RangeIfMerge { c, t, e, dst } => {
                let (cv, tv, ev) = (src_abs(&regs, *c), src_abs(&regs, *t), src_abs(&regs, *e));
                let v = if let (Abs::Exact(cr), Abs::Exact(tr), Abs::Exact(er)) = (&cv, &tv, &ev) {
                    match range_if_merge(cr, tr.clone(), er.clone()) {
                        Ok(v) => Abs::Exact(v),
                        Err(e2) => {
                            lints.push(lint(p, i, error_lint(&e2)));
                            Abs::Top
                        }
                    }
                } else {
                    match cv.as_bool3() {
                        Ok((Some(true), Some(true), Some(true))) => tv,
                        Ok((Some(false), Some(false), Some(false))) => ev,
                        Ok(_) => tv.join(&ev),
                        Err(()) => Abs::Top, // CheckBool3 already linted
                    }
                };
                write(&mut regs, *dst, v)?;
            }
            Op::RangeUncertain { l, s, u, dst } => {
                let (lv, sv, uv) = (src_abs(&regs, *l), src_abs(&regs, *s), src_abs(&regs, *u));
                let v = if let (Abs::Exact(lr), Abs::Exact(sr), Abs::Exact(ur)) = (&lv, &sv, &uv) {
                    match range_uncertain(lr, sr, ur) {
                        Ok(v) => Abs::Exact(v),
                        Err(e2) => {
                            lints.push(lint(p, i, error_lint(&e2)));
                            Abs::Top
                        }
                    }
                } else {
                    // The widened triple's components are min/maxed from
                    // the three operands, so the join covers the hull.
                    lv.join(&sv).join(&uv)
                };
                write(&mut regs, *dst, v)?;
            }
            _ => {} // foreign ops rejected by Tier A
        }
    }

    // Dead registers: range programs are single-assignment, so a write
    // nothing ever reads (and no output exposes) is dead code — the
    // lowerer never emits one, a corrupted operand often leaves one.
    let mut read = vec![false; p.nregs];
    for op in &p.ops {
        for s in op_reads(op).into_iter().flatten() {
            if let Src::Reg(r) = s {
                read[r as usize] = true;
            }
        }
    }
    for out in &p.outputs {
        if let Src::Reg(r) = out {
            read[*r as usize] = true;
        }
    }
    for (i, op) in p.ops.iter().enumerate() {
        if let Some(d) = op_dst(op) {
            if !read[d as usize] {
                lints.push(lint(p, i, LintKind::DeadRegister));
            }
        }
    }
    Ok(lints)
}

/// Abstract interpretation of a det program: forward dataflow over the
/// jump CFG (jumps are strictly forward per Tier A, so one in-order
/// pass reaches the fixpoint), joining register states at merge points.
fn interpret_det(p: &Program) -> Result<Vec<ProgramLint>, VerifyError> {
    let mut lints = Vec::new();
    let n = p.ops.len();
    let mut states: Vec<Option<Vec<Abs>>> = vec![None; n + 1];
    states[0] = Some(vec![Abs::Bot; p.nregs]);
    let certain = |v: &Value| Abs::Exact(RangeValue::certain(v.clone()));
    let src_abs = |regs: &[Abs], s: Src| -> Abs {
        match s {
            Src::Reg(r) => regs[r as usize].clone(),
            Src::Col(_) => Abs::Top,
            Src::Const(k) => Abs::Exact(RangeValue::certain(p.consts[k as usize].clone())),
        }
    };
    let merge = |slot: &mut Option<Vec<Abs>>, incoming: &[Abs]| match slot {
        None => *slot = Some(incoming.to_vec()),
        Some(prev) => {
            for (a, b) in prev.iter_mut().zip(incoming) {
                *a = a.join(b);
            }
        }
    };
    // Det-mode constant folding works on the certain lift of a Value:
    // lift both operands, run the *range* combinator's det analog via
    // the underlying Value op, and re-wrap.
    let fold2 =
        |x: &RangeValue, y: &RangeValue, f: &dyn Fn(&Value, &Value) -> Result<Value, EvalError>| {
            f(&x.sg, &y.sg).map(RangeValue::certain)
        };
    for i in 0..n {
        let Some(mut regs) = states[i].clone() else {
            lints.push(lint(p, i, LintKind::UnreachableOp));
            continue;
        };
        let op = &p.ops[i];
        let mut jump_taken: Option<u32> = None;
        let mut conditional = false;
        match op {
            Op::CheckCol { .. } => {}
            Op::LoadCol { dst, .. } => regs[*dst as usize] = Abs::Top,
            Op::LoadConst { idx, dst } => regs[*dst as usize] = certain(&p.consts[*idx as usize]),
            Op::DetAdd { a, b, dst }
            | Op::DetSub { a, b, dst }
            | Op::DetMul { a, b, dst }
            | Op::DetDiv { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let vf: &dyn Fn(&Value, &Value) -> Result<Value, EvalError> = match op {
                    Op::DetAdd { .. } => &Value::add,
                    Op::DetSub { .. } => &Value::sub,
                    Op::DetMul { .. } => &Value::mul,
                    _ => &Value::div,
                };
                let v = if let (Abs::Exact(xr), Abs::Exact(yr)) = (&x, &y) {
                    match fold2(xr, yr, vf) {
                        Ok(v) => Abs::Exact(v),
                        Err(e) => {
                            lints.push(lint(p, i, error_lint(&e)));
                            Abs::Top
                        }
                    }
                } else if x.certainly_non_numeric() || y.certainly_non_numeric() {
                    lints.push(lint(p, i, LintKind::CertainTypeError));
                    Abs::Top
                } else {
                    match (op, x.band(), y.band()) {
                        (Op::DetAdd { .. }, Some((al, ah)), Some((bl, bh))) => {
                            num_band(al + bl, ah + bh)
                        }
                        (Op::DetSub { .. }, Some((al, ah)), Some((bl, bh))) => {
                            num_band(al - bh, ah - bl)
                        }
                        (Op::DetMul { .. }, Some(xb), Some(yb)) => mul_band(xb, yb),
                        _ => Abs::Top,
                    }
                };
                check_wf(p, i, &v)?;
                regs[*dst as usize] = v;
            }
            Op::DetNeg { a, dst } => {
                let x = src_abs(&regs, *a);
                let v = if let Abs::Exact(xr) = &x {
                    match xr.sg.neg() {
                        Ok(v) => certain(&v),
                        Err(e) => {
                            lints.push(lint(p, i, error_lint(&e)));
                            Abs::Top
                        }
                    }
                } else if x.certainly_non_numeric() {
                    lints.push(lint(p, i, LintKind::CertainTypeError));
                    Abs::Top
                } else if let Some((lo, hi)) = x.band() {
                    num_band(-hi, -lo)
                } else {
                    Abs::Top
                };
                check_wf(p, i, &v)?;
                regs[*dst as usize] = v;
            }
            Op::DetEq { a, b, dst } | Op::DetLeq { a, b, dst } | Op::DetLt { a, b, dst } => {
                let (x, y) = (src_abs(&regs, *a), src_abs(&regs, *b));
                let v = if let (Abs::Exact(xr), Abs::Exact(yr)) = (&x, &y) {
                    let r = match op {
                        Op::DetEq { .. } => xr.sg.value_eq(&yr.sg),
                        Op::DetLeq { .. } => expr::leq(&xr.sg, &yr.sg),
                        _ => expr::lt(&xr.sg, &yr.sg),
                    };
                    certain(&Value::Bool(r))
                } else {
                    Abs::Bool { lb: None, sg: None, ub: None }
                };
                regs[*dst as usize] = v;
            }
            Op::DetNot { a, dst } | Op::DetAsBool { src: a, dst } => {
                let x = src_abs(&regs, *a);
                let v = match x.as_bool3() {
                    Err(()) => {
                        lints.push(lint(p, i, LintKind::CertainTypeError));
                        Abs::Top
                    }
                    Ok((_, s, _)) => {
                        let s = if matches!(op, Op::DetNot { .. }) { s.map(|b| !b) } else { s };
                        match s {
                            Some(b) => certain(&Value::Bool(b)),
                            None => Abs::Bool { lb: None, sg: None, ub: None },
                        }
                    }
                };
                regs[*dst as usize] = v;
            }
            Op::Jump { to } => jump_taken = Some(*to),
            Op::JumpIfFalse { src, to } | Op::JumpIfTrue { src, to } => {
                conditional = true;
                jump_taken = Some(*to);
                match src_abs(&regs, *src).as_bool3() {
                    Err(()) => lints.push(lint(p, i, LintKind::CertainTypeError)),
                    Ok((_, Some(_), _)) => {
                        if !literal_condition(p, i) {
                            lints.push(lint(p, i, LintKind::ConstantCondition));
                        }
                    }
                    Ok(_) => {}
                }
            }
            _ => {} // foreign ops rejected by Tier A
        }
        match (jump_taken, conditional) {
            (Some(to), true) => {
                merge(&mut states[to as usize], &regs);
                merge(&mut states[i + 1], &regs);
            }
            (Some(to), false) => merge(&mut states[to as usize], &regs),
            (None, _) => merge(&mut states[i + 1], &regs),
        }
    }
    Ok(lints)
}

// ---------------------------------------------------------------------------
// Mutation harness
// ---------------------------------------------------------------------------

/// The verifier's own proof obligation: single-op corruptions of real
/// lowered programs must be caught by Tier A/B (or be provably
/// behavior-preserving under the differential oracle). [`mutants`]
/// enumerates a deterministic corruption set per program;
/// [`classify`][mutate::classify] runs each through both tiers and, for
/// survivors, the oracle.
pub mod mutate {
    use super::*;

    /// One corrupted copy of a program.
    pub struct Mutant {
        /// Corruption class (stable name for reports).
        pub class: &'static str,
        /// Human description of the specific corruption.
        pub detail: String,
        pub program: Program,
    }

    /// How a mutant was (or was not) caught.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Verdict {
        /// Rejected by the Tier A structural verifier.
        CaughtTierA,
        /// Rejected by Tier B (translation validation or abstract
        /// interpretation).
        CaughtTierB,
        /// Surfaced as a new Tier B lint absent from the original.
        CaughtLint,
        /// Identical behavior to the original on the oracle corpus —
        /// the corruption was behavior-preserving.
        OracleEquivalent,
        /// Undetected *and* behavior-changing: a verifier gap.
        Missed,
    }

    impl Verdict {
        /// Counts toward the detection-rate gate? (`OracleEquivalent`
        /// mutants are excluded from the denominator — there is nothing
        /// to detect.)
        pub fn detected(self) -> bool {
            !matches!(self, Verdict::Missed | Verdict::OracleEquivalent)
        }

        /// Stable machine name (report JSON).
        pub fn name(self) -> &'static str {
            match self {
                Verdict::CaughtTierA => "tier_a",
                Verdict::CaughtTierB => "tier_b",
                Verdict::CaughtLint => "new_lint",
                Verdict::OracleEquivalent => "oracle_equivalent",
                Verdict::Missed => "missed",
            }
        }
    }

    /// Deterministic single-op corruption set for `p`: every applicable
    /// (op, class) pair. Corruptions that reproduce the original
    /// program byte-for-byte (e.g. swapping syntactically equal
    /// operands) are dropped.
    pub fn mutants(p: &Program) -> Vec<Mutant> {
        let mut out = Vec::new();
        let mut push = |class: &'static str, detail: String, program: Program| {
            if program.ops != p.ops
                || program.outputs != p.outputs
                || program.spans != p.spans
                || program.consts != p.consts
            {
                out.push(Mutant { class, detail, program });
            }
        };
        for (i, op) in p.ops.iter().enumerate() {
            // Retargeted jumps: forward past the region, backward, and
            // off-by-one.
            if let Some(to) = op_jump(op) {
                for (delta, nt) in [
                    ("+1", to.saturating_add(1)),
                    ("-1", to.saturating_sub(1)),
                    ("->0", 0),
                    ("->end", p.ops.len() as u32),
                ] {
                    let mut q = p.clone();
                    set_jump(&mut q.ops[i], nt);
                    push("retarget_jump", format!("op {i}: jump {to} {delta} => {nt}"), q);
                }
            }
            // Dropped CheckCol probes.
            if matches!(op, Op::CheckCol { .. }) {
                let mut q = p.clone();
                q.ops.remove(i);
                q.spans.remove(i);
                push("drop_checkcol", format!("op {i}: CheckCol removed"), q);
            }
            // Swapped binary operands.
            if let Some(swapped) = swap_operands(op) {
                let mut q = p.clone();
                q.ops[i] = swapped;
                push("swap_operands", format!("op {i}: operands swapped"), q);
            }
            // Clobbered destination register.
            if let Some(d) = op_dst(op) {
                if p.nregs > 1 {
                    let nd = (d + 1) % p.nregs as u32;
                    let mut q = p.clone();
                    set_dst(&mut q.ops[i], nd);
                    push("clobber_register", format!("op {i}: dst r{d} => r{nd}"), q);
                }
            }
            // Redirected first operand (register, column, or constant).
            if let Some(redirected) = redirect_first_operand(op, p) {
                let mut q = p.clone();
                q.ops[i] = redirected;
                push("redirect_operand", format!("op {i}: first operand redirected"), q);
            }
            // Corrupted span attribution.
            {
                let total: u32 = p.node_offsets.last().copied().unwrap_or(1).max(1);
                let mut q = p.clone();
                q.spans[i] = (q.spans[i] + 1) % total;
                push("corrupt_span", format!("op {i}: span bumped"), q);
            }
        }
        // Retargeted outputs.
        for (k, o) in p.outputs.iter().enumerate() {
            let no = match *o {
                Src::Reg(r) if p.nregs > 1 => Src::Reg((r + 1) % p.nregs as u32),
                Src::Col(c) => Src::Col(c + 1),
                Src::Const(c) if p.consts.len() > 1 => Src::Const((c + 1) % p.consts.len() as u32),
                _ => continue,
            };
            let mut q = p.clone();
            q.outputs[k] = no;
            push("retarget_output", format!("output {k}: {o:?} => {no:?}"), q);
        }
        out
    }

    fn set_jump(op: &mut Op, nt: u32) {
        if let Op::Jump { to } | Op::JumpIfFalse { to, .. } | Op::JumpIfTrue { to, .. } = op {
            *to = nt;
        }
    }

    fn set_dst(op: &mut Op, nd: Reg) {
        match op {
            Op::RangeAnd { dst, .. }
            | Op::RangeOr { dst, .. }
            | Op::RangeNot { dst, .. }
            | Op::RangeEq { dst, .. }
            | Op::RangeLeq { dst, .. }
            | Op::RangeLt { dst, .. }
            | Op::RangeAdd { dst, .. }
            | Op::RangeSub { dst, .. }
            | Op::RangeMul { dst, .. }
            | Op::RangeDiv { dst, .. }
            | Op::RangeNeg { dst, .. }
            | Op::RangeIfMerge { dst, .. }
            | Op::RangeUncertain { dst, .. }
            | Op::LoadCol { dst, .. }
            | Op::LoadConst { dst, .. }
            | Op::DetAdd { dst, .. }
            | Op::DetSub { dst, .. }
            | Op::DetMul { dst, .. }
            | Op::DetDiv { dst, .. }
            | Op::DetNeg { dst, .. }
            | Op::DetEq { dst, .. }
            | Op::DetLeq { dst, .. }
            | Op::DetLt { dst, .. }
            | Op::DetNot { dst, .. }
            | Op::DetAsBool { dst, .. } => *dst = nd,
            _ => {}
        }
    }

    fn swap_operands(op: &Op) -> Option<Op> {
        let mut q = op.clone();
        match &mut q {
            Op::RangeAnd { a, b, .. }
            | Op::RangeOr { a, b, .. }
            | Op::RangeEq { a, b, .. }
            | Op::RangeLeq { a, b, .. }
            | Op::RangeLt { a, b, .. }
            | Op::RangeAdd { a, b, .. }
            | Op::RangeSub { a, b, .. }
            | Op::RangeMul { a, b, .. }
            | Op::RangeDiv { a, b, .. }
            | Op::DetAdd { a, b, .. }
            | Op::DetSub { a, b, .. }
            | Op::DetMul { a, b, .. }
            | Op::DetDiv { a, b, .. }
            | Op::DetEq { a, b, .. }
            | Op::DetLeq { a, b, .. }
            | Op::DetLt { a, b, .. } => std::mem::swap(a, b),
            Op::RangeIfMerge { t, e, .. } => std::mem::swap(t, e),
            _ => return None,
        }
        Some(q)
    }

    fn redirect_first_operand(op: &Op, p: &Program) -> Option<Op> {
        let mut q = op.clone();
        let s = first_src_mut(&mut q)?;
        *s = match *s {
            Src::Reg(r) if p.nregs > 1 => Src::Reg((r + 1) % p.nregs as u32),
            Src::Col(c) => Src::Col(c + 1),
            Src::Const(c) if p.consts.len() > 1 => Src::Const((c + 1) % p.consts.len() as u32),
            _ => return None,
        };
        Some(q)
    }

    fn first_src_mut(op: &mut Op) -> Option<&mut Src> {
        match op {
            Op::RangeAnd { a, .. }
            | Op::RangeOr { a, .. }
            | Op::RangeNot { a, .. }
            | Op::RangeEq { a, .. }
            | Op::RangeLeq { a, .. }
            | Op::RangeLt { a, .. }
            | Op::RangeAdd { a, .. }
            | Op::RangeSub { a, .. }
            | Op::RangeMul { a, .. }
            | Op::RangeDiv { a, .. }
            | Op::RangeNeg { a, .. }
            | Op::DetAdd { a, .. }
            | Op::DetSub { a, .. }
            | Op::DetMul { a, .. }
            | Op::DetDiv { a, .. }
            | Op::DetNeg { a, .. }
            | Op::DetEq { a, .. }
            | Op::DetLeq { a, .. }
            | Op::DetLt { a, .. }
            | Op::DetNot { a, .. } => Some(a),
            Op::RangeCheckBool3 { src }
            | Op::DetAsBool { src, .. }
            | Op::JumpIfFalse { src, .. }
            | Op::JumpIfTrue { src, .. } => Some(src),
            Op::RangeIfMerge { c, .. } => Some(c),
            Op::RangeUncertain { l, .. } => Some(l),
            _ => None,
        }
    }

    /// Run a mutant through both tiers and, when nothing rejects it,
    /// the differential oracle against the original on the supplied row
    /// corpus. Oracle evaluation is only ever attempted on mutants that
    /// pass Tier A, whose guarantees (forward jumps, bounds, checked
    /// columns) make evaluation safe and terminating.
    pub fn classify(
        original: &Program,
        mutant: &Program,
        range_rows: &[Vec<RangeValue>],
        det_rows: &[Vec<Value>],
    ) -> Verdict {
        if mutant.verify().is_err() {
            return Verdict::CaughtTierA;
        }
        let baseline = original.verify_full().unwrap_or_default();
        match mutant.verify_full() {
            Err(_) => return Verdict::CaughtTierB,
            Ok(lints) => {
                let new = lints
                    .iter()
                    .any(|l| !baseline.iter().any(|b| b.kind == l.kind && b.node == l.node));
                if new {
                    return Verdict::CaughtLint;
                }
            }
        }
        let same = match original.mode() {
            Mode::Range => range_rows
                .iter()
                .all(|t| range_fingerprint(original, t) == range_fingerprint(mutant, t)),
            Mode::Det => {
                det_rows.iter().all(|t| det_fingerprint(original, t) == det_fingerprint(mutant, t))
            }
        };
        if same {
            Verdict::OracleEquivalent
        } else {
            Verdict::Missed
        }
    }

    fn range_fingerprint(p: &Program, tuple: &[RangeValue]) -> Result<Vec<RangeValue>, EvalError> {
        let mut regs = Vec::new();
        p.prepare_range_regs(&mut regs);
        p.eval_range_into(tuple, &mut regs)?;
        Ok((0..p.arity()).map(|i| p.range_output(i, tuple, &regs).clone()).collect())
    }

    fn det_fingerprint(p: &Program, tuple: &[Value]) -> Result<Vec<Value>, EvalError> {
        let mut regs = Vec::new();
        p.prepare_det_regs(&mut regs);
        p.eval_det_into(tuple, &mut regs)?;
        Ok((0..p.arity()).map(|i| p.det_output(i, tuple, &regs).clone()).collect())
    }

    /// A small mixed Int/Float/Bool oracle corpus of the given tuple
    /// width: enough value shapes to distinguish operand swaps, operand
    /// redirects, and clobbered registers on real programs.
    pub fn oracle_rows(width: usize) -> (Vec<Vec<RangeValue>>, Vec<Vec<Value>>) {
        let vals = [
            Value::Int(-3),
            Value::Int(0),
            Value::Int(2),
            Value::float(0.5),
            Value::float(-1.5),
            Value::Bool(true),
        ];
        let mut range_rows = Vec::new();
        let mut det_rows = Vec::new();
        for (r, base) in vals.iter().enumerate() {
            let mut rr = Vec::with_capacity(width);
            let mut dr = Vec::with_capacity(width);
            for c in 0..width {
                let v = &vals[(r + c) % vals.len()];
                dr.push(v.clone());
                if r % 2 == 0 {
                    rr.push(RangeValue::certain(v.clone()));
                } else {
                    // A genuinely uncertain band around the value.
                    let (lo, hi) = if v.total_cmp(base) == std::cmp::Ordering::Greater {
                        (base.clone(), v.clone())
                    } else {
                        (v.clone(), base.clone())
                    };
                    rr.push(
                        RangeValue::new(lo, v.clone(), hi)
                            .unwrap_or_else(|_| RangeValue::certain(v.clone())),
                    );
                }
            }
            range_rows.push(rr);
            det_rows.push(dr);
        }
        (range_rows, det_rows)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{col, lit};

    fn corpus() -> Vec<Expr> {
        vec![
            col(0).add(col(1)),
            col(0).sub(col(1)).mul(col(0)),
            col(0).div(col(1)),
            col(0).neg(),
            col(0).leq(col(1)),
            col(0).lt(lit(2i64)),
            col(0).geq(col(1)),
            col(0).gt(col(1)),
            col(0).eq(col(1)),
            col(0).neq(col(1)),
            col(0).leq(col(1)).and(col(0).geq(lit(0i64))),
            col(0).leq(col(1)).or(col(0).geq(lit(3i64))),
            col(0).lt(lit(5i64)).not(),
            Expr::if_then_else(col(0).leq(col(1)), col(0).add(lit(1i64)), col(1)),
            Expr::make_uncertain(col(0), col(1), col(0).add(col(1))),
            Expr::conj(vec![col(0).leq(lit(9i64)), col(1).geq(lit(-9i64))]),
            col(0),
            lit(42i64),
            lit(true).and(col(0).leq(col(1))),
            Expr::if_then_else(lit(true), col(0), col(1)),
        ]
    }

    /// Every lowered corpus program passes both tiers with zero
    /// diagnostics — the no-false-positive gate.
    #[test]
    fn corpus_verifies_clean() {
        for e in corpus() {
            for p in [Program::compile_range(&e), Program::compile_det(&e)] {
                let lints = p.verify_full().unwrap_or_else(|err| {
                    panic!("verifier rejected a fresh lowering of `{e}`: {err}")
                });
                assert!(lints.is_empty(), "lints on fresh lowering of `{e}`: {lints:?}");
            }
        }
        let many = corpus();
        for p in [Program::compile_range_many(&many), Program::compile_det_many(&many)] {
            assert_eq!(p.verify_full().unwrap(), vec![]);
        }
    }

    /// Every mutation-harness corruption of every corpus program is
    /// caught by Tier A/B, surfaces a new lint, or is provably
    /// behavior-preserving — and the corpus exercises every class.
    #[test]
    fn mutants_detected_or_equivalent() {
        let (range_rows, det_rows) = mutate::oracle_rows(2);
        let mut by_class: BTreeMap<&'static str, [usize; 2]> = BTreeMap::new();
        for e in corpus() {
            for p in [Program::compile_range(&e), Program::compile_det(&e)] {
                for m in mutate::mutants(&p) {
                    let v = mutate::classify(&p, &m.program, &range_rows, &det_rows);
                    let slot = by_class.entry(m.class).or_default();
                    slot[0] += 1;
                    if v == mutate::Verdict::Missed {
                        slot[1] += 1;
                    }
                    assert_ne!(
                        v,
                        mutate::Verdict::Missed,
                        "undetected behavior-changing mutant of `{e}` ({}: {})",
                        m.class,
                        m.detail
                    );
                }
            }
        }
        for class in [
            "retarget_jump",
            "drop_checkcol",
            "swap_operands",
            "clobber_register",
            "redirect_operand",
            "corrupt_span",
            "retarget_output",
        ] {
            assert!(by_class.contains_key(class), "corpus never exercised {class}");
        }
    }

    /// Tier B lints: statically certain hazards fire, literal
    /// conditions stay quiet.
    #[test]
    fn lint_inventory() {
        // Certain division by zero (range: the spans-zero guard).
        let p = Program::compile_range(&lit(1i64).div(lit(0i64)));
        let lints = p.verify_full().unwrap();
        assert!(lints.iter().any(|l| l.kind == LintKind::CertainDivByZero), "{lints:?}");
        let p = Program::compile_det(&lit(1i64).div(lit(0i64)));
        let lints = p.verify_full().unwrap();
        assert!(lints.iter().any(|l| l.kind == LintKind::CertainDivByZero), "{lints:?}");

        // Certain type error: arithmetic on a boolean constant.
        let p = Program::compile_range(&lit(true).add(col(0)));
        let lints = p.verify_full().unwrap();
        assert!(lints.iter().any(|l| l.kind == LintKind::CertainTypeError), "{lints:?}");

        // A computed-constant branch condition lints ...
        let e = lit(1i64).leq(lit(2i64)).and(col(0).gt(lit(0i64)));
        let p = Program::compile_det(&e);
        let lints = p.verify_full().unwrap();
        assert!(lints.iter().any(|l| l.kind == LintKind::ConstantCondition), "{lints:?}");
        // ... a literal one does not.
        let p = Program::compile_det(&lit(true).and(col(0).gt(lit(0i64))));
        assert_eq!(p.verify_full().unwrap(), vec![]);
        let p = Program::compile_range(&Expr::if_then_else(lit(true), col(0), col(1)));
        assert_eq!(p.verify_full().unwrap(), vec![]);
    }

    /// Diagnostics name the offending op and its source node.
    #[test]
    fn diagnostics_name_op_and_node() {
        let e = col(0).add(col(1)).div(col(1));
        let p = Program::compile_range(&e);
        let mut found = false;
        for m in mutate::mutants(&p) {
            if let Err(err) = m.program.verify() {
                assert!(err.op.is_some() || err.node.is_none(), "op-less error with node: {err}");
                if err.op.is_some() && err.source.is_some() {
                    found = true;
                }
            }
        }
        assert!(found, "no mutant produced an op+source diagnostic");
    }
}
