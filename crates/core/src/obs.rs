//! Query-engine observability: the shard-safe [`Metrics`] sink, the
//! structured [`QueryTrace`] span tree, and the EXPLAIN ANALYZE
//! renderers.
//!
//! Everything here is std-only and designed around one invariant:
//! **observing a query never changes its result**. Metrics are atomic
//! counters and bucketed duration histograms behind an
//! `Option<Arc<..>>` — the disabled default ([`Metrics::disabled`])
//! costs the hot path a single branch per instrumentation site, and
//! enabling them adds only relaxed atomic traffic off the row loops
//! (drivers, checkpoints, and phase boundaries; never per row).
//! Tracing ([`TraceBuilder`]) lives on the query thread alone, so span
//! bookkeeping is plain `RefCell` state with no synchronization at all.
//!
//! Layering: this module sits in `audb_core` below the execution
//! runtime so both `audb_exec` (morsel dispatch, sharded reduce,
//! governance checkpoints) and `audb_query` (planner decisions,
//! operator spans) can report into the same sink without a dependency
//! cycle. The query layer assembles the final [`QueryTrace`] from a
//! finished [`TraceBuilder`] plus a [`MetricsSnapshot`].
//!
//! The JSON shape emitted by [`QueryTrace::to_json`] is versioned
//! ([`TRACE_SCHEMA_VERSION`]) and documented in `docs/observability.md`;
//! CI validates a sample artifact against that schema.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::govern::ExecError;

/// Version stamped into every serialized trace; bump when the JSON
/// shape changes incompatibly.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Counters and timed sites
// ---------------------------------------------------------------------------

/// The fixed counter inventory. Names are stable (they appear in the
/// serialized trace); see `docs/observability.md` for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Executor entries ([`Executor::run`] calls, including the inline
    /// fast path and the meta-runs of reduce/shard drivers).
    DriversEntered,
    /// Morsels produced across all driver entries.
    MorselsDispatched,
    /// Shards dispatched by `run_shards` (fused pipeline chains).
    ShardsDispatched,
    /// Cooperative cancellation checkpoints taken (token attached).
    CancelChecks,
    /// Budget charge calls (budget attached).
    BudgetCharges,
    /// Rows charged to the budget.
    BudgetRowsCharged,
    /// Estimated bytes charged to the budget.
    BudgetBytesCharged,
    /// Worker panics contained at a morsel boundary.
    WorkerPanics,
    /// Test-harness faults injected (feature `faults`).
    InjectedFaults,
    /// Compiled → interpreted degradations taken.
    Degradations,
    /// Sharded-reduce (normalization) invocations.
    NormalizeRuns,
    /// Rows entering normalization.
    NormalizeRowsIn,
    /// Rows surviving normalization (in − out = merges + zero-drops).
    NormalizeRowsOut,
    /// Compiled programs rejected by the static verifier (Tier B) and
    /// degraded per-site to the interpreted operator.
    VerifyRejects,
    /// Queries admitted by the serving layer (granted an execution slot).
    Admitted,
    /// Queries shed by the serving layer (queue full or wait timed out).
    Shed,
    /// Serving-layer retry attempts taken after a transient fault.
    Retries,
    /// Circuit-breaker trips (prepared plan routed to the interpreter).
    BreakerTrips,
    /// Events dropped because the event log hit its retention cap.
    EventsDropped,
}

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; 19] = [
        Counter::DriversEntered,
        Counter::MorselsDispatched,
        Counter::ShardsDispatched,
        Counter::CancelChecks,
        Counter::BudgetCharges,
        Counter::BudgetRowsCharged,
        Counter::BudgetBytesCharged,
        Counter::WorkerPanics,
        Counter::InjectedFaults,
        Counter::Degradations,
        Counter::NormalizeRuns,
        Counter::NormalizeRowsIn,
        Counter::NormalizeRowsOut,
        Counter::VerifyRejects,
        Counter::Admitted,
        Counter::Shed,
        Counter::Retries,
        Counter::BreakerTrips,
        Counter::EventsDropped,
    ];

    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DriversEntered => "drivers_entered",
            Counter::MorselsDispatched => "morsels_dispatched",
            Counter::ShardsDispatched => "shards_dispatched",
            Counter::CancelChecks => "cancel_checks",
            Counter::BudgetCharges => "budget_charges",
            Counter::BudgetRowsCharged => "budget_rows_charged",
            Counter::BudgetBytesCharged => "budget_bytes_charged",
            Counter::WorkerPanics => "worker_panics",
            Counter::InjectedFaults => "injected_faults",
            Counter::Degradations => "degradations",
            Counter::NormalizeRuns => "normalize_runs",
            Counter::NormalizeRowsIn => "normalize_rows_in",
            Counter::NormalizeRowsOut => "normalize_rows_out",
            Counter::VerifyRejects => "verify_rejects",
            Counter::Admitted => "admitted",
            Counter::Shed => "shed",
            Counter::Retries => "retries",
            Counter::BreakerTrips => "breaker_trips",
            Counter::EventsDropped => "events_dropped",
        }
    }
}

/// Timed instrumentation sites (duration histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// One executor entry, dispatch to ordered merge.
    Driver,
    /// Sharded-reduce phase 1: scatter rows into key-hash shards.
    ReduceScatter,
    /// Sharded-reduce phase 2: per-shard hash-merge + sort.
    ReduceMergeSort,
    /// Sharded-reduce phase 3: sequential k-way merge.
    ReduceKway,
}

impl Site {
    /// Every site, in serialization order.
    pub const ALL: [Site; 4] =
        [Site::Driver, Site::ReduceScatter, Site::ReduceMergeSort, Site::ReduceKway];

    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Site::Driver => "driver",
            Site::ReduceScatter => "reduce_scatter",
            Site::ReduceMergeSort => "reduce_merge_sort",
            Site::ReduceKway => "reduce_kway",
        }
    }
}

const BUCKETS: usize = 40;

/// A power-of-two-bucketed duration histogram: bucket `i` counts
/// durations in `[2^i, 2^(i+1))` ns (bucket 0 also takes 0 ns).
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    entries: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn record(&self, ns: u64) {
        let b = (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.entries.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Structured runtime events
// ---------------------------------------------------------------------------

/// What kind of runtime event was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEventKind {
    /// A producer panic contained at a morsel boundary.
    WorkerPanic,
    /// A deterministic test-harness fault (feature `faults`).
    Injected,
    /// The query's cancel token tripped (observed at a checkpoint).
    Cancelled,
    /// The query's wall-clock deadline passed.
    DeadlineExceeded,
    /// A resource budget was exhausted.
    BudgetExceeded,
    /// The compiled path failed and evaluation degraded to the
    /// interpreter for one retry.
    Degraded,
    /// The static verifier rejected a freshly compiled program and the
    /// compile site fell back to the interpreted operator.
    VerifierRejected,
    /// The serving layer granted a query an execution slot.
    Admitted,
    /// The serving layer shed a query (queue full or wait timed out).
    Shed,
    /// The serving layer retried a query after a transient fault.
    Retried,
    /// A prepared plan's circuit breaker tripped open.
    BreakerTripped,
}

impl ExecEventKind {
    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            ExecEventKind::WorkerPanic => "worker_panic",
            ExecEventKind::Injected => "injected_fault",
            ExecEventKind::Cancelled => "cancelled",
            ExecEventKind::DeadlineExceeded => "deadline_exceeded",
            ExecEventKind::BudgetExceeded => "budget_exceeded",
            ExecEventKind::Degraded => "degraded_to_interpreter",
            ExecEventKind::VerifierRejected => "verifier_rejected",
            ExecEventKind::Admitted => "admitted",
            ExecEventKind::Shed => "shed",
            ExecEventKind::Retried => "retried",
            ExecEventKind::BreakerTripped => "breaker_tripped",
        }
    }

    /// Governance verdicts are query-global and final (a tripped token
    /// or exhausted budget re-reports at every later checkpoint): only
    /// the *first* observation is kept in the event log.
    fn first_only(self) -> bool {
        matches!(
            self,
            ExecEventKind::Cancelled
                | ExecEventKind::DeadlineExceeded
                | ExecEventKind::BudgetExceeded
        )
    }
}

/// One observed runtime event, addressed (when known) by the driver
/// sequence number and morsel index where it was observed — the same
/// coordinate system the fault-injection harness uses, so injected
/// faults can be asserted to land exactly where they were armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecEvent {
    pub kind: ExecEventKind,
    /// Sequence number of the executor entry (drivers enter sequentially
    /// on the query thread).
    pub driver: Option<usize>,
    /// Morsel index within that entry.
    pub morsel: Option<usize>,
    /// Human-readable specifics (panic payload, tripping operator, …).
    pub detail: String,
}

/// Cap on retained events: enough for every fault-matrix scenario,
/// bounded so a pathological query cannot grow the log unboundedly.
const MAX_EVENTS: usize = 256;

// ---------------------------------------------------------------------------
// The metrics sink
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MetricsInner {
    counters: [AtomicU64; Counter::ALL.len()],
    sites: [Histogram; Site::ALL.len()],
    events: Mutex<Vec<ExecEvent>>,
    drivers: AtomicUsize,
}

/// The cheap, shard-safe metrics sink. The disabled default is a
/// `None` — every instrumentation site pays one branch and nothing
/// else. Cloning shares the sink (all of a query's executors and
/// drivers report into one set of meters).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl Metrics {
    /// The no-op sink (the default): every record is a single branch.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// A live sink with zeroed meters.
    pub fn enabled() -> Self {
        Metrics { inner: Some(Arc::new(MetricsInner::default())) }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one duration at a timed site.
    #[inline]
    pub fn record_ns(&self, s: Site, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.sites[s as usize].record(ns);
        }
    }

    /// Claim the next driver sequence number. Driver entries happen
    /// sequentially on the query thread, so this numbering matches the
    /// fault harness's (`audb_exec::faults::FaultPlan`) when both are
    /// active for the same query.
    pub fn enter_driver(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.drivers.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Append a structured event (first-only kinds dedup; the log caps
    /// at [`MAX_EVENTS`]). Long-lived sinks (a serving engine) outgrow
    /// the cap quickly, so drops are counted ([`Counter::EventsDropped`])
    /// rather than silent — dashboards can detect truncation.
    pub fn record_event(&self, ev: ExecEvent) {
        let Some(inner) = &self.inner else { return };
        let mut log = inner.events.lock().unwrap_or_else(PoisonError::into_inner);
        if log.len() >= MAX_EVENTS {
            drop(log);
            self.add(Counter::EventsDropped, 1);
            return;
        }
        if ev.kind.first_only() && log.iter().any(|e| e.kind == ev.kind) {
            return;
        }
        log.push(ev);
    }

    /// Record a structured runtime fault as an event (and bump the
    /// matching counter). `driver`/`morsel` name the checkpoint that
    /// *observed* the fault; [`ExecError::Injected`] carries its own
    /// exact firing coordinates, which win.
    pub fn record_exec_error(&self, e: &ExecError, driver: Option<usize>, morsel: Option<usize>) {
        if self.inner.is_none() {
            return;
        }
        let (kind, driver, morsel) = match e {
            ExecError::WorkerPanic { morsel: m, .. } => {
                self.add(Counter::WorkerPanics, 1);
                (ExecEventKind::WorkerPanic, driver, Some(*m))
            }
            ExecError::Injected { driver: d, morsel: m } => {
                self.add(Counter::InjectedFaults, 1);
                (ExecEventKind::Injected, Some(*d), Some(*m))
            }
            ExecError::Cancelled => (ExecEventKind::Cancelled, driver, morsel),
            ExecError::DeadlineExceeded => (ExecEventKind::DeadlineExceeded, driver, morsel),
            ExecError::BudgetExceeded { .. } => (ExecEventKind::BudgetExceeded, driver, morsel),
        };
        self.record_event(ExecEvent { kind, driver, morsel, detail: e.to_string() });
    }

    /// Drain the event log.
    pub fn take_events(&self) -> Vec<ExecEvent> {
        match &self.inner {
            Some(inner) => {
                std::mem::take(&mut *inner.events.lock().unwrap_or_else(PoisonError::into_inner))
            }
            None => Vec::new(),
        }
    }

    /// A plain-data copy of every meter, for trace embedding.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = Counter::ALL
            .iter()
            .map(|c| (c.name(), inner.counters[*c as usize].load(Ordering::Relaxed)))
            .collect();
        let sites = Site::ALL
            .iter()
            .map(|s| {
                let h = &inner.sites[*s as usize];
                SiteStats {
                    site: s.name(),
                    entries: h.entries.load(Ordering::Relaxed),
                    total_ns: h.total_ns.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| (1u64 << i, n))
                        })
                        .collect(),
                }
            })
            .collect();
        MetricsSnapshot { counters, sites }
    }
}

/// Duration statistics for one timed [`Site`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteStats {
    pub site: &'static str,
    pub entries: u64,
    pub total_ns: u64,
    /// Non-empty histogram buckets as `(bucket lower bound in ns, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Plain-data copy of a [`Metrics`] sink at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(counter name, value)` for every counter, in inventory order.
    pub counters: Vec<(&'static str, u64)>,
    pub sites: Vec<SiteStats>,
}

impl MetricsSnapshot {
    /// Look up one counter by name (`None` on an empty snapshot).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// One node of the execution trace: an operator (or phase) with its
/// planner/runtime annotations and actual row/byte/time measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span kind: `query`, `attempt`, `scan`, `select`, `project`,
    /// `join`, `fused-chain`, `union`, `difference`, `distinct`,
    /// `aggregate`.
    pub op: String,
    /// Operator-specific description (predicate, table name, …).
    pub detail: String,
    /// Key/value annotations: planner strategy, fuse/fallback reasons,
    /// compiled-vs-interpreted, shard/worker counts, …
    pub attrs: Vec<(&'static str, String)>,
    pub rows_in: Option<u64>,
    pub rows_out: Option<u64>,
    pub bytes_out: Option<u64>,
    pub elapsed_ns: u64,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// The value of an attribute, if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }

    /// Depth-first iteration over this span and all descendants.
    pub fn walk(&self, f: &mut impl FnMut(&TraceSpan)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// The first descendant (or self) with the given op kind.
    pub fn find(&self, op: &str) -> Option<&TraceSpan> {
        if self.op == op {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(op))
    }
}

/// A finished execution trace: the span tree plus the runtime's event
/// log and metric meters, serializable as EXPLAIN ANALYZE text
/// ([`QueryTrace::render_text`], also the `Display` impl) or versioned
/// JSON ([`QueryTrace::to_json`]).
#[must_use = "a trace is the whole point of a traced evaluation; render or inspect it"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// [`TRACE_SCHEMA_VERSION`] at serialization time.
    pub version: u32,
    /// Engine-configuration echo: `(knob, value)` pairs.
    pub engine: Vec<(&'static str, String)>,
    pub root: TraceSpan,
    pub events: Vec<ExecEvent>,
    pub metrics: MetricsSnapshot,
    /// Wall-clock for the whole evaluation, including trace assembly.
    pub total_ns: u64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn span_json(s: &TraceSpan, out: &mut String) {
    out.push_str(&format!(
        "{{\"op\":\"{}\",\"detail\":\"{}\",\"attrs\":{{",
        json_escape(&s.op),
        json_escape(&s.detail)
    ));
    for (i, (k, v)) in s.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str(&format!(
        "}},\"rows_in\":{},\"rows_out\":{},\"bytes_out\":{},\"elapsed_ns\":{},\"children\":[",
        json_opt(s.rows_in),
        json_opt(s.rows_out),
        json_opt(s.bytes_out),
        s.elapsed_ns
    ));
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(c, out);
    }
    out.push_str("]}");
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn span_text(s: &TraceSpan, prefix: &str, last: bool, top: bool, out: &mut String) {
    let branch = if top {
        String::new()
    } else {
        format!("{prefix}{}", if last { "└─ " } else { "├─ " })
    };
    let mut line = format!("{branch}{}", s.op);
    if !s.detail.is_empty() {
        line.push_str(&format!(" {}", s.detail));
    }
    for (k, v) in &s.attrs {
        line.push_str(&format!(" {k}={v}"));
    }
    let mut meas: Vec<String> = Vec::new();
    if let Some(n) = s.rows_in {
        meas.push(format!("rows_in={n}"));
    }
    if let Some(n) = s.rows_out {
        meas.push(format!("rows={n}"));
    }
    if let Some(n) = s.bytes_out {
        meas.push(format!("bytes={n}"));
    }
    meas.push(format!("time={}", fmt_ns(s.elapsed_ns)));
    line.push_str(&format!("  ({})", meas.join(" ")));
    out.push_str(&line);
    out.push('\n');
    let child_prefix =
        if top { String::new() } else { format!("{prefix}{}", if last { "   " } else { "│  " }) };
    for (i, c) in s.children.iter().enumerate() {
        span_text(c, &child_prefix, i + 1 == s.children.len(), false, out);
    }
}

impl QueryTrace {
    /// Serialize as versioned JSON (schema in `docs/observability.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"version\":{},\"engine\":{{", self.version));
        for (i, (k, v)) in self.engine.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str(&format!("}},\"total_ns\":{},\"root\":", self.total_ns));
        span_json(&self.root, &mut out);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"driver\":{},\"morsel\":{},\"detail\":\"{}\"}}",
                e.kind.name(),
                json_opt(e.driver.map(|d| d as u64)),
                json_opt(e.morsel.map(|m| m as u64)),
                json_escape(&e.detail)
            ));
        }
        out.push_str("],\"metrics\":{\"counters\":{");
        for (i, (k, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"sites\":[");
        for (i, s) in self.metrics.sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":\"{}\",\"entries\":{},\"total_ns\":{},\"buckets\":[",
                s.site, s.entries, s.total_ns
            ));
            for (j, (lo, n)) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{lo},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("]}}");
        out
    }

    /// The EXPLAIN ANALYZE rendering: the annotated plan tree followed
    /// by runtime events and non-zero meters.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let engine: Vec<String> = self.engine.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!("engine: {}\n", engine.join(" ")));
        span_text(&self.root, "", true, true, &mut out);
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                let at = match (e.driver, e.morsel) {
                    (Some(d), Some(m)) => format!(" @ driver {d} morsel {m}"),
                    (None, Some(m)) => format!(" @ morsel {m}"),
                    _ => String::new(),
                };
                out.push_str(&format!("  {}{}: {}\n", e.kind.name(), at, e.detail));
            }
        }
        let nonzero: Vec<String> = self
            .metrics
            .counters
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if !nonzero.is_empty() {
            out.push_str(&format!("counters: {}\n", nonzero.join(" ")));
        }
        for s in &self.metrics.sites {
            if s.entries > 0 {
                out.push_str(&format!(
                    "site {}: entries={} total={}\n",
                    s.site,
                    s.entries,
                    fmt_ns(s.total_ns)
                ));
            }
        }
        out.push_str(&format!("total: {}\n", fmt_ns(self.total_ns)));
        out
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

// ---------------------------------------------------------------------------
// The span builder
// ---------------------------------------------------------------------------

struct SpanNode {
    span: TraceSpan,
    parent: Option<usize>,
    started: Instant,
    open: bool,
}

struct TraceInner {
    arena: Vec<SpanNode>,
    stack: Vec<usize>,
}

/// Builds the span tree during evaluation. Lives on the query thread
/// only (operators parallelize internally, but the plan tree is walked
/// sequentially), so this is plain `RefCell` state — deliberately NOT
/// `Sync`, which is why it is passed alongside the executor rather than
/// stored inside it.
///
/// Handles are arena indices; the disabled builder hands out a sentinel
/// and ignores every call, so untraced evaluation pays one branch per
/// span site.
#[derive(Default)]
pub struct TraceBuilder {
    inner: Option<RefCell<TraceInner>>,
}

/// Sentinel handle of the disabled builder.
const NO_SPAN: usize = usize::MAX;

impl TraceBuilder {
    /// The no-op builder (the default).
    pub fn disabled() -> Self {
        TraceBuilder { inner: None }
    }

    /// A live builder with an empty arena.
    pub fn enabled() -> Self {
        TraceBuilder {
            inner: Some(RefCell::new(TraceInner { arena: Vec::new(), stack: Vec::new() })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span as a child of the innermost open span. `detail` is
    /// lazy so the disabled path never formats anything.
    pub fn open(&self, op: &'static str, detail: impl FnOnce() -> String) -> usize {
        let Some(inner) = &self.inner else { return NO_SPAN };
        let mut t = inner.borrow_mut();
        let parent = t.stack.last().copied();
        let id = t.arena.len();
        t.arena.push(SpanNode {
            span: TraceSpan { op: op.to_string(), detail: detail(), ..TraceSpan::default() },
            parent,
            started: Instant::now(),
            open: true,
        });
        t.stack.push(id);
        id
    }

    /// Attach a key/value annotation to an open span.
    pub fn attr(&self, h: usize, key: &'static str, value: impl FnOnce() -> String) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        if let Some(node) = t.arena.get_mut(h) {
            node.span.attrs.push((key, value()));
        }
    }

    /// Record the span's input cardinality.
    pub fn rows_in(&self, h: usize, rows: u64) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        if let Some(node) = t.arena.get_mut(h) {
            node.span.rows_in = Some(rows);
        }
    }

    /// Close a span, recording output measurements and elapsed time.
    /// Any inner spans still open (error unwinds) close with it.
    pub fn close(&self, h: usize, rows_out: Option<u64>, bytes_out: Option<u64>) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        while let Some(&top) = t.stack.last() {
            t.stack.pop();
            let node = &mut t.arena[top];
            node.open = false;
            node.span.elapsed_ns = node.started.elapsed().as_nanos() as u64;
            if top == h {
                node.span.rows_out = rows_out;
                node.span.bytes_out = bytes_out;
                break;
            }
        }
    }

    /// Close every open span above stack depth `keep`, tagging each
    /// with the error — the failed-attempt unwind before a degradation
    /// retry opens its spans at the right depth.
    pub fn unwind(&self, keep: usize, error: &str) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        while t.stack.len() > keep {
            let Some(top) = t.stack.pop() else { break };
            let node = &mut t.arena[top];
            node.open = false;
            node.span.elapsed_ns = node.started.elapsed().as_nanos() as u64;
            node.span.attrs.push(("error", error.to_string()));
        }
    }

    /// Current open-span depth (for [`TraceBuilder::unwind`] anchors).
    pub fn depth(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.borrow().stack.len(),
            None => 0,
        }
    }

    /// Finish the trace: close any spans still open and assemble the
    /// tree. Multiple roots (shouldn't happen when the caller opened a
    /// top-level span first) are wrapped in a synthetic `query` root.
    /// Returns `None` for the disabled builder.
    pub fn finish(self) -> Option<TraceSpan> {
        let inner = self.inner?;
        let mut t = inner.into_inner();
        while let Some(top) = t.stack.pop() {
            let node = &mut t.arena[top];
            node.open = false;
            node.span.elapsed_ns = node.started.elapsed().as_nanos() as u64;
        }
        // Assemble bottom-up: children were pushed after their parents,
        // so a reverse sweep moves each span into its parent with
        // sibling order preserved (each parent's children are collected
        // in reverse, then reversed once).
        let n = t.arena.len();
        let mut spans: Vec<Option<TraceSpan>> = Vec::with_capacity(n);
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
        for node in t.arena {
            spans.push(Some(node.span));
            parents.push(node.parent);
        }
        for i in (0..n).rev() {
            if let Some(p) = parents[i] {
                if let Some(child) = spans[i].take() {
                    if let Some(parent) = spans[p].as_mut() {
                        parent.children.push(child);
                    }
                }
            }
        }
        let mut roots: Vec<TraceSpan> = spans
            .into_iter()
            .flatten()
            .map(|mut s| {
                fix_child_order(&mut s);
                s
            })
            .collect();
        match roots.len() {
            0 => Some(TraceSpan::default()),
            1 => roots.pop(),
            _ => {
                Some(TraceSpan { op: "query".to_string(), children: roots, ..TraceSpan::default() })
            }
        }
    }
}

/// The reverse assembly sweep pushes children in reverse sibling order;
/// restore arena (= execution) order throughout the tree.
fn fix_child_order(s: &mut TraceSpan) {
    s.children.reverse();
    for c in &mut s.children {
        fix_child_order(c);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_are_noops() {
        let m = Metrics::disabled();
        m.add(Counter::MorselsDispatched, 5);
        m.record_ns(Site::Driver, 100);
        m.record_event(ExecEvent {
            kind: ExecEventKind::Cancelled,
            driver: None,
            morsel: None,
            detail: String::new(),
        });
        assert!(!m.is_enabled());
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.take_events().is_empty());
    }

    #[test]
    fn counters_and_sites_accumulate() {
        let m = Metrics::enabled();
        m.add(Counter::MorselsDispatched, 3);
        m.add(Counter::MorselsDispatched, 2);
        m.record_ns(Site::Driver, 1000);
        m.record_ns(Site::Driver, 3000);
        let snap = m.snapshot();
        assert_eq!(snap.counter("morsels_dispatched"), Some(5));
        assert_eq!(snap.counter("cancel_checks"), Some(0));
        let driver = &snap.sites[Site::Driver as usize];
        assert_eq!(driver.entries, 2);
        assert_eq!(driver.total_ns, 4000);
        assert!(!driver.buckets.is_empty());
    }

    #[test]
    fn clone_shares_meters() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m2.add(Counter::NormalizeRuns, 1);
        assert_eq!(m.snapshot().counter("normalize_runs"), Some(1));
    }

    #[test]
    fn governance_verdicts_dedup_to_first() {
        let m = Metrics::enabled();
        for i in 0..3 {
            m.record_exec_error(&ExecError::Cancelled, Some(0), Some(i));
        }
        m.record_exec_error(
            &ExecError::WorkerPanic { morsel: 7, payload: "x".into() },
            Some(1),
            Some(7),
        );
        m.record_exec_error(
            &ExecError::WorkerPanic { morsel: 8, payload: "y".into() },
            Some(1),
            Some(8),
        );
        let events = m.take_events();
        assert_eq!(events.len(), 3, "{events:?}");
        assert_eq!(events[0].kind, ExecEventKind::Cancelled);
        assert_eq!(events[0].morsel, Some(0), "first cancel observation wins");
        assert_eq!(m.snapshot().counter("worker_panics"), Some(2));
    }

    #[test]
    fn injected_coordinates_come_from_the_error() {
        let m = Metrics::enabled();
        m.record_exec_error(&ExecError::Injected { driver: 3, morsel: 9 }, Some(0), Some(0));
        let ev = &m.take_events()[0];
        assert_eq!((ev.driver, ev.morsel), (Some(3), Some(9)));
    }

    #[test]
    fn event_log_saturation_counts_drops() {
        let m = Metrics::enabled();
        for i in 0..MAX_EVENTS + 10 {
            m.record_event(ExecEvent {
                kind: ExecEventKind::WorkerPanic,
                driver: Some(0),
                morsel: Some(i),
                detail: String::new(),
            });
        }
        assert_eq!(m.snapshot().counter("events_dropped"), Some(10));
        assert_eq!(m.take_events().len(), MAX_EVENTS);
        // the drained log frees capacity: appends count drops no more
        m.record_event(ExecEvent {
            kind: ExecEventKind::WorkerPanic,
            driver: None,
            morsel: None,
            detail: String::new(),
        });
        assert_eq!(m.snapshot().counter("events_dropped"), Some(10));
    }

    #[test]
    fn driver_numbering_is_sequential() {
        let m = Metrics::enabled();
        assert_eq!(m.enter_driver(), 0);
        assert_eq!(m.enter_driver(), 1);
        assert_eq!(Metrics::disabled().enter_driver(), 0);
    }

    #[test]
    fn trace_builder_nests_and_orders_children() {
        let tr = TraceBuilder::enabled();
        let root = tr.open("query", || "q".into());
        let a = tr.open("select", || "p1".into());
        tr.close(a, Some(10), None);
        let b = tr.open("join", || "p2".into());
        let c = tr.open("scan", || "t".into());
        tr.close(c, Some(5), Some(100));
        tr.close(b, Some(20), None);
        tr.rows_in(root, 30);
        tr.close(root, Some(20), Some(400));
        let span = tr.finish().unwrap_or_default();
        assert_eq!(span.op, "query");
        assert_eq!(span.rows_in, Some(30));
        assert_eq!(span.children.len(), 2);
        assert_eq!(span.children[0].op, "select");
        assert_eq!(span.children[1].op, "join");
        assert_eq!(span.children[1].children[0].op, "scan");
        assert_eq!(span.children[1].children[0].bytes_out, Some(100));
    }

    #[test]
    fn unwind_closes_and_tags_open_spans() {
        let tr = TraceBuilder::enabled();
        let root = tr.open("query", String::new);
        let _a = tr.open("attempt", String::new);
        let _b = tr.open("join", String::new);
        assert_eq!(tr.depth(), 3);
        tr.unwind(1, "boom");
        assert_eq!(tr.depth(), 1);
        let retry = tr.open("attempt", || "retry".into());
        tr.close(retry, Some(1), None);
        tr.close(root, Some(1), None);
        let span = tr.finish().unwrap_or_default();
        assert_eq!(span.children.len(), 2, "failed + retry attempts side by side");
        assert_eq!(span.children[0].attr("error"), Some("boom"));
        assert_eq!(span.children[0].children[0].attr("error"), Some("boom"));
        assert_eq!(span.children[1].detail, "retry");
    }

    #[test]
    fn disabled_builder_is_inert() {
        let tr = TraceBuilder::disabled();
        let h = tr.open("query", || unreachable!("detail must stay lazy"));
        tr.attr(h, "k", || unreachable!());
        tr.close(h, Some(1), None);
        assert!(tr.finish().is_none());
    }

    #[test]
    fn trace_serializes_to_json_and_text() {
        let tr = TraceBuilder::enabled();
        let root = tr.open("query", || "σ[x](\"t\")".into());
        let s = tr.open("select", || "x > 1".into());
        tr.attr(s, "compiled", || "true".into());
        tr.close(s, Some(3), None);
        tr.close(root, Some(3), Some(42));
        let m = Metrics::enabled();
        m.add(Counter::MorselsDispatched, 2);
        m.record_exec_error(&ExecError::Injected { driver: 0, morsel: 1 }, None, None);
        let trace = QueryTrace {
            version: TRACE_SCHEMA_VERSION,
            engine: vec![("workers", "4".to_string())],
            root: tr.finish().unwrap_or_default(),
            events: m.take_events(),
            metrics: m.snapshot(),
            total_ns: 12345,
        };
        let json = trace.to_json();
        assert!(json.starts_with("{\"version\":1,"), "{json}");
        assert!(json.contains("\"engine\":{\"workers\":\"4\"}"), "{json}");
        assert!(json.contains("\"op\":\"select\""), "{json}");
        assert!(json.contains("\"compiled\":\"true\""), "{json}");
        assert!(json.contains("\"kind\":\"injected_fault\""), "{json}");
        assert!(json.contains("\"morsels_dispatched\":2"), "{json}");
        // escaping: the quote inside the query detail is escaped
        assert!(json.contains("σ[x](\\\"t\\\")"), "{json}");
        let text = trace.render_text();
        assert!(text.contains("query"), "{text}");
        assert!(text.contains("└─ select"), "{text}");
        assert!(text.contains("rows=3"), "{text}");
        assert!(text.contains("injected_fault"), "{text}");
        assert!(text.contains("morsels_dispatched=2"), "{text}");
        assert_eq!(format!("{trace}"), text);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let m = Metrics::enabled();
        m.record_ns(Site::ReduceKway, 0);
        m.record_ns(Site::ReduceKway, 1);
        m.record_ns(Site::ReduceKway, 1024);
        m.record_ns(Site::ReduceKway, 1500);
        let snap = m.snapshot();
        let k = &snap.sites[Site::ReduceKway as usize];
        assert_eq!(k.entries, 4);
        // 0 and 1 land in bucket 2^0; 1024 and 1500 in bucket 2^10
        assert_eq!(k.buckets, vec![(1, 2), (1024, 2)]);
    }
}
