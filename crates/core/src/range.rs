//! Range-annotated values `[lb / sg / ub]` — the domain `D_I` of
//! Definition 6.
//!
//! A [`RangeValue`] bounds an attribute value across all possible worlds:
//! `lb ≤ v ≤ ub` in every world, and `sg` is the value in the
//! selected-guess world (SGW).

use std::cmp::Ordering;
use std::fmt;

use crate::error::EvalError;
use crate::value::Value;

/// An element of the range-annotated domain `D_I` (Definition 6):
/// a triple `[lb / sg / ub]` with `lb ≤ sg ≤ ub` in the domain order.
///
/// ```
/// use audb_core::{RangeValue, Value};
///
/// // Los Angeles' infection rate: between 3% and 4%, guess 3%
/// let rate = RangeValue::range(3i64, 3i64, 4i64);
/// assert!(rate.bounds(&Value::Int(4)));
/// assert!(!rate.bounds(&Value::Int(5)));
/// assert!(!rate.is_certain());
///
/// // a completely unknown value covers the whole domain
/// let null = RangeValue::unknown(Value::Int(0));
/// assert!(null.bounds(&Value::str("anything")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RangeValue {
    pub lb: Value,
    pub sg: Value,
    pub ub: Value,
}

impl RangeValue {
    /// Construct, validating `lb ≤ sg ≤ ub`.
    pub fn new(lb: Value, sg: Value, ub: Value) -> Result<Self, EvalError> {
        if lb.total_cmp(&sg) == Ordering::Greater || sg.total_cmp(&ub) == Ordering::Greater {
            return Err(EvalError::InvalidRange(format!("[{lb} / {sg} / {ub}]")));
        }
        Ok(RangeValue { lb, sg, ub })
    }

    /// Construct without validation; used internally where the invariant
    /// is guaranteed by construction (debug-asserted).
    pub(crate) fn new_unchecked(lb: Value, sg: Value, ub: Value) -> Self {
        debug_assert!(
            lb.total_cmp(&sg) != Ordering::Greater && sg.total_cmp(&ub) != Ordering::Greater,
            "invalid range [{lb} / {sg} / {ub}]"
        );
        RangeValue { lb, sg, ub }
    }

    /// A certain value `[v / v / v]`.
    pub fn certain(v: impl Into<Value>) -> Self {
        let v = v.into();
        RangeValue { lb: v.clone(), sg: v.clone(), ub: v }
    }

    /// A completely unknown value with a selected guess:
    /// `[MinVal / sg / MaxVal]` (what `null` becomes on translation).
    pub fn unknown(sg: impl Into<Value>) -> Self {
        RangeValue { lb: Value::MinVal, sg: sg.into(), ub: Value::MaxVal }
    }

    /// Shorthand for a three-part range; panics on invalid triples
    /// (convenient in tests and generators).
    #[allow(clippy::expect_used)] // the panic is this constructor's documented contract
    pub fn range(lb: impl Into<Value>, sg: impl Into<Value>, ub: impl Into<Value>) -> Self {
        Self::new(lb.into(), sg.into(), ub.into()).expect("invalid range triple")
    }

    /// Is this a certain value (`lb = sg = ub`)?
    pub fn is_certain(&self) -> bool {
        self.lb == self.sg && self.sg == self.ub
    }

    /// Does this range bound the deterministic value `v` (Definition 10's
    /// per-value condition)?
    pub fn bounds(&self, v: &Value) -> bool {
        self.lb.total_cmp(v) != Ordering::Greater && v.total_cmp(&self.ub) != Ordering::Greater
    }

    /// Do two ranges overlap, i.e. may they denote the same value in some
    /// world (the `≃` building block of Definition 22)?
    pub fn overlaps(&self, other: &RangeValue) -> bool {
        self.lb.total_cmp(&other.ub) != Ordering::Greater
            && other.lb.total_cmp(&self.ub) != Ordering::Greater
    }

    /// Minimum bounding box of two ranges keeping `self`'s selected guess
    /// (used by the SG-combiner `Ψ`, Definition 21).
    pub fn merge_keep_sg(&self, other: &RangeValue) -> RangeValue {
        RangeValue::new_unchecked(
            Value::min_of(self.lb.clone(), other.lb.clone()),
            self.sg.clone(),
            Value::max_of(self.ub.clone(), other.ub.clone()),
        )
    }

    /// Interval width as a float, for tightness metrics. Sentinel bounds
    /// count as the provided domain half-width.
    pub fn width(&self, domain_halfwidth: f64) -> f64 {
        let lo = self.lb.as_f64().unwrap_or(match self.lb {
            Value::MinVal => -domain_halfwidth,
            _ => 0.0,
        });
        let hi = self.ub.as_f64().unwrap_or(match self.ub {
            Value::MaxVal => domain_halfwidth,
            _ => 0.0,
        });
        (hi - lo).max(0.0)
    }

    /// Boolean-range view `(lb, sg, ub)`; errors when any component is
    /// not a boolean.
    pub fn as_bool3(&self) -> Result<(bool, bool, bool), EvalError> {
        Ok((self.lb.as_bool()?, self.sg.as_bool()?, self.ub.as_bool()?))
    }

    /// The certainly-true / possibly-true pair of a boolean range.
    pub fn certainly_true(&self) -> bool {
        matches!(self.lb, Value::Bool(true))
    }
    pub fn possibly_true(&self) -> bool {
        matches!(self.ub, Value::Bool(true))
    }
}

impl fmt::Display for RangeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_certain() {
            write!(f, "{}", self.sg)
        } else {
            write!(f, "[{} / {} / {}]", self.lb, self.sg, self.ub)
        }
    }
}

impl From<Value> for RangeValue {
    fn from(v: Value) -> Self {
        RangeValue::certain(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_order() {
        assert!(RangeValue::new(Value::Int(1), Value::Int(2), Value::Int(3)).is_ok());
        assert!(RangeValue::new(Value::Int(3), Value::Int(2), Value::Int(3)).is_err());
        assert!(RangeValue::new(Value::Int(1), Value::Int(4), Value::Int(3)).is_err());
    }

    #[test]
    fn certain_and_unknown() {
        let c = RangeValue::certain(5i64);
        assert!(c.is_certain());
        assert!(c.bounds(&Value::Int(5)));
        assert!(!c.bounds(&Value::Int(6)));

        let u = RangeValue::unknown(7i64);
        assert!(!u.is_certain());
        assert!(u.bounds(&Value::Int(i64::MIN)));
        assert!(u.bounds(&Value::str("anything")));
        assert!(u.bounds(&Value::Null));
    }

    #[test]
    fn overlap() {
        let a = RangeValue::range(1i64, 2i64, 3i64);
        let b = RangeValue::range(3i64, 4i64, 5i64);
        let c = RangeValue::range(4i64, 4i64, 5i64);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // the paper's example: [1/2/3] and [2/3/5] both match value 2
        let d = RangeValue::range(2i64, 3i64, 5i64);
        assert!(a.overlaps(&d));
        assert!(a.bounds(&Value::Int(2)) && d.bounds(&Value::Int(2)));
    }

    #[test]
    fn merge_bounding_box() {
        let a = RangeValue::range(1i64, 2i64, 3i64);
        let b = RangeValue::range(0i64, 3i64, 7i64);
        let m = a.merge_keep_sg(&b);
        assert_eq!(m, RangeValue::range(0i64, 2i64, 7i64));
    }

    #[test]
    fn boolean_range_domain_of_example_5() {
        // D_I over booleans has exactly 4 elements (Example 5).
        let f = Value::Bool(false);
        let t = Value::Bool(true);
        let all = [
            RangeValue::new(t.clone(), t.clone(), t.clone()),
            RangeValue::new(f.clone(), t.clone(), t.clone()),
            RangeValue::new(f.clone(), f.clone(), t.clone()),
            RangeValue::new(f.clone(), f.clone(), f.clone()),
        ];
        assert!(all.iter().all(|r| r.is_ok()));
        assert!(RangeValue::new(t, f, Value::Bool(true)).is_err());
    }

    #[test]
    fn width_metric() {
        assert_eq!(RangeValue::range(2i64, 3i64, 10i64).width(100.0), 8.0);
        assert_eq!(RangeValue::certain(5i64).width(100.0), 0.0);
        assert_eq!(RangeValue::unknown(0i64).width(50.0), 100.0);
    }
}
