//! Tuple-level annotations: `K_UA = K²` pairs (Definition 2, UA-DBs) and
//! `K_AU ⊂ K³` ordered triples (Definition 11, AU-DBs), instantiated for
//! bag semantics (`K = N`).

use std::fmt;

use crate::error::EvalError;
use crate::semiring::{MonusSemiring, NaturallyOrdered, Semiring};

/// An element of `N_AU`: `(lb, sg, ub)` with `lb ≤ sg ≤ ub` (Def. 11).
///
/// `lb` lower-bounds the tuple's certain multiplicity, `sg` is its
/// multiplicity in the selected-guess world, `ub` upper-bounds its
/// possible multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuAnnot {
    pub lb: u64,
    pub sg: u64,
    pub ub: u64,
}

impl AuAnnot {
    pub fn new(lb: u64, sg: u64, ub: u64) -> Result<Self, EvalError> {
        if lb > sg || sg > ub {
            return Err(EvalError::InvalidAnnotation(format!("({lb}, {sg}, {ub})")));
        }
        Ok(AuAnnot { lb, sg, ub })
    }

    /// Shorthand; panics on invalid triples (tests / generators).
    #[allow(clippy::expect_used)] // the panic is this constructor's documented contract
    pub fn triple(lb: u64, sg: u64, ub: u64) -> Self {
        Self::new(lb, sg, ub).expect("invalid AU annotation")
    }

    /// A certain tuple occurring exactly once in every world.
    pub fn certain_one() -> Self {
        AuAnnot { lb: 1, sg: 1, ub: 1 }
    }

    /// Map a boolean triple (a range-annotated condition result) into
    /// `N_AU` — the mapping `M_K` of Definition 19.
    pub fn from_bool3(lb: bool, sg: bool, ub: bool) -> Self {
        AuAnnot { lb: lb as u64, sg: sg as u64, ub: ub as u64 }
    }

    /// Is this the zero annotation `(0,0,0)`?
    pub fn is_zero(&self) -> bool {
        self.ub == 0
    }
}

impl Semiring for AuAnnot {
    fn zero() -> Self {
        AuAnnot { lb: 0, sg: 0, ub: 0 }
    }
    fn one() -> Self {
        AuAnnot { lb: 1, sg: 1, ub: 1 }
    }
    /// Pointwise; preserves `lb ≤ sg ≤ ub` because `+` preserves the
    /// natural order (Section 6.1).
    fn plus(&self, other: &Self) -> Self {
        AuAnnot {
            lb: self.lb.plus(&other.lb),
            sg: self.sg.plus(&other.sg),
            ub: self.ub.plus(&other.ub),
        }
    }
    fn times(&self, other: &Self) -> Self {
        AuAnnot {
            lb: self.lb.times(&other.lb),
            sg: self.sg.times(&other.sg),
            ub: self.ub.times(&other.ub),
        }
    }
}

impl NaturallyOrdered for AuAnnot {
    fn nat_leq(&self, other: &Self) -> bool {
        self.lb <= other.lb && self.sg <= other.sg && self.ub <= other.ub
    }
}

impl AuAnnot {
    /// Bound-preserving monus for set difference (Section 8.2): the lower
    /// bound subtracts the *upper* bound of the subtrahend and vice versa.
    /// (The naive pointwise monus does not preserve bounds.)
    pub fn monus_bounds(&self, sub_ub_for_lb: u64, sub_sg: u64, sub_lb_for_ub: u64) -> AuAnnot {
        let lb = self.lb.monus(&sub_ub_for_lb);
        let sg = self.sg.monus(&sub_sg);
        let ub = self.ub.monus(&sub_lb_for_ub);
        // Soundness of the triple ordering is argued in the difference
        // operator (the subtracted quantities are themselves ordered).
        debug_assert!(lb <= sg && sg <= ub, "monus broke ordering: {lb},{sg},{ub}");
        AuAnnot { lb, sg, ub }
    }
}

impl fmt::Display for AuAnnot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.lb, self.sg, self.ub)
    }
}

/// An element of `N_UA = N²` (Definition 2): `[certain, sg]` where
/// `certain` under-approximates the certain multiplicity and `sg` is the
/// multiplicity in the SGW.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UaAnnot {
    pub certain: u64,
    pub sg: u64,
}

impl UaAnnot {
    pub fn new(certain: u64, sg: u64) -> Self {
        UaAnnot { certain, sg }
    }
    pub fn is_zero(&self) -> bool {
        self.certain == 0 && self.sg == 0
    }
}

impl Semiring for UaAnnot {
    fn zero() -> Self {
        UaAnnot { certain: 0, sg: 0 }
    }
    fn one() -> Self {
        UaAnnot { certain: 1, sg: 1 }
    }
    fn plus(&self, other: &Self) -> Self {
        UaAnnot { certain: self.certain + other.certain, sg: self.sg + other.sg }
    }
    fn times(&self, other: &Self) -> Self {
        UaAnnot {
            certain: self.certain.saturating_mul(other.certain),
            sg: self.sg.saturating_mul(other.sg),
        }
    }
}

impl fmt::Display for UaAnnot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.certain, self.sg)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn au_annot_invariant() {
        assert!(AuAnnot::new(1, 2, 3).is_ok());
        assert!(AuAnnot::new(2, 1, 3).is_err());
        assert!(AuAnnot::new(1, 3, 2).is_err());
    }

    #[test]
    fn au_ops_preserve_invariant() {
        let a = AuAnnot::triple(1, 2, 3);
        let b = AuAnnot::triple(0, 1, 5);
        let s = a.plus(&b);
        assert!(s.lb <= s.sg && s.sg <= s.ub);
        assert_eq!(s, AuAnnot::triple(1, 3, 8));
        let p = a.times(&b);
        assert!(p.lb <= p.sg && p.sg <= p.ub);
        assert_eq!(p, AuAnnot::triple(0, 2, 15));
    }

    #[test]
    fn mk_mapping_of_definition_19() {
        assert_eq!(AuAnnot::from_bool3(false, true, true), AuAnnot::triple(0, 1, 1));
        assert_eq!(AuAnnot::from_bool3(true, true, true), AuAnnot::one());
        assert_eq!(AuAnnot::from_bool3(false, false, false), AuAnnot::zero());
    }

    #[test]
    fn example_9_selection_annotation() {
        // R(t) = (1,2,3), θ(t) = [F/T/T] → (0,2,3)
        let r = AuAnnot::triple(1, 2, 3);
        let theta = AuAnnot::from_bool3(false, true, true);
        assert_eq!(r.times(&theta), AuAnnot::triple(0, 2, 3));
    }

    #[test]
    fn difference_monus_example_section_8_2() {
        // R(1) = (1,2,2), S(1) = (0,0,3): bound-preserving monus yields
        // (max(1-3,0), max(2-0,0), max(2-0,0)) = (0,2,2)
        let r = AuAnnot::triple(1, 2, 2);
        let out = r.monus_bounds(3, 0, 0);
        assert_eq!(out, AuAnnot::triple(0, 2, 2));
    }

    #[test]
    fn ua_annot_ops() {
        let a = UaAnnot::new(2, 3);
        let b = UaAnnot::new(0, 5);
        assert_eq!(a.plus(&b), UaAnnot::new(2, 8));
        assert_eq!(a.times(&b), UaAnnot::new(0, 15));
    }
}
