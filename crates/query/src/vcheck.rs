//! Vetted chain compilation: the query-side gate in front of
//! [`Program`] lowering.
//!
//! Tier A of the static verifier ([`audb_core::verify`]) runs
//! unconditionally inside `Program` construction — a freshly lowered
//! program that fails it is a lowerer bug and panics there. This module
//! adds the *Tier B* gate at every chain compile site
//! ([`crate::au::pipeline`], [`crate::det`], the rewrite middleware):
//! with [`AuConfig::verify`](crate::au::AuConfig) on (the default),
//! each compiled stage is abstractly interpreted before it is accepted,
//! and a rejection degrades that stage to the interpreted `Expr`-tree
//! oracle instead of executing a suspect program — the per-site analog
//! of the whole-query compiled→interpreted degradation retry.
//!
//! Rejections are observable: the [`Counter::VerifyRejects`] metric,
//! a [`ExecEventKind::VerifierRejected`] event carrying the diagnostic,
//! and (on traced compiles) a `verify` span with tier / op-count /
//! verdict attributes.
//!
//! A freshly lowered program can only fail Tier B if the verifier
//! itself is wrong — the property tests pin zero diagnostics across
//! random programs. To exercise the rejection path end-to-end anyway,
//! [`with_tampered_programs`] installs a thread-local corruption hook
//! between lowering and vetting (compilation happens on the chain-build
//! thread, before any worker fan-out, so a thread-local seam sees every
//! program of the query).

use std::cell::RefCell;

use audb_core::obs::{Counter, ExecEvent, ExecEventKind, Metrics, TraceBuilder};
use audb_core::program::Mode;
use audb_core::{Expr, Program};
use audb_exec::Executor;

/// The installed corruption hook of [`with_tampered_programs`].
type TamperHook = Box<dyn FnMut(Program) -> Program>;

thread_local! {
    static TAMPER: RefCell<Option<TamperHook>> = const { RefCell::new(None) };
}

/// Run `f` with every program compiled on this thread passed through
/// `tamper` before vetting. A test seam for the verifier-rejection
/// degradation path — not part of the public API surface.
///
/// The hook is removed when `f` returns (or panics), and nests shallow:
/// installing a second hook inside `f` replaces the first for its scope.
#[doc(hidden)]
pub fn with_tampered_programs<R>(
    tamper: impl FnMut(Program) -> Program + 'static,
    f: impl FnOnce() -> R,
) -> R {
    struct Reset(Option<TamperHook>);
    impl Drop for Reset {
        fn drop(&mut self) {
            TAMPER.with(|t| *t.borrow_mut() = self.0.take());
        }
    }
    let prev = TAMPER.with(|t| t.borrow_mut().replace(Box::new(tamper)));
    let _reset = Reset(prev);
    f()
}

/// Cache key for a projection-list compile: mode prefix + every
/// expression, separated so adjacent lists cannot collide.
fn many_key(prefix: &str, es: &[Expr]) -> String {
    use std::fmt::Write as _;
    let mut key = String::from(prefix);
    for e in es {
        let _ = write!(key, "\u{1f}{e}");
    }
    key
}

fn tamper(p: Program) -> Program {
    TAMPER.with(|t| match t.borrow_mut().as_mut() {
        Some(f) => f(p),
        None => p,
    })
}

/// The compile-site context a fused chain threads to every stage it
/// lowers: whether to compile at all, whether to vet with Tier B, and
/// where rejections are recorded.
#[derive(Clone, Copy)]
pub(crate) struct Vet<'a> {
    compiled: bool,
    verify: bool,
    metrics: &'a Metrics,
    tr: &'a TraceBuilder,
}

impl<'a> Vet<'a> {
    pub(crate) fn new(
        compiled: bool,
        verify: bool,
        exec: &'a Executor,
        tr: &'a TraceBuilder,
    ) -> Vet<'a> {
        Vet { compiled, verify, metrics: exec.metrics(), tr }
    }

    /// Compile one range predicate, vetted. `None` means "use the
    /// interpreter": compilation is off, or the program was rejected.
    pub(crate) fn range(&self, e: &Expr) -> Option<Program> {
        self.vet(|| format!("range1|{e}"), || Program::compile_range(e))
    }

    /// Compile a range projection list, vetted.
    pub(crate) fn range_many(&self, es: &[Expr]) -> Option<Program> {
        self.vet(|| many_key("rangeN", es), || Program::compile_range_many(es))
    }

    /// Compile one deterministic predicate, vetted.
    pub(crate) fn det(&self, e: &Expr) -> Option<Program> {
        self.vet(|| format!("det1|{e}"), || Program::compile_det(e))
    }

    /// Compile a deterministic projection list, vetted.
    pub(crate) fn det_many(&self, es: &[Expr]) -> Option<Program> {
        self.vet(|| many_key("detN", es), || Program::compile_det_many(es))
    }

    fn vet(
        &self,
        key: impl FnOnce() -> String,
        compile: impl FnOnce() -> Program,
    ) -> Option<Program> {
        if !self.compiled {
            return None;
        }
        // Prepared-plan reuse: an installed program cache
        // ([`crate::prepare::with_program_cache`]) is consulted before
        // lowering. A hit skips compilation and Tier B, but the cached
        // program still passes the cheap structural Tier A gate before
        // it executes — a corrupted cache degrades to a recompile, not
        // a suspect program.
        let cache = crate::prepare::current();
        let cache_key = cache.as_ref().map(|_| key());
        if let (Some(cache), Some(k)) = (&cache, &cache_key) {
            if let Some(p) = cache.lookup(k) {
                if p.verify().is_ok() {
                    let h = self.tr.open("verify", || "cached".to_string());
                    self.tr.attr(h, "tier", || "A".to_string());
                    self.tr.attr(h, "verdict", || "accepted".to_string());
                    self.tr.close(h, None, None);
                    return Some(p);
                }
            }
        }
        let p = tamper(compile());
        if !self.verify {
            if let (Some(cache), Some(k)) = (&cache, cache_key) {
                cache.insert(k, p.clone());
            }
            return Some(p);
        }
        let h = self.tr.open("verify", || {
            (match p.mode() {
                Mode::Range => "range",
                Mode::Det => "det",
            })
            .to_string()
        });
        self.tr.attr(h, "tier", || "A+B".to_string());
        self.tr.attr(h, "ops", || p.op_count().to_string());
        // A tampered program may no longer satisfy Tier A either —
        // `verify_full` re-checks structure before abstract
        // interpretation, so both tiers guard this gate.
        let outcome = p.verify_full();
        match outcome {
            Ok(lints) => {
                self.tr.attr(h, "lints", || lints.len().to_string());
                self.tr.attr(h, "verdict", || "accepted".to_string());
                self.tr.close(h, None, None);
                if let (Some(cache), Some(k)) = (&cache, cache_key) {
                    cache.insert(k, p.clone());
                }
                Some(p)
            }
            Err(e) => {
                self.tr.attr(h, "verdict", || "rejected".to_string());
                self.tr.attr(h, "error", || e.to_string());
                self.tr.close(h, None, None);
                self.metrics.add(Counter::VerifyRejects, 1);
                self.metrics.record_event(ExecEvent {
                    kind: ExecEventKind::VerifierRejected,
                    driver: None,
                    morsel: None,
                    detail: e.to_string(),
                });
                None
            }
        }
    }
}
