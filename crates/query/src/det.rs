//! Deterministic bag-semantics evaluation of `RA^agg` — the
//! conventional-DBMS substrate (selected-guess query processing runs
//! here, and the rewrite middleware of Section 10 executes its rewritten
//! plans on this engine).
//!
//! Since the exec-runtime rework this engine rides the same
//! partition-parallel [`Executor`] and the same shard-at-a-time
//! pipeline driver as the AU evaluator: row-local operator chains
//! (select / project / the probe side of a planned join) fuse into a
//! single pass per base-table shard ([`DetPipeline`]), and the
//! remaining operator-at-a-time tails run their loops on the pool.
//! Output is byte-identical to the serial pre-runtime evaluation for
//! any worker and shard count.

use std::borrow::Cow;
use std::collections::HashMap;

use audb_core::obs::TraceBuilder;
use audb_core::{EvalError, Expr, Program, Value};
use audb_exec::{Executor, ShardSource};
use audb_storage::{Database, HashKeyIndex, IntervalIndex, Relation, Schema, Tuple};

use crate::algebra::{AggFunc, AggSpec, Query};
use crate::planner;
use crate::vcheck::Vet;

/// Evaluate a query over a deterministic database on the default
/// executor (all available hardware threads).
pub fn eval_det(db: &Database, q: &Query) -> Result<Relation, EvalError> {
    eval_det_exec(db, q, &Executor::default())
}

/// [`eval_det`] on an explicit executor, with shard-at-a-time
/// pipelining of fusable operator chains. `Executor::sequential()`
/// reproduces the serial behavior exactly; any worker count produces a
/// byte-identical result.
pub fn eval_det_exec(db: &Database, q: &Query, exec: &Executor) -> Result<Relation, EvalError> {
    eval_det_opts(db, q, exec, true, None, true)
}

/// [`eval_det_exec`] with explicit pipeline knobs — `pipeline = false`
/// forces the operator-at-a-time path, `shards` forces the fused
/// chains' shard count (`None` sizes automatically), and
/// `compiled = false` keeps fused-chain expressions on the `Expr`-tree
/// interpreter instead of the compiled register programs. All
/// combinations produce byte-identical results
/// (`tests/exec_equivalence.rs`, `tests/compiled_exprs_props.rs`).
pub fn eval_det_opts(
    db: &Database,
    q: &Query,
    exec: &Executor,
    pipeline: bool,
    shards: Option<usize>,
    compiled: bool,
) -> Result<Relation, EvalError> {
    let tr = TraceBuilder::disabled();
    let vet = Vet::new(compiled, true, exec, &tr);
    let rel = if pipeline {
        eval_pl(db, q, exec, shards, Delivery::Canonical, vet)?
    } else {
        eval_inner(db, q, exec)?
    };
    Ok(rel.into_owned().into_normalized_with(exec)?)
}

/// Copy-free evaluation core: base tables are borrowed from the
/// database, only operator outputs are owned. Normal form is produced
/// only where an operator actually requires it (difference's and
/// distinct's left-side merges, on the sharded-reduce driver); the
/// row-local operators run on [`Executor::run`], and selection
/// *preserves* normal form like its AU counterpart.
fn eval_inner<'a>(
    db: &'a Database,
    q: &Query,
    exec: &Executor,
) -> Result<Cow<'a, Relation>, EvalError> {
    Ok(match q {
        Query::Table(name) => Cow::Borrowed(db.get(name)?),
        Query::Select { input, predicate } => {
            let rel = eval_inner(db, input, exec)?;
            Cow::Owned(select_det_exec(&rel, predicate, exec)?)
        }
        Query::Project { input, exprs } => {
            let rel = eval_inner(db, input, exec)?;
            Cow::Owned(project_det_exec(&rel, exprs, exec)?)
        }
        Query::Join { left, right, predicate } => {
            let l = eval_inner(db, left, exec)?;
            let r = eval_inner(db, right, exec)?;
            Cow::Owned(planner::join_det_planned_exec(&l, &r, predicate.as_ref(), exec)?)
        }
        Query::Union { left, right } => {
            let l = eval_inner(db, left, exec)?;
            let r = eval_inner(db, right, exec)?;
            l.schema.check_union_compatible(&r.schema)?;
            let mut out = l.into_owned();
            out.extend_from(&r);
            Cow::Owned(out)
        }
        Query::Difference { left, right } => {
            let l = eval_inner(db, left, exec)?;
            let r = eval_inner(db, right, exec)?;
            Cow::Owned(difference_det(l, &r, exec)?)
        }
        Query::Distinct { input } => {
            let rel = eval_inner(db, input, exec)?;
            Cow::Owned(distinct_det(rel, exec)?)
        }
        Query::Aggregate { input, group_by, aggs } => {
            let rel = eval_inner(db, input, exec)?;
            Cow::Owned(aggregate_det(&rel, group_by, aggs)?)
        }
    })
}

/// Partition-parallel selection. Like the AU evaluator's selection it
/// preserves normal form: kept rows keep their tuples, multiplicities,
/// and relative order, so a normalized input yields a normalized output
/// and downstream merges are free.
pub fn select_det_exec(
    rel: &Relation,
    predicate: &Expr,
    exec: &Executor,
) -> Result<Relation, EvalError> {
    let rows = exec.run(rel.rows().len(), |morsel, out| {
        for (t, k) in &rel.rows()[morsel] {
            if predicate.eval_bool(t.values())? {
                out.push((t.clone(), *k));
            }
        }
        Ok::<(), EvalError>(())
    })?;
    if rel.is_normalized() {
        Ok(Relation::from_normalized_rows(rel.schema.clone(), rows))
    } else {
        let mut out = Relation::empty(rel.schema.clone());
        out.append_rows(rows);
        Ok(out)
    }
}

/// Partition-parallel generalized projection (output left unnormalized,
/// exactly like the serial loop — deterministic bag semantics merge
/// duplicates only where an operator requires it).
pub fn project_det_exec(
    rel: &Relation,
    exprs: &[(Expr, String)],
    exec: &Executor,
) -> Result<Relation, EvalError> {
    let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
    let rows = exec.run(rel.rows().len(), |morsel, out| {
        for (t, k) in &rel.rows()[morsel] {
            let vals: Result<Vec<Value>, EvalError> =
                exprs.iter().map(|(e, _)| e.eval(t.values())).collect();
            out.push((Tuple::new(vals?), *k));
        }
        Ok::<(), EvalError>(())
    })?;
    let mut out = Relation::empty(schema);
    out.append_rows(rows);
    Ok(out)
}

/// Bag difference (monus): the left side needs normal form (one row per
/// distinct tuple) and gets it from the sharded-reduce driver; the
/// right side only feeds a commutative multiplicity sum.
fn difference_det(
    l: Cow<'_, Relation>,
    r: &Relation,
    exec: &Executor,
) -> Result<Relation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    let mut rmap: HashMap<&Tuple, u64> = HashMap::new();
    for (t, k) in r.rows() {
        *rmap.entry(t).or_insert(0) += k;
    }
    let l = l.into_owned().into_normalized_with(exec)?;
    let mut out = Relation::empty(l.schema.clone());
    for (t, k) in l.rows() {
        let sub = rmap.get(t).copied().unwrap_or(0);
        out.push(t.clone(), k.saturating_sub(sub));
    }
    Ok(out)
}

/// Duplicate elimination: requires normal form, then resets
/// multiplicities.
fn distinct_det(rel: Cow<'_, Relation>, exec: &Executor) -> Result<Relation, EvalError> {
    let rel = rel.into_owned().into_normalized_with(exec)?;
    let mut out = Relation::empty(rel.schema.clone());
    for (t, _) in rel.rows() {
        out.push(t.clone(), 1);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shard-at-a-time pipelining (the deterministic mirror of
// `crate::au::pipeline`; see that module for the delivery contracts)
// ---------------------------------------------------------------------------

use crate::au::pipeline::{Delivery, MIN_ROWS_PER_SHARD};

/// A deterministic chain predicate: compiled to a flat register
/// program (the default — det lowering keeps `And`/`Or`/`If`
/// short-circuit via jump ops) or interpreted (the oracle).
enum DetPred {
    Interp(Expr),
    Compiled(Program),
}

impl DetPred {
    fn new(e: &Expr, vet: Vet<'_>) -> DetPred {
        match vet.det(e) {
            Some(p) => DetPred::Compiled(p),
            None => DetPred::Interp(e.clone()),
        }
    }

    fn eval_bool(&self, vals: &[Value], regs: &mut Vec<Value>) -> Result<bool, EvalError> {
        match self {
            DetPred::Interp(e) => e.eval_bool(vals),
            DetPred::Compiled(p) => p.eval_det_bool(vals, regs),
        }
    }
}

/// A deterministic chain projection, compiled into one multi-output
/// program.
enum DetProj {
    Interp(Vec<Expr>),
    Compiled(Program),
}

impl DetProj {
    fn new(exprs: &[(Expr, String)], vet: Vet<'_>) -> DetProj {
        let es: Vec<Expr> = exprs.iter().map(|(e, _)| e.clone()).collect();
        match vet.det_many(&es) {
            Some(p) => DetProj::Compiled(p),
            None => DetProj::Interp(es),
        }
    }

    fn eval_into(
        &self,
        vals: &[Value],
        regs: &mut Vec<Value>,
        out: &mut Vec<Value>,
    ) -> Result<(), EvalError> {
        match self {
            DetProj::Interp(es) => {
                for e in es {
                    out.push(e.eval(vals)?);
                }
                Ok(())
            }
            DetProj::Compiled(p) => {
                p.prepare_det_regs(regs);
                p.eval_det_into(vals, regs)?;
                for i in 0..p.arity() {
                    out.push(p.det_output(i, vals, regs).clone());
                }
                Ok(())
            }
        }
    }
}

enum DetPipeOp {
    Select(DetPred),
    Project(DetProj),
    Probe(Box<DetProbeOp>),
}

enum DetProbePlan {
    /// Conjunctive equality on canonical keys — no predicate re-check
    /// needed (the key match *is* the predicate), exactly like the
    /// operator-at-a-time det hash join.
    HashEqui { lcols: Vec<usize>, index: HashKeyIndex },
    /// Order comparison: endpoint-sweep candidates, re-checked per pair.
    Comparison,
    /// Cross products and unindexable predicates.
    NestedLoop,
}

struct DetProbeOp {
    right: Relation,
    predicate: Option<DetPred>,
    plan: DetProbePlan,
    /// Per source row id: sweep candidates (comparison plans only).
    cand: Vec<Vec<u32>>,
}

impl DetProbeOp {
    fn build(
        source: &Relation,
        right: Relation,
        predicate: Option<&Expr>,
        vet: Vet<'_>,
    ) -> DetProbeOp {
        let mut cand: Vec<Vec<u32>> = Vec::new();
        let plan = match planner::classify(predicate, source.schema.arity()) {
            planner::JoinStrategy::HashEqui(pairs) => {
                let lcols: Vec<usize> = pairs.iter().map(|(a, _)| *a).collect();
                let rcols: Vec<usize> = pairs.iter().map(|(_, b)| *b).collect();
                let index = HashKeyIndex::from_det(right.rows(), &rcols);
                DetProbePlan::HashEqui { lcols, index }
            }
            planner::JoinStrategy::IntervalComparison { lo, hi } => {
                cand = vec![Vec::new(); source.len()];
                let pairs = planner::comparison_candidates(
                    lo,
                    hi,
                    |c| IntervalIndex::from_det(source.rows(), c),
                    |c| IntervalIndex::from_det(right.rows(), c),
                );
                for (a, b) in pairs {
                    cand[a as usize].push(b);
                }
                DetProbePlan::Comparison
            }
            planner::JoinStrategy::NestedLoop => DetProbePlan::NestedLoop,
        };
        let predicate = predicate.map(|p| DetPred::new(p, vet));
        DetProbeOp { right, predicate, plan, cand }
    }

    #[allow(clippy::too_many_arguments)]
    fn probe<T, F>(
        &self,
        rest: &[DetPipeOp],
        rest_bufs: &mut [DetBuf],
        buf: &mut DetBuf,
        src: usize,
        vals: &[Value],
        k: u64,
        out: &mut Vec<T>,
        terminal: &F,
    ) -> Result<(), EvalError>
    where
        F: Fn(&[Value], u64, &mut Vec<T>) -> Result<(), EvalError>,
    {
        let emit = |concat: &mut Vec<Value>,
                    regs: &mut Vec<Value>,
                    rest_bufs: &mut [DetBuf],
                    ri: u32,
                    check: bool,
                    out: &mut Vec<T>|
         -> Result<(), EvalError> {
            let (tr, kr) = &self.right.rows()[ri as usize];
            concat.clear();
            concat.extend_from_slice(vals);
            concat.extend_from_slice(&tr.0);
            if check {
                if let Some(p) = &self.predicate {
                    if !p.eval_bool(concat, regs)? {
                        return Ok(());
                    }
                }
            }
            apply_det(rest, rest_bufs, usize::MAX, concat, k * kr, out, terminal)
        };
        let DetBuf { vals: concat, key, regs } = buf;
        match &self.plan {
            DetProbePlan::HashEqui { lcols, index } => {
                key.clear();
                key.extend(lcols.iter().map(|c| vals[*c].join_key()));
                for &ri in index.get(key) {
                    emit(concat, regs, rest_bufs, ri, false, out)?;
                }
                Ok(())
            }
            DetProbePlan::Comparison => {
                for &ri in &self.cand[src] {
                    emit(concat, regs, rest_bufs, ri, true, out)?;
                }
                Ok(())
            }
            DetProbePlan::NestedLoop => {
                for ri in 0..self.right.len() as u32 {
                    emit(concat, regs, rest_bufs, ri, true, out)?;
                }
                Ok(())
            }
        }
    }
}

/// Per-op scratch reused across a shard's rows: value/key buffers plus
/// the compiled-program register file.
#[derive(Default)]
struct DetBuf {
    vals: Vec<Value>,
    key: Vec<Value>,
    regs: Vec<Value>,
}

fn apply_det<T, F>(
    ops: &[DetPipeOp],
    bufs: &mut [DetBuf],
    src: usize,
    vals: &[Value],
    k: u64,
    out: &mut Vec<T>,
    terminal: &F,
) -> Result<(), EvalError>
where
    F: Fn(&[Value], u64, &mut Vec<T>) -> Result<(), EvalError>,
{
    let Some((op, rest)) = ops.split_first() else {
        return terminal(vals, k, out);
    };
    #[allow(clippy::expect_used)] // bufs was sized to ops.len() by the caller
    let (buf, rest_bufs) = bufs.split_first_mut().expect("one buffer per op");
    match op {
        DetPipeOp::Select(p) => {
            if !p.eval_bool(vals, &mut buf.regs)? {
                return Ok(());
            }
            apply_det(rest, rest_bufs, src, vals, k, out, terminal)
        }
        DetPipeOp::Project(proj) => {
            let DetBuf { vals: pvals, regs, .. } = buf;
            pvals.clear();
            proj.eval_into(vals, regs, pvals)?;
            apply_det(rest, rest_bufs, usize::MAX, pvals, k, out, terminal)
        }
        DetPipeOp::Probe(probe) => probe.probe(rest, rest_bufs, buf, src, vals, k, out, terminal),
    }
}

/// A fused deterministic chain ready to run.
pub(crate) struct DetPipeline<'a> {
    source: Cow<'a, Relation>,
    ops: Vec<DetPipeOp>,
    schema: Schema,
}

impl<'a> DetPipeline<'a> {
    /// Output schema of the fused chain.
    pub(crate) fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Run the chain shard-by-shard, mapping every emitted row through
    /// `terminal` (the rewrite middleware plugs `Dec` in here, fusing
    /// the decode into the same pass). Row order is the sequential
    /// chain-emission order for any worker × shard combination.
    pub(crate) fn run_map<T, F>(
        &self,
        exec: &Executor,
        shards: Option<usize>,
        terminal: F,
    ) -> Result<Vec<T>, EvalError>
    where
        T: Send,
        F: Fn(&[Value], u64, &mut Vec<T>) -> Result<(), EvalError> + Sync,
    {
        let n = self.source.len();
        let sharding = match shards {
            Some(s) => ShardSource::new(s),
            None => ShardSource::auto(exec.workers(), n, MIN_ROWS_PER_SHARD),
        };
        let ops = &self.ops;
        let source = self.source.as_ref();
        exec.run_shards(n, &sharding, |range, out| {
            let mut bufs: Vec<DetBuf> = Vec::new();
            bufs.resize_with(ops.len(), DetBuf::default);
            for i in range {
                let (t, k) = &source.rows()[i];
                apply_det(ops, &mut bufs, i, t.values(), *k, out, &terminal)?;
            }
            Ok(())
        })
    }

    /// Run the chain into a relation, with the delivery its shape
    /// admits: probe chains pay the single breaker normalization;
    /// select/project chains reproduce the serial row list exactly
    /// (selection preserving normal form).
    fn run(self, exec: &Executor, shards: Option<usize>) -> Result<Cow<'a, Relation>, EvalError> {
        if self.ops.is_empty() {
            return Ok(self.source);
        }
        let rows = self.run_map(exec, shards, |vals, k, out| {
            out.push((Tuple::new(vals.to_vec()), k));
            Ok(())
        })?;
        let has_probe = self.ops.iter().any(|op| matches!(op, DetPipeOp::Probe(_)));
        let select_only = self.ops.iter().all(|op| matches!(op, DetPipeOp::Select(_)));
        let out = if has_probe {
            let mut out = Relation::empty(self.schema);
            out.append_rows(rows);
            out.into_normalized_with(exec)?
        } else if select_only && self.source.is_normalized() {
            Relation::from_normalized_rows(self.schema, rows)
        } else {
            let mut out = Relation::empty(self.schema);
            out.append_rows(rows);
            out
        };
        Ok(Cow::Owned(out))
    }
}

/// Is `q` a fusable chain? (Select/Project towers; joins anchor a chain
/// regardless of their subtrees.)
fn fusable(q: &Query) -> bool {
    match q {
        Query::Table(_) => true,
        Query::Select { input, .. } | Query::Project { input, .. } => fusable(input),
        Query::Join { .. } => true,
        _ => false,
    }
}

/// Does the chain contain a join probe? (Det select/project chains
/// reproduce the serial list exactly — projection does not normalize on
/// this engine — so only probes restrict a chain to Canonical
/// delivery.)
fn has_probe(q: &Query) -> bool {
    match q {
        Query::Select { input, .. } | Query::Project { input, .. } => has_probe(input),
        Query::Join { .. } => true,
        _ => false,
    }
}

/// Select-only chain over its anchor (probe candidates keyed by source
/// row id stay valid).
fn select_only_chain(q: &Query) -> bool {
    match q {
        Query::Table(_) => true,
        Query::Select { input, .. } => select_only_chain(input),
        _ => false,
    }
}

/// Build the fused pipeline for the whole plan if it is one fusable
/// chain — the rewrite middleware uses this to run its
/// `Enc → select/project/join → Dec` spine in a single pass per shard.
pub(crate) fn build_det_pipeline<'a>(
    db: &'a Database,
    q: &Query,
    exec: &Executor,
    compiled: bool,
    verify: bool,
) -> Result<Option<DetPipeline<'a>>, EvalError> {
    if !fusable(q) {
        return Ok(None);
    }
    let tr = TraceBuilder::disabled();
    let vet = Vet::new(compiled, verify, exec, &tr);
    Ok(Some(build_chain(db, q, exec, vet)?))
}

fn build_chain<'a>(
    db: &'a Database,
    q: &Query,
    exec: &Executor,
    vet: Vet<'_>,
) -> Result<DetPipeline<'a>, EvalError> {
    match q {
        Query::Table(name) => {
            let rel = db.get(name)?;
            Ok(DetPipeline {
                source: Cow::Borrowed(rel),
                ops: Vec::new(),
                schema: rel.schema.clone(),
            })
        }
        Query::Select { input, predicate } => {
            let mut c = build_chain(db, input, exec, vet)?;
            c.ops.push(DetPipeOp::Select(DetPred::new(predicate, vet)));
            Ok(c)
        }
        Query::Project { input, exprs } => {
            let mut c = build_chain(db, input, exec, vet)?;
            c.schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            c.ops.push(DetPipeOp::Project(DetProj::new(exprs, vet)));
            Ok(c)
        }
        Query::Join { left, right, predicate } => {
            let mut chain = if fusable(left) && select_only_chain(left) {
                build_chain(db, left, exec, vet)?
            } else {
                let rel = eval_pl(db, left, exec, None, Delivery::Canonical, vet)?;
                let schema = rel.schema.clone();
                DetPipeline { source: rel, ops: Vec::new(), schema }
            };
            let r = eval_pl(db, right, exec, None, Delivery::Canonical, vet)?.into_owned();
            chain.schema = chain.schema.concat(&r.schema);
            let probe = DetProbeOp::build(chain.source.as_ref(), r, predicate.as_ref(), vet);
            chain.ops.push(DetPipeOp::Probe(Box::new(probe)));
            Ok(chain)
        }
        _ => unreachable!("build_chain called on a non-chain query"),
    }
}

fn eval_pl<'a>(
    db: &'a Database,
    q: &Query,
    exec: &Executor,
    shards: Option<usize>,
    delivery: Delivery,
    vet: Vet<'_>,
) -> Result<Cow<'a, Relation>, EvalError> {
    if fusable(q) && (delivery == Delivery::Canonical || !has_probe(q)) {
        return build_chain(db, q, exec, vet)?.run(exec, shards);
    }
    Ok(match q {
        Query::Table(name) => Cow::Borrowed(db.get(name)?),
        Query::Select { input, predicate } => {
            let rel = eval_pl(db, input, exec, shards, delivery, vet)?;
            Cow::Owned(select_det_exec(&rel, predicate, exec)?)
        }
        Query::Project { input, exprs } => {
            let rel = eval_pl(db, input, exec, shards, delivery, vet)?;
            Cow::Owned(project_det_exec(&rel, exprs, exec)?)
        }
        Query::Join { left, right, predicate } => {
            // multiset-determined: the strictness of the context carries
            let l = eval_pl(db, left, exec, shards, delivery, vet)?;
            let r = eval_pl(db, right, exec, shards, delivery, vet)?;
            Cow::Owned(planner::join_det_planned_exec(&l, &r, predicate.as_ref(), exec)?)
        }
        Query::Union { left, right } => {
            // the union list is left ++ right: the context's strictness
            // carries to both sides
            let l = eval_pl(db, left, exec, shards, delivery, vet)?;
            let r = eval_pl(db, right, exec, shards, delivery, vet)?;
            l.schema.check_union_compatible(&r.schema)?;
            let mut out = l.into_owned();
            out.extend_from(&r);
            Cow::Owned(out)
        }
        Query::Difference { left, right } => {
            // left is normalized internally, the right feeds commutative
            // sums: multiset-determined on both sides
            let l = eval_pl(db, left, exec, shards, Delivery::Canonical, vet)?;
            let r = eval_pl(db, right, exec, shards, Delivery::Canonical, vet)?;
            Cow::Owned(difference_det(l, &r, exec)?)
        }
        Query::Distinct { input } => {
            let rel = eval_pl(db, input, exec, shards, Delivery::Canonical, vet)?;
            Cow::Owned(distinct_det(rel, exec)?)
        }
        Query::Aggregate { input, group_by, aggs } => {
            // group first-appearance order and float folds depend on the
            // exact input list
            let rel = eval_pl(db, input, exec, shards, Delivery::Faithful, vet)?;
            Cow::Owned(aggregate_det(&rel, group_by, aggs)?)
        }
    })
}

/// Shared scalar `avg` from sum and count (Section 10.2 derivation).
pub fn avg_value(sum: &Value, count: u64) -> Result<Value, EvalError> {
    if count == 0 {
        return Ok(Value::Null);
    }
    sum.div(&Value::Int(count as i64))
}

struct AggAcc {
    sum: Value,
    count: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    fn new() -> Self {
        AggAcc { sum: Value::Int(0), count: 0, min: None, max: None }
    }

    fn add(&mut self, v: &Value, mult: u64) -> Result<(), EvalError> {
        if mult == 0 {
            return Ok(());
        }
        self.sum = self.sum.add(&v.mul_count(mult)?)?;
        self.count += mult;
        self.min = Some(match self.min.take() {
            None => v.clone(),
            Some(m) => Value::min_of(m, v.clone()),
        });
        self.max = Some(match self.max.take() {
            None => v.clone(),
            Some(m) => Value::max_of(m, v.clone()),
        });
        Ok(())
    }

    fn extract(&self, f: AggFunc) -> Result<Value, EvalError> {
        Ok(match f {
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => avg_value(&self.sum, self.count)?,
        })
    }
}

pub(crate) fn aggregate_det(
    rel: &Relation,
    group_by: &[usize],
    aggs: &[AggSpec],
) -> Result<Relation, EvalError> {
    let mut names: Vec<String> =
        group_by.iter().map(|c| rel.schema.column_name(*c).to_string()).collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));
    let schema = Schema::new(names);

    // group key → one accumulator per aggregate
    let mut groups: HashMap<Tuple, Vec<AggAcc>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for (t, k) in rel.rows() {
        if *k == 0 {
            continue;
        }
        let key = t.project(group_by);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|_| AggAcc::new()).collect()
        });
        for (spec, acc) in aggs.iter().zip(accs.iter_mut()) {
            let v = spec.input.eval(t.values())?;
            acc.add(&v, *k)?;
        }
    }

    // Aggregation without group-by always yields exactly one row.
    if group_by.is_empty() && groups.is_empty() {
        let empty: Vec<Value> =
            aggs.iter().map(|a| AggAcc::new().extract(a.func)).collect::<Result<_, _>>()?;
        return Ok(Relation::from_rows(schema, vec![(Tuple::new(empty), 1)]));
    }

    let mut out = Relation::empty(schema);
    for key in order {
        let accs = &groups[&key];
        let mut vals = key.0.clone();
        for (spec, acc) in aggs.iter().zip(accs) {
            vals.push(acc.extract(spec.func)?);
        }
        out.push(Tuple::new(vals), 1);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::algebra::table;
    use audb_core::{col, lit};

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "r",
            Relation::from_rows(
                Schema::named(&["a", "b"]),
                vec![(it(&[1, 10]), 2), (it(&[2, 20]), 1), (it(&[3, 20]), 3)],
            ),
        );
        db.insert(
            "s",
            Relation::from_rows(Schema::named(&["c"]), vec![(it(&[1]), 1), (it(&[3]), 2)]),
        );
        db
    }

    #[test]
    fn select_filters_bag() {
        let db = db();
        let q = table("r").select(col(1).eq(lit(20i64)));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.total_count(), 4);
        assert_eq!(out.multiplicity(&it(&[3, 20])), 3);
    }

    #[test]
    fn project_sums_multiplicities() {
        let db = db();
        let q = table("r").project(vec![(col(1), "b")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[20])), 4);
        assert_eq!(out.multiplicity(&it(&[10])), 2);
    }

    #[test]
    fn equi_join_hash_path() {
        let db = db();
        let q = table("r").join_on(table("s"), col(0).eq(col(2)));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[1, 10, 1])), 2);
        assert_eq!(out.multiplicity(&it(&[3, 20, 3])), 6);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_matches_hash() {
        let db = db();
        // same predicate but written so the equi detector cannot fire
        let q1 = table("r").join_on(table("s"), col(0).eq(col(2)));
        let q2 = table("r").join_on(table("s"), col(0).leq(col(2)).and(col(2).leq(col(0))));
        assert_eq!(eval_det(&db, &q1).unwrap(), eval_det(&db, &q2).unwrap());
    }

    #[test]
    fn union_and_difference() {
        let db = db();
        let q = table("s").union(table("s"));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[3])), 4);

        let q = table("s").union(table("s")).difference(table("s"));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[3])), 2);
        assert_eq!(out.multiplicity(&it(&[1])), 1);

        // monus truncates at zero
        let q = table("s").difference(table("s").union(table("s")));
        let out = eval_det(&db, &q).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn distinct_resets_multiplicities() {
        let db = db();
        let q = table("r").project(vec![(col(1), "b")]).distinct();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[20])), 1);
        assert_eq!(out.total_count(), 2);
    }

    #[test]
    fn aggregate_with_groups() {
        let db = db();
        let q = table("r").aggregate(
            vec![1],
            vec![
                AggSpec::new(AggFunc::Sum, col(0), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Min, col(0), "lo"),
                AggSpec::new(AggFunc::Max, col(0), "hi"),
            ],
        );
        let out = eval_det(&db, &q).unwrap();
        // group 20: rows (2,20)x1, (3,20)x3 → sum 2+9=11, count 4, min 2, max 3
        assert_eq!(out.multiplicity(&it(&[20, 11, 4, 2, 3])), 1);
        assert_eq!(out.multiplicity(&it(&[10, 2, 2, 1, 1])), 1);
    }

    #[test]
    fn aggregate_multiplicity_weights_sum() {
        // sum over A with multiplicities: 30↦2, 40↦3 → 180 (Section 9.2)
        let rel = Relation::from_rows(Schema::named(&["a"]), vec![(it(&[30]), 2), (it(&[40]), 3)]);
        let mut db = Database::new();
        db.insert("t", rel);
        let q = table("t").aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, col(0), "s")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[180])), 1);
    }

    #[test]
    fn aggregate_empty_no_groupby() {
        let mut db = Database::new();
        db.insert("t", Relation::empty(Schema::named(&["a"])));
        let q = table("t").aggregate(
            vec![],
            vec![
                AggSpec::new(AggFunc::Sum, col(0), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Min, col(0), "m"),
                AggSpec::new(AggFunc::Avg, col(0), "avg"),
            ],
        );
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.rows().len(), 1);
        let t = &out.rows()[0].0;
        assert_eq!(t.0, vec![Value::Int(0), Value::Int(0), Value::Null, Value::Null]);
    }

    #[test]
    fn aggregate_avg() {
        let db = db();
        let q = table("r").aggregate(vec![], vec![AggSpec::new(AggFunc::Avg, col(1), "avg")]);
        let out = eval_det(&db, &q).unwrap();
        // values: 10×2, 20×1, 20×3 → (20+20+60)/6 ≈ 16.666...
        let expect = (10.0 * 2.0 + 20.0 + 20.0 * 3.0) / 6.0;
        assert_eq!(out.rows()[0].0 .0[0], Value::float(expect));
    }

    #[test]
    fn empty_group_by_on_nonempty_single_row() {
        let db = db();
        let q = table("r").aggregate(vec![], vec![AggSpec::count("c")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[6])), 1);
    }
}
