//! Deterministic bag-semantics evaluation of `RA^agg` — the
//! conventional-DBMS substrate (selected-guess query processing runs
//! here, and the rewrite middleware of Section 10 executes its rewritten
//! plans on this engine).

use std::borrow::Cow;
use std::collections::HashMap;

use audb_core::{EvalError, Expr, Value};
use audb_storage::{Database, Relation, Schema, Tuple};

use crate::algebra::{AggFunc, AggSpec, Query};
use crate::planner;

/// Evaluate a query over a deterministic database.
pub fn eval_det(db: &Database, q: &Query) -> Result<Relation, EvalError> {
    Ok(eval_inner(db, q)?.into_owned().into_normalized())
}

/// Copy-free evaluation core: base tables are borrowed from the
/// database, only operator outputs are owned.
fn eval_inner<'a>(db: &'a Database, q: &Query) -> Result<Cow<'a, Relation>, EvalError> {
    Ok(match q {
        Query::Table(name) => Cow::Borrowed(db.get(name)?),
        Query::Select { input, predicate } => {
            let rel = eval_inner(db, input)?;
            let mut out = Relation::empty(rel.schema.clone());
            for (t, k) in rel.rows() {
                if predicate.eval_bool(t.values())? {
                    out.push(t.clone(), *k);
                }
            }
            Cow::Owned(out)
        }
        Query::Project { input, exprs } => {
            let rel = eval_inner(db, input)?;
            let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let mut out = Relation::empty(schema);
            for (t, k) in rel.rows() {
                let vals: Result<Vec<Value>, EvalError> =
                    exprs.iter().map(|(e, _)| e.eval(t.values())).collect();
                out.push(Tuple::new(vals?), *k);
            }
            Cow::Owned(out)
        }
        Query::Join { left, right, predicate } => {
            let l = eval_inner(db, left)?;
            let r = eval_inner(db, right)?;
            Cow::Owned(join_det(&l, &r, predicate.as_ref())?)
        }
        Query::Union { left, right } => {
            let l = eval_inner(db, left)?;
            let r = eval_inner(db, right)?;
            l.schema.check_union_compatible(&r.schema)?;
            let mut out = l.into_owned();
            out.extend_from(&r);
            Cow::Owned(out)
        }
        Query::Difference { left, right } => {
            let l = eval_inner(db, left)?;
            let r = eval_inner(db, right)?;
            l.schema.check_union_compatible(&r.schema)?;
            let mut rmap: HashMap<&Tuple, u64> = HashMap::new();
            for (t, k) in r.rows() {
                *rmap.entry(t).or_insert(0) += k;
            }
            let l = l.into_owned().into_normalized();
            let mut out = Relation::empty(l.schema.clone());
            for (t, k) in l.rows() {
                let sub = rmap.get(t).copied().unwrap_or(0);
                out.push(t.clone(), k.saturating_sub(sub));
            }
            Cow::Owned(out)
        }
        Query::Distinct { input } => {
            let rel = eval_inner(db, input)?.into_owned().into_normalized();
            let mut out = Relation::empty(rel.schema.clone());
            for (t, _) in rel.rows() {
                out.push(t.clone(), 1);
            }
            Cow::Owned(out)
        }
        Query::Aggregate { input, group_by, aggs } => {
            let rel = eval_inner(db, input)?;
            Cow::Owned(aggregate_det(&rel, group_by, aggs)?)
        }
    })
}

/// Deterministic theta-join, routed through the join planner (hash
/// equi-join, endpoint-sweep comparison join, or nested-loop fallback).
fn join_det(l: &Relation, r: &Relation, predicate: Option<&Expr>) -> Result<Relation, EvalError> {
    planner::join_det_planned(l, r, predicate)
}

/// Shared scalar `avg` from sum and count (Section 10.2 derivation).
pub fn avg_value(sum: &Value, count: u64) -> Result<Value, EvalError> {
    if count == 0 {
        return Ok(Value::Null);
    }
    sum.div(&Value::Int(count as i64))
}

struct AggAcc {
    sum: Value,
    count: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAcc {
    fn new() -> Self {
        AggAcc { sum: Value::Int(0), count: 0, min: None, max: None }
    }

    fn add(&mut self, v: &Value, mult: u64) -> Result<(), EvalError> {
        if mult == 0 {
            return Ok(());
        }
        self.sum = self.sum.add(&v.mul_count(mult)?)?;
        self.count += mult;
        self.min = Some(match self.min.take() {
            None => v.clone(),
            Some(m) => Value::min_of(m, v.clone()),
        });
        self.max = Some(match self.max.take() {
            None => v.clone(),
            Some(m) => Value::max_of(m, v.clone()),
        });
        Ok(())
    }

    fn extract(&self, f: AggFunc) -> Result<Value, EvalError> {
        Ok(match f {
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => avg_value(&self.sum, self.count)?,
        })
    }
}

pub(crate) fn aggregate_det(
    rel: &Relation,
    group_by: &[usize],
    aggs: &[AggSpec],
) -> Result<Relation, EvalError> {
    let mut names: Vec<String> =
        group_by.iter().map(|c| rel.schema.column_name(*c).to_string()).collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));
    let schema = Schema::new(names);

    // group key → one accumulator per aggregate
    let mut groups: HashMap<Tuple, Vec<AggAcc>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for (t, k) in rel.rows() {
        if *k == 0 {
            continue;
        }
        let key = t.project(group_by);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|_| AggAcc::new()).collect()
        });
        for (spec, acc) in aggs.iter().zip(accs.iter_mut()) {
            let v = spec.input.eval(t.values())?;
            acc.add(&v, *k)?;
        }
    }

    // Aggregation without group-by always yields exactly one row.
    if group_by.is_empty() && groups.is_empty() {
        let empty: Vec<Value> =
            aggs.iter().map(|a| AggAcc::new().extract(a.func)).collect::<Result<_, _>>()?;
        return Ok(Relation::from_rows(schema, vec![(Tuple::new(empty), 1)]));
    }

    let mut out = Relation::empty(schema);
    for key in order {
        let accs = &groups[&key];
        let mut vals = key.0.clone();
        for (spec, acc) in aggs.iter().zip(accs) {
            vals.push(acc.extract(spec.func)?);
        }
        out.push(Tuple::new(vals), 1);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::table;
    use audb_core::{col, lit};

    fn it(vs: &[i64]) -> Tuple {
        vs.iter().copied().collect()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.insert(
            "r",
            Relation::from_rows(
                Schema::named(&["a", "b"]),
                vec![(it(&[1, 10]), 2), (it(&[2, 20]), 1), (it(&[3, 20]), 3)],
            ),
        );
        db.insert(
            "s",
            Relation::from_rows(Schema::named(&["c"]), vec![(it(&[1]), 1), (it(&[3]), 2)]),
        );
        db
    }

    #[test]
    fn select_filters_bag() {
        let db = db();
        let q = table("r").select(col(1).eq(lit(20i64)));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.total_count(), 4);
        assert_eq!(out.multiplicity(&it(&[3, 20])), 3);
    }

    #[test]
    fn project_sums_multiplicities() {
        let db = db();
        let q = table("r").project(vec![(col(1), "b")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[20])), 4);
        assert_eq!(out.multiplicity(&it(&[10])), 2);
    }

    #[test]
    fn equi_join_hash_path() {
        let db = db();
        let q = table("r").join_on(table("s"), col(0).eq(col(2)));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[1, 10, 1])), 2);
        assert_eq!(out.multiplicity(&it(&[3, 20, 3])), 6);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn theta_join_nested_loop_matches_hash() {
        let db = db();
        // same predicate but written so the equi detector cannot fire
        let q1 = table("r").join_on(table("s"), col(0).eq(col(2)));
        let q2 = table("r").join_on(table("s"), col(0).leq(col(2)).and(col(2).leq(col(0))));
        assert_eq!(eval_det(&db, &q1).unwrap(), eval_det(&db, &q2).unwrap());
    }

    #[test]
    fn union_and_difference() {
        let db = db();
        let q = table("s").union(table("s"));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[3])), 4);

        let q = table("s").union(table("s")).difference(table("s"));
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[3])), 2);
        assert_eq!(out.multiplicity(&it(&[1])), 1);

        // monus truncates at zero
        let q = table("s").difference(table("s").union(table("s")));
        let out = eval_det(&db, &q).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn distinct_resets_multiplicities() {
        let db = db();
        let q = table("r").project(vec![(col(1), "b")]).distinct();
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[20])), 1);
        assert_eq!(out.total_count(), 2);
    }

    #[test]
    fn aggregate_with_groups() {
        let db = db();
        let q = table("r").aggregate(
            vec![1],
            vec![
                AggSpec::new(AggFunc::Sum, col(0), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Min, col(0), "lo"),
                AggSpec::new(AggFunc::Max, col(0), "hi"),
            ],
        );
        let out = eval_det(&db, &q).unwrap();
        // group 20: rows (2,20)x1, (3,20)x3 → sum 2+9=11, count 4, min 2, max 3
        assert_eq!(out.multiplicity(&it(&[20, 11, 4, 2, 3])), 1);
        assert_eq!(out.multiplicity(&it(&[10, 2, 2, 1, 1])), 1);
    }

    #[test]
    fn aggregate_multiplicity_weights_sum() {
        // sum over A with multiplicities: 30↦2, 40↦3 → 180 (Section 9.2)
        let rel = Relation::from_rows(Schema::named(&["a"]), vec![(it(&[30]), 2), (it(&[40]), 3)]);
        let mut db = Database::new();
        db.insert("t", rel);
        let q = table("t").aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, col(0), "s")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[180])), 1);
    }

    #[test]
    fn aggregate_empty_no_groupby() {
        let mut db = Database::new();
        db.insert("t", Relation::empty(Schema::named(&["a"])));
        let q = table("t").aggregate(
            vec![],
            vec![
                AggSpec::new(AggFunc::Sum, col(0), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Min, col(0), "m"),
                AggSpec::new(AggFunc::Avg, col(0), "avg"),
            ],
        );
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.rows().len(), 1);
        let t = &out.rows()[0].0;
        assert_eq!(t.0, vec![Value::Int(0), Value::Int(0), Value::Null, Value::Null]);
    }

    #[test]
    fn aggregate_avg() {
        let db = db();
        let q = table("r").aggregate(vec![], vec![AggSpec::new(AggFunc::Avg, col(1), "avg")]);
        let out = eval_det(&db, &q).unwrap();
        // values: 10×2, 20×1, 20×3 → (20+20+60)/6 ≈ 16.666...
        let expect = (10.0 * 2.0 + 20.0 + 20.0 * 3.0) / 6.0;
        assert_eq!(out.rows()[0].0 .0[0], Value::float(expect));
    }

    #[test]
    fn empty_group_by_on_nonempty_single_row() {
        let db = db();
        let q = table("r").aggregate(vec![], vec![AggSpec::count("c")]);
        let out = eval_det(&db, &q).unwrap();
        assert_eq!(out.multiplicity(&it(&[6])), 1);
    }
}
