//! The logical algebra `RA^agg`: full relational algebra (selection,
//! generalized projection, theta-join, union, difference, duplicate
//! elimination) plus grouping/aggregation — the query class AU-DBs are
//! closed under (Corollary 2).

use std::fmt;

use audb_core::{EvalError, Expr};
use audb_storage::{AuDatabase, Database, Schema, UaDatabase};

/// Aggregation functions. `Avg` is derived from `Sum`/`Count` exactly as
/// in Section 10.2; `Count` is `count(*)` (multiplicity-weighted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate: `f(e) AS name`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Expr,
    pub name: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: Expr, name: impl Into<String>) -> Self {
        AggSpec { func, input, name: name.into() }
    }

    pub fn count(name: impl Into<String>) -> Self {
        AggSpec::new(AggFunc::Count, audb_core::lit(1i64), name)
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Base-table access.
    Table(String),
    /// `σ_θ(Q)`.
    Select { input: Box<Query>, predicate: Expr },
    /// Generalized projection `π_{e_1 → A_1, ...}(Q)`.
    Project { input: Box<Query>, exprs: Vec<(Expr, String)> },
    /// Theta-join (cross product when `predicate` is `None`); the
    /// predicate refers to columns of the concatenated schema.
    Join { left: Box<Query>, right: Box<Query>, predicate: Option<Expr> },
    /// Bag union.
    Union { left: Box<Query>, right: Box<Query> },
    /// Bag difference (monus).
    Difference { left: Box<Query>, right: Box<Query> },
    /// Duplicate elimination `δ`.
    Distinct { input: Box<Query> },
    /// Grouping + aggregation `γ_{G; f_1(A_1), ...}(Q)`. `group_by` are
    /// column indices of the input.
    Aggregate { input: Box<Query>, group_by: Vec<usize>, aggs: Vec<AggSpec> },
}

/// Start a plan from a base table.
pub fn table(name: impl Into<String>) -> Query {
    Query::Table(name.into())
}

impl Query {
    pub fn select(self, predicate: Expr) -> Query {
        Query::Select { input: Box::new(self), predicate }
    }

    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Query {
        Query::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        }
    }

    pub fn project_cols(self, cols: &[usize], names: &[&str]) -> Query {
        Query::Project {
            input: Box::new(self),
            exprs: cols
                .iter()
                .zip(names)
                .map(|(c, n)| (audb_core::col(*c), n.to_string()))
                .collect(),
        }
    }

    pub fn join_on(self, right: Query, predicate: Expr) -> Query {
        Query::Join { left: Box::new(self), right: Box::new(right), predicate: Some(predicate) }
    }

    pub fn cross(self, right: Query) -> Query {
        Query::Join { left: Box::new(self), right: Box::new(right), predicate: None }
    }

    pub fn union(self, right: Query) -> Query {
        Query::Union { left: Box::new(self), right: Box::new(right) }
    }

    pub fn difference(self, right: Query) -> Query {
        Query::Difference { left: Box::new(self), right: Box::new(right) }
    }

    pub fn distinct(self) -> Query {
        Query::Distinct { input: Box::new(self) }
    }

    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> Query {
        Query::Aggregate { input: Box::new(self), group_by, aggs }
    }

    /// Names of the base tables the plan reads (each once).
    pub fn table_refs(&self) -> std::collections::BTreeSet<&str> {
        fn walk<'q>(q: &'q Query, out: &mut std::collections::BTreeSet<&'q str>) {
            match q {
                Query::Table(name) => {
                    out.insert(name.as_str());
                }
                Query::Select { input, .. }
                | Query::Project { input, .. }
                | Query::Distinct { input }
                | Query::Aggregate { input, .. } => walk(input, out),
                Query::Join { left, right, .. }
                | Query::Union { left, right }
                | Query::Difference { left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = std::collections::BTreeSet::new();
        walk(self, &mut out);
        out
    }

    /// Number of operators (plan size).
    pub fn size(&self) -> usize {
        match self {
            Query::Table(_) => 1,
            Query::Select { input, .. }
            | Query::Project { input, .. }
            | Query::Distinct { input }
            | Query::Aggregate { input, .. } => 1 + input.size(),
            Query::Join { left, right, .. }
            | Query::Union { left, right }
            | Query::Difference { left, right } => 1 + left.size() + right.size(),
        }
    }

    /// Output schema given a catalog of base-table schemas.
    pub fn schema(&self, catalog: &dyn Catalog) -> Result<Schema, EvalError> {
        match self {
            Query::Table(name) => catalog.table_schema(name),
            Query::Select { input, .. } | Query::Distinct { input } => input.schema(catalog),
            Query::Project { input, exprs } => {
                input.schema(catalog)?; // validate subtree
                Ok(Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect()))
            }
            Query::Join { left, right, .. } => {
                Ok(left.schema(catalog)?.concat(&right.schema(catalog)?))
            }
            Query::Union { left, right } | Query::Difference { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                l.check_union_compatible(&r)?;
                Ok(l)
            }
            Query::Aggregate { input, group_by, aggs } => {
                let in_schema = input.schema(catalog)?;
                let mut cols: Vec<String> =
                    group_by.iter().map(|c| in_schema.column_name(*c).to_string()).collect();
                cols.extend(aggs.iter().map(|a| a.name.clone()));
                Ok(Schema::new(cols))
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Table(n) => write!(f, "{n}"),
            Query::Select { input, predicate } => write!(f, "σ[{predicate}]({input})"),
            Query::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e}→{n}")).collect();
                write!(f, "π[{}]({input})", cols.join(", "))
            }
            Query::Join { left, right, predicate: Some(p) } => {
                write!(f, "({left} ⋈[{p}] {right})")
            }
            Query::Join { left, right, predicate: None } => write!(f, "({left} × {right})"),
            Query::Union { left, right } => write!(f, "({left} ∪ {right})"),
            Query::Difference { left, right } => write!(f, "({left} − {right})"),
            Query::Distinct { input } => write!(f, "δ({input})"),
            Query::Aggregate { input, group_by, aggs } => {
                let a: Vec<String> = aggs
                    .iter()
                    .map(|s| format!("{}({})→{}", s.func.name(), s.input, s.name))
                    .collect();
                write!(f, "γ[{:?}; {}]({input})", group_by, a.join(", "))
            }
        }
    }
}

/// Schema lookup for base tables — implemented by each database flavour.
pub trait Catalog {
    fn table_schema(&self, name: &str) -> Result<Schema, EvalError>;
}

impl Catalog for Database {
    fn table_schema(&self, name: &str) -> Result<Schema, EvalError> {
        Ok(self.get(name)?.schema.clone())
    }
}

impl Catalog for AuDatabase {
    fn table_schema(&self, name: &str) -> Result<Schema, EvalError> {
        Ok(self.get(name)?.schema.clone())
    }
}

impl Catalog for UaDatabase {
    fn table_schema(&self, name: &str) -> Result<Schema, EvalError> {
        Ok(self.get(name)?.schema.clone())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::{col, lit};
    use audb_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert("r", Relation::empty(Schema::named(&["a", "b"])));
        db.insert("s", Relation::empty(Schema::named(&["c"])));
        db
    }

    #[test]
    fn schema_inference() {
        let db = db();
        let q = table("r")
            .select(col(0).gt(lit(1i64)))
            .join_on(table("s"), col(1).eq(col(2)))
            .project(vec![(col(0), "x"), (col(2).add(lit(1i64)), "y")]);
        assert_eq!(q.schema(&db).unwrap(), Schema::named(&["x", "y"]));
    }

    #[test]
    fn aggregate_schema() {
        let db = db();
        let q = table("r").aggregate(
            vec![1],
            vec![AggSpec::new(AggFunc::Sum, col(0), "total"), AggSpec::count("cnt")],
        );
        assert_eq!(q.schema(&db).unwrap(), Schema::named(&["b", "total", "cnt"]));
    }

    #[test]
    fn union_compatibility_checked() {
        let db = db();
        let bad = table("r").union(table("s"));
        assert!(bad.schema(&db).is_err());
    }

    #[test]
    fn join_schema_renames() {
        let db = db();
        let q = table("r").cross(table("r"));
        assert_eq!(q.schema(&db).unwrap(), Schema::named(&["a", "b", "a_r", "b_r"]));
    }

    #[test]
    fn plan_size() {
        let q = table("r").select(lit(true)).cross(table("s"));
        assert_eq!(q.size(), 4);
    }
}
