//! Prepared-plan program reuse: a shared [`ProgramCache`] that lets a
//! serving layer pay parse → rewrite → plan → compile → verify once
//! per (query, epoch) instead of once per execution.
//!
//! Chain compilation happens on the query thread, before any worker
//! fan-out (the same property the tamper and fault seams rely on), so
//! the cache is installed as a thread-local scope around one
//! evaluation: [`with_program_cache`] mirrors
//! [`crate::vcheck::with_tampered_programs`]. Every compile site
//! ([`crate::vcheck::Vet`]) consults the installed cache before
//! lowering; a hit skips lowering *and* the Tier B abstract
//! interpretation, but still re-runs the cheap structural Tier A check
//! — PR 8's doctrine that Tier A gates cached programs stays intact.
//!
//! Coherence is the *caller's* contract: a cache must only be shared
//! across evaluations of the same logical plan against the same
//! catalog shape. The serving engine keys caches by (query text,
//! epoch) and drops them wholesale on publish, which the prepared-
//! cache coherence property test pins down.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use audb_core::Program;

/// Hit/miss meters of one [`ProgramCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// A keyed store of vetted [`Program`]s, shared across evaluations of
/// one prepared plan. Keys encode the compile mode and the expression
/// text, so distinct stages of one chain never collide.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<String, Program>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Cached programs currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counts since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Look up a program, counting the outcome.
    pub(crate) fn lookup(&self, key: &str) -> Option<Program> {
        let found = self.map.lock().unwrap_or_else(PoisonError::into_inner).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a vetted program (last write wins; identical keys compile
    /// to identical programs, so races are benign).
    pub(crate) fn insert(&self, key: String, p: Program) {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).insert(key, p);
    }
}

thread_local! {
    static CACHE: RefCell<Option<Arc<ProgramCache>>> = const { RefCell::new(None) };
}

/// Run `f` with `cache` installed as the program cache for every
/// compile site on this thread. The previous cache (if any) is
/// restored when `f` returns or panics.
pub fn with_program_cache<R>(cache: Arc<ProgramCache>, f: impl FnOnce() -> R) -> R {
    struct Reset(Option<Arc<ProgramCache>>);
    impl Drop for Reset {
        fn drop(&mut self) {
            CACHE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CACHE.with(|c| c.borrow_mut().replace(cache));
    let _reset = Reset(prev);
    f()
}

/// The cache installed on this thread, if any.
pub(crate) fn current() -> Option<Arc<ProgramCache>> {
    CACHE.with(|c| c.borrow().clone())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::{col, lit, Program};

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ProgramCache::new();
        assert!(cache.lookup("k").is_none());
        cache.insert("k".to_string(), Program::compile_det(&col(0).eq(lit(1i64))));
        assert!(cache.lookup("k").is_some());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn install_scope_restores_previous() {
        assert!(current().is_none());
        let outer = Arc::new(ProgramCache::new());
        let inner = Arc::new(ProgramCache::new());
        with_program_cache(outer.clone(), || {
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            with_program_cache(inner.clone(), || {
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            });
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        });
        assert!(current().is_none());
    }
}
