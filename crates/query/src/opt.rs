//! Compaction optimizations (Sections 10.4–10.5): `split` and `Cpr`.
//!
//! Joins over AU-relations degenerate to interval-overlap joins (nested
//! loops, potentially quadratic output). The optimized join splits each
//! input into
//!
//! * `split_sg(R)` — the SGW content with attribute-level uncertainty
//!   removed (certain attribute values, no possible over-approximation),
//!   which equi-joins efficiently, and
//! * `split↑(R)` — the possible over-approximation only (annotations
//!   `(0, 0, ub)`), which is *compressed* to at most `ct` tuples by
//!   bucketing on a join attribute before the quadratic overlap join.
//!
//! `split_sg(R) ∪ split↑(R)` bounds everything `R` bounds (Lemma 6);
//! `Cpr` preserves bounds (Lemma 7); hence the optimized join preserves
//! bounds with precision traded for performance (Lemma 10.1).

use audb_core::{AuAnnot, EvalError, Expr};
use audb_exec::Executor;
use audb_storage::{AuRelation, RangeTuple};

use crate::planner::join_au_planned_exec;

/// `split_sg(R)` (Section 10.4): one certain-attribute tuple per SGW
/// tuple. The lower bound survives only for tuples without attribute
/// uncertainty; the upper bound collapses to the SG multiplicity.
pub fn split_sg(rel: &AuRelation) -> AuRelation {
    let mut out = AuRelation::empty(rel.schema.clone());
    for (t, k) in rel.rows() {
        if k.sg == 0 {
            continue;
        }
        let lb = if t.is_certain() { k.lb } else { 0 };
        out.push(RangeTuple::certain(&t.sg()), AuAnnot::triple(lb.min(k.sg), k.sg, k.sg));
    }
    out.normalized()
}

/// `split↑(R)` (Section 10.4): the possible over-approximation —
/// original ranges, annotations `(0, 0, ub)`.
pub fn split_up(rel: &AuRelation) -> AuRelation {
    let mut out = AuRelation::empty(rel.schema.clone());
    for (t, k) in rel.rows() {
        out.push(t.clone(), AuAnnot::triple(0, 0, k.ub));
    }
    out.normalized()
}

/// `Cpr_{A,n}` (Section 10.4) over raw rows: partition into at most `n`
/// buckets by the selected-guess value of attribute `attr` (equi-depth),
/// merging each bucket into a single tuple with the bucket's bounding
/// box and the sum of upper-bound multiplicities.
pub fn compress_rows(
    rows: &[(RangeTuple, AuAnnot)],
    attr: usize,
    n: usize,
) -> Vec<(RangeTuple, AuAnnot)> {
    let n = n.max(1);
    if rows.len() <= n {
        return rows.iter().map(|(t, k)| (t.clone(), AuAnnot::triple(0, 0, k.ub))).collect();
    }
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|a, b| rows[*a].0 .0[attr].sg.cmp(&rows[*b].0 .0[attr].sg));

    let mut out = Vec::with_capacity(n);
    let chunk = rows.len().div_ceil(n);
    for bucket in order.chunks(chunk) {
        let mut it = bucket.iter();
        #[allow(clippy::unwrap_used)] // chunks() never yields an empty slice
        let first = *it.next().unwrap();
        let mut bbox = rows[first].0.clone();
        let mut ub = rows[first].1.ub;
        for &i in it {
            bbox = bbox.merge_keep_sg(&rows[i].0);
            ub = ub.saturating_add(rows[i].1.ub);
        }
        out.push((bbox, AuAnnot::triple(0, 0, ub)));
    }
    out
}

/// `Cpr_{A,n}` as a relation-level operator.
pub fn compress(rel: &AuRelation, attr: usize, n: usize) -> AuRelation {
    AuRelation::from_rows(rel.schema.clone(), compress_rows(rel.rows(), attr, n))
}

/// The optimized join `opt(Q1 ⋈_θ Q2)` (Section 10.4):
/// `(split_sg(L) ⋈_θsg split_sg(R)) ∪ (Cpr(split↑(L)) ⋈_θ Cpr(split↑(R)))`.
///
/// Both parts go through the join planner: the SG part consists of
/// fully certain tuples, so an equality predicate takes the hash
/// equi-join path and a comparison takes the endpoint sweep; the
/// compressed possible part has at most `ct` tuples per side.
pub fn optimized_join(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
    ct: usize,
) -> Result<AuRelation, EvalError> {
    optimized_join_exec(l, r, predicate, ct, &Executor::default())
}

/// [`optimized_join`] on an explicit executor (both planned sub-joins
/// run their probe/candidate loops on its workers).
pub fn optimized_join_exec(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
    ct: usize,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let split = l.schema.arity();

    // ---- SG part: certain tuples, planner-selected strategy -------------
    let lsg = split_sg(l);
    let rsg = split_sg(r);
    let mut out = join_au_planned_exec(&lsg, &rsg, predicate, exec)?;

    // ---- possible part: compressed overlap join --------------------------
    let (la, ra) = predicate
        .and_then(|p| p.equi_join_columns(split))
        .and_then(|pairs| pairs.first().copied())
        .unwrap_or((0, 0));
    let lup = compress(&split_up(l), la, ct);
    let rup = compress(&split_up(r), ra, ct);
    let pos = join_au_planned_exec(&lup, &rup, predicate, exec)?;
    for (t, k) in pos.rows() {
        out.push(t.clone(), *k);
    }

    Ok(out.into_normalized_with(exec)?)
}

// ---------------------------------------------------------------------------
// Adaptive compression thresholds
// ---------------------------------------------------------------------------

/// Estimated uncertain-candidate work above which the join's
/// split/compress optimization pays for itself. Below it the precise
/// planned join is both faster (`BENCH_join_engine.json` records the
/// small-scale regression: the index-backed precise join beat every CT
/// variant at 500 × 500 with 5% uncertainty) and tighter.
pub const JOIN_COMPRESS_MIN_WORK: u64 = 1 << 20;

/// Should [`optimized_join`] be used over the precise planned join?
/// The cost the compression avoids is the band-filter work of the
/// uncertain rows: roughly (uncertain left × right) + (uncertain right
/// × left) candidate checks in the worst case.
pub fn join_compression_pays_off(l: &AuRelation, r: &AuRelation) -> bool {
    let lu = uncertain_row_count(l) as u64;
    let ru = uncertain_row_count(r) as u64;
    lu.saturating_mul(r.len() as u64).saturating_add(ru.saturating_mul(l.len() as u64))
        >= JOIN_COMPRESS_MIN_WORK
}

/// Uncertain rows below which aggregation compression is skipped even
/// when the count exceeds `ct` (the sweep-indexed membership makes
/// small possible sides cheap, and skipping keeps bounds tight).
pub const AGG_COMPRESS_MIN_UNCERTAIN: usize = 256;

/// Should aggregation compress its possible side to `ct` buckets?
/// Compression cannot shrink an input of at most `ct` uncertain rows
/// but *does* discard their lower/SG annotation components, so below
/// the threshold it is strictly worse.
pub fn agg_compression_pays_off(rel: &AuRelation, group_by: &[usize], ct: usize) -> bool {
    if group_by.is_empty() {
        return false;
    }
    let threshold = AGG_COMPRESS_MIN_UNCERTAIN.max(ct.saturating_mul(4));
    let mut uncertain = 0usize;
    for (t, _) in rel.rows() {
        if !group_by.iter().all(|c| t.0[*c].is_certain()) {
            uncertain += 1;
            if uncertain > threshold {
                return true;
            }
        }
    }
    false
}

fn uncertain_row_count(rel: &AuRelation) -> usize {
    rel.rows().iter().filter(|(t, _)| !t.is_certain()).count()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::au::join_au;
    use audb_core::{col, RangeValue, Value};
    use audb_storage::{au_row, Schema, Tuple};

    fn r2(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::range(lb, sg, ub)
    }

    fn figure_9_inputs() -> (AuRelation, AuRelation) {
        let r = AuRelation::from_rows(
            Schema::named(&["A"]),
            vec![au_row(vec![r2(1, 1, 2)], 2, 2, 3), au_row(vec![r2(1, 2, 2)], 1, 1, 2)],
        );
        let s = AuRelation::from_rows(
            Schema::named(&["C"]),
            vec![au_row(vec![r2(1, 3, 3)], 1, 1, 1), au_row(vec![r2(1, 2, 2)], 1, 2, 2)],
        );
        (r, s)
    }

    /// Figure 9: split_sg removes attribute uncertainty and possible
    /// over-approximation.
    #[test]
    fn split_sg_figure_9() {
        let (r, _) = figure_9_inputs();
        let out = split_sg(&r);
        assert_eq!(out.len(), 2);
        let one = RangeTuple::certain(&[1i64].into_iter().collect::<Tuple>());
        let two = RangeTuple::certain(&[2i64].into_iter().collect::<Tuple>());
        assert_eq!(out.annotation(&one), AuAnnot::triple(0, 2, 2));
        assert_eq!(out.annotation(&two), AuAnnot::triple(0, 1, 1));
    }

    #[test]
    fn split_up_figure_9() {
        let (r, _) = figure_9_inputs();
        let out = split_up(&r);
        assert_eq!(out.len(), 2);
        for (_, k) in out.rows() {
            assert_eq!((k.lb, k.sg), (0, 0));
        }
        assert_eq!(out.possible_size(), 5);
    }

    #[test]
    fn split_union_preserves_sgw() {
        let (r, _) = figure_9_inputs();
        let both = crate::au::union_au(&split_sg(&r), &split_up(&r)).unwrap();
        assert_eq!(both.sg_world(), r.sg_world());
    }

    /// Cpr_{A,1} merges everything into one bucket (Figure 9e/9f).
    #[test]
    fn compress_to_single_bucket() {
        let (r, _) = figure_9_inputs();
        let out = compress(&split_up(&r), 0, 1);
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        assert_eq!(t.0[0].lb, Value::Int(1));
        assert_eq!(t.0[0].ub, Value::Int(2));
        assert_eq!(*k, AuAnnot::triple(0, 0, 5));
    }

    #[test]
    fn compress_respects_bucket_count() {
        let rows: Vec<_> = (0..100i64).map(|i| au_row(vec![r2(i, i, i + 1)], 0, 1, 2)).collect();
        let rel = AuRelation::from_rows(Schema::named(&["A"]), rows);
        for ct in [1usize, 4, 16, 64, 128] {
            let c = compress(&rel, 0, ct);
            assert!(c.len() <= ct.clamp(1, 100));
            assert_eq!(c.possible_size(), rel.possible_size());
        }
    }

    /// Figure 9g: the optimized join keeps the SGW exact while bounding
    /// the possible results with (at most) CT² compressed tuples.
    #[test]
    fn optimized_join_figure_9() {
        let (r, s) = figure_9_inputs();
        let pred = col(0).eq(col(1));
        let naive = join_au(&r, &s, Some(&pred)).unwrap();
        let opt = optimized_join(&r, &s, Some(&pred), 1).unwrap();
        // SGW preserved exactly
        assert_eq!(opt.sg_world(), naive.sg_world());
        // possible size bounded by the compression: sg-part + 1 bucket pair
        assert!(opt.len() <= naive.len() + 1);
        // the compressed possible tuple covers the cross of bounding boxes
        let pos: Vec<_> = opt.rows().iter().filter(|(_, k)| k.lb == 0 && k.sg == 0).collect();
        assert_eq!(pos.len(), 1);
        assert_eq!(pos[0].1.ub, 5 * 3);
    }

    #[test]
    fn optimized_join_certain_data_equals_naive() {
        // with fully certain inputs the optimization is lossless
        let r = AuRelation::from_rows(
            Schema::named(&["A"]),
            vec![au_row(vec![r2(1, 1, 1)], 1, 1, 1), au_row(vec![r2(2, 2, 2)], 2, 2, 2)],
        );
        let s =
            AuRelation::from_rows(Schema::named(&["B"]), vec![au_row(vec![r2(1, 1, 1)], 3, 3, 3)]);
        let pred = col(0).eq(col(1));
        let naive = join_au(&r, &s, Some(&pred)).unwrap();
        let opt = optimized_join(&r, &s, Some(&pred), 4).unwrap();
        assert_eq!(naive.sg_world(), opt.sg_world());
        // same certain content: the optimized result's sg part matches
        for (t, k) in naive.rows() {
            let ko = opt.annotation(t);
            assert!(ko.ub >= k.ub || ko.sg == k.sg);
        }
    }

    #[test]
    fn optimized_join_theta_fallback() {
        let (r, s) = figure_9_inputs();
        let pred = col(0).leq(col(1));
        let naive = join_au(&r, &s, Some(&pred)).unwrap();
        let opt = optimized_join(&r, &s, Some(&pred), 2).unwrap();
        assert_eq!(opt.sg_world(), naive.sg_world());
    }
}
