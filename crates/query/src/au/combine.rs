//! The SG-combiner `Ψ` (Definition 21): merge all tuples that share the
//! same selected-guess attribute values into a single tuple whose ranges
//! are the minimum bounding box and whose annotation is the sum.
//!
//! Ensures every SGW tuple is encoded by exactly one AU-DB tuple, which
//! set difference and aggregation rely on to avoid over-reduction and
//! double counting.

use std::collections::HashMap;

use audb_core::{AuAnnot, Semiring};
use audb_storage::{AuRelation, RangeTuple, Tuple};

/// Apply `Ψ` to a relation.
pub fn sg_combine(rel: &AuRelation) -> AuRelation {
    let mut merged: HashMap<Tuple, (RangeTuple, AuAnnot)> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for (t, k) in rel.rows() {
        if k.is_zero() {
            continue;
        }
        let key = t.sg();
        match merged.get_mut(&key) {
            Some((bbox, annot)) => {
                *bbox = bbox.merge_keep_sg(t);
                *annot = annot.plus(k);
            }
            None => {
                order.push(key.clone());
                merged.insert(key, (t.clone(), *k));
            }
        }
    }
    let mut out = AuRelation::empty(rel.schema.clone());
    for key in order {
        #[allow(clippy::unwrap_used)] // every key in `order` was inserted into `merged`
        let (t, k) = merged.remove(&key).unwrap();
        out.push(t, k);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::RangeValue;
    use audb_storage::{au_row, Schema};

    /// The example from Section 8.1: ([1/2/2],[1/3/5]) ↦ (1,2,2) and
    /// ([2/2/4],[3/3/4]) ↦ (3,3,4) combine into ([1/2/4],[1/3/5]) ↦ (4,5,6).
    #[test]
    fn combiner_example() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![
                au_row(
                    vec![RangeValue::range(1i64, 2i64, 2i64), RangeValue::range(1i64, 3i64, 5i64)],
                    1,
                    2,
                    2,
                ),
                au_row(
                    vec![RangeValue::range(2i64, 2i64, 4i64), RangeValue::range(3i64, 3i64, 4i64)],
                    3,
                    3,
                    4,
                ),
            ],
        );
        let out = sg_combine(&rel);
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        assert_eq!(
            *t,
            RangeTuple::new(vec![
                RangeValue::range(1i64, 2i64, 4i64),
                RangeValue::range(1i64, 3i64, 5i64)
            ])
        );
        assert_eq!(*k, AuAnnot::triple(4, 5, 6));
    }

    #[test]
    fn combiner_preserves_sgw() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A"]),
            vec![
                au_row(vec![RangeValue::range(0i64, 1i64, 5i64)], 0, 2, 3),
                au_row(vec![RangeValue::range(1i64, 1i64, 9i64)], 1, 1, 1),
                au_row(vec![RangeValue::range(0i64, 3i64, 4i64)], 1, 1, 2),
            ],
        );
        let out = sg_combine(&rel);
        assert_eq!(out.len(), 2);
        assert_eq!(out.sg_world(), rel.sg_world());
    }

    #[test]
    fn distinct_sg_values_untouched() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A"]),
            vec![
                au_row(vec![RangeValue::range(0i64, 1i64, 2i64)], 1, 1, 1),
                au_row(vec![RangeValue::range(0i64, 2i64, 2i64)], 1, 1, 1),
            ],
        );
        assert_eq!(sg_combine(&rel).len(), 2);
    }
}
