//! Bound-preserving set difference over AU-relations (Section 8,
//! Definition 22, Theorem 4).
//!
//! The naive pointwise monus does not preserve bounds: because of the
//! negation, a lower bound on the left must be reduced by an *upper*
//! bound of everything on the right that may coincide with it (`≃`,
//! attribute ranges overlap), while the upper bound is only reduced by
//! right tuples that are *certainly* equal (`≡`).

use audb_core::EvalError;
use audb_storage::AuRelation;

use super::combine::sg_combine;

/// `R1 − R2` (Definition 22). The left input is first `Ψ`-combined so
/// each SGW tuple is represented once.
pub fn difference_au(l: &AuRelation, r: &AuRelation) -> Result<AuRelation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    let left = sg_combine(l);
    let mut out = AuRelation::empty(left.schema.clone());
    for (t, k) in left.rows() {
        let t_sg = t.sg();
        let mut sub_overlap_ub = 0u64; // Σ_{t ≃ t'} R2(t')↑
        let mut sub_sg = 0u64; //          Σ_{t^sg = t'^sg} R2(t')^sg
        let mut sub_cert_lb = 0u64; //     Σ_{t ≡ t'} R2(t')↓
        for (t2, k2) in r.rows() {
            if t.overlaps(t2) {
                sub_overlap_ub += k2.ub;
            }
            if t_sg == t2.sg() {
                sub_sg += k2.sg;
            }
            if t.certainly_equal(t2) {
                sub_cert_lb += k2.lb;
            }
        }
        let annot = k.monus_bounds(sub_overlap_ub, sub_sg, sub_cert_lb);
        out.push(t.clone(), annot);
    }
    Ok(out.normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use audb_core::{AuAnnot, RangeValue};
    use audb_storage::{au_row, certain_row, RangeTuple, Schema};

    fn schema() -> Schema {
        Schema::named(&["A"])
    }

    /// The Section 8.2 running example (without attribute uncertainty):
    /// R(1) ↦ (1,2,2), S(1) ↦ (0,0,3): lower bound must drop to 0.
    #[test]
    fn bounds_cross_when_subtracting() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[1], 1, 2, 2)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[1], 0, 0, 3)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(0, 2, 2));
    }

    /// The D2 example of Section 8.2: the SGW tuple (1) is encoded by two
    /// AU tuples; Ψ must merge them before subtracting.
    #[test]
    fn combiner_prevents_over_reduction() {
        let r = AuRelation::from_rows(
            schema(),
            vec![
                certain_row(&[1], 1, 1, 1),
                au_row(vec![RangeValue::range(1i64, 1i64, 2i64)], 1, 1, 1),
            ],
        );
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(1i64, 1i64, 2i64)], 1, 1, 3)],
        );
        let out = difference_au(&r, &s).unwrap();
        // Ψ(R) = ([1/1/2]) ↦ (2,2,2); subtract: lb: 2 − 3 = 0,
        // sg: 2 − 1 = 1, ub: 2 − 0 = 2 (S tuple is not certain, so no
        // certain reduction of the upper bound).
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(0, 1, 2));
    }

    #[test]
    fn certain_equal_reduces_upper_bound() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 3, 4)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[5], 1, 1, 1)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows()[0].1, AuAnnot::triple(1, 2, 3));
    }

    #[test]
    fn non_overlapping_right_is_ignored() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[9], 5, 5, 5)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows()[0].1, AuAnnot::triple(2, 2, 2));
    }

    #[test]
    fn overlap_only_reduces_lower_bound() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(4i64, 6i64, 7i64)], 1, 1, 1)],
        );
        let out = difference_au(&r, &s).unwrap();
        // S's tuple may be 5 (overlap) but is not certainly 5 and its SG
        // is 6 ≠ 5: lb 2−1=1, sg 2−0=2, ub 2−0=2.
        assert_eq!(out.rows()[0].1, AuAnnot::triple(1, 2, 2));
    }

    #[test]
    fn fully_subtracted_tuples_vanish() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 1, 1, 1)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let out = difference_au(&r, &s).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sgw_commutes_with_difference() {
        use audb_core::Value;
        let r = AuRelation::from_rows(
            schema(),
            vec![
                au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 0, 2, 4),
                certain_row(&[7], 1, 1, 1),
            ],
        );
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(2i64, 2i64, 9i64)], 0, 1, 2)],
        );
        let out = difference_au(&r, &s).unwrap();
        // SG worlds: R^sg = {2↦2, 7↦1}, S^sg = {2↦1} → {2↦1, 7↦1}
        let sgw = out.sg_world();
        assert_eq!(sgw.multiplicity(&[Value::Int(2)].into_iter().collect()), 1);
        assert_eq!(sgw.multiplicity(&[Value::Int(7)].into_iter().collect()), 1);
        let _ = RangeTuple::certain; // silence potential unused warnings in cfg combos
    }
}
