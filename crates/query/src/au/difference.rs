//! Bound-preserving set difference over AU-relations (Section 8,
//! Definition 22, Theorem 4).
//!
//! The naive pointwise monus does not preserve bounds: because of the
//! negation, a lower bound on the left must be reduced by an *upper*
//! bound of everything on the right that may coincide with it (`≃`,
//! attribute ranges overlap), while the upper bound is only reduced by
//! right tuples that are *certainly* equal (`≡`).
//!
//! The right side is indexed instead of scanned per left tuple: the
//! `≃`-candidates come from an [`IntervalIndex`] endpoint sweep on the
//! first attribute (precise multi-attribute overlap re-checked per
//! candidate), while the `t^sg = t'^sg` and `≡` reductions are SG-key
//! hash lookups — `O((|L| + |R|) log + candidates)` in place of the old
//! `O(|L| · |R|)` loop. Left tuples are then partitioned across the
//! [`Executor`]'s workers (the reductions are independent per left
//! tuple) with a deterministic ordered merge.

use std::collections::HashMap;

use audb_core::EvalError;
use audb_exec::Executor;
use audb_storage::{AuRelation, IntervalIndex, Tuple};

use super::combine::sg_combine;

/// `R1 − R2` (Definition 22) on the default executor. The left input is
/// first `Ψ`-combined so each SGW tuple is represented once.
pub fn difference_au(l: &AuRelation, r: &AuRelation) -> Result<AuRelation, EvalError> {
    difference_au_exec(l, r, &Executor::default())
}

/// [`difference_au`] on an explicit executor; every worker count
/// produces an identical result.
pub fn difference_au_exec(
    l: &AuRelation,
    r: &AuRelation,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    let left = sg_combine(l);
    let arity = left.schema.arity();

    // SG-key indexes of the right side: Σ R2(t')^sg per SG tuple, and
    // Σ R2(t')↓ per *certain* tuple (the `≡` reduction additionally
    // requires the left tuple to be certain — checked per left tuple).
    let mut sg_sums: HashMap<Tuple, u64> = HashMap::new();
    let mut cert_lb_sums: HashMap<Tuple, u64> = HashMap::new();
    for (t2, k2) in r.rows() {
        *sg_sums.entry(t2.sg()).or_insert(0) += k2.sg;
        if t2.is_certain() {
            *cert_lb_sums.entry(t2.sg()).or_insert(0) += k2.lb;
        }
    }

    // `≃`-candidates per left tuple from a first-attribute endpoint
    // sweep (a superset of the fully-overlapping pairs; the precise
    // check runs below). Nullary tuples always overlap.
    let mut cand: Vec<Vec<u32>> = vec![Vec::new(); left.len()];
    if arity == 0 {
        for c in &mut cand {
            c.extend(0..r.len() as u32);
        }
    } else if !r.is_empty() {
        let li = IntervalIndex::from_au(left.rows(), 0);
        let ri = IntervalIndex::from_au(r.rows(), 0);
        IntervalIndex::sweep_overlapping(&li, &ri, |a, b| cand[a as usize].push(b));
    }

    // One work item is a left tuple's full reduction (candidate loop +
    // hash lookups) — heavier than a plain row op, so the adaptive
    // parallelism floor is lowered accordingly (never raised: a
    // caller-forced zero floor stays zero).
    let dexec =
        exec.clone().with_min_rows_per_worker(exec.partitioner().min_rows_per_worker.min(256));
    let rows = dexec.run(left.len(), |morsel, rows| {
        for i in morsel {
            let (t, k) = &left.rows()[i];
            let t_sg = t.sg();
            let mut sub_overlap_ub = 0u64; // Σ_{t ≃ t'} R2(t')↑
            for &j in &cand[i] {
                let (t2, k2) = &r.rows()[j as usize];
                if t.overlaps(t2) {
                    sub_overlap_ub += k2.ub;
                }
            }
            let sub_sg = sg_sums.get(&t_sg).copied().unwrap_or(0);
            let sub_cert_lb =
                if t.is_certain() { cert_lb_sums.get(&t_sg).copied().unwrap_or(0) } else { 0 };
            let annot = k.monus_bounds(sub_overlap_ub, sub_sg, sub_cert_lb);
            rows.push((t.clone(), annot));
        }
        Ok::<(), EvalError>(())
    })?;
    let mut out = AuRelation::empty(left.schema.clone());
    out.append_rows(rows);
    Ok(out.into_normalized_with(exec)?)
}

/// The pre-index implementation — a full right-side scan per left tuple.
/// Retained as the differential-testing oracle and the bench baseline
/// the indexed version is measured against; produces exactly the same
/// result as [`difference_au_exec`].
pub fn difference_au_scan(l: &AuRelation, r: &AuRelation) -> Result<AuRelation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    let left = sg_combine(l);
    let mut out = AuRelation::empty(left.schema.clone());
    for (t, k) in left.rows() {
        let t_sg = t.sg();
        let mut sub_overlap_ub = 0u64;
        let mut sub_sg = 0u64;
        let mut sub_cert_lb = 0u64;
        for (t2, k2) in r.rows() {
            if t.overlaps(t2) {
                sub_overlap_ub += k2.ub;
            }
            if t_sg == t2.sg() {
                sub_sg += k2.sg;
            }
            if t.certainly_equal(t2) {
                sub_cert_lb += k2.lb;
            }
        }
        out.push(t.clone(), k.monus_bounds(sub_overlap_ub, sub_sg, sub_cert_lb));
    }
    Ok(out.normalized())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::{AuAnnot, RangeValue};
    use audb_storage::{au_row, certain_row, RangeTuple, Schema};

    fn schema() -> Schema {
        Schema::named(&["A"])
    }

    /// The Section 8.2 running example (without attribute uncertainty):
    /// R(1) ↦ (1,2,2), S(1) ↦ (0,0,3): lower bound must drop to 0.
    #[test]
    fn bounds_cross_when_subtracting() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[1], 1, 2, 2)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[1], 0, 0, 3)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(0, 2, 2));
    }

    /// The D2 example of Section 8.2: the SGW tuple (1) is encoded by two
    /// AU tuples; Ψ must merge them before subtracting.
    #[test]
    fn combiner_prevents_over_reduction() {
        let r = AuRelation::from_rows(
            schema(),
            vec![
                certain_row(&[1], 1, 1, 1),
                au_row(vec![RangeValue::range(1i64, 1i64, 2i64)], 1, 1, 1),
            ],
        );
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(1i64, 1i64, 2i64)], 1, 1, 3)],
        );
        let out = difference_au(&r, &s).unwrap();
        // Ψ(R) = ([1/1/2]) ↦ (2,2,2); subtract: lb: 2 − 3 = 0,
        // sg: 2 − 1 = 1, ub: 2 − 0 = 2 (S tuple is not certain, so no
        // certain reduction of the upper bound).
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(0, 1, 2));
    }

    #[test]
    fn certain_equal_reduces_upper_bound() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 3, 4)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[5], 1, 1, 1)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows()[0].1, AuAnnot::triple(1, 2, 3));
    }

    #[test]
    fn non_overlapping_right_is_ignored() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[9], 5, 5, 5)]);
        let out = difference_au(&r, &s).unwrap();
        assert_eq!(out.rows()[0].1, AuAnnot::triple(2, 2, 2));
    }

    #[test]
    fn overlap_only_reduces_lower_bound() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(4i64, 6i64, 7i64)], 1, 1, 1)],
        );
        let out = difference_au(&r, &s).unwrap();
        // S's tuple may be 5 (overlap) but is not certainly 5 and its SG
        // is 6 ≠ 5: lb 2−1=1, sg 2−0=2, ub 2−0=2.
        assert_eq!(out.rows()[0].1, AuAnnot::triple(1, 2, 2));
    }

    #[test]
    fn fully_subtracted_tuples_vanish() {
        let r = AuRelation::from_rows(schema(), vec![certain_row(&[5], 1, 1, 1)]);
        let s = AuRelation::from_rows(schema(), vec![certain_row(&[5], 2, 2, 2)]);
        let out = difference_au(&r, &s).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn sgw_commutes_with_difference() {
        use audb_core::Value;
        let r = AuRelation::from_rows(
            schema(),
            vec![
                au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 0, 2, 4),
                certain_row(&[7], 1, 1, 1),
            ],
        );
        let s = AuRelation::from_rows(
            schema(),
            vec![au_row(vec![RangeValue::range(2i64, 2i64, 9i64)], 0, 1, 2)],
        );
        let out = difference_au(&r, &s).unwrap();
        // SG worlds: R^sg = {2↦2, 7↦1}, S^sg = {2↦1} → {2↦1, 7↦1}
        let sgw = out.sg_world();
        assert_eq!(sgw.multiplicity(&[Value::Int(2)].into_iter().collect()), 1);
        assert_eq!(sgw.multiplicity(&[Value::Int(7)].into_iter().collect()), 1);
        let _ = RangeTuple::certain; // silence potential unused warnings in cfg combos
    }
}
