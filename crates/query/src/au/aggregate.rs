//! Bound-preserving aggregation over AU-relations (Section 9).
//!
//! Aggregation functions are monoids (`SUM`, `MIN`, `MAX`; `COUNT` is
//! `SUM` over 1, `AVG` derives from `SUM`/`COUNT`). Tuple annotations are
//! folded into aggregate values with the bound-preserving operation
//! `⊛_M` (Definition 23) — a true `N_AU`-semimodule cannot be bound
//! preserving (Lemma 3), so `⊛_M` takes min/max over the pairwise
//! combinations of value and multiplicity bounds instead.
//!
//! Grouping follows the *default grouping strategy* (Definition 24): one
//! output tuple per selected-guess group; every input tuple is assigned
//! (`α`) to the output of its SG group; group-by bounds are the bounding
//! box over assigned tuples (Definition 25); aggregate bounds range over
//! the tuples that may fall into the output's box (Definition 26).
//!
//! Execution runs on the [`SgGroupIndex`] grouping index: possible
//! membership of uncertain-group rows comes from an interval sweep
//! between group bounding boxes and row ranges (instead of testing
//! every group against every uncertain row), and the per-group bound
//! computation is partitioned across the [`Executor`]'s workers with a
//! deterministic ordered merge (see `docs/exec-runtime.md`).
//!
//! ### Deviations from the paper's literal Definition 26 (soundness fixes)
//!
//! Two adjustments, both matching the paper's own rewrite implementation
//! (Section 10.2) and its Section 9.6 discussion rather than the literal
//! definition — the literal definition (and its Example 10) produces
//! bounds that violate Definition 16 when an output's group-by box spans
//! several groups:
//!
//! 1. a tuple contributes *unguarded* (without the `min(0_M,·)` /
//!    `max(0_M,·)` neutral-element guard) only when its group-by values
//!    are certain, it certainly exists, **and the output's group-by box
//!    is exactly that certain group** (the rewrite's `θ_c` predicate).
//!    Otherwise the output may be matched to a different group that the
//!    tuple does not belong to, and its unguarded contribution would
//!    corrupt the bound.
//! 2. tuples whose group-by values are certain but differ from the
//!    output's SG group are excluded from the membership set `ð(g)`:
//!    a tuple-matching cover can always route the groups they pin down
//!    to their own output (they justify it), so they never constrain
//!    this output. This tightens bounds and matches Figure 7's values.

use audb_core::{AuAnnot, EvalError, Expr, RangeValue, Value};
use audb_exec::Executor;
use audb_storage::{AuRelation, IntervalIndex, RangeTuple, Schema, SgGroupIndex, Tuple};

use crate::algebra::{AggFunc, AggSpec};
use crate::opt;

/// Aggregation monoids (Section 9.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monoid {
    Sum,
    Min,
    Max,
}

impl Monoid {
    /// The neutral element `0_M`, embedded into the value domain
    /// (`MIN`'s `∞` is the domain-top sentinel, `MAX`'s `-∞` the bottom).
    pub fn neutral(&self) -> Value {
        match self {
            Monoid::Sum => Value::Int(0),
            Monoid::Min => Value::MaxVal,
            Monoid::Max => Value::MinVal,
        }
    }

    /// Monoid addition `+_M`.
    pub fn combine(&self, a: &Value, b: &Value) -> Result<Value, EvalError> {
        match self {
            Monoid::Sum => a.add(b),
            Monoid::Min => Ok(Value::min_of(a.clone(), b.clone())),
            Monoid::Max => Ok(Value::max_of(a.clone(), b.clone())),
        }
    }

    /// The semimodule action `k ∗_{N,M} m` (Section 9.2): `SUM` scales by
    /// the multiplicity; `MIN`/`MAX` are the identity unless `k = 0`, in
    /// which case the tuple contributes the neutral element.
    pub fn star(&self, k: u64, m: &Value) -> Result<Value, EvalError> {
        match self {
            Monoid::Sum => m.mul_count(k),
            Monoid::Min | Monoid::Max => Ok(if k == 0 { self.neutral() } else { m.clone() }),
        }
    }
}

/// `⊛_M` (Definition 23): combine an `N_AU` annotation with a
/// range-annotated value, taking min/max over all pairwise combinations
/// of bounds. Returns `(lower, sg, upper)`.
pub fn boxtimes(
    monoid: Monoid,
    k: &AuAnnot,
    m: &RangeValue,
) -> Result<(Value, Value, Value), EvalError> {
    // Fold the four corner candidates by destructuring — the candidate
    // set is a fixed-size array, so the fold cannot see an empty set
    // (no `reduce().unwrap()` to panic on).
    let [c0, c1, c2, c3] = [
        monoid.star(k.lb, &m.lb)?,
        monoid.star(k.lb, &m.ub)?,
        monoid.star(k.ub, &m.lb)?,
        monoid.star(k.ub, &m.ub)?,
    ];
    let lo =
        Value::min_of(Value::min_of(c0.clone(), c1.clone()), Value::min_of(c2.clone(), c3.clone()));
    let hi = Value::max_of(Value::max_of(c0, c1), Value::max_of(c2, c3));
    let sg = monoid.star(k.sg, &m.sg)?;
    Ok((lo, sg, hi))
}

fn clamp(v: Value, lb: &Value, ub: &Value) -> Value {
    Value::max_of(lb.clone(), Value::min_of(v, ub.clone()))
}

/// Derived `avg` over range triples: `sum / count` with the denominator
/// clamped to at least 1. The same formula is generated as scalar
/// expressions by the rewrite middleware, keeping the two evaluators in
/// lockstep.
///
/// ### Zero-spanning counts (`cnt.lb = 0, cnt.ub > 0`)
///
/// The clamp is *not* a division-by-zero dodge — it pins the intended
/// semantics: an output row only has an average in worlds where its
/// group is non-empty, i.e. where the realized count is ≥ 1. Worlds
/// with count 0 contribute no row at all (with group-by the row simply
/// does not exist there; without group-by
/// [`adjust_for_possible_empty`] separately widens the bounds to the
/// `Null` that deterministic evaluation produces). So the denominator
/// legitimately ranges over `[max(1, cnt.lb), max(1, cnt.ub)]`, and
/// because `sum / c` is monotone in `c` for either sign of `sum`, the
/// four corner combos below bound every achievable average
/// (`avg_zero_spanning_count_*` tests).
///
/// The sg component: with `cnt.sg ≥ 1` it is exactly the SG-world
/// average (`sum.sg / cnt.sg`, matching [`crate::det::avg_value`]).
/// With `cnt.sg = 0` the row is absent from the SG world (its
/// annotation sg is 0), so the component is immaterial — the final
/// clamp into `[lo, hi]` only keeps the triple ordered; it cannot make
/// a *meaningful* sg unsound because `sum.sg / cnt.sg` of a realizable
/// SG world always lies inside the corner bounds already.
pub fn avg_range(sum: &RangeValue, cnt: &RangeValue) -> Result<RangeValue, EvalError> {
    let one = Value::Int(1);
    let cl = Value::max_of(one.clone(), cnt.lb.clone());
    let cu = Value::max_of(one.clone(), cnt.ub.clone());
    let cs = Value::max_of(one, cnt.sg.clone());
    // fixed-size candidate fold: no empty-set panic possible
    let [c0, c1, c2, c3] = [sum.lb.div(&cl)?, sum.lb.div(&cu)?, sum.ub.div(&cl)?, sum.ub.div(&cu)?];
    let lo =
        Value::min_of(Value::min_of(c0.clone(), c1.clone()), Value::min_of(c2.clone(), c3.clone()));
    let hi = Value::max_of(Value::max_of(c0, c1), Value::max_of(c2, c3));
    let sg = clamp(sum.sg.div(&cs)?, &lo, &hi);
    RangeValue::new(lo, sg, hi)
}

/// Aggregate an AU-relation (Definitions 24–28) on the default executor
/// (all available workers). With `compress = Some(ct)`, possible-side
/// contributions are drawn from a `ct`-tuple compression of the input
/// (Section 10.5) instead of the input itself — faster, with looser
/// (but still sound) bounds.
pub fn aggregate_au(
    rel: &AuRelation,
    group_by: &[usize],
    aggs: &[AggSpec],
    compress: Option<usize>,
) -> Result<AuRelation, EvalError> {
    aggregate_au_exec(rel, group_by, aggs, compress, &Executor::default())
}

/// [`aggregate_au`] on an explicit executor: groups are partitioned
/// into morsels and their bounds computed on the scoped pool; morsel
/// outputs merge in group order, so the result is identical for every
/// worker count. Membership of uncertain-group rows comes from an
/// interval sweep between the group bounding boxes and the uncertain
/// rows ([`SgGroupIndex`]), not from the old groups × tuples scan.
pub fn aggregate_au_exec(
    rel: &AuRelation,
    group_by: &[usize],
    aggs: &[AggSpec],
    compress: Option<usize>,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    aggregate_impl(rel, group_by, aggs, compress, exec, true)
}

/// The pre-index membership computation: every output group tests every
/// uncertain-group row for overlap. Retained (sequential) as the
/// differential-testing oracle and the bench baseline the indexed
/// grouping is measured against; produces exactly the same result as
/// [`aggregate_au_exec`].
pub fn aggregate_au_scan(
    rel: &AuRelation,
    group_by: &[usize],
    aggs: &[AggSpec],
    compress: Option<usize>,
) -> Result<AuRelation, EvalError> {
    aggregate_impl(rel, group_by, aggs, compress, &Executor::sequential(), false)
}

fn aggregate_impl(
    rel: &AuRelation,
    group_by: &[usize],
    aggs: &[AggSpec],
    compress: Option<usize>,
    exec: &Executor,
    sweep_membership: bool,
) -> Result<AuRelation, EvalError> {
    let mut names: Vec<String> =
        group_by.iter().map(|c| rel.schema.column_name(*c).to_string()).collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));
    let schema = Schema::new(names);

    // ---- empty input ----------------------------------------------------
    if rel.is_empty() {
        if !group_by.is_empty() {
            return Ok(AuRelation::empty(schema));
        }
        // Aggregation without group-by over an empty relation yields the
        // deterministic neutral row with certainty.
        let mut vals = Vec::with_capacity(aggs.len());
        for spec in aggs {
            let v = match spec.func {
                AggFunc::Sum | AggFunc::Count => RangeValue::certain(Value::Int(0)),
                AggFunc::Min | AggFunc::Max | AggFunc::Avg => RangeValue::certain(Value::Null),
            };
            vals.push(v);
        }
        return Ok(AuRelation::from_rows(
            schema,
            vec![(RangeTuple::new(vals), AuAnnot::certain_one())],
        ));
    }

    // ---- default grouping strategy (Definition 24) on the SG-hash
    // grouping index: one pass assigns every row to its SG group (α),
    // accumulates the per-group bounding boxes (Definition 25), and
    // splits membership into certain-group rows (which belong only to
    // their own group) and the uncertain possible side.
    let gindex = SgGroupIndex::from_au(rel.rows(), group_by);

    // The uncertain possible-member source (the aggregation analog of
    // the join's split, Section 10.5); with `compress = Some(ct)` it is
    // compacted into at most `ct` bounding-box buckets first.
    let uncertain_source: Vec<(RangeTuple, AuAnnot)> = {
        let raw: Vec<(RangeTuple, AuAnnot)> = if group_by.is_empty() {
            Vec::new()
        } else {
            gindex.uncertain().iter().map(|&i| rel.rows()[i as usize].clone()).collect()
        };
        match compress {
            Some(ct) if !group_by.is_empty() => opt::compress_rows(&raw, group_by[0], ct),
            _ => raw,
        }
    };

    // Membership candidates per group: an endpoint sweep between the
    // group boxes and the uncertain source on the first group-by
    // attribute — `O((G + U) log(G + U) + pairs)` instead of the old
    // `O(G · U)` scan. Candidates are sorted back into source order so
    // the (order-sensitive) bound folds match the scan exactly; the
    // precise multi-attribute overlap check happens per candidate below.
    let mut cand: Vec<Vec<u32>> = vec![Vec::new(); gindex.len()];
    if !group_by.is_empty() && !uncertain_source.is_empty() {
        if sweep_membership {
            let gi = gindex.bbox_interval_index(0);
            let si = IntervalIndex::from_au(&uncertain_source, group_by[0]);
            IntervalIndex::sweep_overlapping(&gi, &si, |g, s| cand[g as usize].push(s));
            for c in &mut cand {
                c.sort_unstable();
            }
        } else {
            for c in &mut cand {
                c.extend(0..uncertain_source.len() as u32);
            }
        }
    }

    // For aggregation without group-by, the single output row exists in
    // *every* world — including worlds where the input is empty, where
    // the deterministic MIN/MAX/AVG is Null. Track whether the input may
    // be empty (no certainly-existing row) and whether the SG world is
    // empty, to extend bounds / set the SG component accordingly.
    let possibly_empty = group_by.is_empty() && rel.rows().iter().all(|(_, k)| k.lb == 0);
    let sg_world_empty = group_by.is_empty() && rel.rows().iter().all(|(_, k)| k.sg == 0);

    // ---- per-group bounds, group partitions in parallel -----------------
    // One work item here is a whole *group* (a bound fold over all its
    // members, per aggregate spec) — far heavier than a row, so the
    // adaptive parallelism floor is lowered accordingly (never raised:
    // a caller-forced zero floor stays zero).
    let gexec =
        exec.clone().with_min_rows_per_worker(exec.partitioner().min_rows_per_worker.min(32));
    let one = audb_core::lit(1i64);
    let rows = gexec.run(gindex.len(), |morsel, rows: &mut Vec<(RangeTuple, AuAnnot)>| {
        let mut members: Vec<&(RangeTuple, AuAnnot)> = Vec::new();
        for g in morsel {
            let key = gindex.key(g);
            let bbox = gindex.bbox(g);
            let alpha = gindex.alpha(g);
            let bbox_certain = bbox.is_certain();

            // ð(g): possible members — this group's own certain rows plus
            // every uncertain-group source whose group-by ranges overlap
            // the output's box. (Tuples pinned to another certain group
            // are excluded by construction — deviation 2 in the module
            // docs.)
            members.clear();
            if group_by.is_empty() {
                members.extend(rel.rows().iter());
            } else {
                members.extend(gindex.certain(g).iter().map(|&i| &rel.rows()[i as usize]));
                // column-wise overlap against the box — equivalent to
                // `t.project(group_by).overlaps(bbox)` minus the
                // projection's per-candidate allocation
                members.extend(cand[g].iter().map(|&s| &uncertain_source[s as usize]).filter(
                    |(t, _)| group_by.iter().zip(&bbox.0).all(|(c, b)| t.0[*c].overlaps(b)),
                ));
            }

            // ---- aggregate value bounds ----------------------------------
            let mut agg_vals = Vec::with_capacity(aggs.len());
            for spec in aggs {
                let v = match spec.func {
                    AggFunc::Sum => agg_bounds(
                        rel,
                        alpha,
                        key,
                        group_by,
                        &members,
                        Monoid::Sum,
                        &spec.input,
                        bbox_certain,
                    )?,
                    AggFunc::Count => agg_bounds(
                        rel,
                        alpha,
                        key,
                        group_by,
                        &members,
                        Monoid::Sum,
                        &one,
                        bbox_certain,
                    )?,
                    AggFunc::Min => agg_bounds(
                        rel,
                        alpha,
                        key,
                        group_by,
                        &members,
                        Monoid::Min,
                        &spec.input,
                        bbox_certain,
                    )?,
                    AggFunc::Max => agg_bounds(
                        rel,
                        alpha,
                        key,
                        group_by,
                        &members,
                        Monoid::Max,
                        &spec.input,
                        bbox_certain,
                    )?,
                    AggFunc::Avg => {
                        let sum = agg_bounds(
                            rel,
                            alpha,
                            key,
                            group_by,
                            &members,
                            Monoid::Sum,
                            &spec.input,
                            bbox_certain,
                        )?;
                        let cnt = agg_bounds(
                            rel,
                            alpha,
                            key,
                            group_by,
                            &members,
                            Monoid::Sum,
                            &one,
                            bbox_certain,
                        )?;
                        avg_range(&sum, &cnt)?
                    }
                };
                let v = if group_by.is_empty() {
                    adjust_for_possible_empty(v, spec.func, possibly_empty, sg_world_empty)?
                } else {
                    v
                };
                agg_vals.push(v);
            }

            // ---- row annotation (Definition 28 + the Section 9.6
            // improved group-count bound: α-assigned tuples with
            // *certain* group-by values can only ever form the single
            // group `g`, so they contribute one possible group in total;
            // each uncertain tuple may spawn up to `ub` distinct groups
            // of its own) --------------------------------------------------
            let mut lb_any_certain = false;
            let mut sg_any = false;
            let mut any_certain_group = false;
            let mut uncertain_ub_sum = 0u64;
            // `certain(g)` is the certain-group-by subset of `alpha`,
            // both sorted by row id — walk them in lockstep instead of
            // re-projecting every row.
            let mut certain_iter = gindex.certain(g).iter().peekable();
            for &i in alpha {
                let (_, k) = &rel.rows()[i as usize];
                let certain_g = certain_iter.peek() == Some(&&i);
                if certain_g {
                    certain_iter.next();
                }
                if certain_g {
                    any_certain_group = true;
                    if k.lb > 0 {
                        lb_any_certain = true;
                    }
                } else {
                    // Saturating, not wrapping: adversarial `ub`
                    // multiplicities (u64::MAX-adjacent) must clamp the
                    // possible-group-count bound at the domain top, the
                    // same hardening as `dec_relation`'s checked
                    // product. (u64::MAX stays a sound upper bound.)
                    uncertain_ub_sum = uncertain_ub_sum.saturating_add(k.ub);
                }
                sg_any |= k.sg > 0;
            }
            // Without group-by the single output row exists in every
            // world (Definition 27); with group-by, Definition 28 + the
            // improved group-count bound apply.
            let annot = if group_by.is_empty() {
                AuAnnot::certain_one()
            } else {
                AuAnnot::triple(
                    lb_any_certain as u64,
                    sg_any as u64,
                    (any_certain_group as u64).saturating_add(uncertain_ub_sum).max(sg_any as u64),
                )
            };

            let mut tvals = bbox.0.clone();
            tvals.extend(agg_vals);
            rows.push((RangeTuple::new(tvals), annot));
        }
        Ok::<(), EvalError>(())
    })?;

    let mut out = AuRelation::empty(schema);
    out.append_rows(rows);
    Ok(out.into_normalized_with(exec)?)
}

/// Widen a no-group-by aggregate for worlds with an empty input:
/// `MIN`/`MAX`/`AVG` over an empty relation is `Null`, so when the
/// input may be empty the lower bound must extend down to `Null`, and
/// when the SG world is empty the SG component *is* `Null` (matching
/// deterministic evaluation). `SUM`/`COUNT` need no widening — their
/// empty value 0 is already inside the guarded bounds.
fn adjust_for_possible_empty(
    v: RangeValue,
    func: AggFunc,
    possibly_empty: bool,
    sg_world_empty: bool,
) -> Result<RangeValue, EvalError> {
    match func {
        AggFunc::Sum | AggFunc::Count => Ok(v),
        AggFunc::Min | AggFunc::Max | AggFunc::Avg => {
            let lb = if possibly_empty { Value::min_of(v.lb, Value::Null) } else { v.lb };
            let sg = if sg_world_empty { Value::Null } else { v.sg };
            RangeValue::new(lb, sg, v.ub)
        }
    }
}

/// Compute the `[lb / sg / ub]` of one monoid aggregate for one output
/// group (Definition 26, with the rewrite-consistent `ug` predicate —
/// see module docs).
#[allow(clippy::too_many_arguments)]
fn agg_bounds(
    rel: &AuRelation,
    alpha: &[u32],
    gkey: &Tuple,
    group_by: &[usize],
    members: &[&(RangeTuple, AuAnnot)],
    monoid: Monoid,
    input: &Expr,
    bbox_certain: bool,
) -> Result<RangeValue, EvalError> {
    let neutral = monoid.neutral();
    let mut lb_acc = neutral.clone();
    let mut ub_acc = neutral.clone();

    for (t, k) in members {
        let m = input.eval_range(t.values())?;
        let (lo, _, hi) = boxtimes(monoid, k, &m)?;
        // column-wise `gproj.is_certain() && gproj.sg() == *gkey`
        // without materializing the projection per member
        let non_ug = k.lb > 0
            && bbox_certain
            && group_by
                .iter()
                .zip(&gkey.0)
                .all(|(c, kv)| t.0[*c].is_certain() && t.0[*c].sg == *kv);
        let (lbc, ubc) = if non_ug {
            (lo, hi)
        } else {
            (Value::min_of(neutral.clone(), lo), Value::max_of(neutral.clone(), hi))
        };
        lb_acc = monoid.combine(&lb_acc, &lbc)?;
        ub_acc = monoid.combine(&ub_acc, &ubc)?;
    }

    // SG component: deterministic aggregation over the SG world —
    // α-assigned original tuples only (the rewrite's `θ_sg` guard).
    let mut sg_acc = neutral;
    for &i in alpha {
        let (t, k) = &rel.rows()[i as usize];
        let m = input.eval_range(t.values())?;
        let (_, sgv, _) = boxtimes(monoid, k, &m)?;
        sg_acc = monoid.combine(&sg_acc, &sgv)?;
    }

    let sg = clamp(sg_acc, &lb_acc, &ub_acc);
    RangeValue::new(lb_acc, sg, ub_acc)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::col;
    use audb_storage::au_row;

    fn r2(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::range(lb, sg, ub)
    }

    /// Example 10 (with the soundness fix): sum of A grouped by B over
    /// ⟨[3/5/10], 3⟩ and ⟨[-4/-3/-3], [2/3/4]⟩, both annotated (1,2,2).
    /// The output group's box is [2/3/4] — not certain — so *both* rows
    /// are guarded: lb = min(0,3) + min(0,-8) = -8. (The paper's example
    /// computes -5 by leaving the first row unguarded, which is unsound
    /// when the output may be matched to group 2 or 4: a world where the
    /// second tuple lands in group 2 with sum -8 must be bounded.)
    #[test]
    fn example_10_sum_lower_bound_sound() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![
                au_row(vec![r2(3, 5, 10), RangeValue::certain(Value::Int(3))], 1, 2, 2),
                au_row(vec![r2(-4, -3, -3), r2(2, 3, 4)], 1, 2, 2),
            ],
        );
        let out =
            aggregate_au(&rel, &[1], &[AggSpec::new(AggFunc::Sum, col(0), "s")], None).unwrap();
        assert_eq!(out.len(), 1);
        let (t, _) = &out.rows()[0];
        let sum = &t.0[1];
        assert_eq!(sum.lb, Value::Int(-8));
        // SG: both tuples in SGW group 3: 5·2 + (-3)·2 = 4
        assert_eq!(sum.sg, Value::Int(4));
        // upper bound: max(0, 20) + max(0, -3) = 20
        assert_eq!(sum.ub, Value::Int(20));
    }

    /// When every group-by value is certain, bounds are exact per group
    /// (matching Example 10's intent for fully certain grouping).
    #[test]
    fn certain_groups_exact_contributions() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![
                au_row(vec![r2(3, 5, 10), RangeValue::certain(Value::Int(3))], 1, 2, 2),
                au_row(vec![r2(-4, -3, -3), RangeValue::certain(Value::Int(3))], 1, 2, 2),
            ],
        );
        let out =
            aggregate_au(&rel, &[1], &[AggSpec::new(AggFunc::Sum, col(0), "s")], None).unwrap();
        let sum = &out.rows()[0].0 .0[1];
        // lb: 3·1 + (-4)·2 = -5; sg: 10 − 6 = 4; ub: 10·2 + (-3)·1 = 17
        assert_eq!(sum.lb, Value::Int(-5));
        assert_eq!(sum.sg, Value::Int(4));
        assert_eq!(sum.ub, Value::Int(17));
    }

    /// Figure 7(c): count(*) grouped by street (street of the second
    /// address is unknown). Values match the figure except where the
    /// figure's bounds are unsound/conditional (see module docs):
    /// Canal's count lower bound and Monroe's conditional bounds.
    #[test]
    fn figure_7_count_by_street() {
        let street = |s: &str| RangeValue::certain(Value::str(s));
        let unknown_street = |sg: &str| RangeValue::unknown(Value::str(sg));
        let rel = AuRelation::from_rows(
            Schema::named(&["street", "number"]),
            vec![
                au_row(vec![street("Canal"), r2(165, 165, 165)], 1, 1, 2),
                au_row(vec![unknown_street("Canal"), r2(153, 153, 156)], 1, 1, 1),
                au_row(vec![street("State"), r2(623, 623, 629)], 2, 2, 3),
                au_row(vec![street("Monroe"), r2(3550, 3574, 3585)], 0, 0, 1),
            ],
        );
        let out = aggregate_au(&rel, &[0], &[AggSpec::count("cnt")], None).unwrap();
        let mut by_street = std::collections::HashMap::new();
        for (t, k) in out.rows() {
            by_street.insert(format!("{}", t.0[0].sg), (t.0[1].clone(), *k));
        }
        // Canal: its box covers the whole domain (unknown street merged
        // in), so both member rows are guarded: [0/2/3], annot (1,1,2).
        let (canal_cnt, canal_annot) = &by_street["Canal"];
        assert_eq!(canal_cnt.lb, Value::Int(0));
        assert_eq!(canal_cnt.sg, Value::Int(2));
        assert_eq!(canal_cnt.ub, Value::Int(3));
        assert_eq!(*canal_annot, AuAnnot::triple(1, 1, 2));
        // State: certain box; the unknown-street row may join: [2/2/4],
        // annot (1,1,1) — exactly the figure.
        let (state_cnt, state_annot) = &by_street["State"];
        assert_eq!(state_cnt.lb, Value::Int(2));
        assert_eq!(state_cnt.sg, Value::Int(2));
        assert_eq!(state_cnt.ub, Value::Int(4));
        assert_eq!(*state_annot, AuAnnot::triple(1, 1, 1));
        // Monroe: possible-only row → row annotation (0,0,1); count is
        // [0/0/2] (the figure reports the conditional bound [1/1/2]).
        let (monroe_cnt, monroe_annot) = &by_street["Monroe"];
        assert_eq!(monroe_cnt.lb, Value::Int(0));
        assert_eq!(monroe_cnt.ub, Value::Int(2));
        assert_eq!(*monroe_annot, AuAnnot::triple(0, 0, 1));
    }

    /// Figure 7(b): aggregation without group-by sums everything,
    /// guarding possible-only tuples with the neutral element.
    #[test]
    fn figure_7_sum_no_groupby() {
        let rel = AuRelation::from_rows(
            Schema::named(&["inhab"]),
            vec![
                au_row(vec![r2(1, 1, 1)], 1, 1, 2),
                au_row(vec![r2(1, 2, 2)], 1, 1, 1),
                au_row(vec![r2(2, 2, 2)], 2, 2, 3),
                au_row(vec![r2(2, 3, 4)], 0, 0, 1),
            ],
        );
        let out =
            aggregate_au(&rel, &[], &[AggSpec::new(AggFunc::Sum, col(0), "pop")], None).unwrap();
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        // lb: 1 + 1 + 4 + min(0,2·0) = 6; sg: 1 + 2 + 4 + 0 = 7
        // ub: 2 + 2 + 6 + max(0,4) = 14 — matches Figure 7(b) [6/7/14].
        assert_eq!(t.0[0], r2(6, 7, 14));
        assert_eq!(*k, AuAnnot::certain_one());
    }

    #[test]
    fn min_max_bounds() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![RangeValue::certain(Value::Int(1)), r2(5, 6, 7)], 1, 1, 1),
                au_row(vec![r2(1, 1, 2), r2(2, 3, 4)], 0, 1, 1),
            ],
        );
        let out = aggregate_au(
            &rel,
            &[0],
            &[AggSpec::new(AggFunc::Min, col(1), "lo"), AggSpec::new(AggFunc::Max, col(1), "hi")],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let (t, _) = &out.rows()[0];
        let (lo, hi) = (&t.0[1], &t.0[2]);
        // The output box [1/1/2] is uncertain: the output may represent
        // group 2 (second row only), so the first row's values cannot
        // tighten the aggregate's outer bounds.
        assert_eq!(lo.lb, Value::Int(2));
        assert_eq!(lo.sg, Value::Int(3)); // SGW: min(6, 3) = 3
        assert_eq!(lo.ub, Value::MaxVal);
        assert_eq!(hi.lb, Value::MinVal);
        assert_eq!(hi.sg, Value::Int(6));
        assert_eq!(hi.ub, Value::Int(7));
    }

    #[test]
    fn min_max_certain_group_tight() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![RangeValue::certain(Value::Int(1)), r2(5, 6, 7)], 1, 1, 1),
                au_row(vec![RangeValue::certain(Value::Int(1)), r2(2, 3, 4)], 0, 1, 1),
            ],
        );
        let out = aggregate_au(
            &rel,
            &[0],
            &[AggSpec::new(AggFunc::Min, col(1), "lo"), AggSpec::new(AggFunc::Max, col(1), "hi")],
            None,
        )
        .unwrap();
        let (t, k) = &out.rows()[0];
        let (lo, hi) = (&t.0[1], &t.0[2]);
        // group is certain: row 1 contributes exactly; row 2 might not
        // exist (lb 0) so it cannot raise the min's lower bound above 2
        // nor guarantee the max exceeds 7.
        assert_eq!(*lo, r2(2, 3, 7));
        assert_eq!(*hi, r2(5, 6, 7));
        assert_eq!(*k, AuAnnot::triple(1, 1, 1));
    }

    #[test]
    fn avg_derived_from_sum_count() {
        let rel = AuRelation::from_rows(
            Schema::named(&["v"]),
            vec![au_row(vec![r2(10, 10, 10)], 1, 1, 1), au_row(vec![r2(20, 20, 20)], 0, 1, 1)],
        );
        let out =
            aggregate_au(&rel, &[], &[AggSpec::new(AggFunc::Avg, col(0), "a")], None).unwrap();
        let (t, _) = &out.rows()[0];
        let avg = &t.0[0];
        // sum ∈ [10, 30], count ∈ [1, 2] → avg ∈ [5, 30]; SG: 30/2 = 15
        assert_eq!(avg.lb, Value::float(5.0));
        assert_eq!(avg.sg, Value::float(15.0));
        assert_eq!(avg.ub, Value::float(30.0));
    }

    #[test]
    fn empty_input_no_groupby_neutral_row() {
        let rel = AuRelation::empty(Schema::named(&["v"]));
        let out = aggregate_au(
            &rel,
            &[],
            &[AggSpec::new(AggFunc::Sum, col(0), "s"), AggSpec::new(AggFunc::Min, col(0), "m")],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        assert_eq!(t.0[0], RangeValue::certain(Value::Int(0)));
        assert_eq!(t.0[1], RangeValue::certain(Value::Null));
        assert_eq!(*k, AuAnnot::certain_one());
    }

    #[test]
    fn empty_input_with_groupby_empty_result() {
        let rel = AuRelation::empty(Schema::named(&["g", "v"]));
        let out =
            aggregate_au(&rel, &[0], &[AggSpec::new(AggFunc::Sum, col(1), "s")], None).unwrap();
        assert!(out.is_empty());
    }

    /// SGW extraction commutes with aggregation: the SG components of the
    /// AU aggregate equal deterministic aggregation over the SG world.
    #[test]
    fn sg_commutes_with_aggregation() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![r2(1, 1, 3), r2(5, 10, 20)], 1, 2, 2),
                au_row(vec![r2(1, 2, 2), r2(0, 4, 8)], 0, 1, 3),
                au_row(vec![RangeValue::certain(Value::Int(2)), r2(-5, -1, 0)], 1, 1, 1),
            ],
        );
        let out = aggregate_au(
            &rel,
            &[0],
            &[AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")],
            None,
        )
        .unwrap();
        let sgw_agg = out.sg_world();
        let det = crate::det::aggregate_det(
            &rel.sg_world(),
            &[0],
            &[AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")],
        )
        .unwrap();
        assert_eq!(sgw_agg, det.normalized());
    }

    /// Compression keeps bounds sound but looser (Lemma 10.2 shape).
    #[test]
    fn compressed_aggregation_subsumes_precise() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![r2(1, 1, 2), r2(5, 10, 20)], 1, 1, 1),
                au_row(vec![r2(1, 2, 3), r2(0, 4, 8)], 0, 1, 2),
                au_row(vec![r2(2, 3, 3), r2(-5, -1, 0)], 1, 1, 1),
                au_row(vec![r2(3, 3, 4), r2(2, 2, 2)], 1, 1, 1),
            ],
        );
        let aggs = [AggSpec::new(AggFunc::Sum, col(1), "s")];
        let precise = aggregate_au(&rel, &[0], &aggs, None).unwrap();
        let compressed = aggregate_au(&rel, &[0], &aggs, Some(2)).unwrap();
        assert_eq!(precise.sg_world(), compressed.sg_world());
        // every precise tuple's bounds are inside the compressed ones
        for (tp, kp) in precise.rows() {
            let (tc, kc) = compressed
                .rows()
                .iter()
                .find(|(tc, _)| tc.sg() == tp.sg())
                .expect("group preserved");
            for (rp, rc) in tp.0.iter().zip(&tc.0) {
                assert!(rc.lb <= rp.lb && rp.ub <= rc.ub, "{rc} should contain {rp}");
            }
            assert!(kc.lb <= kp.lb && kp.ub <= kc.ub);
        }
    }

    /// Regression (PR 5): the possible-group-count fold saturates
    /// instead of wrapping when adversarial multiplicities sit next to
    /// `u64::MAX` — two uncertain-group rows with `ub = u64::MAX`
    /// previously overflowed `uncertain_ub_sum += k.ub` (a debug-build
    /// panic, silent wraparound in release), collapsing the row
    /// annotation's upper bound to a tiny — unsound — value.
    #[test]
    fn count_annotation_ub_saturates_at_adversarial_multiplicities() {
        let huge = u64::MAX - 1;
        // two uncertain-group rows assigned to the SAME SG group so the
        // per-group fold really adds huge + huge
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![r2(1, 1, 2), r2(5, 5, 5)], 0, 0, huge),
                au_row(vec![r2(0, 1, 3), r2(7, 7, 7)], 0, 0, huge),
            ],
        );
        let out = aggregate_au(&rel, &[0], &[AggSpec::count("c")], None).unwrap();
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        // saturated at the domain top — still a sound upper bound
        // (previously: wraparound to huge + huge mod 2^64 = u64::MAX - 3,
        // a debug-build panic and a silent release-mode near-miss; a
        // third row would have wrapped to a tiny, *unsound* bound)
        assert_eq!(k.ub, u64::MAX);
        assert_eq!((k.lb, k.sg), (0, 0));
        // the count *value* bound must not wrap either: u64::MAX-sized
        // multiplicities promote to float in `mul_count` instead of
        // flipping negative through `as i64` (u64::MAX as i64 == -1)
        let cnt = &t.0[1];
        assert_eq!(cnt.lb, Value::Int(0));
        assert!(
            cnt.ub >= Value::float(huge as f64),
            "count ub {} wrapped below the multiplicity sum",
            cnt.ub
        );
    }

    /// Aggregation over an all-zero-multiplicity group: zero
    /// annotations `(0, 0, 0)` cannot enter an [`AuRelation`] at all —
    /// construction normalizes and `push` drops them — so the group is
    /// *empty* by the time aggregation runs, and the candidate folds
    /// (fixed-size corner arrays, no `reduce().unwrap()`) stay total on
    /// the resulting empty relation instead of panicking. Both the
    /// grouped (empty output) and ungrouped (neutral row) shapes agree
    /// with the rewrite middleware.
    #[test]
    fn aggregation_over_all_zero_multiplicity_group() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                au_row(vec![RangeValue::certain(Value::Int(1)), r2(5, 6, 7)], 0, 0, 0),
                au_row(vec![RangeValue::certain(Value::Int(1)), r2(2, 3, 4)], 0, 0, 0),
            ],
        );
        assert!(rel.is_empty(), "zero annotations never enter a relation");
        let aggs = [AggSpec::new(AggFunc::Sum, col(1), "s"), AggSpec::count("c")];
        let out = aggregate_au(&rel, &[0], &aggs, None).unwrap();
        assert!(out.is_empty(), "a group of never-existing rows produces no output");
        // without group-by the single output row is the deterministic
        // neutral row, with certainty
        let out = aggregate_au(&rel, &[], &aggs, None).unwrap();
        assert_eq!(out.len(), 1);
        let (t, k) = &out.rows()[0];
        assert_eq!(t.0[0], RangeValue::certain(Value::Int(0)));
        assert_eq!(t.0[1], RangeValue::certain(Value::Int(0)));
        assert_eq!(*k, AuAnnot::certain_one());
        // the rewrite middleware agrees exactly on the grouped shape
        let mut db = audb_storage::AuDatabase::new();
        db.insert("r", rel);
        let q = crate::algebra::table("r").aggregate(vec![0], aggs.to_vec());
        let native = crate::au::eval_au(&db, &q, &crate::au::AuConfig::precise()).unwrap();
        let via = crate::rewrite::eval_via_rewrite(&db, &q).unwrap();
        assert_eq!(native, via);
    }

    /// The `⊛_M` corner folds themselves are total on the zero
    /// annotation (the shape the old `reduce().unwrap()` made look
    /// partial): every monoid yields its guarded neutral.
    #[test]
    fn boxtimes_total_on_zero_annotation() {
        let k = AuAnnot::triple(0, 0, 0);
        let m = r2(-5, 1, 7);
        let (lo, sg, hi) = boxtimes(Monoid::Sum, &k, &m).unwrap();
        assert_eq!((lo, sg, hi), (Value::Int(0), Value::Int(0), Value::Int(0)));
        let (lo, sg, hi) = boxtimes(Monoid::Min, &k, &m).unwrap();
        assert_eq!((lo, sg, hi), (Value::MaxVal, Value::MaxVal, Value::MaxVal));
        let (lo, sg, hi) = boxtimes(Monoid::Max, &k, &m).unwrap();
        assert_eq!((lo, sg, hi), (Value::MinVal, Value::MinVal, Value::MinVal));
    }

    /// `avg` with a zero-spanning count (`cnt.lb = 0, cnt.ub > 0`): the
    /// denominator clamp to ≥ 1 encodes "the row only exists in worlds
    /// with a non-empty group" — every achievable world average must be
    /// inside the bounds, and the sg must equal the SG-world average
    /// when the SG world has members.
    #[test]
    fn avg_zero_spanning_count_bounds_every_world() {
        // one certain member (v = 10) + one possible member (v = 40):
        // count [1/1/2], sum [10/10/50]
        let rel = AuRelation::from_rows(
            Schema::named(&["v"]),
            vec![au_row(vec![r2(10, 10, 10)], 1, 1, 1), au_row(vec![r2(40, 40, 40)], 0, 0, 1)],
        );
        let out =
            aggregate_au(&rel, &[], &[AggSpec::new(AggFunc::Avg, col(0), "a")], None).unwrap();
        let avg = &out.rows()[0].0 .0[0];
        // achievable averages: {10} → 10, {10, 40} → 25
        for world in [10.0, 25.0] {
            assert!(
                avg.bounds(&Value::float(world)),
                "achievable world average {world} escapes {avg}"
            );
        }
        assert_eq!(avg.sg, Value::float(10.0), "SG world = {{10}}");

        // possible-only group: count [0/0/2] — the average in worlds
        // where the group exists is 30 for either realized count; the
        // lower bound may not be dragged below by the empty world's
        // (nonexistent) row. SG world is empty → sg widens to Null via
        // the possible-empty adjustment, matching det evaluation.
        let rel = AuRelation::from_rows(
            Schema::named(&["v"]),
            vec![au_row(vec![r2(30, 30, 30)], 0, 0, 2)],
        );
        let out =
            aggregate_au(&rel, &[], &[AggSpec::new(AggFunc::Avg, col(0), "a")], None).unwrap();
        let avg = &out.rows()[0].0 .0[0];
        assert!(avg.bounds(&Value::float(30.0)), "world average 30 escapes {avg}");
        assert_eq!(avg.sg, Value::Null, "empty SG world averages to Null");
        assert!(avg.lb <= avg.sg && avg.sg <= avg.ub);
    }

    /// Tuples pinned to a different certain group do not pollute this
    /// group's bounds (deviation 2 / Figure 7's State row).
    #[test]
    fn foreign_certain_tuples_excluded() {
        let rel = AuRelation::from_rows(
            Schema::named(&["g", "v"]),
            vec![
                // group 1 with a wide box due to an uncertain member
                au_row(vec![r2(1, 1, 9), r2(0, 1, 1)], 1, 1, 1),
                // certainly group 5 — inside group 1's box but pinned
                au_row(vec![RangeValue::certain(Value::Int(5)), r2(100, 100, 100)], 1, 1, 1),
            ],
        );
        let out =
            aggregate_au(&rel, &[0], &[AggSpec::new(AggFunc::Sum, col(1), "s")], None).unwrap();
        let g1 = out.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(1)).unwrap();
        let sum = &g1.0 .0[1];
        // without the exclusion the foreign row's +100 would leak in
        assert_eq!(sum.ub, Value::Int(1));
        assert_eq!(sum.lb, Value::Int(0));
    }
}
