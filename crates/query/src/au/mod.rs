//! Native AU-DB query semantics (Sections 7–9): bound-preserving
//! evaluation of `RA^agg` directly over [`AuRelation`]s.
//!
//! * `RA+` (Section 7): standard `K_AU`-relational semantics where
//!   selection conditions evaluate to boolean triples mapped into
//!   annotations by `M_K` (Definition 19);
//! * set difference (Section 8) via the SG-combiner `Ψ`;
//! * grouping/aggregation (Section 9) with the default grouping
//!   strategy;
//! * optional compaction (Section 10.4/10.5) configured per query.

pub mod aggregate;
pub mod combine;
pub mod difference;
pub(crate) mod pipeline;

use std::borrow::Cow;
use std::fmt;
use std::time::{Duration, Instant};

use audb_core::obs::{
    Counter, ExecEvent, ExecEventKind, Metrics, QueryTrace, TraceBuilder, TRACE_SCHEMA_VERSION,
};
use audb_core::{AuAnnot, Budget, BudgetSpec, CancelToken, EvalError, Expr, Semiring};
use audb_exec::{Executor, WorkerGate};
use audb_storage::{AuDatabase, AuRelation, Schema};

use crate::algebra::Query;
use crate::opt;
use crate::planner;

/// Evaluation options: `None` disables an optimization, `Some(ct)` bounds
/// the compressed possible-side of joins/aggregation to `ct` tuples
/// (the paper's "CT" knob in Figures 13–16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuConfig {
    /// Apply the split/compress join optimization (Section 10.4).
    pub join_compress: Option<usize>,
    /// Apply the compressed-possible-side aggregation optimization
    /// (Section 10.5).
    pub agg_compress: Option<usize>,
    /// Skip split/compress on inputs too small or too certain for the
    /// compression to pay for itself (see [`opt::join_compression_pays_off`]
    /// and [`opt::agg_compression_pays_off`]). Off by default so explicit
    /// `join_compress`/`agg_compress` settings keep their forced meaning;
    /// [`AuConfig::compressed`] turns it on.
    pub adaptive: bool,
    /// Worker threads for the partition-parallel operator drivers:
    /// `None` uses all available hardware threads, `Some(1)` is the
    /// exact sequential behavior. Any value produces identical results
    /// (`tests/exec_equivalence.rs`).
    pub workers: Option<usize>,
    /// Shard-at-a-time pipeline execution (on by default): fuse maximal
    /// chains of row-local operators and run each chain shard-by-shard
    /// with a single normalization at the pipeline breaker
    /// ([`pipeline`]). `false` forces the operator-at-a-time path
    /// (one materialization + merge barrier per operator). Results are
    /// byte-identical either way. Compressed configurations
    /// (`join_compress`/`agg_compress` set) always use the
    /// operator-at-a-time path.
    pub pipeline: bool,
    /// Number of contiguous shards a fused chain slices its base input
    /// into: `None` sizes automatically from the worker count and input
    /// size, `Some(s)` forces exactly `s` (the determinism tests force
    /// {1, 3, 8}). Any value produces identical results.
    pub shards: Option<usize>,
    /// Override the adaptive parallelism floor
    /// ([`audb_exec::Partitioner::min_rows_per_worker`]) of the
    /// session's executor: `None` keeps the default (1024 rows per
    /// worker before `workers > 1` leaves the inline path), `Some(0)`
    /// disables it — the equivalence tests use that to force real
    /// multi-worker execution on tiny inputs. Drivers with heavier work
    /// items (aggregation's groups, difference's left tuples) only ever
    /// *lower* the floor further. Any value produces identical results.
    pub min_rows_per_worker: Option<usize>,
    /// Compile fused-chain expressions to flat register programs
    /// ([`audb_core::Program`], on by default): every select / project /
    /// probe-predicate stage of a fused chain is lowered once per chain
    /// and evaluated with no recursion and no per-row allocation;
    /// select/project-only chains additionally run one op over a whole
    /// shard of rows at a time. `false` keeps the `Expr`-tree
    /// interpreter (`eval_range`), the differential-testing oracle.
    /// Results are byte-identical either way
    /// (`tests/compiled_exprs_props.rs`).
    pub compiled: bool,
    /// Vectorized columnar execution of compiled probe-less chains (on
    /// by default): batched select/project stages evaluate as typed
    /// vector kernels over the source relation's column lanes
    /// ([`audb_storage::ColumnSet`], [`audb_core::Program::eval_range_lanes`])
    /// instead of row-major batch sweeps. Kernels are exact refinements
    /// of the scalar range combinators — any row a kernel cannot
    /// reproduce bit-identically (overflow out of the Int lattice, NaN)
    /// demotes its whole op to the generic per-row path — so results
    /// are byte-identical either way (`tests/columnar_props.rs`).
    /// `false` keeps the row-major batch path, the differential oracle.
    pub columnar: bool,
    /// Tier B static verification of compiled chain programs
    /// ([`audb_core::verify`], on by default): after lowering, every
    /// chain stage is abstractly interpreted over the type × interval
    /// lattice, and a rejected program degrades that stage to the
    /// interpreted `Expr`-tree oracle instead of executing — observable
    /// as a `verify_rejects` counter tick, a `verifier_rejected` event,
    /// and a `verify` trace span. Tier A (the structural dataflow
    /// verifier) is not optional: it runs inside `Program` construction
    /// regardless of this knob. `false` skips the Tier B pass (the
    /// compile-overhead bench baseline).
    pub verify: bool,
    /// Wall-clock deadline for the whole query: [`eval_au`] arms a
    /// [`CancelToken`] with this timeout and threads it through every
    /// operator driver, which checks it at morsel boundaries and inside
    /// compiled-chain row sweeps. An expired deadline surfaces as
    /// [`audb_core::ExecError::DeadlineExceeded`] within one morsel of
    /// work. `None` (the default) runs ungoverned.
    pub timeout: Option<Duration>,
    /// Resource budget for the query: a per-query [`Budget`] charged by
    /// the expanding operators (join probe output, pipeline-breaker
    /// buffers, the normalization scatter). Exceeding it surfaces as
    /// [`audb_core::ExecError::BudgetExceeded`] naming the tripping
    /// operator. `None` (the default) is unlimited.
    pub budget: Option<BudgetSpec>,
}

impl Default for AuConfig {
    fn default() -> Self {
        AuConfig {
            join_compress: None,
            agg_compress: None,
            adaptive: false,
            workers: None,
            pipeline: true,
            shards: None,
            min_rows_per_worker: None,
            compiled: true,
            columnar: true,
            verify: true,
            timeout: None,
            budget: None,
        }
    }
}

impl AuConfig {
    /// Fully precise evaluation (the formal semantics, no compaction).
    pub fn precise() -> Self {
        AuConfig::default()
    }

    /// Compact intermediate results to at most `ct` possible tuples —
    /// adaptively: inputs below the compression thresholds evaluate
    /// precisely instead (tighter bounds *and* faster at small scale;
    /// see `BENCH_join_engine.json` for the regression this avoids).
    pub fn compressed(ct: usize) -> Self {
        AuConfig {
            join_compress: Some(ct),
            agg_compress: Some(ct),
            adaptive: true,
            ..AuConfig::default()
        }
    }

    /// Set an explicit worker count (1 = sequential).
    #[must_use = "builder methods return the modified config; dropping it leaves the original unchanged"]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Toggle columnar (vectorized) evaluation of batched chains;
    /// `false` is the row-major differential oracle.
    #[must_use = "builder methods return the modified config; dropping it leaves the original unchanged"]
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Set a wall-clock deadline for the query.
    #[must_use = "builder methods return the modified config; dropping it leaves the query ungoverned"]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Set a resource budget for the query.
    #[must_use = "builder methods return the modified config; dropping it leaves the query ungoverned"]
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Evaluate a query over an AU-database.
///
/// With `cfg.pipeline` (the default) maximal chains of row-local
/// operators run shard-at-a-time through [`pipeline`], paying one
/// normalization per pipeline breaker instead of one per operator;
/// otherwise every operator runs operator-at-a-time. The result is
/// byte-identical either way, for any worker and shard count.
///
/// Governance: [`AuConfig::timeout`] arms a [`CancelToken`] with a
/// wall-clock deadline and [`AuConfig::budget`] attaches a fresh
/// per-query [`Budget`]; faults surface as
/// [`EvalError::Exec`]. When the compiled-chain path fails with a
/// *non-resource* fault (a worker panic or injected error — not
/// cancellation, deadline, or budget exhaustion), evaluation degrades
/// gracefully: it retries once on the interpreted `Expr`-tree oracle
/// (`compiled: false`) with a fresh budget before giving up.
pub fn eval_au(db: &AuDatabase, q: &Query, cfg: &AuConfig) -> Result<AuRelation, EvalError> {
    let token = cfg.timeout.map(CancelToken::with_deadline_in);
    eval_au_governed(db, q, cfg, token.as_ref(), &Metrics::disabled(), &TraceBuilder::disabled())
}

/// [`eval_au`] under an externally owned [`CancelToken`], so a serving
/// layer can cancel a running query from another thread. The token is
/// used as-is — arm a deadline with [`CancelToken::with_deadline_in`]
/// rather than [`AuConfig::timeout`], which this entry point ignores.
pub fn eval_au_cancellable(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    token: &CancelToken,
) -> Result<AuRelation, EvalError> {
    eval_au_governed(db, q, cfg, Some(token), &Metrics::disabled(), &TraceBuilder::disabled())
}

/// One evaluation attempt under a serving layer's governance context:
/// an externally owned [`CancelToken`], a shared [`WorkerGate`]
/// (engine-wide worker-thread budget), and a shared [`Metrics`] sink.
///
/// Unlike [`eval_au`], this never degrades internally: a compiled-path
/// fault surfaces to the caller, who owns the retry / interpreted-
/// fallback policy (the serving engine's backoff loop and per-plan
/// circuit breaker need to *see* each fault to count it). The token is
/// used as-is; [`AuConfig::timeout`] is ignored — arm deadlines on the
/// token.
pub fn eval_au_once(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    token: Option<&CancelToken>,
    gate: Option<&WorkerGate>,
    metrics: &Metrics,
) -> Result<AuRelation, EvalError> {
    eval_au_attempt(db, q, cfg, token, gate, metrics, &TraceBuilder::disabled())
}

/// [`eval_au`] with full observability: a fresh [`Metrics`] sink and
/// span builder are enabled for this query and the result is returned
/// together with its [`QueryTrace`]. Enabling them never changes the
/// result — the traced relation is byte-identical to [`eval_au`]'s
/// (`tests/observability.rs` pins this across worker × shard shapes).
pub fn eval_au_traced(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
) -> Result<(AuRelation, QueryTrace), EvalError> {
    let (result, trace) = eval_au_traced_full(db, q, cfg);
    result.map(|rel| (rel, trace))
}

/// [`eval_au_traced`], but the trace survives failure: the result and
/// the trace come back side by side, so a failed query can still be
/// post-mortemed — its events carry the fault's driver/morsel
/// coordinates and every span closed by the unwind is tagged with the
/// error.
#[must_use = "the result carries the query outcome and the trace carries its post-mortem"]
pub fn eval_au_traced_full(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
) -> (Result<AuRelation, EvalError>, QueryTrace) {
    let token = cfg.timeout.map(CancelToken::with_deadline_in);
    let metrics = Metrics::enabled();
    let tr = TraceBuilder::enabled();
    let started = Instant::now();
    let root = tr.open("query", || q.to_string());
    let result = eval_au_governed(db, q, cfg, token.as_ref(), &metrics, &tr);
    match &result {
        Ok(rel) => tr.close(root, Some(rel.len() as u64), Some(rel.estimated_bytes())),
        Err(e) => {
            // Governance verdicts can surface outside a driver (batch
            // sweeps check the token directly); the event log dedups to
            // the first observation, so re-reporting here only fills the
            // gap. Panics/injected faults always pass a driver, which
            // already recorded them with exact coordinates.
            if let EvalError::Exec(xe) = e {
                if xe.is_resource_limit() {
                    metrics.record_exec_error(xe, None, None);
                }
            }
            tr.unwind(0, &e.to_string());
        }
    }
    let trace = QueryTrace {
        version: TRACE_SCHEMA_VERSION,
        engine: engine_config(cfg),
        root: tr.finish().unwrap_or_default(),
        events: metrics.take_events(),
        metrics: metrics.snapshot(),
        total_ns: started.elapsed().as_nanos() as u64,
    };
    (result, trace)
}

/// EXPLAIN ANALYZE: evaluate the query with full observability and
/// return the annotated plan (the result relation is discarded). The
/// [`fmt::Display`] rendering is the human-readable plan tree with
/// actual rows/bytes/timings; [`Explain::to_json`] is the versioned
/// machine form.
pub fn explain(db: &AuDatabase, q: &Query, cfg: &AuConfig) -> Result<Explain, EvalError> {
    let (_, trace) = eval_au_traced(db, q, cfg)?;
    Ok(Explain { trace })
}

/// The result of [`explain`]: a finished [`QueryTrace`] with renderers.
#[must_use = "an explain plan does nothing unless rendered or inspected"]
#[derive(Debug, Clone)]
pub struct Explain {
    pub trace: QueryTrace,
}

impl Explain {
    /// The versioned JSON form (schema in `docs/observability.md`).
    pub fn to_json(&self) -> String {
        self.trace.to_json()
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.trace.render_text())
    }
}

/// The engine-configuration echo embedded in every trace: resolved
/// worker count and the knobs that decide which execution paths fire.
fn engine_config(cfg: &AuConfig) -> Vec<(&'static str, String)> {
    let opt = |v: Option<usize>| v.map_or_else(|| "none".to_string(), |x| x.to_string());
    vec![
        (
            "workers",
            cfg.workers
                .map_or_else(|| Executor::default().workers().to_string(), |w| w.to_string()),
        ),
        ("shards", cfg.shards.map_or_else(|| "auto".to_string(), |s| s.to_string())),
        ("pipeline", cfg.pipeline.to_string()),
        ("compiled", cfg.compiled.to_string()),
        ("columnar", cfg.columnar.to_string()),
        ("verify", cfg.verify.to_string()),
        ("adaptive", cfg.adaptive.to_string()),
        ("join_compress", opt(cfg.join_compress)),
        ("agg_compress", opt(cfg.agg_compress)),
        ("timeout", cfg.timeout.map_or_else(|| "none".to_string(), |t| format!("{t:?}"))),
        ("budget", if cfg.budget.is_some() { "set" } else { "none" }.to_string()),
    ]
}

fn eval_au_governed(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    cancel: Option<&CancelToken>,
    metrics: &Metrics,
    tr: &TraceBuilder,
) -> Result<AuRelation, EvalError> {
    let depth = tr.depth();
    match eval_au_attempt(db, q, cfg, cancel, None, metrics, tr) {
        Err(EvalError::Exec(e)) if cfg.compiled && !e.is_resource_limit() => {
            // Graceful degradation: one retry on the interpreted oracle.
            // Resource-limit faults (cancelled / deadline / budget) are
            // not retried — the second attempt would only burn more of
            // the exhausted resource. The budget is re-created fresh
            // inside the attempt; the cancel token is shared, so an
            // expired deadline still cuts the retry short.
            metrics.add(Counter::Degradations, 1);
            metrics.record_event(ExecEvent {
                kind: ExecEventKind::Degraded,
                driver: None,
                morsel: None,
                detail: e.to_string(),
            });
            tr.unwind(depth, &e.to_string());
            let fallback = AuConfig { compiled: false, ..*cfg };
            eval_au_attempt(db, q, &fallback, cancel, None, metrics, tr)
        }
        other => other,
    }
}

/// One evaluation attempt with its own governed executor (fresh
/// [`Budget`], shared [`CancelToken`], shared [`Metrics`]).
fn eval_au_attempt(
    db: &AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    cancel: Option<&CancelToken>,
    gate: Option<&WorkerGate>,
    metrics: &Metrics,
    tr: &TraceBuilder,
) -> Result<AuRelation, EvalError> {
    let mut exec = Executor::from_option(cfg.workers);
    if let Some(floor) = cfg.min_rows_per_worker {
        exec = exec.with_min_rows_per_worker(floor);
    }
    if let Some(gate) = gate {
        exec = exec.with_worker_gate(gate.clone());
    }
    if let Some(token) = cancel {
        exec = exec.with_cancel(token.clone());
    }
    if let Some(spec) = cfg.budget {
        exec = exec.with_budget(Budget::new(spec));
    }
    if metrics.is_enabled() {
        exec = exec.with_metrics(metrics.clone());
    }
    let use_pipeline = cfg.pipeline && cfg.join_compress.is_none() && cfg.agg_compress.is_none();
    let h = tr.open("attempt", String::new);
    tr.attr(h, "mode", || {
        (if use_pipeline { "pipeline" } else { "operator-at-a-time" }).to_string()
    });
    tr.attr(h, "exprs", || (if cfg.compiled { "compiled" } else { "interpreted" }).to_string());
    tr.attr(h, "workers", || exec.workers().to_string());
    let rel = if use_pipeline {
        pipeline::eval_pipelined(db, q, cfg, &exec, tr)?
    } else {
        eval_inner(db, q, cfg, &exec, tr)?
    };
    let rel = rel.into_owned().into_normalized_with(&exec)?;
    close_rel(tr, h, &rel);
    Ok(rel)
}

/// Close an operator span with the relation's actual cardinality and
/// estimated byte size (sizes are only computed when tracing is live).
pub(crate) fn close_rel(tr: &TraceBuilder, h: usize, rel: &AuRelation) {
    if tr.is_enabled() {
        tr.close(h, Some(rel.len() as u64), Some(rel.estimated_bytes()));
    }
}

/// Open the span for one plan operator: span kind from the operator
/// kind, detail from its predicate / projection list / grouping. Shared
/// by the operator-at-a-time evaluator and the pipeline fallback path.
pub(crate) fn open_op_span(tr: &TraceBuilder, q: &Query) -> usize {
    match q {
        Query::Table(name) => tr.open("scan", || name.clone()),
        Query::Select { predicate, .. } => tr.open("select", || predicate.to_string()),
        Query::Project { exprs, .. } => tr.open("project", || {
            let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e}→{n}")).collect();
            cols.join(", ")
        }),
        Query::Join { predicate, .. } => tr.open("join", || {
            predicate.as_ref().map_or_else(|| "cross".to_string(), ToString::to_string)
        }),
        Query::Union { .. } => tr.open("union", String::new),
        Query::Difference { .. } => tr.open("difference", String::new),
        Query::Distinct { .. } => tr.open("distinct", String::new),
        Query::Aggregate { group_by, aggs, .. } => {
            tr.open("aggregate", || format!("group_by={group_by:?} aggs={}", aggs.len()))
        }
    }
}

/// Copy-free evaluation core: base tables are *borrowed* from the
/// database and only operator outputs are owned, so no whole-table
/// clone happens anywhere in a plan.
fn eval_inner<'a>(
    db: &'a AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    exec: &Executor,
    tr: &TraceBuilder,
) -> Result<Cow<'a, AuRelation>, EvalError> {
    let h = open_op_span(tr, q);
    Ok(match q {
        Query::Table(name) => {
            let rel = db.get(name)?;
            close_rel(tr, h, rel);
            Cow::Borrowed(rel)
        }
        Query::Select { input, predicate } => {
            let rel = eval_inner(db, input, cfg, exec, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let out = select_au_exec(&rel, predicate, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Project { input, exprs } => {
            let rel = eval_inner(db, input, cfg, exec, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let out = project_au_exec(&rel, exprs, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Join { left, right, predicate } => {
            let l = eval_inner(db, left, cfg, exec, tr)?;
            let r = eval_inner(db, right, cfg, exec, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = match cfg.join_compress {
                Some(ct) if !cfg.adaptive || opt::join_compression_pays_off(&l, &r) => {
                    tr.attr(h, "strategy", || "split-compress".to_string());
                    opt::optimized_join_exec(&l, &r, predicate.as_ref(), ct, exec)?
                }
                _ => {
                    tr.attr(h, "strategy", || {
                        planner::classify(predicate.as_ref(), l.schema.arity()).name().to_string()
                    });
                    planner::join_au_planned_exec(&l, &r, predicate.as_ref(), exec)?
                }
            };
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Union { left, right } => {
            let l = eval_inner(db, left, cfg, exec, tr)?;
            let r = eval_inner(db, right, cfg, exec, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = union_cow(l, r, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Difference { left, right } => {
            let l = eval_inner(db, left, cfg, exec, tr)?;
            let r = eval_inner(db, right, cfg, exec, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = difference::difference_au_exec(&l, &r, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Distinct { input } => {
            // δ is aggregation grouping on all columns with no aggregates;
            // this inherits the treatment of uncertain "group" membership.
            let rel = eval_inner(db, input, cfg, exec, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let all: Vec<usize> = (0..rel.schema.arity()).collect();
            let compress = effective_agg_compress(cfg, &rel, &all);
            tr.attr(h, "compress", || opt_usize_attr(compress));
            let out = aggregate::aggregate_au_exec(&rel, &all, &[], compress, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Aggregate { input, group_by, aggs } => {
            let rel = eval_inner(db, input, cfg, exec, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let compress = effective_agg_compress(cfg, &rel, group_by);
            tr.attr(h, "compress", || opt_usize_attr(compress));
            let out = aggregate::aggregate_au_exec(&rel, group_by, aggs, compress, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
    })
}

/// Trace-attribute rendering of an optional compression knob.
pub(crate) fn opt_usize_attr(v: Option<usize>) -> String {
    v.map_or_else(|| "none".to_string(), |x| x.to_string())
}

/// The aggregation-compression setting after the adaptive check.
fn effective_agg_compress(cfg: &AuConfig, rel: &AuRelation, group_by: &[usize]) -> Option<usize> {
    let ct = cfg.agg_compress?;
    if cfg.adaptive && !opt::agg_compression_pays_off(rel, group_by, ct) {
        return None;
    }
    Some(ct)
}

/// Union that reuses whichever operand already owns its row buffer;
/// the left schema wins, matching [`union_au`].
fn union_cow(
    l: Cow<'_, AuRelation>,
    r: Cow<'_, AuRelation>,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    match (l, r) {
        (Cow::Owned(mut l), r) => {
            l.extend_from(&r);
            l.normalize_with(exec)?;
            Ok(l)
        }
        (Cow::Borrowed(l), Cow::Owned(mut r)) => {
            r.schema = l.schema.clone();
            r.extend_from(l);
            r.normalize_with(exec)?;
            Ok(r)
        }
        (Cow::Borrowed(l), Cow::Borrowed(r)) => union_au_exec(l, r, exec),
    }
}

/// Selection (Definition 20): multiply each tuple's annotation with
/// `M_N(⟦θ⟧)` of the range-annotated condition result.
pub fn select_au(rel: &AuRelation, predicate: &Expr) -> Result<AuRelation, EvalError> {
    select_au_exec(rel, predicate, &Executor::sequential())
}

/// Partition-parallel selection. Selection *preserves normal form*:
/// kept rows keep their tuples and relative order, and the `M_N(⟦θ⟧)`
/// factor has `ub = 1` whenever a row survives, so annotations stay
/// nonzero — a normalized input therefore yields a normalized output
/// (sorted, distinct, zero-free) and the pipeline's final
/// normalization is free instead of a full hash-merge + re-sort.
pub fn select_au_exec(
    rel: &AuRelation,
    predicate: &Expr,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let rows = exec.run(rel.len(), |morsel, out| {
        for i in morsel {
            let (t, k) = &rel.rows()[i];
            let (lb, sg, ub) = predicate.eval_range_bool3(t.values())?;
            if !ub {
                continue; // certainly false in all worlds
            }
            let m = AuAnnot::from_bool3(lb, sg, ub);
            out.push((t.clone(), k.times(&m)));
        }
        Ok::<(), EvalError>(())
    })?;
    if rel.is_normalized() {
        Ok(AuRelation::from_normalized_rows(rel.schema.clone(), rows))
    } else {
        let mut out = AuRelation::empty(rel.schema.clone());
        out.append_rows(rows);
        Ok(out)
    }
}

/// Generalized projection: evaluate each projection expression with the
/// range-annotated semantics; identical range tuples merge on normalize.
pub fn project_au(rel: &AuRelation, exprs: &[(Expr, String)]) -> Result<AuRelation, EvalError> {
    project_au_exec(rel, exprs, &Executor::sequential())
}

/// Partition-parallel generalized projection; the merge of identical
/// projected tuples runs on the sharded-reduce driver.
pub fn project_au_exec(
    rel: &AuRelation,
    exprs: &[(Expr, String)],
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
    let rows = exec.run(rel.len(), |morsel, out| {
        for i in morsel {
            let (t, k) = &rel.rows()[i];
            let vals: Result<Vec<_>, _> =
                exprs.iter().map(|(e, _)| e.eval_range(t.values())).collect();
            out.push((audb_storage::RangeTuple::new(vals?), *k));
        }
        Ok::<(), EvalError>(())
    })?;
    let mut out = AuRelation::empty(schema);
    out.append_rows(rows);
    out.normalize_with(exec)?;
    Ok(out)
}

/// Theta-join with the formal semantics: routed through the join
/// planner, which picks a hash / interval-sweep strategy when the
/// predicate admits one and falls back to [`nested_loop_join_au`]
/// otherwise. All strategies produce the nested-loop rows exactly (up to
/// normalization).
pub fn join_au(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
) -> Result<AuRelation, EvalError> {
    planner::join_au_planned(l, r, predicate)
}

/// The unoptimized reference join: cross product with annotation
/// multiplication, filtered by the range-annotated predicate — range
/// predicates degenerate to interval-overlap tests, hence nested loops
/// (the bottleneck Section 10.4 addresses). Kept as the planner's
/// fallback and as the oracle for join equivalence tests.
pub fn nested_loop_join_au(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
) -> Result<AuRelation, EvalError> {
    let schema = l.schema.concat(&r.schema);
    let mut out = AuRelation::empty(schema);
    let mut buf = Vec::new();
    for (tl, kl) in l.rows() {
        for (tr, kr) in r.rows() {
            tl.concat_into(tr, &mut buf);
            let mut k = kl.times(kr);
            if let Some(p) = predicate {
                let (plb, psg, pub_) = p.eval_range_bool3(&buf)?;
                if !pub_ {
                    continue;
                }
                k = k.times(&AuAnnot::from_bool3(plb, psg, pub_));
            }
            out.push(audb_storage::RangeTuple::new(buf.clone()), k);
        }
    }
    Ok(out)
}

/// [`nested_loop_join_au`] on the executor runtime: left rows partition
/// into morsels (the ordered merge keeps the row list byte-identical to
/// the sequential loop), producer panics are contained, and the
/// cross-product expansion is *governed* — the cancel token is
/// re-checked and the accumulated output charged to the budget
/// (operator `"join-probe"`) every 1024 emitted rows, so even a
/// predicate-less cross join cannot blow past its limits by more than
/// one right-side scan.
pub fn nested_loop_join_au_exec(
    l: &AuRelation,
    r: &AuRelation,
    predicate: Option<&Expr>,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    const GOVERN_ROWS: usize = 1024;
    let schema = l.schema.concat(&r.schema);
    let rows =
        exec.run(l.len(), |morsel, out: &mut Vec<(audb_storage::RangeTuple, AuAnnot)>| {
            let mut watermark = 0usize;
            let checkpoint = |out: &[(audb_storage::RangeTuple, AuAnnot)],
                              watermark: &mut usize| {
                exec.check_cancel()?;
                let added = out.len() - *watermark;
                if added > 0 {
                    let bytes = added * std::mem::size_of::<(audb_storage::RangeTuple, AuAnnot)>();
                    exec.charge("join-probe", added as u64, bytes as u64)?;
                    *watermark = out.len();
                }
                Ok::<(), audb_core::ExecError>(())
            };
            let mut buf = Vec::new();
            for i in morsel {
                let (tl, kl) = &l.rows()[i];
                for (tr, kr) in r.rows() {
                    if out.len() - watermark >= GOVERN_ROWS {
                        checkpoint(out, &mut watermark)?;
                    }
                    tl.concat_into(tr, &mut buf);
                    let mut k = kl.times(kr);
                    if let Some(p) = predicate {
                        let (plb, psg, pub_) = p.eval_range_bool3(&buf)?;
                        if !pub_ {
                            continue;
                        }
                        k = k.times(&AuAnnot::from_bool3(plb, psg, pub_));
                    }
                    out.push((audb_storage::RangeTuple::new(buf.clone()), k));
                }
            }
            checkpoint(out, &mut watermark)?;
            Ok::<(), EvalError>(())
        })?;
    let mut out = AuRelation::empty(schema);
    out.append_rows(rows);
    Ok(out)
}

/// Bag union: annotation addition in `N_AU`.
pub fn union_au(l: &AuRelation, r: &AuRelation) -> Result<AuRelation, EvalError> {
    union_au_exec(l, r, &Executor::sequential())
}

/// [`union_au`] with the annotation merge on the sharded-reduce driver.
pub fn union_au_exec(
    l: &AuRelation,
    r: &AuRelation,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    l.schema.check_union_compatible(&r.schema)?;
    let mut out = l.clone();
    out.extend_from(r);
    out.normalize_with(exec)?;
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use audb_core::{col, lit, RangeValue, Value};
    use audb_storage::{au_row, certain_row, RangeTuple};

    fn schema_a() -> Schema {
        Schema::named(&["A"])
    }

    /// Example 9: σ_{A=2} over ([1/2/3]) annotated (1,2,3) yields (0,2,3).
    #[test]
    fn selection_example_9() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![au_row(
                vec![RangeValue::range(1i64, 2i64, 3i64), RangeValue::certain(Value::Int(2))],
                1,
                2,
                3,
            )],
        );
        let out = select_au(&rel, &col(0).eq(lit(2i64))).unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(0, 2, 3));
    }

    #[test]
    fn selection_drops_certainly_false() {
        let rel = AuRelation::from_rows(
            schema_a(),
            vec![au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 1, 1, 1)],
        );
        let out = select_au(&rel, &col(0).gt(lit(10i64))).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn projection_merges_tuples() {
        let rel = AuRelation::from_rows(
            Schema::named(&["A", "B"]),
            vec![certain_row(&[1, 10], 1, 1, 1), certain_row(&[1, 20], 0, 1, 2)],
        );
        let out = project_au(&rel, &[(col(0), "A".to_string())]).unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0].1, AuAnnot::triple(1, 2, 3));
    }

    #[test]
    fn projection_computes_ranges() {
        let rel = AuRelation::from_rows(
            schema_a(),
            vec![au_row(vec![RangeValue::range(1i64, 2i64, 3i64)], 1, 1, 1)],
        );
        let out = project_au(&rel, &[(col(0).add(lit(10i64)), "x".to_string())]).unwrap();
        assert_eq!(out.rows()[0].0, RangeTuple::new(vec![RangeValue::range(11i64, 12i64, 13i64)]));
    }

    /// Figure 8: the unoptimized join of uncertain-attribute relations
    /// degenerates to (near) cross product.
    #[test]
    fn join_figure_8() {
        let r = AuRelation::from_rows(
            schema_a(),
            vec![
                au_row(vec![RangeValue::range(1i64, 1i64, 2i64)], 2, 2, 3),
                au_row(vec![RangeValue::range(1i64, 2i64, 2i64)], 1, 1, 2),
            ],
        );
        let s = AuRelation::from_rows(
            Schema::named(&["C"]),
            vec![
                au_row(vec![RangeValue::range(1i64, 3i64, 3i64)], 1, 1, 1),
                au_row(vec![RangeValue::range(1i64, 2i64, 2i64)], 1, 2, 2),
            ],
        );
        let out = join_au(&r, &s, Some(&col(0).eq(col(1)))).unwrap().normalized();
        assert_eq!(out.len(), 4, "all interval pairs overlap");
        // The SG-matching pair keeps its SG multiplicity:
        // ([1/2/2],[1/2/2]) ↦ (0,2,4). (Figure 8d prints lb = 1, but the
        // pair is not *certainly* equal under Definition 9 — a world may
        // assign 1 to one side and 2 to the other — so the certain
        // multiplicity is 0.)
        let sg_pair = RangeTuple::new(vec![
            RangeValue::range(1i64, 2i64, 2i64),
            RangeValue::range(1i64, 2i64, 2i64),
        ]);
        assert_eq!(out.annotation(&sg_pair), AuAnnot::triple(0, 2, 4));
        // SGW of the join result equals the join of the SGWs:
        // R^sg = {1↦2, 2↦1}, S^sg = {3↦1, 2↦2} → only 2=2 joins, 1·2 = 2.
        let sgw = out.sg_world();
        assert_eq!(sgw.total_count(), 2);
    }

    #[test]
    fn union_adds_annotations() {
        let rel = AuRelation::from_rows(schema_a(), vec![certain_row(&[1], 1, 1, 1)]);
        let out = union_au(&rel, &rel).unwrap();
        assert_eq!(out.rows()[0].1, AuAnnot::triple(2, 2, 2));
    }

    #[test]
    fn eval_table_and_select() {
        let mut db = AuDatabase::new();
        db.insert("r", AuRelation::from_rows(schema_a(), vec![certain_row(&[5], 1, 1, 1)]));
        let q = crate::algebra::table("r").select(col(0).geq(lit(5i64)));
        let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
        assert_eq!(out.len(), 1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod lens_tests {
    use super::*;
    use crate::algebra::table;
    use audb_core::{col, lit, Expr, RangeValue, Value};
    use audb_storage::certain_row;

    /// Example 16: a key-repair lens implemented *inside a query* via
    /// `MakeUncertain(min, sg, max)` — projecting pre-aggregated
    /// (key, numB, minB, maxB) rows into range-annotated values.
    #[test]
    fn make_uncertain_lens_example_16() {
        let mut db = AuDatabase::new();
        db.insert(
            "keys",
            AuRelation::from_rows(
                Schema::named(&["a", "numB", "minB", "maxB"]),
                vec![certain_row(&[1, 1, 10, 10], 1, 1, 1), certain_row(&[2, 3, 5, 9], 1, 1, 1)],
            ),
        );
        let b = Expr::if_then_else(
            col(1).gt(lit(1i64)),
            Expr::make_uncertain(col(2), col(2), col(3)),
            col(2),
        );
        let q = table("keys").project(vec![(col(0), "a"), (b, "b")]);
        let out = eval_au(&db, &q, &AuConfig::precise()).unwrap();
        let row1 = out.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(1)).unwrap();
        assert_eq!(row1.0 .0[1], RangeValue::certain(Value::Int(10)));
        let row2 = out.rows().iter().find(|(t, _)| t.0[0].sg == Value::Int(2)).unwrap();
        assert_eq!(row2.0 .0[1], RangeValue::range(5i64, 5i64, 9i64));
    }

    /// Deterministic engines see only the selected guess.
    #[test]
    fn make_uncertain_invisible_to_det() {
        let e = Expr::make_uncertain(lit(0i64), lit(5i64), lit(9i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(5));
        assert_eq!(e.eval_range(&[]).unwrap(), RangeValue::range(0i64, 5i64, 9i64));
    }

    /// Disagreeing sub-expressions are widened, never invalid.
    #[test]
    fn make_uncertain_widens_to_stay_ordered() {
        let e = Expr::make_uncertain(lit(7i64), lit(5i64), lit(2i64));
        let r = e.eval_range(&[]).unwrap();
        assert_eq!(r.sg, Value::Int(5));
        assert!(r.lb <= r.sg && r.sg <= r.ub);
    }

    /// The rewrite middleware supports the construct too.
    #[test]
    fn make_uncertain_through_rewrite() {
        let mut db = AuDatabase::new();
        db.insert(
            "r",
            AuRelation::from_rows(
                Schema::named(&["a", "b"]),
                vec![certain_row(&[1, 4], 1, 1, 1), certain_row(&[2, 8], 0, 1, 2)],
            ),
        );
        let q = table("r").project(vec![
            (col(0), "a"),
            (Expr::make_uncertain(lit(0i64), col(1), col(1).mul(lit(2i64))), "b"),
        ]);
        let native = eval_au(&db, &q, &AuConfig::precise()).unwrap();
        let via = crate::rewrite::eval_via_rewrite(&db, &q).unwrap();
        assert_eq!(native, via);
    }
}
