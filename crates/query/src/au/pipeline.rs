//! Shard-at-a-time pipeline evaluation: run whole chains of row-local
//! operators per base-table shard, with **one** normalization at the
//! pipeline breaker instead of one per operator.
//!
//! The operator-at-a-time evaluator ([`super::eval_inner`])
//! materializes a full intermediate relation between every pair of
//! operators, and most operator tails pay a hash-merge + sort over that
//! whole intermediate. But `RA+`'s row-local operators — selection,
//! generalized projection, and the probe side of a planned join against
//! a shared build-side index — compose into purely tuple-local
//! functions (the U-relations observation of Antova et al., applied to
//! AU-annotations: the annotation algebra is row-local, so the
//! operators are too). This module fuses maximal chains of them and
//! drives the fused chain shard-by-shard on
//! [`Executor::run_shards`]: per shard, every source row flows through
//! the entire chain before the next row is touched; nothing between
//! the base table and the breaker is ever materialized.
//!
//! ## Fusion rules
//!
//! A *chain* is `σ* [⋈-probe] (σ|π)*` anchored on a base table or on a
//! materialized sub-result:
//!
//! * `Select` and `Project` extend a chain unconditionally;
//! * a precise `Join` fuses as a **probe**: its right side is evaluated
//!   and indexed up front (hash buckets for certain equi-keys, interval
//!   sweeps for the uncertain bands — the exact structures the
//!   operator-at-a-time planner uses), and left rows stream through the
//!   probe. Only selections may sit between the source and the probe
//!   (they do not change tuples, so the sweep candidates precomputed on
//!   source row ids stay valid); a left subtree that already contains a
//!   probe or a projection is materialized first and becomes the new
//!   chain source;
//! * everything else — aggregation, distinct, union, difference,
//!   compressed joins — is a **pipeline breaker**: the chain ends, the
//!   breaker runs operator-at-a-time, and its inputs recurse through
//!   the pipeline extractor.
//!
//! ## Determinism (byte-identical to operator-at-a-time)
//!
//! The final result of [`eval_pipelined`] is byte-identical to the
//! operator-at-a-time sequential path for any (workers × shards)
//! combination. Two delivery contracts make this compositional:
//!
//! * **Canonical** — the consumer only depends on the *multiset* of
//!   rows (it normalizes, or folds commutatively, before anything
//!   order-sensitive happens). A fused chain delivers
//!   `normalize(rows)`; since `N_AU` addition is commutative and exact
//!   and annotation multiplication distributes over it, merging or
//!   reordering intermediate duplicates cannot change the normalized
//!   result. The query root, union/difference/distinct inputs, and
//!   join build sides are Canonical.
//! * **Faithful** — the consumer's output depends on the exact row
//!   *list* (aggregation folds bounds in member order, which is not
//!   associative for floats). A chain is used here only when its
//!   operator-at-a-time delivery is reproducible exactly: select-only
//!   chains preserve the source list (and its normal form), and chains
//!   whose last probe is followed by a projection end normalized in
//!   both paths. Anything else falls back to operator-at-a-time with
//!   Faithful inputs.
//!
//! Within one contract, shard boundaries never matter: shards are
//! contiguous and merged in shard order ([`Executor::run_shards`]), so
//! the produced row list equals the sequential single-shard list.

use std::borrow::Cow;

use audb_core::obs::TraceBuilder;
use audb_core::{
    AuAnnot, CancelToken, EvalError, ExecError, Expr, LaneBatch, LaneSlice, Program, RangeBatch,
    RangeValue, Semiring, Value, ValueLane,
};
use audb_exec::{Executor, ShardSource};
use audb_storage::{
    AuDatabase, AuRelation, ColumnSet, HashKeyIndex, IntervalIndex, RangeTuple, Schema,
};

use super::{
    aggregate, close_rel, difference, effective_agg_compress, open_op_span, opt_usize_attr,
    select_au_exec, union_cow, AuConfig,
};
use crate::algebra::Query;
use crate::planner;
use crate::vcheck::Vet;

/// Minimum source rows per shard when the shard count is not forced
/// ([`AuConfig::shards`] = `None`): below this, extra shards only add
/// per-shard setup cost. Shared with the deterministic mirror in
/// [`crate::det`].
pub(crate) const MIN_ROWS_PER_SHARD: usize = 1024;

/// Governance stride inside a shard: every `GOVERN_ROWS` source rows
/// the chain re-checks the cancel token and charges the rows it
/// produced since the last checkpoint to the budget. Bounds how much
/// work a cancelled query can still do inside one shard, and how far an
/// expanding probe can overshoot its budget.
const GOVERN_ROWS: usize = 1024;

/// Charge output-buffer growth since `last` to the executor's budget
/// under `operator`, advancing the watermark.
fn charge_out(
    exec: &Executor,
    operator: &'static str,
    out: &[(RangeTuple, AuAnnot)],
    last: &mut usize,
) -> Result<(), ExecError> {
    let added = out.len().saturating_sub(*last);
    if added > 0 {
        let bytes = added * std::mem::size_of::<(RangeTuple, AuAnnot)>();
        exec.charge(operator, added as u64, bytes as u64)?;
        *last = out.len();
    }
    Ok(())
}

/// What the consumer of an evaluation result depends on — see the
/// module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Multiset-determined consumer: fused chains deliver normalized.
    Canonical,
    /// List-determined consumer: only exactly-reproducible chains fuse.
    Faithful,
}

/// Evaluate a query with shard-at-a-time pipelining (the
/// `cfg.pipeline` path of [`super::eval_au`]). The returned relation is
/// the unnormalized-evaluation analog of [`super::eval_inner`]'s
/// result: the caller applies the final normalization.
pub(crate) fn eval_pipelined<'a>(
    db: &'a AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    exec: &Executor,
    tr: &TraceBuilder,
) -> Result<Cow<'a, AuRelation>, EvalError> {
    eval_pl(db, q, cfg, exec, Delivery::Canonical, tr)
}

// ---------------------------------------------------------------------------
// Chain shape analysis (no evaluation)
// ---------------------------------------------------------------------------

/// Is `q` a fusable chain (`σ/π/⋈` tree in chain form)? Joins anchor a
/// chain regardless of their subtrees (a non-chainable left side is
/// materialized into the chain source).
fn fusable(q: &Query, cfg: &AuConfig) -> bool {
    match q {
        Query::Table(_) => true,
        Query::Select { input, .. } | Query::Project { input, .. } => fusable(input, cfg),
        // Compressed joins run split/compress — a breaker, not a probe.
        Query::Join { .. } => cfg.join_compress.is_none(),
        _ => false,
    }
}

/// Is the chain's operator-at-a-time delivery exactly reproducible by
/// the fused evaluation (see `Delivery::Faithful`)?
fn faithful_ok(q: &Query) -> bool {
    match q {
        Query::Table(_) | Query::Project { .. } => true,
        Query::Select { input, .. } => faithful_ok(input),
        // A probe tail delivers unnormalized rows in planner phase
        // order, which per-row probing does not reproduce.
        _ => false,
    }
}

/// Is the subtree a select-only chain over its anchor (so a probe can
/// fuse onto it with source row ids intact)?
fn select_only(q: &Query) -> bool {
    match q {
        Query::Table(_) => true,
        Query::Select { input, .. } => select_only(input),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// The fused chain
// ---------------------------------------------------------------------------

/// A chain predicate: compiled to a flat register program (the
/// default) or kept as the interpreted `Expr` tree (the oracle,
/// `AuConfig::compiled = false`). Compilation happens once per chain —
/// the program is shared by every worker and shard, each with its own
/// register file in its [`Buf`].
enum RangePred {
    Interp(Expr),
    Compiled(Program),
}

impl RangePred {
    fn new(e: &Expr, vet: Vet<'_>) -> RangePred {
        match vet.range(e) {
            Some(p) => RangePred::Compiled(p),
            None => RangePred::Interp(e.clone()),
        }
    }

    fn eval_bool3(
        &self,
        vals: &[RangeValue],
        regs: &mut Vec<RangeValue>,
    ) -> Result<(bool, bool, bool), EvalError> {
        match self {
            RangePred::Interp(e) => e.eval_range_bool3(vals),
            RangePred::Compiled(p) => p.eval_range_bool3(vals, regs),
        }
    }

    fn compiled(&self) -> Option<&Program> {
        match self {
            RangePred::Compiled(p) => Some(p),
            RangePred::Interp(_) => None,
        }
    }
}

/// A chain projection list, compiled into one multi-output program.
enum RangeProj {
    Interp(Vec<Expr>),
    Compiled(Program),
}

impl RangeProj {
    fn new(exprs: &[(Expr, String)], vet: Vet<'_>) -> RangeProj {
        let es: Vec<Expr> = exprs.iter().map(|(e, _)| e.clone()).collect();
        match vet.range_many(&es) {
            Some(p) => RangeProj::Compiled(p),
            None => RangeProj::Interp(es),
        }
    }

    /// Evaluate every projection expression over `vals`, appending the
    /// results to `out` (expressions run in list order; first error
    /// wins, like per-expression interpretation).
    fn eval_into(
        &self,
        vals: &[RangeValue],
        regs: &mut Vec<RangeValue>,
        out: &mut Vec<RangeValue>,
    ) -> Result<(), EvalError> {
        match self {
            RangeProj::Interp(es) => {
                for e in es {
                    out.push(e.eval_range(vals)?);
                }
                Ok(())
            }
            RangeProj::Compiled(p) => {
                p.prepare_range_regs(regs);
                p.eval_range_into(vals, regs)?;
                for i in 0..p.arity() {
                    out.push(p.range_output(i, vals, regs).clone());
                }
                Ok(())
            }
        }
    }

    fn compiled(&self) -> Option<&Program> {
        match self {
            RangeProj::Compiled(p) => Some(p),
            RangeProj::Interp(_) => None,
        }
    }
}

enum PipeOp<'a> {
    Select(RangePred),
    Project(RangeProj),
    Probe(Box<ProbeOp<'a>>),
}

enum ProbePlan {
    /// Conjunctive equality: hash probes for certain keys, precomputed
    /// sweep candidates for the uncertain bands.
    HashEqui { pairs: Vec<(usize, usize)>, lcols: Vec<usize>, index: HashKeyIndex },
    /// Order comparison: all candidates precomputed by the endpoint
    /// sweep, re-checked per pair.
    Comparison,
    /// Cross products and unindexable predicates: every right row.
    NestedLoop,
}

/// The build side of a fused join: the evaluated right relation, its
/// indexes, and per-source-row sweep candidates.
struct ProbeOp<'a> {
    right: Cow<'a, AuRelation>,
    predicate: Option<RangePred>,
    plan: ProbePlan,
    /// Per *source* row id: right-row candidates from the interval
    /// sweeps (uncertain-key bands for equi plans, all candidates for
    /// comparison plans; unused for nested loops).
    cand: Vec<Vec<u32>>,
}

impl<'a> ProbeOp<'a> {
    /// Build the probe for `source ⋈ right`, mirroring the
    /// operator-at-a-time planner's strategy choice and index shapes.
    /// `cand` is computed over *all* source rows — selections between
    /// the source and the probe only drop rows, never change them, so
    /// candidates of dropped rows are simply never probed. The
    /// re-check predicate compiles once here, like the chain stages.
    ///
    /// With `columnar`, the full-relation interval indexes build
    /// straight from the relations' column lanes
    /// ([`IntervalIndex::from_lane`]) — identical index contents,
    /// no row-tuple walk; `false` keeps the row-major oracle everywhere.
    fn build(
        source: &AuRelation,
        right: Cow<'a, AuRelation>,
        predicate: Option<&Expr>,
        vet: Vet<'_>,
        columnar: bool,
    ) -> ProbeOp<'a> {
        let full_index = |rel: &AuRelation, c: usize| {
            if columnar {
                IntervalIndex::from_lane(rel.columns().lane(c).as_slice())
            } else {
                IntervalIndex::from_au(rel.rows(), c)
            }
        };
        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); source.len()];
        let plan = match planner::classify(predicate, source.schema.arity()) {
            planner::JoinStrategy::HashEqui(pairs) => {
                let lcols: Vec<usize> = pairs.iter().map(|(a, _)| *a).collect();
                let rcols: Vec<usize> = pairs.iter().map(|(_, b)| *b).collect();
                let (lc, lu) = planner::partition_by_key_certainty(source.rows(), &lcols);
                let (rc, ru) = planner::partition_by_key_certainty(right.rows(), &rcols);
                // no certain probe can ever hit the bucket index when
                // either certain side is empty — mirror the planner's
                // guard and skip the build
                let index = if !lc.is_empty() && !rc.is_empty() {
                    HashKeyIndex::from_au_sg(right.rows(), &rcols, rc.iter().copied())
                } else {
                    HashKeyIndex::default()
                };
                let (c0l, c0r) = pairs[0];
                if !lu.is_empty() {
                    let li = IntervalIndex::from_au_subset(source.rows(), c0l, &lu);
                    let ri = full_index(right.as_ref(), c0r);
                    IntervalIndex::sweep_overlapping(&li, &ri, |a, b| cand[a as usize].push(b));
                }
                if !ru.is_empty() && !lc.is_empty() {
                    let li = IntervalIndex::from_au_subset(source.rows(), c0l, &lc);
                    let ri = IntervalIndex::from_au_subset(right.rows(), c0r, &ru);
                    IntervalIndex::sweep_overlapping(&li, &ri, |a, b| cand[a as usize].push(b));
                }
                ProbePlan::HashEqui { pairs, lcols, index }
            }
            planner::JoinStrategy::IntervalComparison { lo, hi } => {
                let pairs = planner::comparison_candidates(
                    lo,
                    hi,
                    |c| full_index(source, c),
                    |c| full_index(right.as_ref(), c),
                );
                for (a, b) in pairs {
                    cand[a as usize].push(b);
                }
                ProbePlan::Comparison
            }
            planner::JoinStrategy::NestedLoop => ProbePlan::NestedLoop,
        };
        let predicate = predicate.map(|p| RangePred::new(p, vet));
        ProbeOp { right, predicate, plan, cand }
    }

    /// Stream one in-flight left row through the probe, emitting each
    /// joined row into the rest of the chain. The annotation math is
    /// exactly the planner's `emit_equi_pair` / candidate-evaluation
    /// logic, so the emitted multiset equals the operator path's.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        rest: &[PipeOp<'_>],
        rest_bufs: &mut [Buf],
        buf: &mut Buf,
        src: usize,
        vals: &[RangeValue],
        k: AuAnnot,
        out: &mut Vec<(RangeTuple, AuAnnot)>,
    ) -> Result<(), EvalError> {
        let Buf { vals: concat, key, regs } = buf;
        match &self.plan {
            ProbePlan::HashEqui { pairs, lcols, index } => {
                if lcols.iter().all(|c| vals[*c].is_certain()) {
                    key.clear();
                    key.extend(lcols.iter().map(|c| vals[*c].sg.join_key()));
                    // take the bucket out of the borrow of `key`
                    let hits = index.get(key);
                    for &ri in hits {
                        self.emit_equi(rest, rest_bufs, concat, regs, vals, k, ri, pairs, out)?;
                    }
                }
                for &ri in &self.cand[src] {
                    self.emit_equi(rest, rest_bufs, concat, regs, vals, k, ri, pairs, out)?;
                }
                Ok(())
            }
            ProbePlan::Comparison => {
                for &ri in &self.cand[src] {
                    self.emit_pred(rest, rest_bufs, concat, regs, vals, k, ri, out)?;
                }
                Ok(())
            }
            ProbePlan::NestedLoop => {
                for ri in 0..self.right.len() as u32 {
                    self.emit_pred(rest, rest_bufs, concat, regs, vals, k, ri, out)?;
                }
                Ok(())
            }
        }
    }

    /// Equi-plan pair emission: short-circuit to `⊗` alone when the key
    /// attributes are structurally equal and certain (the predicate
    /// triple is (T, T, T) by construction), else re-check precisely.
    #[allow(clippy::too_many_arguments)]
    fn emit_equi(
        &self,
        rest: &[PipeOp<'_>],
        rest_bufs: &mut [Buf],
        concat: &mut Vec<RangeValue>,
        regs: &mut Vec<RangeValue>,
        vals: &[RangeValue],
        k: AuAnnot,
        ri: u32,
        pairs: &[(usize, usize)],
        out: &mut Vec<(RangeTuple, AuAnnot)>,
    ) -> Result<(), EvalError> {
        let (tr, kr) = &self.right.rows()[ri as usize];
        let fast = pairs.iter().all(|(a, b)| {
            let (x, y) = (&vals[*a], &tr.0[*b]);
            x.is_certain() && x == y
        });
        concat.clear();
        concat.extend_from_slice(vals);
        concat.extend_from_slice(&tr.0);
        let mut k2 = k.times(kr);
        if !fast {
            #[allow(clippy::expect_used)] // planner only builds HashEqui from a predicate
            let p = self.predicate.as_ref().expect("equi plan implies predicate");
            let (plb, psg, pub_) = p.eval_bool3(concat, regs)?;
            if !pub_ {
                return Ok(());
            }
            k2 = k2.times(&AuAnnot::from_bool3(plb, psg, pub_));
        }
        apply(rest, rest_bufs, usize::MAX, concat, k2, out)
    }

    /// Comparison / nested-loop pair emission: precise predicate check
    /// per candidate (cross product when there is no predicate).
    #[allow(clippy::too_many_arguments)]
    fn emit_pred(
        &self,
        rest: &[PipeOp<'_>],
        rest_bufs: &mut [Buf],
        concat: &mut Vec<RangeValue>,
        regs: &mut Vec<RangeValue>,
        vals: &[RangeValue],
        k: AuAnnot,
        ri: u32,
        out: &mut Vec<(RangeTuple, AuAnnot)>,
    ) -> Result<(), EvalError> {
        let (tr, kr) = &self.right.rows()[ri as usize];
        concat.clear();
        concat.extend_from_slice(vals);
        concat.extend_from_slice(&tr.0);
        let mut k2 = k.times(kr);
        if let Some(p) = &self.predicate {
            let (plb, psg, pub_) = p.eval_bool3(concat, regs)?;
            if !pub_ {
                return Ok(());
            }
            k2 = k2.times(&AuAnnot::from_bool3(plb, psg, pub_));
        }
        apply(rest, rest_bufs, usize::MAX, concat, k2, out)
    }
}

/// Per-op scratch reused across a shard's rows: the concatenation /
/// projection value buffer, the equi-probe key buffer, and the
/// compiled-program register file.
#[derive(Default)]
struct Buf {
    vals: Vec<RangeValue>,
    key: Vec<Value>,
    regs: Vec<RangeValue>,
}

/// One in-flight row through the remaining ops. `src` is the source row
/// id (valid until the first probe/projection rewrites the tuple; only
/// the single probe, which sits before any projection, consumes it).
fn apply(
    ops: &[PipeOp<'_>],
    bufs: &mut [Buf],
    src: usize,
    vals: &[RangeValue],
    k: AuAnnot,
    out: &mut Vec<(RangeTuple, AuAnnot)>,
) -> Result<(), EvalError> {
    let Some((op, rest)) = ops.split_first() else {
        out.push((RangeTuple::new(vals.to_vec()), k));
        return Ok(());
    };
    #[allow(clippy::expect_used)] // bufs was sized to ops.len() by the caller
    let (buf, rest_bufs) = bufs.split_first_mut().expect("one buffer per op");
    match op {
        PipeOp::Select(p) => {
            let (lb, sg, ub) = p.eval_bool3(vals, &mut buf.regs)?;
            if !ub {
                return Ok(()); // certainly false in all worlds
            }
            apply(rest, rest_bufs, src, vals, k.times(&AuAnnot::from_bool3(lb, sg, ub)), out)
        }
        PipeOp::Project(proj) => {
            if rest.is_empty() {
                // terminal projection: evaluate straight into the output
                let mut vs = Vec::new();
                proj.eval_into(vals, &mut buf.regs, &mut vs)?;
                out.push((RangeTuple::new(vs), k));
                Ok(())
            } else {
                let Buf { vals: pvals, regs, .. } = buf;
                pvals.clear();
                proj.eval_into(vals, regs, pvals)?;
                apply(rest, rest_bufs, usize::MAX, pvals, k, out)
            }
        }
        PipeOp::Probe(probe) => probe.probe(rest, rest_bufs, buf, src, vals, k, out),
    }
}

/// Run a probe-less compiled chain over one shard **one op at a time**:
/// every select/project program evaluates over a whole chunk of the
/// shard's rows via [`Program::eval_range_batch_lenient`] before the
/// next op runs — the flat-columnar execution shape.
///
/// The shard is processed in [`GOVERN_ROWS`]-row chunks so cancellation
/// is observed and produced rows are charged to the budget
/// (`"pipeline-chain"`) with bounded overshoot; chunking cannot change
/// results because every op is row-local and chunks run in source
/// order.
fn run_shard_batched(
    ops: &[PipeOp<'_>],
    source: &AuRelation,
    columns: Option<&ColumnSet>,
    range: std::ops::Range<usize>,
    out: &mut Vec<(RangeTuple, AuAnnot)>,
    exec: &Executor,
) -> Result<(), EvalError> {
    let cancel = exec.cancel_token();
    let mut watermark = out.len();
    let mut start = range.start;
    while start < range.end {
        let end = range.end.min(start + GOVERN_ROWS);
        if let Some(token) = cancel {
            token.check()?;
        }
        match columns {
            Some(cs) => run_chunk_columnar(ops, cs, start..end, out, cancel)?,
            None => run_chunk_batched(ops, source, start..end, out, cancel)?,
        }
        charge_out(exec, "pipeline-chain", out, &mut watermark)?;
        start = end;
    }
    Ok(())
}

/// One chunk of [`run_shard_batched`].
///
/// Byte-identity with the row-streaming path: the per-row math is the
/// same combinators in the same order, rows keep their source order
/// (no probe means one output per surviving input), and errors are
/// row-major — an erroring row is *poisoned* (it stops flowing but is
/// never dropped) and after the chain the earliest poisoned source row
/// reports its error, exactly what streaming row-by-row would have
/// surfaced first.
fn run_chunk_batched(
    ops: &[PipeOp<'_>],
    source: &AuRelation,
    range: std::ops::Range<usize>,
    out: &mut Vec<(RangeTuple, AuAnnot)>,
    cancel: Option<&CancelToken>,
) -> Result<(), EvalError> {
    enum RowState {
        Clean(AuAnnot),
        Poisoned(EvalError),
    }
    let mut live: Vec<(Cow<'_, RangeTuple>, RowState)> =
        source.rows()[range].iter().map(|(t, k)| (Cow::Borrowed(t), RowState::Clean(*k))).collect();
    let mut batch = RangeBatch::default();

    for op in ops {
        // The rows still flowing: everything not yet poisoned.
        let clean_idx: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|(_, (_, st))| matches!(st, RowState::Clean(_)))
            .map(|(i, _)| i)
            .collect();
        if clean_idx.is_empty() {
            break;
        }
        {
            let refs: Vec<&[RangeValue]> = clean_idx.iter().map(|&i| live[i].0.values()).collect();
            #[allow(clippy::expect_used)] // the batchable gate checked compiled() per stage
            match op {
                PipeOp::Select(p) => p
                    .compiled()
                    .expect("batched chains are compiled")
                    .eval_range_batch_lenient(&refs, &mut batch, cancel)?,
                PipeOp::Project(p) => p
                    .compiled()
                    .expect("batched chains are compiled")
                    .eval_range_batch_lenient(&refs, &mut batch, cancel)?,
                PipeOp::Probe(_) => unreachable!("probe chains stream row-at-a-time"),
            }
        }
        match op {
            PipeOp::Select(p) => {
                #[allow(clippy::expect_used)] // the batchable gate checked compiled() per stage
                let prog = p.compiled().expect("compiled");
                // Decide per clean row: poison, drop, or keep with the
                // multiplied annotation — then compact the drops.
                let mut drop_flags = vec![false; live.len()];
                for (j, &i) in clean_idx.iter().enumerate() {
                    let decision = match batch.row_error(j) {
                        Some(e) => Err(e.clone()),
                        None => batch.output(prog, 0, j, live[i].0.values()).as_bool3(),
                    };
                    match decision {
                        Err(e) => live[i].1 = RowState::Poisoned(e),
                        Ok((_, _, false)) => drop_flags[i] = true,
                        Ok((lb, sg, ub)) => {
                            let RowState::Clean(k) = &mut live[i].1 else { unreachable!() };
                            *k = k.times(&AuAnnot::from_bool3(lb, sg, ub));
                        }
                    }
                }
                let mut i = 0;
                live.retain(|_| {
                    let keep = !drop_flags[i];
                    i += 1;
                    keep
                });
            }
            PipeOp::Project(p) => {
                #[allow(clippy::expect_used)] // the batchable gate checked compiled() per stage
                let prog = p.compiled().expect("compiled");
                for (j, &i) in clean_idx.iter().enumerate() {
                    let projected = match batch.row_error(j) {
                        Some(e) => Err(e.clone()),
                        None => Ok((0..prog.arity())
                            .map(|oi| batch.output(prog, oi, j, live[i].0.values()).clone())
                            .collect::<Vec<RangeValue>>()),
                    };
                    match projected {
                        Err(e) => live[i].1 = RowState::Poisoned(e),
                        Ok(vals) => live[i].0 = Cow::Owned(RangeTuple::new(vals)),
                    }
                }
            }
            PipeOp::Probe(_) => unreachable!("probe chains stream row-at-a-time"),
        }
    }

    for (t, st) in live {
        match st {
            RowState::Poisoned(e) => return Err(e),
            RowState::Clean(k) => out.push((t.into_owned(), k)),
        }
    }
    Ok(())
}

/// One chunk of [`run_shard_batched`] on the columnar path: ops
/// evaluate as typed vector kernels over the source's column lanes
/// ([`Program::eval_range_lanes`]); row tuples materialize only at the
/// chunk boundary.
///
/// Byte-identity with [`run_chunk_batched`] (and hence with the
/// row-streaming path) holds because the kernels are exact refinements
/// of the scalar combinators — an op whose kernel cannot reproduce a
/// row bit-identically (Int overflow, NaN) demotes wholesale to the
/// generic per-row evaluation inside [`Program::eval_range_lanes`] —
/// and the row protocol is the same: erroring rows are poisoned (never
/// dropped), surviving rows keep source order, and after the chain the
/// earliest poisoned source row reports its error.
fn run_chunk_columnar(
    ops: &[PipeOp<'_>],
    cs: &ColumnSet,
    range: std::ops::Range<usize>,
    out: &mut Vec<(RangeTuple, AuAnnot)>,
    cancel: Option<&CancelToken>,
) -> Result<(), EvalError> {
    enum RowState {
        Clean(AuAnnot),
        Poisoned(EvalError),
        Dropped,
    }
    /// The rows in flight: lane slices borrowed straight from the
    /// relation's [`ColumnSet`] until the first op that rewrites or
    /// compacts them, owned lanes after.
    enum ChunkLanes<'a> {
        Borrowed(Vec<LaneSlice<'a>>),
        Owned(Vec<ValueLane>),
    }
    impl ChunkLanes<'_> {
        fn slices(&self) -> Vec<LaneSlice<'_>> {
            match self {
                ChunkLanes::Borrowed(s) => s.clone(),
                ChunkLanes::Owned(v) => v.iter().map(ValueLane::as_slice).collect(),
            }
        }
    }

    let n = range.len();
    // States are indexed by chunk position (original row order); lanes
    // hold exactly the still-clean rows and `live[j]` maps lane row `j`
    // back to its chunk position.
    let mut states: Vec<RowState> =
        range.clone().map(|i| RowState::Clean(cs.annots().get(i))).collect();
    let mut lanes =
        ChunkLanes::Borrowed((0..cs.arity()).map(|c| cs.lane(c).slice(range.clone())).collect());
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut batch = LaneBatch::default();

    for op in ops {
        if live.is_empty() {
            break;
        }
        let nrows = live.len();
        let slices = lanes.slices();
        #[allow(clippy::expect_used)] // the batchable gate checked compiled() per stage
        let prog = match op {
            PipeOp::Select(p) => p.compiled().expect("batched chains are compiled"),
            PipeOp::Project(p) => p.compiled().expect("batched chains are compiled"),
            PipeOp::Probe(_) => unreachable!("probe chains stream row-at-a-time"),
        };
        prog.eval_range_lanes(&slices, nrows, &mut batch, cancel)?;
        // Reading an output lane is only safe when some row survived:
        // with every row poisoned (e.g. an out-of-arity column probe)
        // the output source may reference a column that does not exist.
        let any_clean = (0..nrows).any(|j| batch.row_error(j).is_none());
        let mut keep: Vec<u32> = Vec::with_capacity(nrows);
        let compacted: Option<Vec<ValueLane>> = match op {
            PipeOp::Select(_) => {
                if any_clean {
                    let out_lane = batch.output_lane(prog, 0, &slices);
                    for (j, &lj) in live.iter().enumerate().take(nrows) {
                        let pos = lj as usize;
                        if let Some(e) = batch.row_error(j) {
                            states[pos] = RowState::Poisoned(e.clone());
                            continue;
                        }
                        match out_lane.bool3(j) {
                            Err(e) => states[pos] = RowState::Poisoned(e),
                            Ok((_, _, false)) => states[pos] = RowState::Dropped,
                            Ok((lb, sg, ub)) => {
                                let RowState::Clean(k) = &mut states[pos] else { unreachable!() };
                                *k = k.times(&AuAnnot::from_bool3(lb, sg, ub));
                                keep.push(j as u32);
                            }
                        }
                    }
                } else {
                    for j in 0..nrows {
                        if let Some(e) = batch.row_error(j) {
                            states[live[j] as usize] = RowState::Poisoned(e.clone());
                        }
                    }
                }
                if keep.len() < nrows {
                    Some(slices.iter().map(|s| s.gather(&keep)).collect())
                } else {
                    None
                }
            }
            PipeOp::Project(_) => {
                for j in 0..nrows {
                    if let Some(e) = batch.row_error(j) {
                        states[live[j] as usize] = RowState::Poisoned(e.clone());
                    } else {
                        keep.push(j as u32);
                    }
                }
                if any_clean {
                    let outs: Vec<LaneSlice<'_>> =
                        (0..prog.arity()).map(|oi| batch.output_lane(prog, oi, &slices)).collect();
                    if keep.len() < nrows {
                        Some(outs.iter().map(|s| s.gather(&keep)).collect())
                    } else {
                        Some(outs.iter().map(LaneSlice::to_lane).collect())
                    }
                } else {
                    Some(Vec::new())
                }
            }
            PipeOp::Probe(_) => unreachable!("probe chains stream row-at-a-time"),
        };
        if let Some(nl) = compacted {
            lanes = ChunkLanes::Owned(nl);
            live = keep.iter().map(|&j| live[j as usize]).collect();
        }
    }

    // The earliest poisoned source row wins the error report, exactly
    // like the row-major paths.
    for st in &states {
        if let RowState::Poisoned(e) = st {
            return Err(e.clone());
        }
    }
    let slices = lanes.slices();
    for (j, &pos) in live.iter().enumerate() {
        let RowState::Clean(k) = states[pos as usize] else { unreachable!() };
        let t = RangeTuple::new(slices.iter().map(|s| s.get(j)).collect());
        out.push((t, k));
    }
    Ok(())
}

/// A fused chain ready to run: the source relation, the op list, and
/// the output schema.
struct AuPipeline<'a> {
    source: Cow<'a, AuRelation>,
    ops: Vec<PipeOp<'a>>,
    schema: Schema,
}

impl<'a> AuPipeline<'a> {
    /// Run the whole chain shard-by-shard and deliver per the chain's
    /// shape: a single breaker normalization when anything merged or
    /// rewrote tuples, the exact source-order row list for select-only
    /// chains (mirroring [`select_au_exec`]'s normal-form preservation).
    ///
    /// Compiled probe-less chains evaluate one op over a whole shard of
    /// rows at a time ([`run_shard_batched`]); chains with a probe
    /// stream each row through the compiled ops with a per-worker
    /// register file.
    ///
    /// `h` is the open `fused-chain` span: the chain records its op
    /// summary, execution shape, and shard count there, and closes it
    /// with the delivered relation's actual sizes.
    fn run(
        self,
        cfg: &AuConfig,
        exec: &Executor,
        tr: &TraceBuilder,
        h: usize,
    ) -> Result<Cow<'a, AuRelation>, EvalError> {
        tr.rows_in(h, self.source.len() as u64);
        if self.ops.is_empty() {
            close_rel(tr, h, &self.source);
            return Ok(self.source);
        }
        let n = self.source.len();
        let sharding = match cfg.shards {
            Some(s) => ShardSource::new(s),
            None => ShardSource::auto(exec.workers(), n, MIN_ROWS_PER_SHARD),
        };
        let ops = &self.ops;
        let source = self.source.as_ref();
        let batchable = ops.iter().all(|op| match op {
            PipeOp::Select(p) => p.compiled().is_some(),
            PipeOp::Project(p) => p.compiled().is_some(),
            PipeOp::Probe(_) => false,
        });
        tr.attr(h, "ops", || {
            let names: Vec<&'static str> = ops
                .iter()
                .map(|op| match op {
                    PipeOp::Select(_) => "σ",
                    PipeOp::Project(_) => "π",
                    PipeOp::Probe(p) => match p.plan {
                        ProbePlan::HashEqui { .. } => "⋈(hash-equi)",
                        ProbePlan::Comparison => "⋈(interval-comparison)",
                        ProbePlan::NestedLoop => "⋈(nested-loop)",
                    },
                })
                .collect();
            names.join("·")
        });
        tr.attr(h, "exprs", || (if cfg.compiled { "compiled" } else { "interpreted" }).to_string());
        tr.attr(h, "batched", || batchable.to_string());
        let columnar = cfg.columnar && batchable;
        tr.attr(h, "columnar", || columnar.to_string());
        tr.attr(h, "shards", || sharding.slices(n).len().to_string());
        // Built (or fetched from the relation's cache) once, shared by
        // every shard; `None` keeps the row-major batch oracle.
        let columns = if columnar { Some(source.columns()) } else { None };
        let rows = if batchable {
            let columns = columns.as_deref();
            exec.run_shards(n, &sharding, |range, out| {
                run_shard_batched(ops, source, columns, range, out, exec)
            })?
        } else {
            // Probe chains can expand (join output); charge their
            // production as "join-probe", plain streamed chains as
            // "pipeline-chain", re-checking cancellation every
            // GOVERN_ROWS source rows.
            let operator = if ops.iter().any(|op| matches!(op, PipeOp::Probe(_))) {
                "join-probe"
            } else {
                "pipeline-chain"
            };
            exec.run_shards(n, &sharding, |range, out| {
                let mut bufs: Vec<Buf> = Vec::new();
                bufs.resize_with(ops.len(), Buf::default);
                let mut watermark = out.len();
                for (off, i) in range.enumerate() {
                    if off % GOVERN_ROWS == 0 {
                        exec.check_cancel()?;
                        charge_out(exec, operator, out, &mut watermark)?;
                    }
                    let (t, k) = &source.rows()[i];
                    apply(ops, &mut bufs, i, t.values(), *k, out)?;
                }
                charge_out(exec, operator, out, &mut watermark)?;
                Ok::<(), EvalError>(())
            })?
        };
        let select_only = self.ops.iter().all(|op| matches!(op, PipeOp::Select(_)));
        let out = if !select_only {
            // the one pipeline-breaker normalization (sharded-reduce)
            let mut out = AuRelation::empty(self.schema);
            out.append_rows(rows);
            out.into_normalized_with(exec)?
        } else if self.source.is_normalized() {
            // selection preserves normal form: kept rows stay sorted,
            // distinct, and nonzero-annotated
            AuRelation::from_normalized_rows(self.schema, rows)
        } else {
            let mut out = AuRelation::empty(self.schema);
            out.append_rows(rows);
            out
        };
        close_rel(tr, h, &out);
        Ok(Cow::Owned(out))
    }
}

/// Build the fused chain for a query `fusable()` said is in chain form.
fn build_chain<'a>(
    db: &'a AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    exec: &Executor,
    tr: &TraceBuilder,
) -> Result<AuPipeline<'a>, EvalError> {
    match q {
        Query::Table(name) => {
            let rel = db.get(name)?;
            Ok(AuPipeline {
                source: Cow::Borrowed(rel),
                ops: Vec::new(),
                schema: rel.schema.clone(),
            })
        }
        Query::Select { input, predicate } => {
            let mut c = build_chain(db, input, cfg, exec, tr)?;
            let vet = Vet::new(cfg.compiled, cfg.verify, exec, tr);
            c.ops.push(PipeOp::Select(RangePred::new(predicate, vet)));
            Ok(c)
        }
        Query::Project { input, exprs } => {
            let mut c = build_chain(db, input, cfg, exec, tr)?;
            c.schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let vet = Vet::new(cfg.compiled, cfg.verify, exec, tr);
            c.ops.push(PipeOp::Project(RangeProj::new(exprs, vet)));
            Ok(c)
        }
        Query::Join { left, right, predicate } => {
            // Left side: continue a select-only chain in place (source
            // row ids stay valid for the sweep candidates); anything
            // else is materialized and becomes the new chain source.
            let mut chain = if fusable(left, cfg) && select_only(left) {
                build_chain(db, left, cfg, exec, tr)?
            } else {
                let rel = eval_pl(db, left, cfg, exec, Delivery::Canonical, tr)?;
                let schema = rel.schema.clone();
                AuPipeline { source: rel, ops: Vec::new(), schema }
            };
            let r = eval_pl(db, right, cfg, exec, Delivery::Canonical, tr)?;
            chain.schema = chain.schema.concat(&r.schema);
            let vet = Vet::new(cfg.compiled, cfg.verify, exec, tr);
            let probe =
                ProbeOp::build(chain.source.as_ref(), r, predicate.as_ref(), vet, cfg.columnar);
            chain.ops.push(PipeOp::Probe(Box::new(probe)));
            Ok(chain)
        }
        _ => unreachable!("build_chain called on a non-chain query"),
    }
}

// ---------------------------------------------------------------------------
// The pipelined evaluator: fused chains + operator-at-a-time fallback
// ---------------------------------------------------------------------------

fn eval_pl<'a>(
    db: &'a AuDatabase,
    q: &Query,
    cfg: &AuConfig,
    exec: &Executor,
    delivery: Delivery,
    tr: &TraceBuilder,
) -> Result<Cow<'a, AuRelation>, EvalError> {
    // Fused path: maximal row-local chains, one breaker normalization.
    if fusable(q, cfg) && (delivery == Delivery::Canonical || faithful_ok(q)) {
        let h = tr.open("fused-chain", || q.to_string());
        tr.attr(h, "delivery", || {
            (match delivery {
                Delivery::Canonical => "canonical",
                Delivery::Faithful => "faithful",
            })
            .to_string()
        });
        return build_chain(db, q, cfg, exec, tr)?.run(cfg, exec, tr, h);
    }
    // Why this operator did not fuse — the delivery contract that
    // blocked it, or the breaker kind. Recorded on the operator's span.
    let fallback: &'static str = if fusable(q, cfg) {
        // fusable shape, but the consumer needs the exact operator-path
        // row list and this chain cannot reproduce it
        "faithful-delivery-unreproducible"
    } else {
        match q {
            Query::Table(_) | Query::Select { .. } | Query::Project { .. } => "input-not-fusable",
            Query::Join { .. } => "compressed-join-breaker",
            Query::Union { .. }
            | Query::Difference { .. }
            | Query::Distinct { .. }
            | Query::Aggregate { .. } => "pipeline-breaker",
        }
    };
    let h = open_op_span(tr, q);
    tr.attr(h, "fallback", || fallback.to_string());
    // Operator-at-a-time fallback; inputs recurse through the pipeline
    // with the delivery each operator requires (see module docs).
    Ok(match q {
        Query::Table(name) => {
            let rel = db.get(name)?;
            close_rel(tr, h, rel);
            Cow::Borrowed(rel)
        }
        Query::Select { input, predicate } => {
            // select preserves its input list one-to-one → propagate
            let rel = eval_pl(db, input, cfg, exec, delivery, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let out = select_au_exec(&rel, predicate, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Project { input, exprs } => {
            // projection normalizes: multiset-determined output
            let rel = eval_pl(db, input, cfg, exec, Delivery::Canonical, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let out = super::project_au_exec(&rel, exprs, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Join { left, right, predicate } => {
            // a compressed (or Faithful-context) join reproduces the
            // operator path, so its inputs inherit the stricter need
            let d = if cfg.join_compress.is_some() { Delivery::Faithful } else { delivery };
            let l = eval_pl(db, left, cfg, exec, d, tr)?;
            let r = eval_pl(db, right, cfg, exec, d, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = match cfg.join_compress {
                Some(ct) if !cfg.adaptive || crate::opt::join_compression_pays_off(&l, &r) => {
                    tr.attr(h, "strategy", || "split-compress".to_string());
                    crate::opt::optimized_join_exec(&l, &r, predicate.as_ref(), ct, exec)?
                }
                _ => {
                    tr.attr(h, "strategy", || {
                        planner::classify(predicate.as_ref(), l.schema.arity()).name().to_string()
                    });
                    planner::join_au_planned_exec(&l, &r, predicate.as_ref(), exec)?
                }
            };
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Union { left, right } => {
            let l = eval_pl(db, left, cfg, exec, Delivery::Canonical, tr)?;
            let r = eval_pl(db, right, cfg, exec, Delivery::Canonical, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = union_cow(l, r, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Difference { left, right } => {
            let l = eval_pl(db, left, cfg, exec, Delivery::Canonical, tr)?;
            let r = eval_pl(db, right, cfg, exec, Delivery::Canonical, tr)?;
            tr.rows_in(h, (l.len() + r.len()) as u64);
            let out = difference::difference_au_exec(&l, &r, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Distinct { input } => {
            // grouping on all columns, no aggregates: bounding boxes and
            // annotation sums are commutative folds → multiset-determined
            let rel = eval_pl(db, input, cfg, exec, Delivery::Canonical, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let all: Vec<usize> = (0..rel.schema.arity()).collect();
            let compress = effective_agg_compress(cfg, &rel, &all);
            tr.attr(h, "compress", || opt_usize_attr(compress));
            let out = aggregate::aggregate_au_exec(&rel, &all, &[], compress, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
        Query::Aggregate { input, group_by, aggs } => {
            // bound folds run in member order (floats!) → exact list
            let rel = eval_pl(db, input, cfg, exec, Delivery::Faithful, tr)?;
            tr.rows_in(h, rel.len() as u64);
            let compress = effective_agg_compress(cfg, &rel, group_by);
            tr.attr(h, "compress", || opt_usize_attr(compress));
            let out = aggregate::aggregate_au_exec(&rel, group_by, aggs, compress, exec)?;
            close_rel(tr, h, &out);
            Cow::Owned(out)
        }
    })
}
