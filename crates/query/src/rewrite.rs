//! The relational-encoding middleware (Section 10): AU-DBs encoded as
//! plain bag relations (`Enc`/`Dec`, Definition 29) plus the query
//! rewrite `rewr(·)` that makes a conventional deterministic engine
//! evaluate AU-DB semantics (Theorem 8):
//!
//! ```text
//! Q(D) = Dec(Q_merge(rewr(Q))(Enc(D)))
//! ```
//!
//! The encoding of an `n`-ary AU-relation has `3n + 3` columns laid out
//! as `[A1^sg..An^sg, A1↓..An↓, A1↑..An↑, row↓, row^sg, row↑]`, each
//! encoded tuple carrying bag multiplicity 1.
//!
//! The rewrites mirror Section 10.2, with the aggregation rewrite using
//! the same (soundness-fixed) guards as the native evaluator in
//! [`crate::au::aggregate`] so the two implementations agree exactly —
//! which the differential test-suite checks on randomized inputs.
//!
//! Caveat: like the paper's SQL rewrites, the generated expressions
//! compare encoded values with SQL equality. Columns must be
//! type-homogeneous (don't mix `Int` and `Float` key values) for the
//! rewrite and the native evaluator to agree on boundary comparisons.

use audb_core::{col, lit, AuAnnot, EvalError, Expr, RangeValue, Value};
use audb_exec::Executor;
use audb_storage::{AuDatabase, AuRelation, Database, RangeTuple, Relation, Schema, Tuple};

use crate::algebra::{AggFunc, AggSpec, Catalog, Query};

// ---------------------------------------------------------------------------
// Encoding layout
// ---------------------------------------------------------------------------

/// Column layout of the relational encoding of an `n`-ary AU-relation.
#[derive(Debug, Clone, Copy)]
pub struct EncLayout {
    pub n: usize,
}

impl EncLayout {
    pub fn new(n: usize) -> Self {
        EncLayout { n }
    }
    pub fn sg(&self, i: usize) -> usize {
        i
    }
    pub fn lb(&self, i: usize) -> usize {
        self.n + i
    }
    pub fn ub(&self, i: usize) -> usize {
        2 * self.n + i
    }
    pub fn row_lb(&self) -> usize {
        3 * self.n
    }
    pub fn row_sg(&self) -> usize {
        3 * self.n + 1
    }
    pub fn row_ub(&self) -> usize {
        3 * self.n + 2
    }
    pub fn width(&self) -> usize {
        3 * self.n + 3
    }
}

/// Schema of `Enc(R)` for an AU-relation with the given schema.
pub fn enc_schema(schema: &Schema) -> Schema {
    let mut cols: Vec<String> = schema.columns().to_vec();
    cols.extend(schema.columns().iter().map(|c| format!("{c}__lb")));
    cols.extend(schema.columns().iter().map(|c| format!("{c}__ub")));
    cols.push("__row_lb".into());
    cols.push("__row_sg".into());
    cols.push("__row_ub".into());
    Schema::new(cols)
}

/// `Enc` (Definition 29): one multiplicity-1 tuple per AU-DB row.
/// Infallible: runs on the ungoverned sequential executor.
#[allow(clippy::expect_used)] // documented infallible: ungoverned sequential executor
pub fn enc_relation(rel: &AuRelation) -> Relation {
    enc_relation_exec(rel, &Executor::sequential())
        .expect("ungoverned sequential encode cannot fault")
}

/// Partition-parallel `Enc`: rows encode independently on the pool and
/// the encoded relation normalizes on the sharded-reduce driver. Only
/// the executor's governance (cancellation, deadline, budget) can make
/// it fail — row encoding itself is total.
pub fn enc_relation_exec(rel: &AuRelation, exec: &Executor) -> Result<Relation, EvalError> {
    let rows = exec.run(rel.len(), |morsel, out| {
        for i in morsel {
            let (t, k) = &rel.rows()[i];
            let mut vals: Vec<Value> = t.values().iter().map(|r| r.sg.clone()).collect();
            vals.extend(t.values().iter().map(|r| r.lb.clone()));
            vals.extend(t.values().iter().map(|r| r.ub.clone()));
            vals.push(Value::Int(k.lb as i64));
            vals.push(Value::Int(k.sg as i64));
            vals.push(Value::Int(k.ub as i64));
            out.push((Tuple::new(vals), 1));
        }
        Ok::<(), EvalError>(())
    })?;
    let mut out = Relation::empty(enc_schema(&rel.schema));
    out.append_rows(rows);
    Ok(out.into_normalized_with(exec)?)
}

/// Decode one encoded row-annotation component: a non-negative `Int`,
/// scaled by the encoded tuple's bag multiplicity. Negative encoded
/// values and `u64` overflow are *errors*, not wraparound — `Dec` must
/// stay total and exact for Theorem 8's round trip to be sound.
fn dec_multiplicity(v: &Value, mult: u64, which: &str) -> Result<u64, EvalError> {
    let raw = v.as_int()?;
    let m = u64::try_from(raw).map_err(|_| {
        EvalError::InvalidAnnotation(format!("encoded {which} multiplicity {raw} is negative"))
    })?;
    m.checked_mul(mult).ok_or_else(|| {
        EvalError::InvalidAnnotation(format!(
            "encoded {which} multiplicity {raw} × row multiplicity {mult} overflows u64"
        ))
    })
}

/// Decode one encoded row (its value slice plus its bag multiplicity)
/// into an AU row — the single decode used by [`dec_relation_exec`] and
/// by the rewrite session's fused `Enc → spine → Dec` pass, so the two
/// paths cannot drift.
fn dec_row(lay: EncLayout, v: &[Value], mult: u64) -> Result<(RangeTuple, AuAnnot), EvalError> {
    let mut ranges = Vec::with_capacity(lay.n);
    for i in 0..lay.n {
        ranges.push(RangeValue::new(
            v[lay.lb(i)].clone(),
            v[lay.sg(i)].clone(),
            v[lay.ub(i)].clone(),
        )?);
    }
    let annot = AuAnnot::new(
        dec_multiplicity(&v[lay.row_lb()], mult, "lower-bound")?,
        dec_multiplicity(&v[lay.row_sg()], mult, "selected-guess")?,
        dec_multiplicity(&v[lay.row_ub()], mult, "upper-bound")?,
    )?;
    Ok((RangeTuple::new(ranges), annot))
}

/// `Dec`: invert the encoding. Multiplicities > 1 scale the annotation
/// (Definition 29's `rowdec(t) · (R(t), R(t), R(t))`).
pub fn dec_relation(rel: &Relation, orig_schema: &Schema) -> Result<AuRelation, EvalError> {
    dec_relation_exec(rel, orig_schema, &Executor::sequential())
}

/// Partition-parallel `Dec`: rows decode independently on the pool and
/// the result normalizes on the sharded-reduce driver. Errors are
/// deterministic (earliest offending row wins, as in the sequential
/// loop).
pub fn dec_relation_exec(
    rel: &Relation,
    orig_schema: &Schema,
    exec: &Executor,
) -> Result<AuRelation, EvalError> {
    let n = orig_schema.arity();
    let lay = EncLayout::new(n);
    if rel.schema.arity() != lay.width() {
        return Err(EvalError::SchemaMismatch(format!(
            "expected encoded arity {}, found {}",
            lay.width(),
            rel.schema.arity()
        )));
    }
    let rows = exec.run(rel.len(), |morsel, out| {
        for i in morsel {
            let (t, mult) = &rel.rows()[i];
            out.push(dec_row(lay, t.values(), *mult)?);
        }
        Ok::<(), EvalError>(())
    })?;
    let mut out = AuRelation::empty(orig_schema.clone());
    out.append_rows(rows);
    Ok(out.into_normalized_with(exec)?)
}

/// Encode a whole AU-database (tables keep their names).
pub fn enc_database(db: &AuDatabase) -> Database {
    let mut out = Database::new();
    for (name, rel) in db.iter() {
        out.insert(name.clone(), enc_relation(rel));
    }
    out
}

// ---------------------------------------------------------------------------
// Range-annotated expressions as deterministic expression triples
// ---------------------------------------------------------------------------

/// The three deterministic expressions `e↓ / e^sg / e↑` computing
/// Definition 9 over an encoded tuple.
#[derive(Debug, Clone)]
pub struct RangeExprs {
    pub lb: Expr,
    pub sg: Expr,
    pub ub: Expr,
}

fn emin(a: Expr, b: Expr) -> Expr {
    Expr::if_then_else(a.clone().leq(b.clone()), a, b)
}
fn emax(a: Expr, b: Expr) -> Expr {
    Expr::if_then_else(a.clone().geq(b.clone()), a, b)
}
fn emin4(a: Expr, b: Expr, c: Expr, d: Expr) -> Expr {
    emin(emin(a, b), emin(c, d))
}
fn emax4(a: Expr, b: Expr, c: Expr, d: Expr) -> Expr {
    emax(emax(a, b), emax(c, d))
}

/// Compile a scalar expression over an `n`-ary AU-relation into the
/// `e↓ / e^sg / e↑` triple over its encoding (Section 10.2's expression
/// translation).
pub fn compile_range_expr(e: &Expr, lay: EncLayout) -> Result<RangeExprs, EvalError> {
    let bin = |a: &Expr, b: &Expr| -> Result<(RangeExprs, RangeExprs), EvalError> {
        Ok((compile_range_expr(a, lay)?, compile_range_expr(b, lay)?))
    };
    Ok(match e {
        Expr::Col(i) => {
            if *i >= lay.n {
                return Err(EvalError::UnknownColumn(*i));
            }
            RangeExprs { lb: col(lay.lb(*i)), sg: col(lay.sg(*i)), ub: col(lay.ub(*i)) }
        }
        Expr::Const(v) => RangeExprs {
            lb: Expr::Const(v.clone()),
            sg: Expr::Const(v.clone()),
            ub: Expr::Const(v.clone()),
        },
        Expr::And(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs { lb: x.lb.and(y.lb), sg: x.sg.and(y.sg), ub: x.ub.and(y.ub) }
        }
        Expr::Or(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs { lb: x.lb.or(y.lb), sg: x.sg.or(y.sg), ub: x.ub.or(y.ub) }
        }
        Expr::Not(a) => {
            let x = compile_range_expr(a, lay)?;
            RangeExprs { lb: x.ub.not(), sg: x.sg.not(), ub: x.lb.not() }
        }
        Expr::Eq(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs {
                lb: x.ub.clone().eq(y.lb.clone()).and(y.ub.clone().eq(x.lb.clone())),
                sg: x.sg.eq(y.sg),
                ub: x.lb.leq(y.ub).and(y.lb.leq(x.ub)),
            }
        }
        Expr::Neq(a, b) => {
            let eq = compile_range_expr(&Expr::Eq(a.clone(), b.clone()), lay)?;
            RangeExprs { lb: eq.ub.not(), sg: eq.sg.not(), ub: eq.lb.not() }
        }
        Expr::Leq(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs { lb: x.ub.leq(y.lb), sg: x.sg.leq(y.sg), ub: x.lb.leq(y.ub) }
        }
        Expr::Lt(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs { lb: x.ub.lt(y.lb), sg: x.sg.lt(y.sg), ub: x.lb.lt(y.ub) }
        }
        Expr::Geq(a, b) => compile_range_expr(&Expr::Leq(b.clone(), a.clone()), lay)?,
        Expr::Gt(a, b) => compile_range_expr(&Expr::Lt(b.clone(), a.clone()), lay)?,
        Expr::Add(a, b) => {
            let (x, y) = bin(a, b)?;
            RangeExprs { lb: x.lb.add(y.lb), sg: x.sg.add(y.sg), ub: x.ub.add(y.ub) }
        }
        Expr::Sub(a, b) => {
            let (x, y) = bin(a, b)?;
            // widened by sg, mirroring `Expr::eval_range`'s guard against
            // cross-representation numeric ties
            let sg = x.sg.sub(y.sg);
            RangeExprs {
                lb: emin(x.lb.sub(y.ub), sg.clone()),
                sg: sg.clone(),
                ub: emax(x.ub.sub(y.lb), sg),
            }
        }
        Expr::Neg(a) => {
            let x = compile_range_expr(a, lay)?;
            let sg = x.sg.neg();
            RangeExprs {
                lb: emin(x.ub.neg(), sg.clone()),
                sg: sg.clone(),
                ub: emax(x.lb.neg(), sg),
            }
        }
        Expr::Mul(a, b) => {
            let (x, y) = bin(a, b)?;
            let p = |l: &Expr, r: &Expr| l.clone().mul(r.clone());
            let sg = x.sg.mul(y.sg);
            RangeExprs {
                lb: emin(
                    emin4(p(&x.lb, &y.lb), p(&x.lb, &y.ub), p(&x.ub, &y.lb), p(&x.ub, &y.ub)),
                    sg.clone(),
                ),
                sg: sg.clone(),
                ub: emax(
                    emax4(p(&x.lb, &y.lb), p(&x.lb, &y.ub), p(&x.ub, &y.lb), p(&x.ub, &y.ub)),
                    sg,
                ),
            }
        }
        Expr::Div(a, b) => {
            let (x, y) = bin(a, b)?;
            let p = |l: &Expr, r: &Expr| l.clone().div(r.clone());
            let sg = x.sg.div(y.sg);
            RangeExprs {
                lb: emin(
                    emin4(p(&x.lb, &y.lb), p(&x.lb, &y.ub), p(&x.ub, &y.lb), p(&x.ub, &y.ub)),
                    sg.clone(),
                ),
                sg: sg.clone(),
                ub: emax(
                    emax4(p(&x.lb, &y.lb), p(&x.lb, &y.ub), p(&x.ub, &y.lb), p(&x.ub, &y.ub)),
                    sg,
                ),
            }
        }
        Expr::Uncertain(l, sg, u) => {
            let ll = compile_range_expr(l, lay)?;
            let ss = compile_range_expr(sg, lay)?;
            let uu = compile_range_expr(u, lay)?;
            // mirror Expr::eval_range's widening exactly
            RangeExprs { lb: emin(ll.lb, ss.sg.clone()), sg: ss.sg.clone(), ub: emax(uu.ub, ss.sg) }
        }
        Expr::If(c, t, e2) => {
            let cc = compile_range_expr(c, lay)?;
            let tt = compile_range_expr(t, lay)?;
            let ee = compile_range_expr(e2, lay)?;
            RangeExprs {
                lb: Expr::if_then_else(
                    cc.lb.clone(),
                    tt.lb.clone(),
                    Expr::if_then_else(
                        cc.ub.clone().not(),
                        ee.lb.clone(),
                        emin(tt.lb.clone(), ee.lb.clone()),
                    ),
                ),
                sg: Expr::if_then_else(cc.sg, tt.sg, ee.sg),
                ub: Expr::if_then_else(
                    cc.lb,
                    tt.ub.clone(),
                    Expr::if_then_else(cc.ub.not(), ee.ub.clone(), emax(tt.ub, ee.ub)),
                ),
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Query rewriting
// ---------------------------------------------------------------------------

/// Rewrite a query over AU-relations into one over their encodings.
/// Evaluate the result with the deterministic engine against
/// [`enc_database`] and invert with [`dec_relation`] — or use
/// [`eval_via_rewrite`] which does all three.
pub fn rewrite(q: &Query, catalog: &dyn Catalog) -> Result<Query, EvalError> {
    Ok(rewr(q, catalog)?.0)
}

/// A reusable rewrite-evaluation session over one AU-database, plugged
/// into the deterministic engine's Cow pipeline: base tables are
/// encoded *lazily* — only the tables a query actually references, each
/// at most once for the lifetime of the session — and the deterministic
/// evaluator then borrows them copy-free. This replaces the old
/// per-call `enc_database` round trip, which re-encoded every relation
/// of the database on every evaluation.
pub struct RewriteSession<'a> {
    src: &'a AuDatabase,
    enc: Database,
    exec: Executor,
    compiled: bool,
    verify: bool,
}

impl<'a> RewriteSession<'a> {
    pub fn new(src: &'a AuDatabase) -> Self {
        RewriteSession {
            src,
            enc: Database::new(),
            exec: Executor::default(),
            compiled: true,
            verify: true,
        }
    }

    /// Set the worker count for the session's `Enc`/`Dec` drivers:
    /// `None` uses all hardware threads (the default), `Some(1)` the
    /// exact sequential path. Any value produces identical results.
    pub fn with_workers(mut self, workers: Option<usize>) -> Self {
        self.exec = Executor::from_option(workers);
        self
    }

    /// Keep the fused spine's rewritten expressions on the `Expr`-tree
    /// interpreter instead of compiling them to register programs (the
    /// differential-testing oracle; results are byte-identical).
    pub fn with_compiled(mut self, compiled: bool) -> Self {
        self.compiled = compiled;
        self
    }

    /// Skip Tier B static verification of the fused spine's compiled
    /// programs (`audb_core::verify`; on by default — a rejected
    /// program falls back to the interpreter for that stage).
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// `Dec(rewr(Q)(Enc(D)))`, encoding referenced base tables on first
    /// use.
    ///
    /// When the rewritten plan is a single fusable chain of row-local
    /// operators (every select/project/join spine is — aggregation and
    /// set operations are not), the whole
    /// `Enc → select/project/join → Dec` round trip runs as **one pass
    /// per base-table shard** on the deterministic engine's pipeline
    /// driver: encoded base rows stream through the rewritten operator
    /// chain and decode straight back into AU rows, with a single
    /// normalization at the end — no materialized encoded intermediate,
    /// no extra hash-merge of wide encoded tuples. Results are
    /// byte-identical to the unfused path (`Dec` distributes over the
    /// bag sum the skipped normalization would have computed).
    pub fn eval(&mut self, q: &Query) -> Result<AuRelation, EvalError> {
        let (plan, schema) = rewr(q, self.src)?;
        for name in q.table_refs() {
            if self.enc.get(name).is_err() {
                self.enc
                    .insert(name.to_string(), enc_relation_exec(self.src.get(name)?, &self.exec)?);
            }
        }
        if let Some(pipe) = crate::det::build_det_pipeline(
            &self.enc,
            &plan,
            &self.exec,
            self.compiled,
            self.verify,
        )? {
            let lay = EncLayout::new(schema.arity());
            if pipe.schema().arity() != lay.width() {
                return Err(EvalError::SchemaMismatch(format!(
                    "expected encoded arity {}, found {}",
                    lay.width(),
                    pipe.schema().arity()
                )));
            }
            let rows = pipe.run_map(&self.exec, None, |v, mult, out| {
                out.push(dec_row(lay, v, mult)?);
                Ok(())
            })?;
            let mut out = AuRelation::empty(schema);
            out.append_rows(rows);
            return Ok(out.into_normalized_with(&self.exec)?);
        }
        let out = crate::det::eval_det_exec(&self.enc, &plan, &self.exec)?;
        dec_relation_exec(&out, &schema, &self.exec)
    }
}

/// Full round trip: `Dec(rewr(Q)(Enc(D)))` in a one-shot session.
pub fn eval_via_rewrite(db: &AuDatabase, q: &Query) -> Result<AuRelation, EvalError> {
    RewriteSession::new(db).eval(q)
}

fn rewr(q: &Query, catalog: &dyn Catalog) -> Result<(Query, Schema), EvalError> {
    match q {
        Query::Table(name) => Ok((Query::Table(name.clone()), catalog.table_schema(name)?)),
        Query::Select { input, predicate } => {
            let (inp, schema) = rewr(input, catalog)?;
            let lay = EncLayout::new(schema.arity());
            let c = compile_range_expr(predicate, lay)?;
            let filtered = inp.select(c.ub);
            let mut exprs = passthrough(&schema, lay, 0);
            exprs.push((Expr::if_then_else(c.lb, col(lay.row_lb()), lit(0i64)), "__row_lb".into()));
            exprs.push((Expr::if_then_else(c.sg, col(lay.row_sg()), lit(0i64)), "__row_sg".into()));
            exprs.push((col(lay.row_ub()), "__row_ub".into()));
            Ok((project_named(filtered, exprs), schema))
        }
        Query::Project { input, exprs } => {
            let (inp, in_schema) = rewr(input, catalog)?;
            let lay = EncLayout::new(in_schema.arity());
            let out_schema = Schema::new(exprs.iter().map(|(_, n)| n.clone()).collect());
            let compiled: Vec<RangeExprs> =
                exprs.iter().map(|(e, _)| compile_range_expr(e, lay)).collect::<Result<_, _>>()?;
            let mut p: Vec<(Expr, String)> = Vec::new();
            for (c, (_, name)) in compiled.iter().zip(exprs) {
                p.push((c.sg.clone(), name.clone()));
            }
            for (c, (_, name)) in compiled.iter().zip(exprs) {
                p.push((c.lb.clone(), format!("{name}__lb")));
            }
            for (c, (_, name)) in compiled.iter().zip(exprs) {
                p.push((c.ub.clone(), format!("{name}__ub")));
            }
            p.push((col(lay.row_lb()), "__row_lb".into()));
            p.push((col(lay.row_sg()), "__row_sg".into()));
            p.push((col(lay.row_ub()), "__row_ub".into()));
            Ok((project_named(inp, p), out_schema))
        }
        Query::Join { left, right, predicate } => {
            let (l, ls) = rewr(left, catalog)?;
            let (r, rs) = rewr(right, catalog)?;
            let (n, m) = (ls.arity(), rs.arity());
            let out_schema = ls.concat(&rs);
            let lay_out = EncLayout::new(n + m);
            let llay = EncLayout::new(n);
            let rlay = EncLayout::new(m);
            let roff = llay.width();

            // canonical output position → concatenated input position
            let canon_to_concat = move |p: usize| -> usize {
                if p < n {
                    llay.sg(p)
                } else if p < n + m {
                    roff + rlay.sg(p - n)
                } else if p < 2 * n + m {
                    llay.lb(p - (n + m))
                } else if p < 2 * (n + m) {
                    roff + rlay.lb(p - (2 * n + m))
                } else if p < 3 * n + 2 * m {
                    llay.ub(p - 2 * (n + m))
                } else if p < 3 * (n + m) {
                    roff + rlay.ub(p - (3 * n + 2 * m))
                } else {
                    unreachable!("row columns handled separately")
                }
            };

            let compiled = match predicate {
                Some(p) => Some(compile_range_expr(p, lay_out)?),
                None => None,
            };
            let join_pred = compiled.as_ref().map(|c| c.ub.remap_columns(&canon_to_concat));
            let joined =
                Query::Join { left: Box::new(l), right: Box::new(r), predicate: join_pred };

            // canonical projection
            let out_enc = enc_schema(&out_schema);
            let mut p: Vec<(Expr, String)> = Vec::new();
            for idx in 0..3 * (n + m) {
                p.push((col(canon_to_concat(idx)), out_enc.column_name(idx).to_string()));
            }
            let lb_prod = col(llay.row_lb()).mul(col(roff + rlay.row_lb()));
            let sg_prod = col(llay.row_sg()).mul(col(roff + rlay.row_sg()));
            let ub_prod = col(llay.row_ub()).mul(col(roff + rlay.row_ub()));
            match compiled {
                Some(c) => {
                    let clb = c.lb.remap_columns(&canon_to_concat);
                    let csg = c.sg.remap_columns(&canon_to_concat);
                    p.push((Expr::if_then_else(clb, lb_prod, lit(0i64)), "__row_lb".into()));
                    p.push((Expr::if_then_else(csg, sg_prod, lit(0i64)), "__row_sg".into()));
                    p.push((ub_prod, "__row_ub".into()));
                }
                None => {
                    p.push((lb_prod, "__row_lb".into()));
                    p.push((sg_prod, "__row_sg".into()));
                    p.push((ub_prod, "__row_ub".into()));
                }
            }
            Ok((project_named(joined, p), out_schema))
        }
        Query::Union { left, right } => {
            let (l, ls) = rewr(left, catalog)?;
            let (r, rs) = rewr(right, catalog)?;
            ls.check_union_compatible(&rs)?;
            Ok((Query::Union { left: Box::new(l), right: Box::new(r) }, ls))
        }
        Query::Difference { left, right } => rewr_difference(left, right, catalog),
        Query::Distinct { input } => {
            let in_schema_probe = rewr(input, catalog)?.1;
            let all: Vec<usize> = (0..in_schema_probe.arity()).collect();
            rewr(&Query::Aggregate { input: input.clone(), group_by: all, aggs: vec![] }, catalog)
        }
        Query::Aggregate { input, group_by, aggs } => {
            rewr_aggregate(input, group_by, aggs, catalog)
        }
    }
}

fn project_named(q: Query, exprs: Vec<(Expr, String)>) -> Query {
    Query::Project { input: Box::new(q), exprs }
}

/// Pass-through projection expressions for the 3n value columns of an
/// encoding (offset allows reading from a shifted position).
fn passthrough(schema: &Schema, lay: EncLayout, offset: usize) -> Vec<(Expr, String)> {
    let enc = enc_schema(schema);
    (0..3 * lay.n).map(|i| (col(offset + i), enc.column_name(i).to_string())).collect()
}

/// Bag monus as an expression: `max(a − b, 0)`.
fn emonus(a: Expr, b: Expr) -> Expr {
    Expr::if_then_else(a.clone().leq(b.clone()), lit(0i64), a.sub(b))
}

/// `rewr(Ψ(Q))`: group by SG values; bounding boxes via min/max; sum the
/// annotation columns (Section 10.2's combiner rewrite).
fn rewr_combine(inp: Query, schema: &Schema) -> Query {
    let lay = EncLayout::new(schema.arity());
    let enc = enc_schema(schema);
    let group_by: Vec<usize> = (0..lay.n).collect();
    let mut aggs: Vec<AggSpec> = Vec::new();
    for i in 0..lay.n {
        aggs.push(AggSpec::new(AggFunc::Min, col(lay.lb(i)), enc.column_name(lay.lb(i))));
    }
    for i in 0..lay.n {
        aggs.push(AggSpec::new(AggFunc::Max, col(lay.ub(i)), enc.column_name(lay.ub(i))));
    }
    aggs.push(AggSpec::new(AggFunc::Sum, col(lay.row_lb()), "__row_lb"));
    aggs.push(AggSpec::new(AggFunc::Sum, col(lay.row_sg()), "__row_sg"));
    aggs.push(AggSpec::new(AggFunc::Sum, col(lay.row_ub()), "__row_ub"));
    Query::Aggregate { input: Box::new(inp), group_by, aggs }
}

/// Set-difference rewrite (Section 10.2).
fn rewr_difference(
    left: &Query,
    right: &Query,
    catalog: &dyn Catalog,
) -> Result<(Query, Schema), EvalError> {
    let (l_raw, ls) = rewr(left, catalog)?;
    let (r, rs) = rewr(right, catalog)?;
    ls.check_union_compatible(&rs)?;
    let lay = EncLayout::new(ls.arity());
    let n = lay.n;
    let lw = lay.width();
    let l = rewr_combine(l_raw, &ls);

    // θ_join: attribute ranges overlap (t ≃ t')
    let mut overlap = Vec::new();
    for i in 0..n {
        overlap.push(col(lay.ub(i)).geq(col(lw + lay.lb(i))));
        overlap.push(col(lw + lay.ub(i)).geq(col(lay.lb(i))));
    }
    let theta_join = Expr::conj(overlap);

    // θ_sg: same SG values; θ_c: certainly equal (t ≡ t')
    let theta_sg = Expr::conj((0..n).map(|i| col(lay.sg(i)).eq(col(lw + lay.sg(i)))).collect());
    let mut certeq = Vec::new();
    for i in 0..n {
        certeq.push(col(lay.lb(i)).eq(col(lay.ub(i))));
        certeq.push(col(lay.ub(i)).eq(col(lw + lay.lb(i))));
        certeq.push(col(lw + lay.lb(i)).eq(col(lw + lay.ub(i))));
    }
    let theta_c = Expr::conj(certeq);

    let matched =
        Query::Join { left: Box::new(l.clone()), right: Box::new(r), predicate: Some(theta_join) };

    // per-pair contribution columns
    let enc = enc_schema(&ls);
    let mut pre: Vec<(Expr, String)> = Vec::new();
    for i in 0..lw {
        pre.push((col(i), enc.column_name(i).to_string()));
    }
    pre.push((col(lw + lay.row_ub()), "__rr_lb".into()));
    pre.push((Expr::if_then_else(theta_sg, col(lw + lay.row_sg()), lit(0i64)), "__rr_sg".into()));
    pre.push((Expr::if_then_else(theta_c, col(lw + lay.row_lb()), lit(0i64)), "__rr_ub".into()));
    let preagg = project_named(matched.clone(), pre);

    // sum contributions per (distinct) left tuple
    let sumright = Query::Aggregate {
        input: Box::new(preagg),
        group_by: (0..lw).collect(),
        aggs: vec![
            AggSpec::new(AggFunc::Sum, col(lw), "__rr_lb"),
            AggSpec::new(AggFunc::Sum, col(lw + 1), "__rr_sg"),
            AggSpec::new(AggFunc::Sum, col(lw + 2), "__rr_ub"),
        ],
    };

    // left tuples with no overlapping right partner keep their annotation
    let matched_keys = Query::Distinct {
        input: Box::new(project_named(
            matched,
            (0..lw).map(|i| (col(i), enc.column_name(i).to_string())).collect(),
        )),
    };
    let anti = Query::Difference { left: Box::new(l), right: Box::new(matched_keys) };
    let mut anti_exprs: Vec<(Expr, String)> =
        (0..lw).map(|i| (col(i), enc.column_name(i).to_string())).collect();
    anti_exprs.push((lit(0i64), "__rr_lb".into()));
    anti_exprs.push((lit(0i64), "__rr_sg".into()));
    anti_exprs.push((lit(0i64), "__rr_ub".into()));
    let anti_ext = project_named(anti, anti_exprs);

    let unioned = Query::Union { left: Box::new(sumright), right: Box::new(anti_ext) };

    // final monus + drop impossible tuples
    let mut fin: Vec<(Expr, String)> =
        (0..3 * n).map(|i| (col(i), enc.column_name(i).to_string())).collect();
    fin.push((emonus(col(lay.row_lb()), col(lw)), "__row_lb".into()));
    fin.push((emonus(col(lay.row_sg()), col(lw + 1)), "__row_sg".into()));
    fin.push((emonus(col(lay.row_ub()), col(lw + 2)), "__row_ub".into()));
    let projected = project_named(unioned, fin);
    let final_q = projected.select(col(lay.row_ub()).gt(lit(0i64)));
    Ok((final_q, ls))
}

/// Monoid selection for the aggregation rewrite.
fn monoid_of(f: AggFunc) -> crate::au::aggregate::Monoid {
    use crate::au::aggregate::Monoid;
    match f {
        AggFunc::Sum | AggFunc::Count | AggFunc::Avg => Monoid::Sum,
        AggFunc::Min => Monoid::Min,
        AggFunc::Max => Monoid::Max,
    }
}

fn monoid_agg_func(m: crate::au::aggregate::Monoid) -> AggFunc {
    use crate::au::aggregate::Monoid;
    match m {
        Monoid::Sum => AggFunc::Sum,
        Monoid::Min => AggFunc::Min,
        Monoid::Max => AggFunc::Max,
    }
}

/// `⊛_M` as expressions over the row-annotation columns and a compiled
/// value triple — mirrors [`crate::au::aggregate::boxtimes`].
fn boxtimes_exprs(
    m: crate::au::aggregate::Monoid,
    row_lb: Expr,
    row_sg: Expr,
    row_ub: Expr,
    v: &RangeExprs,
) -> (Expr, Expr, Expr) {
    use crate::au::aggregate::Monoid;
    let neutral = Expr::Const(m.neutral());
    match m {
        Monoid::Sum => {
            let p = |k: &Expr, x: &Expr| k.clone().mul(x.clone());
            let lo =
                emin4(p(&row_lb, &v.lb), p(&row_lb, &v.ub), p(&row_ub, &v.lb), p(&row_ub, &v.ub));
            let hi =
                emax4(p(&row_lb, &v.lb), p(&row_lb, &v.ub), p(&row_ub, &v.lb), p(&row_ub, &v.ub));
            let sg = row_sg.mul(v.sg.clone());
            (lo, sg, hi)
        }
        Monoid::Min | Monoid::Max => {
            // candidate set is {neutral if k may be 0} ∪ {v.lb, v.ub if k
            // may be > 0}; k.ub = 0 never survives normalization but is
            // handled for completeness.
            let lo = Expr::if_then_else(
                row_ub.clone().eq(lit(0i64)),
                neutral.clone(),
                Expr::if_then_else(
                    row_lb.clone().eq(lit(0i64)),
                    emin(neutral.clone(), v.lb.clone()),
                    v.lb.clone(),
                ),
            );
            let hi = Expr::if_then_else(
                row_ub.clone().eq(lit(0i64)),
                neutral.clone(),
                Expr::if_then_else(
                    row_lb.clone().eq(lit(0i64)),
                    emax(neutral.clone(), v.ub.clone()),
                    v.ub.clone(),
                ),
            );
            let sg = Expr::if_then_else(row_sg.clone().eq(lit(0i64)), neutral, v.sg.clone());
            (lo, sg, hi)
        }
    }
}

fn clamp_expr(x: Expr, lo: Expr, hi: Expr) -> Expr {
    Expr::if_then_else(
        x.clone().lt(lo.clone()),
        lo,
        Expr::if_then_else(x.clone().gt(hi.clone()), hi, x),
    )
}

/// Aggregation rewrite (Section 10.2, with the same guards as the native
/// evaluator).
fn rewr_aggregate(
    input: &Query,
    group_by: &[usize],
    aggs: &[AggSpec],
    catalog: &dyn Catalog,
) -> Result<(Query, Schema), EvalError> {
    let (inp, in_schema) = rewr(input, catalog)?;
    let lay = EncLayout::new(in_schema.arity());
    let g = group_by.len();
    let gw = 3 * g;
    let inoff = gw; // input columns start after the group-bounds block

    // output AU schema
    let mut out_cols: Vec<String> =
        group_by.iter().map(|c| in_schema.column_name(*c).to_string()).collect();
    out_cols.extend(aggs.iter().map(|a| a.name.clone()));
    let out_schema = Schema::new(out_cols);

    // ---- Q_gbounds: one row per SG group with min/max bounds --------------
    let mut gb_aggs: Vec<AggSpec> = Vec::new();
    for (i, c) in group_by.iter().enumerate() {
        gb_aggs.push(AggSpec::new(AggFunc::Min, col(lay.lb(*c)), format!("__g{i}_lb")));
    }
    for (i, c) in group_by.iter().enumerate() {
        gb_aggs.push(AggSpec::new(AggFunc::Max, col(lay.ub(*c)), format!("__g{i}_ub")));
    }
    let qg = Query::Aggregate {
        input: Box::new(inp.clone()),
        group_by: group_by.to_vec(),
        aggs: gb_aggs,
    };
    // qg layout: [G_sg (0..g), G_lb (g..2g), G_ub (2g..3g)]

    // ---- Q_join: group bounds × input, overlap + membership guard ---------
    let mut overlap = Vec::new();
    for (i, c) in group_by.iter().enumerate() {
        overlap.push(col(2 * g + i).geq(col(inoff + lay.lb(*c))));
        overlap.push(col(inoff + lay.ub(*c)).geq(col(g + i)));
    }
    let cert_g_in = Expr::conj(
        group_by.iter().map(|c| col(inoff + lay.lb(*c)).eq(col(inoff + lay.ub(*c)))).collect(),
    );
    let theta_sg = Expr::conj(
        group_by.iter().enumerate().map(|(i, c)| col(i).eq(col(inoff + lay.sg(*c)))).collect(),
    );
    let theta_join = Expr::conj(overlap).and(cert_g_in.clone().not().or(theta_sg.clone()));
    let qjoin =
        Query::Join { left: Box::new(qg), right: Box::new(inp), predicate: Some(theta_join) };

    // ---- Q_proj: per-row contributions ------------------------------------
    let bbox_cert = Expr::conj((0..g).map(|i| col(g + i).eq(col(2 * g + i))).collect());
    let row_lb_in = col(inoff + lay.row_lb());
    let row_sg_in = col(inoff + lay.row_sg());
    let row_ub_in = col(inoff + lay.row_ub());
    let non_ug =
        bbox_cert.and(cert_g_in.clone()).and(theta_sg.clone()).and(row_lb_in.clone().gt(lit(0i64)));

    let mut proj: Vec<(Expr, String)> = Vec::new();
    for i in 0..gw {
        proj.push((col(i), format!("__k{i}")));
    }
    // per-spec contribution columns; record (start, is_avg) offsets
    let mut spec_offsets: Vec<(usize, bool)> = Vec::new();
    let mut next = gw;
    for (si, spec) in aggs.iter().enumerate() {
        let is_avg = spec.func == AggFunc::Avg;
        spec_offsets.push((next, is_avg));
        let emit = |proj: &mut Vec<(Expr, String)>,
                    monoid: crate::au::aggregate::Monoid,
                    input_expr: &Expr,
                    tag: &str|
         -> Result<(), EvalError> {
            let compiled = compile_range_expr(input_expr, lay)?;
            let shifted = RangeExprs {
                lb: compiled.lb.remap_columns(&|i| i + inoff),
                sg: compiled.sg.remap_columns(&|i| i + inoff),
                ub: compiled.ub.remap_columns(&|i| i + inoff),
            };
            let (lo, sgv, hi) = boxtimes_exprs(
                monoid,
                row_lb_in.clone(),
                row_sg_in.clone(),
                row_ub_in.clone(),
                &shifted,
            );
            let neutral = Expr::Const(monoid.neutral());
            let lba = Expr::if_then_else(non_ug.clone(), lo.clone(), emin(neutral.clone(), lo));
            let uba = Expr::if_then_else(non_ug.clone(), hi.clone(), emax(neutral.clone(), hi));
            let sga = Expr::if_then_else(theta_sg.clone(), sgv, neutral);
            proj.push((lba, format!("__a{si}_{tag}lb")));
            proj.push((sga, format!("__a{si}_{tag}sg")));
            proj.push((uba, format!("__a{si}_{tag}ub")));
            Ok(())
        };
        match spec.func {
            AggFunc::Avg => {
                emit(&mut proj, crate::au::aggregate::Monoid::Sum, &spec.input, "s")?;
                emit(&mut proj, crate::au::aggregate::Monoid::Sum, &lit(1i64), "c")?;
                next += 6;
            }
            AggFunc::Count => {
                emit(&mut proj, monoid_of(spec.func), &lit(1i64), "")?;
                next += 3;
            }
            _ => {
                emit(&mut proj, monoid_of(spec.func), &spec.input, "")?;
                next += 3;
            }
        }
    }
    // row-annotation contribution columns
    let row_base = next;
    proj.push((
        Expr::if_then_else(
            theta_sg.clone().and(cert_g_in.clone()).and(row_lb_in.clone().gt(lit(0i64))),
            lit(1i64),
            lit(0i64),
        ),
        "__r_cflag".into(),
    ));
    proj.push((
        Expr::if_then_else(theta_sg.clone(), row_sg_in.clone(), lit(0i64)),
        "__r_sg".into(),
    ));
    proj.push((
        Expr::if_then_else(theta_sg.clone().and(cert_g_in.clone()), lit(1i64), lit(0i64)),
        "__r_certgrp".into(),
    ));
    proj.push((
        Expr::if_then_else(
            theta_sg.clone().and(cert_g_in.clone().not()),
            row_ub_in.clone(),
            lit(0i64),
        ),
        "__r_uncub".into(),
    ));
    let qproj = project_named(qjoin, proj);

    // ---- Q_agg: fold contributions per output group ------------------------
    let mut fold: Vec<AggSpec> = Vec::new();
    for (si, spec) in aggs.iter().enumerate() {
        let (start, is_avg) = spec_offsets[si];
        if is_avg {
            for j in 0..6 {
                fold.push(AggSpec::new(AggFunc::Sum, col(start + j), format!("__f{si}_{j}")));
            }
        } else {
            let f = monoid_agg_func(monoid_of(spec.func));
            for j in 0..3 {
                fold.push(AggSpec::new(f, col(start + j), format!("__f{si}_{j}")));
            }
        }
    }
    fold.push(AggSpec::new(AggFunc::Max, col(row_base), "__r_cflag"));
    fold.push(AggSpec::new(AggFunc::Sum, col(row_base + 1), "__r_sg"));
    fold.push(AggSpec::new(AggFunc::Max, col(row_base + 2), "__r_certgrp"));
    fold.push(AggSpec::new(AggFunc::Sum, col(row_base + 3), "__r_uncub"));
    let qagg = Query::Aggregate { input: Box::new(qproj), group_by: (0..gw).collect(), aggs: fold };
    // qagg layout: [keys (0..gw), folded spec blocks, cflag, sgsum, certgrp, uncsum]

    // ---- final projection into the canonical encoded layout ----------------
    let mut fstart: Vec<usize> = Vec::new();
    let mut pos = gw;
    for (si, _) in aggs.iter().enumerate() {
        fstart.push(pos);
        pos += if spec_offsets[si].1 { 6 } else { 3 };
    }
    let cflag = col(pos);
    let sgsum = col(pos + 1);
    let certgrp = col(pos + 2);
    let uncsum = col(pos + 3);

    // per-spec final (lb, sg, ub) value expressions. For aggregation
    // without group-by the single output row must also bound worlds with
    // an *empty* input, where deterministic MIN/MAX/AVG is Null: when no
    // row certainly exists (cflag = 0) the lower bound extends to Null,
    // and when the SG world is empty (sgsum = 0) the SG component is
    // Null — mirroring `adjust_for_possible_empty` in the native
    // evaluator exactly.
    struct FinalAgg {
        lb: Expr,
        sg: Expr,
        ub: Expr,
    }
    let nul = Expr::Const(Value::Null);
    let widen_empty = |lb: Expr, sg: Expr, func: AggFunc| -> (Expr, Expr) {
        if g > 0 || matches!(func, AggFunc::Sum | AggFunc::Count) {
            return (lb, sg);
        }
        let lb = Expr::if_then_else(cflag.clone().gt(lit(0i64)), lb.clone(), emin(lb, nul.clone()));
        let sg = Expr::if_then_else(sgsum.clone().gt(lit(0i64)), sg, nul.clone());
        (lb, sg)
    };
    let mut finals: Vec<FinalAgg> = Vec::new();
    for (si, spec) in aggs.iter().enumerate() {
        let s = fstart[si];
        if spec.func == AggFunc::Avg {
            // columns: s..s+2 sum (lb, sg, ub); s+3..s+5 count (lb, sg, ub)
            let (slb, ssg, sub) = (col(s), col(s + 1), col(s + 2));
            let (clb, csg, cub) = (col(s + 3), col(s + 4), col(s + 5));
            let clampc = |c: Expr| Expr::if_then_else(c.clone().lt(lit(1i64)), lit(1i64), c);
            let (cl, cu, cs) = (clampc(clb), clampc(cub.clone()), clampc(csg));
            let q = |a: &Expr, b: &Expr| a.clone().div(b.clone());
            let lo = emin4(q(&slb, &cl), q(&slb, &cu), q(&sub, &cl), q(&sub, &cu));
            let hi = emax4(q(&slb, &cl), q(&slb, &cu), q(&sub, &cl), q(&sub, &cu));
            let sgv = clamp_expr(q(&ssg, &cs), lo.clone(), hi.clone());
            let (lo, sgv) = widen_empty(lo, sgv, spec.func);
            let guard = cub.eq(lit(0i64));
            finals.push(FinalAgg {
                lb: Expr::if_then_else(guard.clone(), nul.clone(), lo),
                sg: Expr::if_then_else(guard.clone(), nul.clone(), sgv),
                ub: Expr::if_then_else(guard, nul.clone(), hi),
            });
        } else {
            let (flb, fsg, fub) = (col(s), col(s + 1), col(s + 2));
            let clamped = clamp_expr(fsg, flb.clone(), fub.clone());
            let (flb, clamped) = widen_empty(flb, clamped, spec.func);
            finals.push(FinalAgg { lb: flb, sg: clamped, ub: fub });
        }
    }

    let out_enc = enc_schema(&out_schema);
    let width = g + aggs.len();
    let mut fin: Vec<(Expr, String)> = Vec::new();
    // sg block
    for i in 0..g {
        fin.push((col(i), out_enc.column_name(i).to_string()));
    }
    for (si, f) in finals.iter().enumerate() {
        fin.push((f.sg.clone(), out_enc.column_name(g + si).to_string()));
    }
    // lb block
    for i in 0..g {
        fin.push((col(g + i), out_enc.column_name(width + i).to_string()));
    }
    for (si, f) in finals.iter().enumerate() {
        fin.push((f.lb.clone(), out_enc.column_name(width + g + si).to_string()));
    }
    // ub block
    for i in 0..g {
        fin.push((col(2 * g + i), out_enc.column_name(2 * width + i).to_string()));
    }
    for (si, f) in finals.iter().enumerate() {
        fin.push((f.ub.clone(), out_enc.column_name(2 * width + g + si).to_string()));
    }
    // row annotations
    if g == 0 {
        fin.push((lit(1i64), "__row_lb".into()));
        fin.push((lit(1i64), "__row_sg".into()));
        fin.push((lit(1i64), "__row_ub".into()));
    } else {
        let sg_flag = Expr::if_then_else(sgsum.clone().gt(lit(0i64)), lit(1i64), lit(0i64));
        fin.push((cflag, "__row_lb".into()));
        fin.push((sg_flag.clone(), "__row_sg".into()));
        fin.push((emax(certgrp.add(uncsum), sg_flag), "__row_ub".into()));
    }
    Ok((project_named(qagg, fin), out_schema))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::algebra::table;
    use crate::au::{eval_au, AuConfig};
    use audb_storage::au_row;

    fn r2(lb: i64, sg: i64, ub: i64) -> RangeValue {
        RangeValue::range(lb, sg, ub)
    }

    fn sample_db() -> AuDatabase {
        let mut db = AuDatabase::new();
        db.insert(
            "r",
            AuRelation::from_rows(
                Schema::named(&["a", "b"]),
                vec![
                    au_row(vec![r2(1, 1, 1), r2(5, 10, 20)], 1, 1, 1),
                    au_row(vec![r2(1, 1, 3), r2(0, 4, 8)], 0, 1, 3),
                    au_row(vec![r2(2, 2, 2), r2(-5, -1, 0)], 1, 2, 2),
                ],
            ),
        );
        db.insert(
            "s",
            AuRelation::from_rows(
                Schema::named(&["c"]),
                vec![au_row(vec![r2(1, 1, 2)], 1, 1, 1), au_row(vec![r2(2, 2, 2)], 0, 1, 1)],
            ),
        );
        db
    }

    fn check_equivalence(q: &Query) {
        let db = sample_db();
        let native = eval_au(&db, q, &AuConfig::precise()).unwrap();
        let via_rewrite = eval_via_rewrite(&db, q).unwrap();
        assert_eq!(native, via_rewrite, "native vs rewrite mismatch for {q}");
    }

    #[test]
    fn enc_dec_roundtrip() {
        let db = sample_db();
        for (_, rel) in db.iter() {
            let enc = enc_relation(rel);
            let dec = dec_relation(&enc, &rel.schema).unwrap();
            assert_eq!(&dec, rel);
        }
    }

    /// Regression: a negative encoded row multiplicity must be rejected,
    /// not wrapped to a ~1.8e19 `u64` (which would silently corrupt the
    /// `Dec` side of Theorem 8's round trip).
    #[test]
    fn dec_rejects_negative_multiplicities() {
        let schema = Schema::named(&["a"]);
        let enc = Relation::from_rows(
            enc_schema(&schema),
            vec![(
                Tuple::new(vec![
                    Value::Int(1), // a^sg
                    Value::Int(1), // a↓
                    Value::Int(1), // a↑
                    Value::Int(-1),
                    Value::Int(1),
                    Value::Int(1),
                ]),
                1,
            )],
        );
        let err = dec_relation(&enc, &schema).unwrap_err();
        assert!(
            matches!(&err, EvalError::InvalidAnnotation(m) if m.contains("negative")),
            "expected a negative-multiplicity error, got {err:?}"
        );
    }

    /// Regression: multiplication with the encoded tuple's bag
    /// multiplicity is checked, not wrapping.
    #[test]
    fn dec_rejects_multiplicity_overflow() {
        let schema = Schema::named(&["a"]);
        let big = (u64::MAX / 2) as i64;
        let enc = Relation::from_rows(
            enc_schema(&schema),
            vec![(
                Tuple::new(vec![
                    Value::Int(1),
                    Value::Int(1),
                    Value::Int(1),
                    Value::Int(big),
                    Value::Int(big),
                    Value::Int(big),
                ]),
                3,
            )],
        );
        let err = dec_relation(&enc, &schema).unwrap_err();
        assert!(
            matches!(&err, EvalError::InvalidAnnotation(m) if m.contains("overflows")),
            "expected an overflow error, got {err:?}"
        );
    }

    #[test]
    fn compiled_expressions_match_range_eval() {
        let exprs = vec![
            col(0).add(col(1)),
            col(0).mul(col(1)).sub(lit(3i64)),
            col(0).leq(col(1)),
            col(0).eq(lit(1i64)),
            Expr::if_then_else(col(0).lt(col(1)), col(0), col(1)),
            col(0).neq(col(1)).and(col(0).geq(lit(0i64))),
        ];
        let tuples = vec![
            vec![r2(1, 2, 3), r2(0, 0, 5)],
            vec![r2(-3, -1, 0), r2(2, 2, 2)],
            vec![r2(1, 1, 1), r2(1, 1, 1)],
        ];
        let lay = EncLayout::new(2);
        for e in &exprs {
            let c = compile_range_expr(e, lay).unwrap();
            for t in &tuples {
                let native = e.eval_range(t).unwrap();
                // encode the tuple with a dummy annotation
                let mut enc: Vec<Value> = t.iter().map(|r| r.sg.clone()).collect();
                enc.extend(t.iter().map(|r| r.lb.clone()));
                enc.extend(t.iter().map(|r| r.ub.clone()));
                enc.extend([Value::Int(1), Value::Int(1), Value::Int(1)]);
                assert_eq!(c.lb.eval(&enc).unwrap(), native.lb, "lb of {e}");
                assert_eq!(c.sg.eval(&enc).unwrap(), native.sg, "sg of {e}");
                assert_eq!(c.ub.eval(&enc).unwrap(), native.ub, "ub of {e}");
            }
        }
    }

    #[test]
    fn rewrite_select() {
        check_equivalence(&table("r").select(col(0).eq(lit(1i64))));
        check_equivalence(&table("r").select(col(1).gt(lit(3i64))));
        check_equivalence(&table("r").select(col(0).leq(col(1))));
    }

    #[test]
    fn rewrite_project() {
        check_equivalence(&table("r").project(vec![(col(1), "b")]));
        check_equivalence(&table("r").project(vec![(col(0).add(col(1)), "x"), (lit(7i64), "c")]));
    }

    #[test]
    fn rewrite_join() {
        check_equivalence(&table("r").join_on(table("s"), col(0).eq(col(2))));
        check_equivalence(&table("r").cross(table("s")));
        check_equivalence(&table("r").join_on(table("s"), col(0).leq(col(2))));
    }

    #[test]
    fn rewrite_union() {
        check_equivalence(&table("s").union(table("s")));
    }

    #[test]
    fn rewrite_difference() {
        check_equivalence(
            &table("r")
                .project(vec![(col(0), "a")])
                .difference(table("s").project(vec![(col(0), "a")])),
        );
    }

    #[test]
    fn rewrite_distinct() {
        check_equivalence(&table("r").project(vec![(col(0), "a")]).distinct());
    }

    #[test]
    fn rewrite_aggregate_groupby() {
        check_equivalence(&table("r").aggregate(
            vec![0],
            vec![
                AggSpec::new(AggFunc::Sum, col(1), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Min, col(1), "lo"),
                AggSpec::new(AggFunc::Max, col(1), "hi"),
            ],
        ));
    }

    #[test]
    fn rewrite_aggregate_no_groupby() {
        check_equivalence(
            &table("r").aggregate(vec![], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]),
        );
    }

    #[test]
    fn rewrite_aggregate_avg() {
        check_equivalence(
            &table("r").aggregate(vec![0], vec![AggSpec::new(AggFunc::Avg, col(1), "a")]),
        );
        check_equivalence(
            &table("r").aggregate(vec![], vec![AggSpec::new(AggFunc::Avg, col(1), "a")]),
        );
    }

    #[test]
    fn rewrite_aggregate_empty_input() {
        let mut db = AuDatabase::new();
        db.insert("e", AuRelation::empty(Schema::named(&["x"])));
        let q = table("e").aggregate(
            vec![],
            vec![
                AggSpec::new(AggFunc::Sum, col(0), "s"),
                AggSpec::new(AggFunc::Min, col(0), "m"),
                AggSpec::new(AggFunc::Avg, col(0), "a"),
                AggSpec::count("c"),
            ],
        );
        let native = eval_au(&db, &q, &AuConfig::precise()).unwrap();
        let via = eval_via_rewrite(&db, &q).unwrap();
        assert_eq!(native, via);
    }

    #[test]
    fn session_encodes_lazily_and_reuses() {
        let db = sample_db();
        let mut sess = RewriteSession::new(&db);
        let q = table("s").select(col(0).geq(lit(1i64)));
        let out = sess.eval(&q).unwrap();
        assert_eq!(out, eval_au(&db, &q, &AuConfig::precise()).unwrap());
        // only the referenced table was encoded
        assert!(sess.enc.get("s").is_ok());
        assert!(sess.enc.get("r").is_err());
        // a second query extends the cache instead of re-encoding
        let q2 = table("r").project(vec![(col(0), "a")]);
        let out2 = sess.eval(&q2).unwrap();
        assert_eq!(out2, eval_au(&db, &q2, &AuConfig::precise()).unwrap());
        assert!(sess.enc.get("r").is_ok());
    }

    #[test]
    fn rewrite_composed_query() {
        // selection → join → aggregation end-to-end
        let q = table("r")
            .select(col(1).geq(lit(0i64)))
            .join_on(table("s"), col(0).eq(col(2)))
            .aggregate(vec![2], vec![AggSpec::new(AggFunc::Sum, col(1), "s")]);
        check_equivalence(&q);
    }
}
